//! `pwb` call sites of the Romulus baseline.

use pmem::SiteId;

/// `pwb` of the persistent transaction-state flag (IDLE/MUTATING/COPYING).
pub const R_STATE: SiteId = SiteId(0);
/// `pwb` of words dirtied in the `main` region during MUTATING.
pub const R_MAIN: SiteId = SiteId(1);
/// `pwb` of words copied into the `back` region during COPYING.
pub const R_BACK: SiteId = SiteId(2);
/// `pwb` of the per-thread `RD_q`/`CP_q` detectability words.
pub const R_RD: SiteId = SiteId(3);

/// All Romulus sites with human-readable names.
pub const SITES: [(SiteId, &str); 4] = [
    (R_STATE, "tx-state"),
    (R_MAIN, "main-region"),
    (R_BACK, "back-region"),
    (R_RD, "rd"),
];

/// Human-readable name of a Romulus site (or `"?"`).
pub fn site_name(s: SiteId) -> &'static str {
    SITES
        .iter()
        .find(|(id, _)| *id == s)
        .map(|(_, n)| *n)
        .unwrap_or("?")
}
