//! A sorted-list set as Romulus transactions — the structure the paper
//! benchmarks against Tracking.
//!
//! Nodes (`⟨key, next⟩`, region offsets) live in the managed region and are
//! recycled through a free list; both are safe because update transactions
//! are serialized by the writer lock and readers validate against the
//! seqlock. Detectability: each update transaction also writes the
//! operation's sequence number and result into the calling thread's
//! persistent result slot *inside the region*, so the response commits
//! atomically with the update — after a crash, the slot tells exactly
//! whether the interrupted operation took effect.

use std::sync::Arc;

use pmem::{PmemPool, ThreadCtx};

use crate::sites::R_RD;
use crate::tm::{Off, ReadTx, RomulusTm, WriteTx};

/// Sentinel key of the region head node.
pub const KEY_MIN: u64 = 0;
/// Sentinel key of the region tail node.
pub const KEY_MAX: u64 = u64::MAX;

// Region layout (word offsets)
const ALLOC_NEXT: Off = 0;
const FREE_HEAD: Off = 1;
const LIST_HEAD: Off = 2;
const OPRES_BASE: Off = 8;
// nodes: {key, next}
const NK: u64 = 0;
const NN: u64 = 1;

/// The Romulus-backed detectably recoverable sorted-list set.
#[derive(Clone)]
pub struct RomulusList {
    tm: Arc<RomulusTm>,
    threads: usize,
}

impl RomulusList {
    /// Creates (or re-attaches to) a list inside a fresh TM rooted at
    /// `root_idx`, with capacity for roughly `max_keys` live keys.
    pub fn new(pool: Arc<PmemPool>, root_idx: usize, max_keys: usize) -> Self {
        pool.register_site_names(&crate::sites::SITES);
        let threads = pool.max_threads();
        let heap_base = OPRES_BASE + threads as u64;
        // head + tail + max_keys nodes, 2 words each, plus headroom
        let size = heap_base as usize + 2 * (max_keys + 8);
        let tm = RomulusTm::new(pool, root_idx, size);
        let list = RomulusList { tm, threads };
        list.tm.write_tx(|tx| {
            if tx.read(LIST_HEAD) != 0 {
                return; // already initialized (re-attach)
            }
            tx.write(ALLOC_NEXT, heap_base);
            let head = Self::alloc_node(tx);
            let tail = Self::alloc_node(tx);
            tx.write(head + NK, KEY_MIN);
            tx.write(head + NN, tail);
            tx.write(tail + NK, KEY_MAX);
            tx.write(tail + NN, 0);
            tx.write(LIST_HEAD, head);
        });
        list
    }

    /// The owning pool.
    pub fn pool(&self) -> &PmemPool {
        self.tm.pool()
    }

    /// The underlying TM (e.g. to run [`RomulusTm::recover`] after a crash).
    pub fn tm(&self) -> &Arc<RomulusTm> {
        &self.tm
    }

    fn alloc_node(tx: &mut WriteTx<'_>) -> Off {
        let fh = tx.read(FREE_HEAD);
        if fh != 0 {
            tx.write(FREE_HEAD, tx.read(fh + NN));
            fh
        } else {
            let n = tx.read(ALLOC_NEXT);
            tx.write(ALLOC_NEXT, n + 2);
            n
        }
    }

    fn free_node(tx: &mut WriteTx<'_>, off: Off) {
        tx.write(off + NN, tx.read(FREE_HEAD));
        tx.write(FREE_HEAD, off);
    }

    fn opres_slot(&self, ctx: &ThreadCtx) -> Off {
        assert!(ctx.tid() < self.threads);
        OPRES_BASE + ctx.tid() as u64
    }

    /// Next per-thread op sequence number (from the committed result slot).
    fn next_seq(&self, ctx: &ThreadCtx) -> u64 {
        let slot = self.opres_slot(ctx);
        (self.tm.read_tx(|r| Some(r.read(slot))) >> 1) + 1
    }

    /// Persist the operation's identity (`RD_q := seq`, then `CP_q := 1`)
    /// before running its transaction.
    fn prologue(&self, ctx: &ThreadCtx, seq: u64) {
        let pool = self.tm.pool();
        ctx.set_rd(seq);
        pool.pbarrier(ctx.rd_addr(), 1, R_RD);
        ctx.set_cp(1);
        pool.pwb(ctx.cp_addr(), R_RD);
        pool.psync();
    }

    fn search_tx(tx: &WriteTx<'_>, key: u64) -> (Off, Off) {
        let mut pred = tx.read(LIST_HEAD);
        let mut curr = tx.read(pred + NN);
        while tx.read(curr + NK) < key {
            pred = curr;
            curr = tx.read(curr + NN);
        }
        (pred, curr)
    }

    /// Inserts `key`; returns `false` if already present.
    pub fn insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        ctx.begin_op(R_RD);
        self.insert_started(ctx, key)
    }

    /// [`Self::insert`] without the system's `CP_q := 0` pre-step.
    pub fn insert_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        assert!(key > KEY_MIN && key < KEY_MAX);
        let seq = self.next_seq(ctx);
        self.prologue(ctx, seq);
        let slot = self.opres_slot(ctx);
        self.tm.write_tx(|tx| {
            let (pred, curr) = Self::search_tx(tx, key);
            let r = if tx.read(curr + NK) == key {
                false
            } else {
                let n = Self::alloc_node(tx);
                tx.write(n + NK, key);
                tx.write(n + NN, curr);
                tx.write(pred + NN, n);
                true
            };
            tx.write(slot, seq << 1 | r as u64);
            r
        })
    }

    /// Deletes `key`; returns `false` if absent.
    pub fn delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        ctx.begin_op(R_RD);
        self.delete_started(ctx, key)
    }

    /// [`Self::delete`] without the system's `CP_q := 0` pre-step.
    pub fn delete_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        assert!(key > KEY_MIN && key < KEY_MAX);
        let seq = self.next_seq(ctx);
        self.prologue(ctx, seq);
        let slot = self.opres_slot(ctx);
        self.tm.write_tx(|tx| {
            let (pred, curr) = Self::search_tx(tx, key);
            let r = if tx.read(curr + NK) != key {
                false
            } else {
                tx.write(pred + NN, tx.read(curr + NN));
                Self::free_node(tx, curr);
                true
            };
            tx.write(slot, seq << 1 | r as u64);
            r
        })
    }

    /// Is `key` present? Optimistic read transaction; no persistence (as in
    /// Romulus, read transactions touch no persistent metadata).
    pub fn find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        let _ = ctx;
        self.tm.read_tx(|r| Self::find_in(r, key))
    }

    fn find_in(r: &ReadTx<'_>, key: u64) -> Option<bool> {
        // Bounded traversal: a torn read could route us into recycled nodes,
        // so give up (and re-validate) after more steps than nodes can exist.
        let mut steps = r.size_words() / 2 + 2;
        let mut curr = r.read(r.read(LIST_HEAD) + NN);
        loop {
            if curr == 0 {
                return None; // torn: fell off the list
            }
            let k = r.read(curr + NK);
            if k >= key {
                return Some(k == key);
            }
            curr = r.read(curr + NN);
            steps -= 1;
            if steps == 0 {
                return None;
            }
        }
    }

    /// `Insert.Recover`: run TM recovery first, then decide from the
    /// committed result slot.
    pub fn recover_insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        match self.recover_update(ctx) {
            Some(r) => r,
            None => self.insert(ctx, key),
        }
    }

    /// `Delete.Recover`.
    pub fn recover_delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        match self.recover_update(ctx) {
            Some(r) => r,
            None => self.delete(ctx, key),
        }
    }

    /// `Find.Recover` (read-only: re-execute).
    pub fn recover_find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.tm.recover();
        self.find(ctx, key)
    }

    fn recover_update(&self, ctx: &ThreadCtx) -> Option<bool> {
        self.tm.recover();
        if ctx.cp() == 0 {
            return None;
        }
        let seq = ctx.rd();
        let committed = self.tm.read_tx(|r| Some(r.read(self.opres_slot(ctx))));
        if committed >> 1 == seq {
            Some(committed & 1 == 1)
        } else {
            None // the transaction never committed; re-invoke
        }
    }

    /// Live keys in order (quiescent only).
    pub fn keys(&self) -> Vec<u64> {
        self.tm.read_tx(|r| {
            let mut out = Vec::new();
            let mut curr = r.read(r.read(LIST_HEAD) + NN);
            loop {
                let k = r.read(curr + NK);
                if k == KEY_MAX {
                    return Some(out);
                }
                out.push(k);
                curr = r.read(curr + NN);
            }
        })
    }

    /// Checks sortedness (quiescent); returns the key count.
    pub fn check_invariants(&self) -> usize {
        let ks = self.keys();
        assert!(
            ks.windows(2).all(|w| w[0] < w[1]),
            "keys must be strictly sorted"
        );
        ks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PessimistAdversary, PmemPool, PoolCfg};
    use std::collections::BTreeSet;

    fn setup() -> (Arc<PmemPool>, RomulusList, ThreadCtx) {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
        let list = RomulusList::new(pool.clone(), 5, 1000);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        (pool, list, ctx)
    }

    #[test]
    fn basics() {
        let (_p, list, ctx) = setup();
        assert!(!list.find(&ctx, 10));
        assert!(list.insert(&ctx, 10));
        assert!(list.find(&ctx, 10));
        assert!(!list.insert(&ctx, 10));
        assert!(list.delete(&ctx, 10));
        assert!(!list.find(&ctx, 10));
        assert!(!list.delete(&ctx, 10));
        assert_eq!(list.check_invariants(), 0);
    }

    #[test]
    fn matches_reference_model_sequentially() {
        let (_p, list, ctx) = setup();
        let mut model = BTreeSet::new();
        let mut rng = 0xFACEu64;
        for _ in 0..2000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (rng >> 33) % 60 + 1;
            match (rng >> 20) % 3 {
                0 => assert_eq!(list.insert(&ctx, key), model.insert(key), "insert {key}"),
                1 => assert_eq!(list.delete(&ctx, key), model.remove(&key), "delete {key}"),
                _ => assert_eq!(list.find(&ctx, key), model.contains(&key), "find {key}"),
            }
        }
        assert_eq!(list.keys(), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn node_recycling_reuses_freed_slots() {
        let (_p, list, ctx) = setup();
        for round in 0..5 {
            for k in 1..=50u64 {
                assert!(list.insert(&ctx, k), "round {round} insert {k}");
            }
            for k in 1..=50u64 {
                assert!(list.delete(&ctx, k), "round {round} delete {k}");
            }
        }
        assert_eq!(list.check_invariants(), 0);
        // Allocation watermark must not have grown by 5x: the free list
        // recycles.
        let used = list.tm.read_tx(|r| Some(r.read(ALLOC_NEXT)));
        assert!(
            used < OPRES_BASE + 128_u64 + 2 * 60,
            "free list not recycling: {used}"
        );
    }

    #[test]
    fn concurrent_mixed_ops_preserve_invariants() {
        let (p, list, _ctx) = setup();
        let mut handles = vec![];
        for t in 0..4usize {
            let list = list.clone();
            let ctx = ThreadCtx::new(p.clone(), t);
            handles.push(std::thread::spawn(move || {
                let mut rng = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                for _ in 0..300 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let key = rng % 40 + 1;
                    match (rng >> 32) % 3 {
                        0 => {
                            list.insert(&ctx, key);
                        }
                        1 => {
                            list.delete(&ctx, key);
                        }
                        _ => {
                            list.find(&ctx, key);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        list.check_invariants();
    }

    #[test]
    fn crash_swept_insert_recovers_detectably() {
        for crash_at in 0..4000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
            let list = RomulusList::new(pool.clone(), 5, 100);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            ctx.begin_op(R_RD);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| list.insert_started(&ctx, 5));
            pool.crash(&mut PessimistAdversary);
            match pre {
                Some(r) => {
                    assert!(r);
                    list.tm.recover();
                    assert_eq!(list.keys(), vec![5]);
                    return;
                }
                None => {
                    assert!(list.recover_insert(&ctx, 5), "crash_at={crash_at}");
                    assert_eq!(list.keys(), vec![5], "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn recovery_of_completed_op_returns_recorded_result() {
        let (_p, list, ctx) = setup();
        assert!(list.insert(&ctx, 9));
        assert!(list.recover_insert(&ctx, 9));
        assert_eq!(list.keys(), vec![9]);
    }
}
