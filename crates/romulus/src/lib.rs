//! # romulus — the Romulus durable-TM baseline of the paper
//!
//! Section 5 compares Tracking against **Romulus** (Correia–Felber–
//! Ramalhete, SPAA '18), a *blocking* persistent transactional memory that
//! provides durability and detectability: update transactions run under a
//! writer lock over a **twin-region** heap (a `main` region the program
//! reads and writes, and a `back` region holding the last committed state),
//! with a persistent three-state flag driving crash recovery:
//!
//! ```text
//! IDLE ──► MUTATING (apply writes to main, flush)
//!      ──► COPYING  (copy dirtied words main → back, flush)
//!      ──► IDLE
//! ```
//!
//! A crash in `MUTATING` rolls `main` back from `back`; a crash in
//! `COPYING` rolls `back` forward from `main`; either way exactly one
//! consistent committed state survives — transactions are failure-atomic.
//!
//! This crate rebuilds the baseline from scratch over the simulated NVMM of
//! [`pmem`]:
//!
//! * [`tm`] — the twin-region TM: write transactions (serialized by a
//!   `parking_lot` mutex, matching Romulus' blocking nature that the paper
//!   calls out), optimistic seqlock read transactions, a region-local
//!   allocator with a free list (safe because writers are serialized and
//!   readers validate), and the recovery routine.
//! * [`list`] — a sorted-list set implemented as transactions, the
//!   structure benchmarked against Tracking. Detectability uses the same
//!   `CP_q`/`RD_q` convention as the rest of the repository: a per-thread
//!   operation sequence number in `RD_q` and a per-thread result slot
//!   *inside* the managed region, written by the same transaction that
//!   performs the update — so the result commits atomically with its
//!   operation.
//!
//! Deviation noted in DESIGN.md: original Romulus offers wait-free readers
//! via its Left-Right variant; we use a seqlock with bounded-retry
//! traversal, which preserves the performance profile the paper reports
//! (reads scale, updates serialize) without reproducing Left-Right.

#![warn(missing_docs)]

pub mod list;
pub mod sites;
pub mod tm;

pub use list::RomulusList;
pub use tm::RomulusTm;
