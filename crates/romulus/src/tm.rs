//! The twin-region persistent transactional memory (see crate docs).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pmem::{PAddr, PmemPool, WORDS_PER_LINE};

use crate::sites::{R_BACK, R_MAIN, R_STATE};

const ST_IDLE: u64 = 0;
const ST_MUTATING: u64 = 1;
const ST_COPYING: u64 = 2;

/// A word offset inside the managed region (the TM's unit of addressing;
/// user data never holds raw pool addresses, so the twin regions stay
/// interchangeable).
pub type Off = u64;

/// The Romulus-style twin-region TM.
pub struct RomulusTm {
    pool: Arc<PmemPool>,
    main: PAddr,
    back: PAddr,
    state: PAddr,
    size_words: usize,
    /// Volatile seqlock version: odd while a writer is inside a transaction.
    version: AtomicU64,
    writer: Mutex<()>,
}

impl RomulusTm {
    /// Creates a TM with a `size_words`-word managed region rooted in root
    /// cell `root_idx`, or re-attaches to an existing one (running recovery
    /// if the persistent state flag demands it).
    pub fn new(pool: Arc<PmemPool>, root_idx: usize, size_words: usize) -> Arc<Self> {
        let root = pool.root(root_idx);
        let existing = pool.load(root);
        let size_words = size_words.next_multiple_of(WORDS_PER_LINE);
        let lines = size_words / WORDS_PER_LINE;
        let (main, back, state) = if existing != 0 {
            let sb = PAddr::from_raw(existing);
            (
                PAddr::from_raw(pool.load(sb)),
                PAddr::from_raw(pool.load(sb.add(1))),
                PAddr::from_raw(pool.load(sb.add(2))),
            )
        } else {
            let sb = pool.alloc_lines(1);
            let main = pool.alloc_lines(lines);
            let back = pool.alloc_lines(lines);
            let state = pool.alloc_lines(1);
            pool.store(sb, main.raw());
            pool.store(sb.add(1), back.raw());
            pool.store(sb.add(2), state.raw());
            pool.pwb(sb, R_STATE);
            pool.pfence();
            pool.store(root, sb.raw());
            pool.pbarrier(root, 1, R_STATE);
            (main, back, state)
        };
        let tm = Arc::new(RomulusTm {
            pool,
            main,
            back,
            state,
            size_words,
            version: AtomicU64::new(0),
            writer: Mutex::new(()),
        });
        tm.recover();
        tm
    }

    /// The owning pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    /// Managed-region capacity in words.
    pub fn size_words(&self) -> usize {
        self.size_words
    }

    /// Crash recovery (idempotent): rolls the twin regions to the single
    /// consistent committed state indicated by the persistent flag.
    /// Requires quiescence (no transactions in flight), like any restart
    /// path.
    pub fn recover(&self) {
        // A crash can strike mid-transaction, leaving the volatile seqlock
        // odd; a restart re-initializes volatile state.
        self.version.store(0, Ordering::Release);
        let pool = &*self.pool;
        match pool.load(self.state) {
            ST_MUTATING => {
                // main may be torn: restore it from back wholesale
                for w in 0..self.size_words as u64 {
                    pool.store(self.main.add(w), pool.load(self.back.add(w)));
                }
                pool.pwb_range(self.main, self.size_words, R_MAIN);
                pool.pfence();
                pool.store(self.state, ST_IDLE);
                pool.pbarrier(self.state, 1, R_STATE);
            }
            ST_COPYING => {
                // main is committed; back may be torn: roll it forward
                for w in 0..self.size_words as u64 {
                    pool.store(self.back.add(w), pool.load(self.main.add(w)));
                }
                pool.pwb_range(self.back, self.size_words, R_BACK);
                pool.pfence();
                pool.store(self.state, ST_IDLE);
                pool.pbarrier(self.state, 1, R_STATE);
            }
            _ => {}
        }
    }

    /// Runs a write transaction. `f` reads and writes the region through
    /// the [`WriteTx`]; on return the transaction is durably committed.
    pub fn write_tx<R>(&self, f: impl FnOnce(&mut WriteTx<'_>) -> R) -> R {
        // An injected CrashPoint can unwind through the guard; the next
        // writer (post-recovery) must still acquire, so poisoning is ignored.
        //
        // Under the schedule explorer (a spin hook is registered) a blocked
        // `lock()` would park the OS thread while it holds the explorer's
        // turn — deadlock. Spin on `try_lock` instead, offering the turn
        // back on every miss so the current lock holder can be scheduled to
        // completion, and ticking the crash model so a system-wide crash
        // stops a waiting writer the same way it stops spinning readers.
        let guard = if pmem::has_spin_hook() {
            loop {
                match self.writer.try_lock() {
                    Ok(g) => break g,
                    Err(std::sync::TryLockError::Poisoned(p)) => break p.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => {
                        pmem::yield_spin();
                        self.pool.crash_ctl().tick();
                        std::hint::spin_loop();
                    }
                }
            }
        } else {
            self.writer.lock().unwrap_or_else(|e| e.into_inner())
        };
        let pool = &*self.pool;
        // Enter MUTATING before the first write reaches main.
        pool.store(self.state, ST_MUTATING);
        pool.pwb(self.state, R_STATE);
        pool.pfence();
        self.version.fetch_add(1, Ordering::Release); // odd: writer active
        let mut tx = WriteTx {
            tm: self,
            log: Vec::with_capacity(16),
        };
        let r = f(&mut tx);
        let log = tx.log;
        // Persist the dirtied main lines (deduplicated per line).
        let mut lines: Vec<usize> = log.iter().map(|o| self.main.add(*o).line()).collect();
        lines.sort_unstable();
        lines.dedup();
        for line in &lines {
            pool.pwb(PAddr((line * WORDS_PER_LINE) as u64), R_MAIN);
        }
        pool.pfence();
        // COPYING: propagate the same words to back.
        pool.store(self.state, ST_COPYING);
        pool.pwb(self.state, R_STATE);
        pool.pfence();
        for off in &log {
            pool.store(self.back.add(*off), pool.load(self.main.add(*off)));
        }
        let mut blines: Vec<usize> = log.iter().map(|o| self.back.add(*o).line()).collect();
        blines.sort_unstable();
        blines.dedup();
        for line in &blines {
            pool.pwb(PAddr((line * WORDS_PER_LINE) as u64), R_BACK);
        }
        pool.pfence();
        pool.store(self.state, ST_IDLE);
        pool.pwb(self.state, R_STATE);
        pool.psync();
        self.version.fetch_add(1, Ordering::Release); // even: quiescent
        drop(guard);
        r
    }

    /// Runs an optimistic read-only transaction: `f` may observe a torn
    /// state mid-writer and must be side-effect free; it is re-executed
    /// until it runs against a stable version. `f` receives a bounded
    /// reader.
    pub fn read_tx<R>(&self, mut f: impl FnMut(&ReadTx<'_>) -> Option<R>) -> R {
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 % 2 == 1 {
                // A writer is active. Under the explorer, hand the turn
                // back so that writer can be scheduled (the spin would
                // otherwise never resolve: nobody else runs while we hold
                // the turn). Then let an injected system-wide crash stop
                // spinning readers.
                pmem::yield_spin();
                self.pool.crash_ctl().tick();
                std::hint::spin_loop();
                continue;
            }
            let tx = ReadTx { tm: self };
            if let Some(r) = f(&tx) {
                if self.version.load(Ordering::Acquire) == v1 {
                    return r;
                }
            }
        }
    }

    #[inline]
    fn main_read(&self, off: Off) -> u64 {
        debug_assert!((off as usize) < self.size_words);
        self.pool.load(self.main.add(off))
    }
}

/// Handle for reads/writes inside a write transaction.
pub struct WriteTx<'a> {
    tm: &'a RomulusTm,
    log: Vec<Off>,
}

impl WriteTx<'_> {
    /// Reads a region word.
    #[inline]
    pub fn read(&self, off: Off) -> u64 {
        self.tm.main_read(off)
    }

    /// Writes a region word (logged for the COPYING phase).
    #[inline]
    pub fn write(&mut self, off: Off, v: u64) {
        debug_assert!((off as usize) < self.tm.size_words);
        self.tm.pool.store(self.tm.main.add(off), v);
        self.log.push(off);
    }
}

/// Handle for reads inside an optimistic read transaction.
pub struct ReadTx<'a> {
    tm: &'a RomulusTm,
}

impl ReadTx<'_> {
    /// Reads a region word (may be torn; the seqlock validates afterwards).
    #[inline]
    pub fn read(&self, off: Off) -> u64 {
        self.tm.main_read(off)
    }

    /// Region capacity (useful as a traversal bound under torn reads).
    pub fn size_words(&self) -> usize {
        self.tm.size_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PessimistAdversary, PoolCfg};

    fn mk(size: usize) -> (Arc<PmemPool>, Arc<RomulusTm>) {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(8 << 20)));
        let tm = RomulusTm::new(pool.clone(), 4, size);
        (pool, tm)
    }

    #[test]
    fn committed_tx_is_durable() {
        let (p, tm) = mk(64);
        tm.write_tx(|tx| {
            tx.write(0, 41);
            tx.write(9, 42);
        });
        p.crash(&mut PessimistAdversary);
        tm.recover();
        tm.read_tx(|r| {
            assert_eq!(r.read(0), 41);
            assert_eq!(r.read(9), 42);
            Some(())
        });
    }

    #[test]
    fn torn_mutating_tx_rolls_back() {
        let (p, tm) = mk(64);
        tm.write_tx(|tx| tx.write(0, 1));
        // Crash mid-MUTATING: writes reached main but not back, state flag
        // says MUTATING.
        p.crash_ctl().arm_after(600); // inside the second tx's body
        let crashed = pmem::run_crashable(|| {
            tm.write_tx(|tx| {
                tx.write(0, 99);
                tx.write(1, 98);
            })
        });
        p.crash(&mut pmem::OptimistAdversary); // keep all volatile state
        tm.recover();
        let v0 = tm.read_tx(|r| Some(r.read(0)));
        if crashed.is_none() {
            // the tx did not commit: its effects must be invisible...
            // unless the crash fell after the commit point (state->IDLE).
            assert!(v0 == 1 || v0 == 99);
            if v0 == 1 {
                assert_eq!(tm.read_tx(|r| Some(r.read(1))), 0);
            } else {
                assert_eq!(tm.read_tx(|r| Some(r.read(1))), 98, "all or nothing");
            }
        } else {
            assert_eq!(v0, 99);
        }
    }

    #[test]
    fn crash_sweep_transactions_are_atomic() {
        // Crash a 3-write transaction at every instrumented event; after
        // recovery either all three writes or none are visible.
        for crash_at in 0..1500 {
            let (p, tm) = mk(64);
            tm.write_tx(|tx| {
                tx.write(0, 1);
                tx.write(8, 2);
                tx.write(16, 3);
            });
            p.crash_ctl().arm_after(crash_at);
            let done = pmem::run_crashable(|| {
                tm.write_tx(|tx| {
                    tx.write(0, 10);
                    tx.write(8, 20);
                    tx.write(16, 30);
                })
            });
            p.crash(&mut PessimistAdversary);
            tm.recover();
            let vals = tm.read_tx(|r| Some((r.read(0), r.read(8), r.read(16))));
            assert!(
                vals == (1, 2, 3) || vals == (10, 20, 30),
                "crash_at={crash_at}: torn transaction state {vals:?}"
            );
            if done.is_some() {
                assert_eq!(vals, (10, 20, 30));
                return;
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn readers_see_consistent_snapshots_under_writers() {
        let (_p, tm) = mk(64);
        tm.write_tx(|tx| {
            tx.write(0, 0);
            tx.write(1, 0);
        });
        let stop = Arc::new(AtomicU64::new(0));
        let w = {
            let tm = tm.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    i += 1;
                    tm.write_tx(|tx| {
                        tx.write(0, i);
                        tx.write(1, i);
                    });
                }
            })
        };
        for _ in 0..2000 {
            let (a, b) = tm.read_tx(|r| Some((r.read(0), r.read(1))));
            assert_eq!(a, b, "reader observed a torn pair");
        }
        stop.store(1, Ordering::Relaxed);
        w.join().unwrap();
    }

    #[test]
    fn reattach_preserves_region() {
        let (p, tm) = mk(64);
        tm.write_tx(|tx| tx.write(5, 123));
        drop(tm);
        let tm2 = RomulusTm::new(p, 4, 64);
        assert_eq!(tm2.read_tx(|r| Some(r.read(5))), 123);
    }
}
