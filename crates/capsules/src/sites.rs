//! `pwb` call sites of the Capsules / Capsules-Opt implementations.
//!
//! The paper's categorization experiments (Figures 3e–f, 4e–f, 6) found
//! that Capsules-Opt's dominant cost comes from flushes of shared,
//! contended lines ([`C_TRAVERSE`], [`C_NEIGHBORHOOD`], [`C_CAS`]), while
//! its per-thread capsule-record flushes are cheap — the harness re-derives
//! this by sweeping these sites.

use pmem::SiteId;

/// `pwb` after every shared-memory access during traversal (the
/// Izraelevitz durability transformation; **Capsules** policy only).
pub const C_TRAVERSE: SiteId = SiteId(0);
/// `pwb` of a logically deleted (marked) node encountered during traversal
/// (**Capsules-Opt**: required for post-crash correctness of `find`).
pub const C_MARKED: SiteId = SiteId(1);
/// `pwb` of the target neighborhood (`pred`, `curr`) at the end of a
/// search (**Capsules-Opt**).
pub const C_NEIGHBORHOOD: SiteId = SiteId(2);
/// `pwb` of a freshly allocated node before it is published.
pub const C_NEWNODE: SiteId = SiteId(3);
/// `pwb` of the per-thread capsule record at a capsule boundary.
pub const C_CAPSULE: SiteId = SiteId(4);
/// `pwb` of a CASed location after the (recoverable) CAS.
pub const C_CAS: SiteId = SiteId(5);
/// `pwb` of the notification-array entry written before a CAS.
pub const C_NOTIFY: SiteId = SiteId(6);
/// `pwb` of the operation's result in the capsule record.
pub const C_RESULT: SiteId = SiteId(7);

/// All capsules sites with human-readable names.
pub const SITES: [(SiteId, &str); 8] = [
    (C_TRAVERSE, "traverse"),
    (C_MARKED, "marked-node"),
    (C_NEIGHBORHOOD, "neighborhood"),
    (C_NEWNODE, "new-node"),
    (C_CAPSULE, "capsule-record"),
    (C_CAS, "cas-target"),
    (C_NOTIFY, "notify"),
    (C_RESULT, "result"),
];

/// Human-readable name of a capsules site (or `"?"`).
pub fn site_name(s: SiteId) -> &'static str {
    SITES
        .iter()
        .find(|(id, _)| *id == s)
        .map(|(_, n)| *n)
        .unwrap_or("?")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_ids_are_unique() {
        for (i, (a, _)) in SITES.iter().enumerate() {
            for (b, _) in SITES.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
