//! Normalized capsule operations over the Harris list — the paper's
//! **Capsules** and **Capsules-Opt** competitors.
//!
//! Each operation is split into two capsules, following the optimization
//! for normalized (Timnat–Petrank) implementations described in Section 5:
//!
//! 1. a **search capsule** that traverses the list and decides the single
//!    CAS to perform, and
//! 2. a **CAS capsule** that executes it as a recoverable CAS
//!    ([`crate::rcas`]).
//!
//! At every capsule boundary the thread's persistent **capsule record** is
//! rewritten and fenced; it is the continuation a recovering thread resumes
//! from. The paper's check-point convention is reused for detectability of
//! operation boundaries: the record is persisted *before* `CP_q := 1`, so a
//! post-crash `CP_q = 1` certifies the record belongs to the interrupted
//! operation.
//!
//! The two persistence policies differ only in what traversals flush (see
//! [`crate::harris::SearchPersist`]): `Full` is the generic Izraelevitz
//! durability transformation (a `pwb; pfence` per shared access — the
//! configuration whose "prohibitive cost" Figure 3a/4a shows), `Opt` is the
//! paper's hand-tuned variant that persists only marked nodes and the
//! target neighborhood.

use std::sync::Arc;

use pmem::{PAddr, PmemPool, ThreadCtx};

use crate::harris::{self, SearchPersist, N_KEY, N_NEXT};
use crate::rcas::{core, rcas, stamped, NotifyArray, NO_TID};
use crate::sites::{C_CAPSULE, C_CAS, C_NEWNODE, C_RESULT};

/// Which persistence scheme the list applies (see module docs).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PersistPolicy {
    /// Durability transformation on every shared access (**Capsules**).
    Full,
    /// Hand-tuned flushes (**Capsules-Opt**).
    Opt,
}

impl PersistPolicy {
    fn search(self) -> SearchPersist {
        match self {
            PersistPolicy::Full => SearchPersist::Full,
            PersistPolicy::Opt => SearchPersist::Opt,
        }
    }
}

// Capsule record layout (one line per thread):
// w0 op|phase<<8, w1 key, w2 seq, w3 loc, w4 expected, w5 new_core, w6 result
const R_OP: u64 = 0;
const R_KEY: u64 = 1;
const R_SEQ: u64 = 2;
const R_LOC: u64 = 3;
const R_EXPECTED: u64 = 4;
const R_NEWCORE: u64 = 5;
const R_RESULT: u64 = 6;

const PH_SEARCH: u64 = 1;
const PH_EXEC: u64 = 2;
const PH_DONE: u64 = 3;

/// Record op codes.
const OP_INSERT: u64 = 1;
const OP_DELETE: u64 = 2;
const OP_FIND: u64 = 3;

// Superblock layout: w0 head, w1 record base, w2 notify base, w3 threads.

/// A detectably recoverable Harris list built with the capsules
/// transformation.
#[derive(Clone)]
pub struct CapsulesList {
    pool: Arc<PmemPool>,
    head: PAddr,
    rec_base: PAddr,
    notify: Arc<NotifyArray>,
    policy: PersistPolicy,
}

impl CapsulesList {
    /// Creates a list rooted in root cell `root_idx` (or re-attaches).
    pub fn new(pool: Arc<PmemPool>, root_idx: usize, policy: PersistPolicy) -> Self {
        pool.register_site_names(&crate::sites::SITES);
        let root = pool.root(root_idx);
        let existing = pool.load(root);
        if existing != 0 {
            let sb = PAddr::from_raw(existing);
            let head = PAddr::from_raw(pool.load(sb));
            let rec_base = PAddr::from_raw(pool.load(sb.add(1)));
            let nbase = PAddr::from_raw(pool.load(sb.add(2)));
            let threads = pool.load(sb.add(3)) as usize;
            return CapsulesList {
                pool,
                head,
                rec_base,
                notify: Arc::new(NotifyArray::attach(nbase, threads)),
                policy,
            };
        }
        let sb = pool.alloc_lines(1);
        let head = harris::mk_list(&pool);
        let threads = pool.max_threads();
        let rec_base = pool.alloc_lines(threads);
        let notify = NotifyArray::alloc(&pool, threads);
        pool.store(sb, head.raw());
        pool.store(sb.add(1), rec_base.raw());
        pool.store(sb.add(2), notify.base().raw());
        pool.store(sb.add(3), threads as u64);
        pool.pwb(head, C_NEWNODE);
        let tail = crate::harris::addr_of(pool.load(head.add(crate::harris::N_NEXT)));
        pool.pwb(tail, C_NEWNODE);
        pool.pwb(sb, C_NEWNODE);
        pool.pfence();
        pool.store(root, sb.raw());
        pool.pbarrier(root, 1, C_NEWNODE);
        CapsulesList {
            pool,
            head,
            rec_base,
            notify: Arc::new(notify),
            policy,
        }
    }

    /// The owning pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    fn rec(&self, ctx: &ThreadCtx) -> PAddr {
        self.rec_base.add((ctx.tid() * pmem::WORDS_PER_LINE) as u64)
    }

    fn write_capsule1(&self, ctx: &ThreadCtx, op: u64, key: u64) -> u64 {
        let pool = &*self.pool;
        let rec = self.rec(ctx);
        let seq = pool.load(rec.add(R_SEQ)) + 1;
        pool.store(rec.add(R_OP), op | PH_SEARCH << 8);
        pool.store(rec.add(R_KEY), key);
        pool.store(rec.add(R_SEQ), seq);
        pool.pwb(rec, C_CAPSULE);
        pool.pfence();
        // The paper's check-point: CP_q = 1 only after the record is
        // durable, so recovery can attribute the record to this operation.
        ctx.set_cp(1);
        pool.pwb(ctx.cp_addr(), C_CAPSULE);
        pool.psync();
        seq
    }

    fn set_phase(&self, ctx: &ThreadCtx, op: u64, phase: u64) {
        let rec = self.rec(ctx);
        self.pool.store(rec.add(R_OP), op | phase << 8);
    }

    fn finish(&self, ctx: &ThreadCtx, op: u64, result: bool) -> bool {
        let pool = &*self.pool;
        let rec = self.rec(ctx);
        pool.store(rec.add(R_RESULT), result as u64);
        self.set_phase(ctx, op, PH_DONE);
        pool.pwb(rec, C_RESULT);
        pool.pfence();
        result
    }

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    /// Inserts `key`; returns `false` if already present.
    pub fn insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        ctx.begin_op(C_CAPSULE);
        self.insert_started(ctx, key)
    }

    /// [`Self::insert`] without the system's `CP_q := 0` pre-step.
    pub fn insert_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        assert!(key > harris::KEY_MIN && key < harris::KEY_MAX);
        let pool = &*self.pool;
        // Whole-operation fence-coalescing region (see `harris::search`):
        // capsule-record and rcas fences always follow a fresh store and so
        // always execute; only true identity fences (re-flushes of clean
        // traversed lines) are elided.
        let _region = pool.flushopt_enabled().then(|| pool.coalesce_fences());
        let rec = self.rec(ctx);
        let seq = self.write_capsule1(ctx, OP_INSERT, key);
        loop {
            // --- search capsule ---
            let s = harris::search(pool, ctx.tid(), self.head, key, self.policy.search());
            if pool.load(s.curr.add(N_KEY)) == key {
                return self.finish(ctx, OP_INSERT, false);
            }
            let node = harris::mk_node(pool, ctx.tid(), key, s.curr.raw());
            pool.pwb(node, C_NEWNODE);
            pool.pfence();
            // --- capsule boundary: persist the CAS continuation ---
            pool.store(rec.add(R_LOC), s.pred.add(N_NEXT).raw());
            pool.store(rec.add(R_EXPECTED), s.pred_next);
            pool.store(rec.add(R_NEWCORE), node.raw());
            self.set_phase(ctx, OP_INSERT, PH_EXEC);
            pool.pwb(rec, C_CAPSULE);
            pool.pfence();
            // --- CAS capsule ---
            if rcas(
                pool,
                &self.notify,
                ctx,
                s.pred.add(N_NEXT),
                s.pred_next,
                node.raw(),
                seq,
            ) {
                pool.pwb(s.pred.add(N_NEXT), C_CAS);
                pool.pfence();
                return self.finish(ctx, OP_INSERT, true);
            }
            self.set_phase(ctx, OP_INSERT, PH_SEARCH);
            pool.pwb(rec, C_CAPSULE);
            pool.pfence();
        }
    }

    /// Deletes `key`; returns `false` if absent.
    pub fn delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        ctx.begin_op(C_CAPSULE);
        self.delete_started(ctx, key)
    }

    /// [`Self::delete`] without the system's `CP_q := 0` pre-step.
    pub fn delete_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        assert!(key > harris::KEY_MIN && key < harris::KEY_MAX);
        let pool = &*self.pool;
        let _region = pool.flushopt_enabled().then(|| pool.coalesce_fences());
        let rec = self.rec(ctx);
        let seq = self.write_capsule1(ctx, OP_DELETE, key);
        loop {
            // --- search capsule ---
            let s = harris::search(pool, ctx.tid(), self.head, key, self.policy.search());
            if pool.load(s.curr.add(N_KEY)) != key {
                return self.finish(ctx, OP_DELETE, false);
            }
            // --- capsule boundary: the mark CAS is the linearizing step ---
            let marked = core(s.curr_next) | 1;
            pool.store(rec.add(R_LOC), s.curr.add(N_NEXT).raw());
            pool.store(rec.add(R_EXPECTED), s.curr_next);
            pool.store(rec.add(R_NEWCORE), marked);
            self.set_phase(ctx, OP_DELETE, PH_EXEC);
            pool.pwb(rec, C_CAPSULE);
            pool.pfence();
            // --- CAS capsule ---
            if rcas(
                pool,
                &self.notify,
                ctx,
                s.curr.add(N_NEXT),
                s.curr_next,
                marked,
                seq,
            ) {
                pool.pwb(s.curr.add(N_NEXT), C_CAS);
                pool.pfence();
                let r = self.finish(ctx, OP_DELETE, true);
                // best-effort physical unlink (any traversal can redo it);
                // on success this CAS is the node's unique remover, so it
                // also retires it once the unlink is durable.
                let succ = stamped(core(s.curr_next) & !1, NO_TID, 0);
                if pool.cas(s.pred.add(N_NEXT), s.pred_next, succ).is_ok() {
                    pool.pwb(s.pred.add(N_NEXT), C_CAS);
                    pool.pfence();
                    ctx.retire(s.curr, 1);
                }
                return r;
            }
            self.set_phase(ctx, OP_DELETE, PH_SEARCH);
            pool.pwb(rec, C_CAPSULE);
            pool.pfence();
        }
    }

    /// Is `key` present?
    pub fn find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        ctx.begin_op(C_CAPSULE);
        self.find_started(ctx, key)
    }

    /// [`Self::find`] without the system's `CP_q := 0` pre-step.
    pub fn find_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        assert!(key > harris::KEY_MIN && key < harris::KEY_MAX);
        let pool = &*self.pool;
        let _region = pool.flushopt_enabled().then(|| pool.coalesce_fences());
        self.write_capsule1(ctx, OP_FIND, key);
        let s = harris::search(pool, ctx.tid(), self.head, key, self.policy.search());
        let found = pool.load(s.curr.add(N_KEY)) == key;
        self.finish(ctx, OP_FIND, found)
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    /// `Insert.Recover`.
    pub fn recover_insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        match self.recover_common(ctx, OP_INSERT, key) {
            Some(r) => r,
            None => self.insert(ctx, key),
        }
    }

    /// `Delete.Recover`.
    pub fn recover_delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        match self.recover_common(ctx, OP_DELETE, key) {
            Some(r) => r,
            None => self.delete(ctx, key),
        }
    }

    /// `Find.Recover` (read-only: simply re-execute).
    pub fn recover_find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.find(ctx, key)
    }

    /// Shared recovery body: `Some(result)` if the interrupted operation
    /// demonstrably finished (or its pending CAS can be resolved), `None`
    /// to re-invoke.
    fn recover_common(&self, ctx: &ThreadCtx, op: u64, key: u64) -> Option<bool> {
        let pool = &*self.pool;
        if ctx.cp() == 0 {
            return None; // record belongs to an older operation
        }
        let rec = self.rec(ctx);
        let hdr = pool.load(rec.add(R_OP));
        if hdr & 0xFF != op || pool.load(rec.add(R_KEY)) != key {
            return None;
        }
        match hdr >> 8 {
            PH_DONE => Some(pool.load(rec.add(R_RESULT)) != 0),
            PH_EXEC => {
                let seq = pool.load(rec.add(R_SEQ));
                let loc = PAddr::from_raw(pool.load(rec.add(R_LOC)));
                if self.notify.cas_succeeded(pool, ctx, loc, seq) {
                    pool.pwb(loc, C_CAS);
                    pool.pfence();
                    return Some(self.finish(ctx, op, true));
                }
                // Re-execute the CAS capsule once: the continuation is in
                // the record. If the location moved on, the operation never
                // took effect and is re-invoked from its search capsule.
                let expected = pool.load(rec.add(R_EXPECTED));
                let new_core = pool.load(rec.add(R_NEWCORE));
                if rcas(pool, &self.notify, ctx, loc, expected, new_core, seq) {
                    pool.pwb(loc, C_CAS);
                    pool.pfence();
                    return Some(self.finish(ctx, op, true));
                }
                None
            }
            _ => None, // SEARCH: no CAS was attempted; re-invoke
        }
    }

    // ------------------------------------------------------------------
    // Quiescent inspection
    // ------------------------------------------------------------------

    /// Live user keys in order (quiescent only).
    pub fn keys(&self) -> Vec<u64> {
        harris::keys(&self.pool, self.head)
    }

    /// Checks sortedness of the live keys (quiescent). Returns the count.
    pub fn check_invariants(&self) -> usize {
        let ks = self.keys();
        assert!(
            ks.windows(2).all(|w| w[0] < w[1]),
            "keys must be strictly sorted"
        );
        ks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PmemPool, PoolCfg};
    use std::collections::BTreeSet;

    fn setup(policy: PersistPolicy) -> (Arc<PmemPool>, CapsulesList, ThreadCtx) {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
        let list = CapsulesList::new(pool.clone(), 3, policy);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        (pool, list, ctx)
    }

    #[test]
    fn basics_both_policies() {
        for policy in [PersistPolicy::Full, PersistPolicy::Opt] {
            let (_p, list, ctx) = setup(policy);
            assert!(!list.find(&ctx, 10));
            assert!(list.insert(&ctx, 10));
            assert!(list.find(&ctx, 10));
            assert!(!list.insert(&ctx, 10));
            assert!(list.delete(&ctx, 10));
            assert!(!list.find(&ctx, 10));
            assert!(!list.delete(&ctx, 10));
            assert_eq!(list.check_invariants(), 0);
        }
    }

    #[test]
    fn matches_reference_model_sequentially() {
        let (_p, list, ctx) = setup(PersistPolicy::Opt);
        let mut model = BTreeSet::new();
        let mut rng = 0xC0FFEEu64;
        for _ in 0..2000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (rng >> 33) % 60 + 1;
            match (rng >> 20) % 3 {
                0 => assert_eq!(list.insert(&ctx, key), model.insert(key), "insert {key}"),
                1 => assert_eq!(list.delete(&ctx, key), model.remove(&key), "delete {key}"),
                _ => assert_eq!(list.find(&ctx, key), model.contains(&key), "find {key}"),
            }
        }
        assert_eq!(list.keys(), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn full_policy_flushes_far_more_than_opt() {
        let mk = |policy| {
            let (p, list, ctx) = setup(policy);
            for k in 1..=50u64 {
                list.insert(&ctx, k);
            }
            p.stats_reset();
            for k in 1..=50u64 {
                list.find(&ctx, k);
            }
            p.stats().pwb_total()
        };
        let full = mk(PersistPolicy::Full);
        let opt = mk(PersistPolicy::Opt);
        assert!(
            full > opt * 3,
            "durability transformation must flush much more (full={full}, opt={opt})"
        );
    }

    #[test]
    fn concurrent_mixed_ops_preserve_invariants() {
        let (p, list, _ctx) = setup(PersistPolicy::Opt);
        let mut handles = vec![];
        for t in 0..4usize {
            let list = list.clone();
            let ctx = ThreadCtx::new(p.clone(), t);
            handles.push(std::thread::spawn(move || {
                let mut rng = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                for _ in 0..500 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let key = rng % 40 + 1;
                    match (rng >> 32) % 3 {
                        0 => {
                            list.insert(&ctx, key);
                        }
                        1 => {
                            list.delete(&ctx, key);
                        }
                        _ => {
                            list.find(&ctx, key);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        list.check_invariants();
    }

    #[test]
    fn concurrent_inserts_same_key_exactly_one_wins() {
        let (p, list, _ctx) = setup(PersistPolicy::Opt);
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(4));
        let mut handles = vec![];
        for t in 0..4usize {
            let list = list.clone();
            let ctx = ThreadCtx::new(p.clone(), t);
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                list.insert(&ctx, 77)
            }));
        }
        let wins: usize = handles
            .into_iter()
            .map(|h| h.join().unwrap() as usize)
            .sum();
        assert_eq!(wins, 1);
        assert_eq!(list.keys(), vec![77]);
    }

    #[test]
    fn crash_swept_insert_recovers_detectably() {
        for crash_at in 0..3000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
            let list = CapsulesList::new(pool.clone(), 3, PersistPolicy::Opt);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            ctx.begin_op(C_CAPSULE);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| list.insert_started(&ctx, 5));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(r) => {
                    assert!(r);
                    assert_eq!(list.keys(), vec![5]);
                    return;
                }
                None => {
                    assert!(list.recover_insert(&ctx, 5), "crash_at={crash_at}");
                    assert_eq!(list.keys(), vec![5], "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn crash_swept_delete_recovers_detectably() {
        for crash_at in 0..3000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
            let list = CapsulesList::new(pool.clone(), 3, PersistPolicy::Opt);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            assert!(list.insert(&ctx, 5));
            ctx.begin_op(C_CAPSULE);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| list.delete_started(&ctx, 5));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(r) => {
                    assert!(r);
                    assert!(list.keys().is_empty());
                    return;
                }
                None => {
                    assert!(list.recover_delete(&ctx, 5), "crash_at={crash_at}");
                    assert!(list.keys().is_empty(), "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn recovery_of_completed_op_returns_recorded_result() {
        let (_p, list, ctx) = setup(PersistPolicy::Opt);
        assert!(list.insert(&ctx, 9));
        assert!(
            list.recover_insert(&ctx, 9),
            "DONE record replays the response"
        );
        assert_eq!(list.keys(), vec![9], "no double insert");
    }
}
