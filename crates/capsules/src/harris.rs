//! Harris' lock-free ordered linked list — the base algorithm the capsules
//! transformation is applied to (Harris, DISC '01).
//!
//! Nodes are `⟨key, next⟩`; deletion is two-step: a CAS sets the **mark
//! bit** (bit 0 of the `next` field) to logically delete the node, and a
//! second CAS physically unlinks it — performed by the deleter or by any
//! later traversal that trips over a marked node. All `next` values carry
//! the [`crate::rcas`] stamp in their high bits; this module's search is
//! shared by the plain (volatile) list used in tests and by the persistent
//! capsule operations, which inject their persistence policy through
//! [`SearchPersist`].

use pmem::{PAddr, PmemPool};

use crate::rcas::{core, stamped, NO_TID};
use crate::sites::{C_MARKED, C_NEIGHBORHOOD, C_TRAVERSE};

/// Sentinel key of `head`.
pub const KEY_MIN: u64 = 0;
/// Sentinel key of `tail`.
pub const KEY_MAX: u64 = u64::MAX;

// Node layout (one cache line): w0 = key, w1 = next (stamped + marked).
pub(crate) const N_KEY: u64 = 0;
pub(crate) const N_NEXT: u64 = 1;

/// Is the mark (logical-delete) bit set on this `next` value?
#[inline]
pub fn is_marked(next: u64) -> bool {
    next & 1 == 1
}

/// The node address part of a `next` value (stamp and mark stripped).
#[inline]
pub fn addr_of(next: u64) -> PAddr {
    PAddr(core(next) & !1)
}

/// How a search persists what it reads — the knob distinguishing
/// Capsules (flush everything) from Capsules-Opt (flush marked nodes and
/// the target neighborhood only) from the volatile base list (flush
/// nothing).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SearchPersist {
    /// No persistence (the original volatile algorithm).
    None,
    /// `pwb; pfence` after every shared read (Izraelevitz durability
    /// transformation — the paper's Capsules).
    Full,
    /// Persist marked nodes as encountered plus `pred`/`curr` at the end
    /// (the paper's hand-tuned Capsules-Opt).
    Opt,
}

/// Result of a Harris search: `pred` (unmarked, key < k) and `curr`
/// (unmarked at observation time, first key ≥ k), plus the exact `next`
/// values read from them (stamped), needed as CAS expectations.
pub struct HarrisSearch {
    /// Last node with key < k.
    pub pred: PAddr,
    /// `pred`'s observed `next` value (stamped pointer to `curr`).
    pub pred_next: u64,
    /// First node with key ≥ k.
    pub curr: PAddr,
    /// `curr`'s observed `next` value (stamped, unmarked).
    pub curr_next: u64,
}

/// Allocates a node under thread `tid`'s identity (recycling a retired
/// node on a `pmem::PoolCfg::reclaim` pool). The `next` field is stamped
/// with [`NO_TID`] so the first notification on it is a no-op.
pub fn mk_node(pool: &PmemPool, tid: usize, key: u64, next_core: u64) -> PAddr {
    let n = pool.palloc_lines(tid, 1);
    pool.store(n.add(N_KEY), key);
    pool.store(n.add(N_NEXT), stamped(next_core, NO_TID, 0));
    n
}

/// Creates the sentinel pair and returns `head`.
pub fn mk_list(pool: &PmemPool) -> PAddr {
    let tail = mk_node(pool, 0, KEY_MAX, 0);
    mk_node(pool, 0, KEY_MIN, tail.raw())
}

/// Harris' search with physical unlinking of marked nodes.
///
/// Returns `(pred, curr)` with `pred.key < key <= curr.key` and both
/// unmarked at observation time. Marked nodes between them are unlinked
/// with a (plain, non-recoverable) CAS — cleanup does not need crash
/// detection, any thread may redo it. On a `pmem::PoolCfg::reclaim` pool a
/// persisting search also *retires* each node it unlinks (to `tid`'s limbo
/// list), after flushing the unlink so a crash cannot leave the node
/// reachable from both the chain and the allocator: the unlink CAS is the
/// unique remover, so exactly one thread retires each node. Volatile
/// searches (`SearchPersist::None`) never retire — without the flush the
/// persisted image could still link the node.
pub fn search(
    pool: &PmemPool,
    tid: usize,
    head: PAddr,
    key: u64,
    persist: SearchPersist,
) -> HarrisSearch {
    // Fence-coalescing region: on a `pmem::PoolCfg::flushopt` pool the
    // `pwb; pfence` pair the Full policy issues after every shared read
    // becomes elidable once the traversed lines are clean. The region only
    // grants *permission* — any fence with an outstanding flush obligation
    // (e.g. after the unlink `pwb` below, or a traverse `pwb` of a line
    // dirtied by a concurrent insert) still executes in place. Costs
    // nothing when flushopt is off: no guard, no thread-local touch.
    let _region = pool.flushopt_enabled().then(|| pool.coalesce_fences());
    'retry: loop {
        let mut pred = head;
        let mut pred_next = pool.load(pred.add(N_NEXT));
        if persist == SearchPersist::Full {
            pool.pwb(pred.add(N_NEXT), C_TRAVERSE);
            pool.pfence();
        }
        let mut curr = addr_of(pred_next);
        loop {
            let mut curr_next = pool.load(curr.add(N_NEXT));
            if persist == SearchPersist::Full {
                pool.pwb(curr.add(N_NEXT), C_TRAVERSE);
                pool.pfence();
            }
            // Unlink any run of marked nodes following curr.
            while is_marked(curr_next) {
                if persist == SearchPersist::Opt {
                    // A logically deleted node must be durable before its
                    // deletion can influence any response (see paper §5).
                    pool.pwb(curr.add(N_NEXT), C_MARKED);
                    pool.pfence();
                }
                let succ_core = core(curr_next) & !1;
                // Plain CAS: unlinking is idempotent cleanup. The new value
                // keeps pred_next's stamp semantics simple by reusing the
                // observed successor core with a fresh NO_TID stamp.
                let unlinked = stamped(succ_core, NO_TID, 0);
                if pool.cas(pred.add(N_NEXT), pred_next, unlinked).is_err() {
                    continue 'retry; // pred changed under us
                }
                if persist != SearchPersist::None {
                    pool.pwb(pred.add(N_NEXT), C_TRAVERSE);
                    pool.pfence();
                    // The unlink is durable and this CAS was its unique
                    // remover: retire the node (no-op on a bump pool).
                    // In-flight traversals standing on it still read its
                    // key/next words, which retirement leaves intact.
                    pool.pretire_lines(tid, curr, 1);
                }
                pred_next = unlinked;
                curr = PAddr(succ_core);
                curr_next = pool.load(curr.add(N_NEXT));
                if persist == SearchPersist::Full {
                    pool.pwb(curr.add(N_NEXT), C_TRAVERSE);
                    pool.pfence();
                }
            }
            let curr_key = pool.load(curr.add(N_KEY));
            if persist == SearchPersist::Full {
                pool.pwb(curr.add(N_KEY), C_TRAVERSE);
                pool.pfence();
            }
            if curr_key >= key {
                if persist == SearchPersist::Opt {
                    // Neighborhood of the target node (paper §5).
                    pool.pwb(pred.add(N_NEXT), C_NEIGHBORHOOD);
                    pool.pwb(curr.add(N_NEXT), C_NEIGHBORHOOD);
                    pool.pfence();
                }
                return HarrisSearch {
                    pred,
                    pred_next,
                    curr,
                    curr_next,
                };
            }
            pred = curr;
            pred_next = curr_next;
            curr = addr_of(curr_next);
        }
    }
}

/// Quiescent traversal of the live (unmarked) user keys.
pub fn keys(pool: &PmemPool, head: PAddr) -> Vec<u64> {
    let mut out = Vec::new();
    let mut next = pool.load(head.add(N_NEXT));
    loop {
        let nd = addr_of(next);
        let k = pool.load(nd.add(N_KEY));
        if k == KEY_MAX {
            return out;
        }
        next = pool.load(nd.add(N_NEXT));
        if !is_marked(next) {
            out.push(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PmemPool, PoolCfg};

    #[test]
    fn empty_list_search_hits_tail() {
        let p = PmemPool::new(PoolCfg::model(1 << 20));
        let head = mk_list(&p);
        let s = search(&p, 0, head, 10, SearchPersist::None);
        assert_eq!(s.pred, head);
        assert_eq!(p.load(s.curr.add(N_KEY)), KEY_MAX);
        assert!(keys(&p, head).is_empty());
    }

    #[test]
    fn search_persist_full_counts_traversal_flushes() {
        let p = PmemPool::new(PoolCfg::model(1 << 20));
        let head = mk_list(&p);
        p.stats_reset();
        search(&p, 0, head, 10, SearchPersist::Full);
        assert!(p.stats().pwb_at(C_TRAVERSE) >= 2, "every read flushed");
        p.stats_reset();
        search(&p, 0, head, 10, SearchPersist::None);
        assert_eq!(p.stats().pwb_total(), 0);
    }

    #[test]
    fn marked_nodes_are_unlinked_by_search() {
        let p = PmemPool::new(PoolCfg::model(1 << 20));
        let head = mk_list(&p);
        // hand-build head -> a -> tail, then mark a
        let s = search(&p, 0, head, 5, SearchPersist::None);
        let a = mk_node(&p, 0, 5, core(s.pred_next));
        let a_stamped = stamped(a.raw(), 1, 1);
        assert!(p.cas(head.add(N_NEXT), s.pred_next, a_stamped).is_ok());
        let a_next = p.load(a.add(N_NEXT));
        assert!(p.cas(a.add(N_NEXT), a_next, a_next | 1).is_ok()); // mark
        assert!(keys(&p, head).is_empty(), "marked key is logically gone");
        let s2 = search(&p, 0, head, 5, SearchPersist::None);
        assert_eq!(p.load(s2.curr.add(N_KEY)), KEY_MAX, "a unlinked");
        assert_eq!(
            addr_of(p.load(head.add(N_NEXT))),
            s2.curr,
            "physically unlinked"
        );
    }

    #[test]
    fn mark_and_addr_helpers() {
        let v = stamped(0x1230 | 1, 4, 2);
        assert!(is_marked(v));
        assert_eq!(addr_of(v), PAddr(0x1230));
    }
}
