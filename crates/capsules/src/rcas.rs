//! Recoverable CAS: stamped values + a persistent notification array.
//!
//! After a crash, a thread must be able to tell whether a CAS it may or may
//! not have executed took effect — even if other threads have long
//! overwritten the location. Following Attiya–Ben-Baruch–Hendler
//! (PODC '18), every value written by a CAS carries a **stamp** naming the
//! writing thread and a sequence number, and every CASer, before
//! installing its own value, **notifies** the stamped previous winner by
//! persisting the observed sequence number into a per-thread notification
//! slot. Recovery then decides:
//!
//! * the location still carries my stamp for this sequence → my CAS
//!   succeeded;
//! * my notification slot for this sequence's parity holds this sequence →
//!   someone observed my value in the location before replacing it → my
//!   CAS succeeded;
//! * otherwise my value was never in the location → the CAS did not happen
//!   (or failed) and can safely be re-attempted or the operation restarted.
//!
//! Notification is persisted (`pwb; pfence`) *before* the overwriting CAS
//! executes, so under TSO no stamped value can leave persistent memory
//! without its notification already being durable.
//!
//! ## Word layout
//!
//! ```text
//! bits 0..40   core value (a pool word address; bit 0 doubles as Harris'
//!              mark bit — addresses are line-aligned so bits 0..3 are free)
//! bits 40..48  stamping thread id (0xFF = "no thread": initial values)
//! bits 48..64  low 16 bits of the stamping operation's sequence number
//! ```
//!
//! The 16-bit truncation is benign: a false "still my stamp" reading would
//! require the same location to stay untouched across 65536 of the *same
//! thread's* operations and a crash landing exactly there, and parity
//! indexing of the two notification slots keeps consecutive sequences of a
//! thread from colliding.

use pmem::{PAddr, PmemPool, ThreadCtx};

use crate::sites::C_NOTIFY;

/// Mask of the core-value bits.
pub const CORE_MASK: u64 = (1 << 40) - 1;
/// Thread-id stamp reserved for initial (never-CASed) values.
pub const NO_TID: u64 = 0xFF;

/// Extracts the core value (address + mark bit).
#[inline]
pub fn core(v: u64) -> u64 {
    v & CORE_MASK
}

/// Extracts the stamping thread id.
#[inline]
pub fn stamp_tid(v: u64) -> u64 {
    (v >> 40) & 0xFF
}

/// Extracts the stamped (truncated) sequence number.
#[inline]
pub fn stamp_seq(v: u64) -> u64 {
    v >> 48
}

/// Builds a stamped value.
#[inline]
pub fn stamped(core: u64, tid: u64, seq: u64) -> u64 {
    debug_assert!(core <= CORE_MASK, "core value overflows stamp layout");
    core | (tid & 0xFF) << 40 | (seq & 0xFFFF) << 48
}

/// The persistent notification array: one cache line per thread, slot
/// parity in words 0 and 1.
pub struct NotifyArray {
    base: PAddr,
    threads: usize,
}

impl NotifyArray {
    /// Allocates a notification array for `threads` threads.
    pub fn alloc(pool: &PmemPool, threads: usize) -> Self {
        NotifyArray {
            base: pool.alloc_lines(threads),
            threads,
        }
    }

    /// Re-attaches to an array previously allocated at `base`.
    pub fn attach(base: PAddr, threads: usize) -> Self {
        NotifyArray { base, threads }
    }

    /// Base address (for storing in a superblock).
    pub fn base(&self) -> PAddr {
        self.base
    }

    fn slot(&self, tid: u64, seq: u64) -> PAddr {
        debug_assert!((tid as usize) < self.threads);
        self.base.add(tid * pmem::WORDS_PER_LINE as u64 + (seq & 1))
    }

    /// Notifies the previous winner stamped on `observed` that its value
    /// was seen (and is about to be replaced). Persisted before returning.
    pub fn notify(&self, pool: &PmemPool, observed: u64) {
        let tid = stamp_tid(observed);
        if tid == NO_TID || tid as usize >= self.threads {
            return; // initial value: nobody to notify
        }
        let seq = stamp_seq(observed);
        let slot = self.slot(tid, seq);
        // Store seq+1 so slot value 0 unambiguously means "never notified".
        pool.store(slot, seq + 1);
        pool.pwb(slot, C_NOTIFY);
        pool.pfence();
    }

    /// Recovery check: did thread `ctx.tid()`'s CAS with sequence `seq` on
    /// `loc` (installing a value it stamped) take effect?
    pub fn cas_succeeded(&self, pool: &PmemPool, ctx: &ThreadCtx, loc: PAddr, seq: u64) -> bool {
        let cur = pool.load(loc);
        if stamp_tid(cur) == ctx.tid() as u64 && stamp_seq(cur) == (seq & 0xFFFF) {
            return true; // my value is still there
        }
        pool.load(self.slot(ctx.tid() as u64, seq)) == (seq & 0xFFFF) + 1
    }
}

/// A recoverable CAS: notify the stamped previous winner, then CAS in a
/// value stamped with `(ctx.tid(), seq)`. Returns whether the CAS
/// succeeded. The caller persists the location itself (policy-specific).
pub fn rcas(
    pool: &PmemPool,
    notify: &NotifyArray,
    ctx: &ThreadCtx,
    loc: PAddr,
    expected: u64,
    new_core: u64,
    seq: u64,
) -> bool {
    notify.notify(pool, expected);
    let new = stamped(new_core, ctx.tid() as u64, seq);
    pool.cas(loc, expected, new).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PmemPool, PoolCfg};
    use std::sync::Arc;

    fn setup() -> (Arc<PmemPool>, NotifyArray, ThreadCtx, ThreadCtx) {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(1 << 20)));
        let arr = NotifyArray::alloc(&pool, 8);
        let a = ThreadCtx::new(pool.clone(), 0);
        let b = ThreadCtx::new(pool.clone(), 1);
        (pool, arr, a, b)
    }

    #[test]
    fn stamp_roundtrip() {
        let v = stamped(0x12345678, 3, 0x1ABCD);
        assert_eq!(core(v), 0x12345678);
        assert_eq!(stamp_tid(v), 3);
        assert_eq!(stamp_seq(v), 0xABCD, "sequence truncated to 16 bits");
    }

    #[test]
    fn mark_bit_survives_stamping() {
        let v = stamped(0x1000 | 1, 2, 7);
        assert_eq!(core(v) & 1, 1);
        assert_eq!(core(v) & !1, 0x1000);
    }

    #[test]
    fn successful_cas_detected_by_stamp() {
        let (p, arr, a, _b) = setup();
        let loc = p.alloc_lines(1);
        let init = stamped(0, NO_TID, 0);
        p.store(loc, init);
        assert!(rcas(&p, &arr, &a, loc, init, 0x100, 5));
        assert!(arr.cas_succeeded(&p, &a, loc, 5));
    }

    #[test]
    fn overwritten_cas_detected_by_notification() {
        let (p, arr, a, b) = setup();
        let loc = p.alloc_lines(1);
        let init = stamped(0, NO_TID, 0);
        p.store(loc, init);
        assert!(rcas(&p, &arr, &a, loc, init, 0x100, 5));
        // b overwrites a's value; the notify inside rcas records a's success
        let a_val = p.load(loc);
        assert!(rcas(&p, &arr, &b, loc, a_val, 0x200, 1));
        assert_ne!(stamp_tid(p.load(loc)), 0, "a's stamp is gone");
        assert!(
            arr.cas_succeeded(&p, &a, loc, 5),
            "notification proves success"
        );
    }

    #[test]
    fn failed_cas_reports_failure() {
        let (p, arr, a, b) = setup();
        let loc = p.alloc_lines(1);
        let init = stamped(0, NO_TID, 0);
        p.store(loc, init);
        assert!(rcas(&p, &arr, &b, loc, init, 0x200, 9)); // b wins first
        assert!(!rcas(&p, &arr, &a, loc, init, 0x100, 5)); // a's expected is stale
        assert!(!arr.cas_succeeded(&p, &a, loc, 5));
    }

    #[test]
    fn never_attempted_cas_reports_failure() {
        let (p, arr, a, _b) = setup();
        let loc = p.alloc_lines(1);
        p.store(loc, stamped(0, NO_TID, 0));
        assert!(!arr.cas_succeeded(&p, &a, loc, 3));
    }

    #[test]
    fn parity_slots_do_not_collide_across_consecutive_ops() {
        let (p, arr, a, b) = setup();
        let loc = p.alloc_lines(1);
        let init = stamped(0, NO_TID, 0);
        p.store(loc, init);
        // op seq 4 by a, overwritten (notified)
        assert!(rcas(&p, &arr, &a, loc, init, 0x100, 4));
        let v = p.load(loc);
        assert!(rcas(&p, &arr, &b, loc, v, 0x200, 1));
        assert!(arr.cas_succeeded(&p, &a, loc, 4));
        // op seq 6 (same parity) by a: must not inherit seq-4's notification
        assert!(!arr.cas_succeeded(&p, &a, loc, 6));
    }

    #[test]
    fn notification_is_durable_before_the_overwrite() {
        let (p, arr, a, b) = setup();
        let loc = p.alloc_lines(1);
        let init = stamped(0, NO_TID, 0);
        p.store(loc, init);
        p.pwb(loc, pmem::SiteId(10));
        p.psync();
        assert!(rcas(&p, &arr, &a, loc, init, 5, 7));
        p.pwb(loc, pmem::SiteId(10));
        p.psync(); // a's value durable in loc
        let v = p.load(loc);
        assert!(rcas(&p, &arr, &b, loc, v, 9, 2));
        // crash with maximal loss: b's CAS (never flushed) is lost, but the
        // notification must have persisted first
        p.crash(&mut pmem::PessimistAdversary);
        assert!(arr.cas_succeeded(&p, &a, loc, 7));
    }
}
