//! # capsules — the Capsules / Capsules-Opt baselines of the paper
//!
//! Section 5 of *Detectable Recovery of Lock-Free Data Structures* compares
//! Tracking against a detectably recoverable linked list obtained by
//! applying the **capsules** transformation of Ben-David, Blelloch,
//! Friedman and Wei (SPAA '19) to Harris' ordered linked list. This crate
//! rebuilds that competitor from scratch:
//!
//! * [`harris`] — Harris' lock-free ordered linked list (logical deletion
//!   via a mark bit in the `next` pointer, physical unlinking during
//!   traversal), the base algorithm both papers start from.
//! * [`rcas`] — a recoverable CAS in the style of Attiya–Ben-Baruch–Hendler
//!   (PODC '18): CASed values carry a `(thread, sequence)` stamp, and every
//!   CASer first notifies the stamped previous winner through a persistent
//!   notification array, so a crashed thread can always determine whether
//!   its own CAS took effect.
//! * [`capsules`] — the normalized two-capsule operations (a search capsule
//!   and a CAS-executing capsule, as in Timnat–Petrank normalized form),
//!   with a persistent per-thread capsule record that is written and fenced
//!   at every capsule boundary. Two persistence policies:
//!   [`capsules::PersistPolicy::Full`] applies the Izraelevitz–Mendes–Scott
//!   durability transformation (a `pwb; pfence` after *every* shared-memory
//!   access — the paper's **Capsules**, with its "extremely low"
//!   throughput), while [`capsules::PersistPolicy::Opt`] is the paper's
//!   hand-tuned **Capsules-Opt**: during traversal it persists only marked
//!   nodes and the neighborhood of the target node, exactly the scheme
//!   Section 5 describes (a marked node must be persisted by every thread
//!   traversing it, or a post-crash `find` could resurrect a logically
//!   deleted key).

#![warn(missing_docs)]

pub mod capsules;
pub mod harris;
pub mod rcas;
pub mod sites;

pub use capsules::{CapsulesList, PersistPolicy};
