//! # linearize — a small linearizability checker
//!
//! Records concurrent histories (invocation/response intervals stamped by a
//! global logical clock, attributed to logical threads) and decides whether
//! a history is linearizable with respect to a sequential specification,
//! using the classic Wing–Gong search with Lowe-style memoization plus
//! program-order frontier pruning: a thread is sequential, so only the
//! first remaining operation of each thread can linearize next, and the
//! interval-order bound (no operation may linearize after one that
//! completed before it was invoked) is computed over that frontier.
//!
//! Intended for the integration tests and the schedule explorer of this
//! repository: histories of a few dozen operations from a handful of
//! threads over the recoverable sets/queues/stacks, checked exactly. The
//! search is exponential in the worst case — keep recorded histories small
//! (≲ 30 operations from 3–4 threads finish in microseconds).
//!
//! ## As a durable-linearizability oracle
//!
//! The same checker decides *durable* linearizability (Izraelevitz et al.;
//! the paper's Section 2) for a crashed-and-recovered run: record every
//! operation that **completed before the crash** with its observed
//! response, the interrupted operation with the response its recovery
//! function reported, and then a **post-recovery observation phase**
//! (finds / draining pops) as ordinary operations. If that combined
//! history linearizes against the sequential spec, the post-crash state is
//! consistent with some linearization in which every pre-crash completion
//! took effect — which is exactly the durable-linearizability obligation.
//! The `bench` crate's `crashsweep` harness drives this at every crash
//! point of a scripted workload; see `EXPERIMENTS.md`.
//!
//! ```
//! use linearize::{History, SetSpec, SetOp};
//! let mut h = History::new();
//! // two overlapping inserts of the same key: only one may win
//! let a0 = h.invoke(0, SetOp::Insert(1));
//! let b0 = h.invoke(1, SetOp::Insert(1));
//! h.ret(a0, true);
//! h.ret(b0, false);
//! assert!(h.check(SetSpec::default()).is_ok());
//! ```

#![warn(missing_docs)]

use std::collections::HashSet;
use std::hash::Hash;

/// A sequential specification: deterministic state machine with observable
/// return values.
pub trait Spec: Clone {
    /// Operation descriptions.
    type Op: Clone + std::fmt::Debug;
    /// Return values.
    type Ret: PartialEq + Clone + std::fmt::Debug;
    /// State digest for memoization (must uniquely identify the state).
    type Digest: Eq + Hash;

    /// Applies `op`, returning its sequential response.
    fn apply(&mut self, op: &Self::Op) -> Self::Ret;
    /// Current state digest.
    fn digest(&self) -> Self::Digest;
}

/// One completed operation in a recorded history.
#[derive(Clone, Debug)]
struct Entry<S: Spec> {
    /// Recording thread, or `None` for operations recorded without one
    /// (each such entry forms its own program-order class).
    tid: Option<usize>,
    op: S::Op,
    ret: Option<S::Ret>,
    inv: u64,
    res: u64,
}

/// Handle returned by [`History::invoke`], consumed by [`History::ret`].
#[derive(Copy, Clone, Debug)]
pub struct Token(usize);

/// A recorded concurrent history.
///
/// Thread-safety note: this recorder is deliberately simple — concurrent
/// tests collect per-thread `(inv, res, op, ret)` tuples with a shared
/// [`Clock`] and merge them via [`History::record_on`]; the `invoke`/`ret`
/// pair is the convenience API for histories assembled by one recording
/// thread (which may still describe many *logical* threads, as the
/// schedule explorer's serialized executions do).
#[derive(Clone, Debug, Default)]
pub struct History<S: Spec> {
    entries: Vec<Entry<S>>,
    clock: u64,
}

impl<S: Spec> History<S> {
    /// An empty history.
    pub fn new() -> Self {
        History {
            entries: Vec::new(),
            clock: 0,
        }
    }

    /// Records an invocation by logical thread `thread`, stamped by the
    /// history's internal clock. A thread is sequential: invoking while the
    /// same thread already has a pending (un-returned) operation panics —
    /// overlapping operations belong to distinct threads.
    ///
    /// ```
    /// use linearize::{History, SetOp, SetSpec};
    /// let mut h = History::new();
    /// let a = h.invoke(0, SetOp::Insert(7)); // thread 0 pending…
    /// let b = h.invoke(1, SetOp::Find(7)); // …so the overlap is thread 1
    /// h.ret(a, true);
    /// h.ret(b, false); // find may linearize before the overlapping insert
    /// assert!(h.check(SetSpec::default()).is_ok());
    /// ```
    pub fn invoke(&mut self, thread: usize, op: S::Op) -> Token {
        assert!(
            !self
                .entries
                .iter()
                .any(|e| e.tid == Some(thread) && e.ret.is_none()),
            "thread {thread} invoked with an operation still pending"
        );
        let inv = self.clock;
        self.clock += 1;
        self.entries.push(Entry {
            tid: Some(thread),
            op,
            ret: None,
            inv,
            res: u64::MAX,
        });
        Token(self.entries.len() - 1)
    }

    /// Records the matching response.
    pub fn ret(&mut self, tok: Token, ret: S::Ret) {
        let res = self.clock;
        self.clock += 1;
        let e = &mut self.entries[tok.0];
        assert!(e.ret.is_none(), "response recorded twice");
        e.ret = Some(ret);
        e.res = res;
    }

    /// Records a pre-timestamped completed operation with no thread
    /// attribution (each such entry is its own program-order class — sound,
    /// but it denies the checker the per-thread pruning structure
    /// [`Self::record_on`] provides).
    pub fn record(&mut self, op: S::Op, ret: S::Ret, inv: u64, res: u64) {
        self.push_stamped(None, op, ret, inv, res);
    }

    /// Records a pre-timestamped completed operation of logical thread
    /// `thread` (multi-threaded recording: threads stamp `inv`/`res` with a
    /// shared [`Clock`] and their tuples are merged here afterwards).
    /// Operations of one thread must not overlap; [`Self::check`] rejects
    /// histories that violate this.
    pub fn record_on(&mut self, thread: usize, op: S::Op, ret: S::Ret, inv: u64, res: u64) {
        self.push_stamped(Some(thread), op, ret, inv, res);
    }

    fn push_stamped(&mut self, tid: Option<usize>, op: S::Op, ret: S::Ret, inv: u64, res: u64) {
        assert!(inv < res, "invocation must precede response");
        // Keep the internal clock ahead of every external stamp, so
        // `invoke`/`ret` can append (e.g. a post-crash observation phase)
        // after a batch of recorded tuples without colliding intervals.
        self.clock = self.clock.max(res + 1);
        self.entries.push(Entry {
            tid,
            op,
            ret: Some(ret),
            inv,
            res,
        });
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the history empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Decides linearizability against `initial`. `Ok(order)` returns one
    /// witness linearization (indices into recording order); `Err(msg)`
    /// explains the failure.
    ///
    /// A genuinely concurrent 2-thread history that linearizes — the find
    /// overlaps the insert, so it may take effect before it:
    ///
    /// ```
    /// use linearize::{Clock, History, SetOp, SetSpec};
    /// let clock = Clock::new();
    /// let (i0, i1) = (clock.now(), clock.now()); // both ops invoke…
    /// let (r0, r1) = (clock.now(), clock.now()); // …before either returns
    /// let mut h = History::new();
    /// h.record_on(0, SetOp::Insert(5), true, i0, r0);
    /// h.record_on(1, SetOp::Find(5), false, i1, r1);
    /// assert!(h.check(SetSpec::default()).is_ok());
    /// ```
    ///
    /// And one that does not: here the insert *completed* before the find
    /// began, so real-time precedence pins insert → find and `false`
    /// contradicts the spec:
    ///
    /// ```
    /// use linearize::{Clock, History, SetOp, SetSpec};
    /// let clock = Clock::new();
    /// let (i0, r0) = (clock.now(), clock.now()); // insert returns…
    /// let (i1, r1) = (clock.now(), clock.now()); // …before find invokes
    /// let mut h = History::new();
    /// h.record_on(0, SetOp::Insert(5), true, i0, r0);
    /// h.record_on(1, SetOp::Find(5), false, i1, r1);
    /// assert!(h.check(SetSpec::default()).is_err());
    /// ```
    pub fn check(&self, initial: S) -> Result<Vec<usize>, String> {
        let n = self.entries.len();
        for (i, e) in self.entries.iter().enumerate() {
            if e.ret.is_none() {
                return Err(format!("operation {i} has no recorded response"));
            }
        }
        // Sequential fast path: when no two operations overlap in real
        // time, precedence forces the unique candidate order — recording
        // order — so verify it directly in O(n) instead of searching.
        // Single-threaded recordings (every crash-sweep history) take this
        // path, which also frees them from the 63-operation search cap.
        if self.entries.windows(2).all(|w| w[0].res < w[1].inv) {
            let mut state = initial;
            for (i, e) in self.entries.iter().enumerate() {
                let got = state.apply(&e.op);
                if &got != e.ret.as_ref().unwrap() {
                    return Err(format!(
                        "sequential history diverges at op {i}: {:?} returned {:?}, \
                         the spec says {:?}",
                        e.op, e.ret, got
                    ));
                }
            }
            return Ok((0..n).collect());
        }
        assert!(n <= 63, "history too large for the bitmask search");
        // Program-order classes: entries of one thread, ascending by
        // invocation; thread-less entries are singleton classes. A thread
        // is sequential, so within a class intervals must be disjoint and
        // both inv and res ascend — which is what makes frontier iteration
        // below sound.
        let mut classes: Vec<Vec<usize>> = Vec::new();
        {
            let mut by_tid: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by_key(|&i| self.entries[i].inv);
            for i in idx {
                match self.entries[i].tid {
                    None => classes.push(vec![i]),
                    Some(t) => match by_tid.get(&t) {
                        Some(&c) => {
                            let prev = *classes[c].last().unwrap();
                            if self.entries[prev].res >= self.entries[i].inv {
                                return Err(format!(
                                    "thread {t} has overlapping operations {prev} and {i}: \
                                     a thread is sequential (is the recording mis-attributed?)"
                                ));
                            }
                            classes[c].push(i);
                        }
                        None => {
                            by_tid.insert(t, classes.len());
                            classes.push(vec![i]);
                        }
                    },
                }
            }
        }
        let mut seen: HashSet<(u64, S::Digest)> = HashSet::new();
        let mut order = Vec::with_capacity(n);
        if self.dfs(initial, (1u64 << n) - 1, &classes, &mut seen, &mut order) {
            Ok(order)
        } else {
            Err(format!(
                "history of {n} operations is not linearizable: {:?}",
                self.entries
                    .iter()
                    .enumerate()
                    .map(|(i, e)| format!(
                        "t{}#{i} {:?}->{:?} [{} {}]",
                        e.tid.map(|t| t.to_string()).unwrap_or_else(|| "?".into()),
                        e.op,
                        e.ret,
                        e.inv,
                        e.res
                    ))
                    .collect::<Vec<_>>()
            ))
        }
    }

    /// The Wing–Gong search over program-order *frontiers*: only the first
    /// remaining operation of each thread can be the next linearization
    /// candidate (its same-thread successors are pinned behind it by
    /// real-time precedence), so each node scans `O(threads)` candidates
    /// instead of `O(n)`. Within a thread `res` ascends, hence the minimal
    /// remaining response — the interval-order bound that prunes candidates
    /// invoked after some remaining operation completed — is also attained
    /// on the frontier.
    fn dfs(
        &self,
        state: S,
        remaining: u64,
        classes: &[Vec<usize>],
        seen: &mut HashSet<(u64, S::Digest)>,
        order: &mut Vec<usize>,
    ) -> bool {
        if remaining == 0 {
            return true;
        }
        if !seen.insert((remaining, state.digest())) {
            return false; // configuration already refuted
        }
        let frontier = classes
            .iter()
            .filter_map(|c| c.iter().find(|&&i| remaining & (1 << i) != 0).copied());
        let min_res = frontier.clone().map(|i| self.entries[i].res).min().unwrap();
        for i in frontier {
            let e = &self.entries[i];
            if e.inv > min_res {
                continue; // some remaining op completed before this started
            }
            let mut next = state.clone();
            let got = next.apply(&e.op);
            if &got != e.ret.as_ref().unwrap() {
                continue; // spec disagrees with the observed response
            }
            order.push(i);
            if self.dfs(next, remaining & !(1 << i), classes, seen, order) {
                return true;
            }
            order.pop();
        }
        false
    }
}

/// A shared logical clock for multi-threaded recording.
#[derive(Default)]
pub struct Clock(std::sync::atomic::AtomicU64);

impl Clock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Takes the next timestamp.
    pub fn now(&self) -> u64 {
        self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
    }
}

// ----------------------------------------------------------------------
// Sequential specifications
// ----------------------------------------------------------------------

/// Set operations over small integer keys.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SetOp {
    /// Add a key; responds whether it was absent.
    Insert(u64),
    /// Remove a key; responds whether it was present.
    Delete(u64),
    /// Membership test.
    Find(u64),
}

/// Sequential set over keys `0..64` (bitmap state).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SetSpec {
    present: u64,
}

impl Spec for SetSpec {
    type Op = SetOp;
    type Ret = bool;
    type Digest = u64;

    fn apply(&mut self, op: &SetOp) -> bool {
        match *op {
            SetOp::Insert(k) => {
                assert!(k < 64);
                let was = self.present & (1 << k) != 0;
                self.present |= 1 << k;
                !was
            }
            SetOp::Delete(k) => {
                let was = self.present & (1 << k) != 0;
                self.present &= !(1 << k);
                was
            }
            SetOp::Find(k) => self.present & (1 << k) != 0,
        }
    }

    fn digest(&self) -> u64 {
        self.present
    }
}

/// Key-value map operations over small integer keys and u64 values.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MapOp {
    /// Bind `key` to `value` if the key is absent; responds whether the
    /// binding was created (an insert-if-absent, like [`SetOp::Insert`]).
    Put(u64, u64),
    /// Remove a key; responds with the value it was bound to, if any.
    Remove(u64),
    /// Look a key up; responds with its bound value, if any.
    Get(u64),
}

/// Responses of [`MapOp`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapRet {
    /// Put acknowledgement: was the binding created?
    Put(bool),
    /// Remove response: the removed value, if the key was present.
    Removed(Option<u64>),
    /// Get response: the bound value, if the key was present.
    Got(Option<u64>),
}

/// Sequential key-value map (insert-if-absent semantics, so a key's value
/// never changes while bound — the oracle for `tracking::RecoverableHashMap`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MapSpec {
    bound: std::collections::BTreeMap<u64, u64>,
}

impl Spec for MapSpec {
    type Op = MapOp;
    type Ret = MapRet;
    type Digest = Vec<(u64, u64)>;

    fn apply(&mut self, op: &MapOp) -> MapRet {
        match *op {
            MapOp::Put(k, v) => {
                if let std::collections::btree_map::Entry::Vacant(e) = self.bound.entry(k) {
                    e.insert(v);
                    MapRet::Put(true)
                } else {
                    MapRet::Put(false)
                }
            }
            MapOp::Remove(k) => MapRet::Removed(self.bound.remove(&k)),
            MapOp::Get(k) => MapRet::Got(self.bound.get(&k).copied()),
        }
    }

    fn digest(&self) -> Vec<(u64, u64)> {
        self.bound.iter().map(|(&k, &v)| (k, v)).collect()
    }
}

/// Queue operations over u64 values.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QueueOp {
    /// Append a value (responds with the value, fixed).
    Enqueue(u64),
    /// Remove the oldest value (`None` when empty).
    Dequeue,
}

/// Responses of [`QueueOp`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueueRet {
    /// Enqueue acknowledgement.
    Enqueued,
    /// Dequeue response.
    Dequeued(Option<u64>),
}

/// Sequential FIFO queue.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueSpec {
    items: std::collections::VecDeque<u64>,
}

impl Spec for QueueSpec {
    type Op = QueueOp;
    type Ret = QueueRet;
    type Digest = Vec<u64>;

    fn apply(&mut self, op: &QueueOp) -> QueueRet {
        match *op {
            QueueOp::Enqueue(v) => {
                self.items.push_back(v);
                QueueRet::Enqueued
            }
            QueueOp::Dequeue => QueueRet::Dequeued(self.items.pop_front()),
        }
    }

    fn digest(&self) -> Vec<u64> {
        self.items.iter().copied().collect()
    }
}

/// Stack operations over u64 values.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StackOp {
    /// Push a value (responds with a fixed acknowledgement).
    Push(u64),
    /// Remove the newest value (`None` when empty).
    Pop,
}

/// Responses of [`StackOp`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StackRet {
    /// Push acknowledgement.
    Pushed,
    /// Pop response.
    Popped(Option<u64>),
}

/// Sequential LIFO stack.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StackSpec {
    items: Vec<u64>,
}

impl Spec for StackSpec {
    type Op = StackOp;
    type Ret = StackRet;
    type Digest = Vec<u64>;

    fn apply(&mut self, op: &StackOp) -> StackRet {
        match *op {
            StackOp::Push(v) => {
                self.items.push(v);
                StackRet::Pushed
            }
            StackOp::Pop => StackRet::Popped(self.items.pop()),
        }
    }

    fn digest(&self) -> Vec<u64> {
        self.items.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_history_is_linearizable() {
        let mut h = History::new();
        let a = h.invoke(0, SetOp::Insert(1));
        h.ret(a, true);
        let b = h.invoke(0, SetOp::Find(1));
        h.ret(b, true);
        let c = h.invoke(0, SetOp::Delete(1));
        h.ret(c, true);
        assert_eq!(h.check(SetSpec::default()).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn wrong_sequential_response_is_rejected() {
        let mut h = History::new();
        let a = h.invoke(0, SetOp::Insert(1));
        h.ret(a, true);
        let b = h.invoke(0, SetOp::Find(2));
        h.ret(b, true); // 2 was never inserted
        assert!(h.check(SetSpec::default()).is_err());
    }

    #[test]
    fn overlapping_inserts_one_winner_ok() {
        let mut h = History::new();
        let a = h.invoke(0, SetOp::Insert(1));
        let b = h.invoke(1, SetOp::Insert(1));
        h.ret(a, true);
        h.ret(b, false);
        assert!(h.check(SetSpec::default()).is_ok());
    }

    #[test]
    fn overlapping_inserts_two_winners_rejected() {
        let mut h = History::new();
        let a = h.invoke(0, SetOp::Insert(1));
        let b = h.invoke(1, SetOp::Insert(1));
        h.ret(a, true);
        h.ret(b, true);
        assert!(h.check(SetSpec::default()).is_err());
    }

    #[test]
    fn real_time_order_is_respected() {
        // insert(1)=true completes strictly before find(1)=false: not
        // linearizable (no delete in between)
        let mut h = History::new();
        let a = h.invoke(0, SetOp::Insert(1));
        h.ret(a, true);
        let b = h.invoke(1, SetOp::Find(1));
        h.ret(b, false);
        assert!(h.check(SetSpec::default()).is_err());
        // but if they overlap, find may linearize first
        let mut h2 = History::new();
        let a = h2.invoke(0, SetOp::Insert(1));
        let b = h2.invoke(1, SetOp::Find(1));
        h2.ret(a, true);
        h2.ret(b, false);
        assert!(h2.check(SetSpec::default()).is_ok());
    }

    #[test]
    fn queue_fifo_violation_rejected() {
        // enqueue 1 then (strictly later) enqueue 2; dequeues (later still)
        // return 2 before 1: not linearizable
        let mut h = History::new();
        let a = h.invoke(0, QueueOp::Enqueue(1));
        h.ret(a, QueueRet::Enqueued);
        let b = h.invoke(0, QueueOp::Enqueue(2));
        h.ret(b, QueueRet::Enqueued);
        let c = h.invoke(1, QueueOp::Dequeue);
        h.ret(c, QueueRet::Dequeued(Some(2)));
        let d = h.invoke(1, QueueOp::Dequeue);
        h.ret(d, QueueRet::Dequeued(Some(1)));
        assert!(h.check(QueueSpec::default()).is_err());
    }

    #[test]
    fn queue_fifo_ok() {
        let mut h = History::new();
        let a = h.invoke(0, QueueOp::Enqueue(1));
        h.ret(a, QueueRet::Enqueued);
        let b = h.invoke(0, QueueOp::Enqueue(2));
        h.ret(b, QueueRet::Enqueued);
        let c = h.invoke(1, QueueOp::Dequeue);
        h.ret(c, QueueRet::Dequeued(Some(1)));
        let d = h.invoke(1, QueueOp::Dequeue);
        h.ret(d, QueueRet::Dequeued(Some(2)));
        assert!(h.check(QueueSpec::default()).is_ok());
        // empty dequeue afterwards
        let mut h2 = h.clone();
        let e = h2.invoke(0, QueueOp::Dequeue);
        h2.ret(e, QueueRet::Dequeued(None));
        assert!(h2.check(QueueSpec::default()).is_ok());
    }

    #[test]
    fn stack_lifo_ok_and_violation_rejected() {
        // push 1, push 2 (sequential): pops must see 2 then 1
        let mut h = History::new();
        let a = h.invoke(0, StackOp::Push(1));
        h.ret(a, StackRet::Pushed);
        let b = h.invoke(0, StackOp::Push(2));
        h.ret(b, StackRet::Pushed);
        let c = h.invoke(1, StackOp::Pop);
        h.ret(c, StackRet::Popped(Some(2)));
        let d = h.invoke(1, StackOp::Pop);
        h.ret(d, StackRet::Popped(Some(1)));
        let e = h.invoke(1, StackOp::Pop);
        h.ret(e, StackRet::Popped(None));
        assert!(h.check(StackSpec::default()).is_ok());

        let mut bad = History::new();
        let a = bad.invoke(0, StackOp::Push(1));
        bad.ret(a, StackRet::Pushed);
        let b = bad.invoke(0, StackOp::Push(2));
        bad.ret(b, StackRet::Pushed);
        let c = bad.invoke(1, StackOp::Pop);
        bad.ret(c, StackRet::Popped(Some(1))); // FIFO answer: not a stack
        let d = bad.invoke(1, StackOp::Pop);
        bad.ret(d, StackRet::Popped(Some(2)));
        assert!(bad.check(StackSpec::default()).is_err());
    }

    #[test]
    fn concurrent_recording_api() {
        let clock = Clock::new();
        let mut h: History<SetSpec> = History::new();
        // simulate two threads' recorded tuples
        let i0 = clock.now();
        let i1 = clock.now();
        let r0 = clock.now();
        let r1 = clock.now();
        h.record(SetOp::Insert(3), true, i0, r0);
        h.record(SetOp::Insert(3), false, i1, r1);
        assert!(h.check(SetSpec::default()).is_ok());
    }

    #[test]
    fn memoization_handles_many_overlapping_ops() {
        // 12 fully-overlapping inserts of the same key, one winner: the
        // naive search is 12! orders; memoization must make this instant.
        let mut h = History::new();
        let toks: Vec<Token> = (0..12).map(|t| h.invoke(t, SetOp::Insert(1))).collect();
        for (i, t) in toks.into_iter().enumerate() {
            h.ret(t, i == 7);
        }
        assert!(h.check(SetSpec::default()).is_ok());
    }

    #[test]
    fn unresponded_operation_rejected() {
        let mut h: History<SetSpec> = History::new();
        let _ = h.invoke(0, SetOp::Insert(1));
        assert!(h.check(SetSpec::default()).is_err());
    }

    // --- regression: `invoke` must actually use its thread id ---

    #[test]
    #[should_panic(expected = "still pending")]
    fn same_thread_overlap_via_invoke_panics() {
        // Before the fix, `invoke` ignored its thread argument and happily
        // recorded one thread invoking twice with no response in between.
        let mut h: History<SetSpec> = History::new();
        let _a = h.invoke(3, SetOp::Insert(1));
        let _b = h.invoke(3, SetOp::Insert(2));
    }

    #[test]
    fn cross_thread_overlap_accepted_contradiction_rejected() {
        // Two threads, genuinely overlapping intervals recorded with a
        // shared clock. delete(1) overlaps insert(1): true/true is fine
        // (insert then delete)…
        let clock = Clock::new();
        let (i0, i1) = (clock.now(), clock.now());
        let (r0, r1) = (clock.now(), clock.now());
        let mut h: History<SetSpec> = History::new();
        h.record_on(0, SetOp::Insert(1), true, i0, r0);
        h.record_on(1, SetOp::Delete(1), true, i1, r1);
        assert!(h.check(SetSpec::default()).is_ok());
        // …but a find that *follows* both and still sees the key
        // contradicts every linearization.
        let (i2, r2) = (clock.now(), clock.now());
        h.record_on(0, SetOp::Find(1), true, i2, r2);
        assert!(h.check(SetSpec::default()).is_err());
    }

    #[test]
    fn same_thread_overlap_via_record_on_rejected() {
        let mut h: History<SetSpec> = History::new();
        h.record_on(2, SetOp::Insert(1), true, 0, 5);
        h.record_on(2, SetOp::Delete(1), true, 3, 8); // overlaps on thread 2
        let err = h.check(SetSpec::default()).unwrap_err();
        assert!(err.contains("thread 2 has overlapping operations"), "{err}");
    }

    #[test]
    fn frontier_pruning_respects_program_order() {
        // Thread 0: insert(1) then find(1); thread 1: delete(1) overlapping
        // both. find=false forces delete to linearize between its thread-0
        // neighbours — the frontier search must find that order.
        let mut h: History<SetSpec> = History::new();
        h.record_on(0, SetOp::Insert(1), true, 0, 2);
        h.record_on(1, SetOp::Delete(1), true, 1, 10);
        h.record_on(0, SetOp::Find(1), false, 4, 6);
        let order = h.check(SetSpec::default()).unwrap();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn mixed_record_then_invoke_stays_well_stamped() {
        // An observation phase appended with invoke/ret after recorded
        // tuples must land *after* them on the clock.
        let mut h: History<SetSpec> = History::new();
        h.record_on(0, SetOp::Insert(1), true, 7, 9);
        let t = h.invoke(1, SetOp::Find(1));
        h.ret(t, true);
        assert_eq!(h.check(SetSpec::default()).unwrap(), vec![0, 1]);
        // A find claiming the key vanished must fail — i.e. the appended op
        // cannot have slipped before the recorded insert.
        let mut h2: History<SetSpec> = History::new();
        h2.record_on(0, SetOp::Insert(1), true, 7, 9);
        let t = h2.invoke(1, SetOp::Find(1));
        h2.ret(t, false);
        assert!(h2.check(SetSpec::default()).is_err());
    }

    #[test]
    fn three_thread_concurrent_history_checks_fast() {
        // 3 threads × 7 ops, all pairwise overlapping across threads: the
        // frontier search with memoization must decide this instantly.
        let mut h: History<SetSpec> = History::new();
        let mut t = 0u64;
        let mut stamps = || {
            t += 1;
            t
        };
        for op in 0..7u64 {
            // Interleave so ops of different threads overlap heavily.
            let i0 = stamps();
            let i1 = stamps();
            let i2 = stamps();
            let r0 = stamps();
            let r1 = stamps();
            let r2 = stamps();
            let k = op % 3;
            h.record_on(0, SetOp::Insert(k), op == 0, i0, r0);
            h.record_on(1, SetOp::Find(k), true, i1, r1);
            h.record_on(2, SetOp::Delete(k + 10), false, i2, r2);
        }
        // Responses above are not all consistent; just exercise the search
        // terminating quickly either way.
        let _ = h.check(SetSpec::default());
    }
}
