//! Not a statistical benchmark: a smoke run of every figure driver with a
//! tiny preset, so `cargo bench --workspace` exercises the full measurement
//! pipeline (throughput, counters, categorization, category sweeps) and
//! regenerates small-scale CSVs under `results/smoke/`.

use bench::figures::{self, FigCfg};

fn main() {
    // `cargo bench` passes flags like `--bench`; ignore them.
    let mut cfg = FigCfg::smoke();
    // cargo bench runs with the package as CWD; anchor at the workspace
    // root so the CSVs land next to the CLI harness's outputs
    cfg.out_dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results/smoke");
    let t = std::time::Instant::now();
    let files = figures::run_all(&cfg);
    println!(
        "\nfigures smoke pass: {} CSVs regenerated in {:.1}s under {}",
        files.len(),
        t.elapsed().as_secs_f64(),
        cfg.out_dir.display()
    );
}
