//! Criterion per-operation latency benches for every evaluated algorithm.
//!
//! These complement the figure harness: where `bin/figures` measures
//! multi-thread throughput over time windows (the paper's methodology),
//! these measure single-operation latency distributions on a prefilled
//! structure — useful for spotting regressions in the hot paths.

use std::sync::Arc;
use std::time::Duration;

use bench::{build, AlgoKind};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pmem::{Backend, PmemPool, PoolCfg, ThreadCtx};

const RANGE: u64 = 500;

fn prefilled(kind: AlgoKind) -> (Arc<PmemPool>, Arc<dyn bench::SetAlgo>, ThreadCtx) {
    let pool = Arc::new(PmemPool::new(PoolCfg {
        capacity: 1 << 30,
        backend: Backend::Clflush,
        shadow: false,
        max_threads: 8,
    }));
    let algo = build(kind, pool.clone(), 4, RANGE);
    let ctx = ThreadCtx::new(pool.clone(), 0);
    let mut rng = 0x5EEDu64;
    for _ in 0..RANGE / 2 {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        algo.insert(&ctx, (rng >> 33) % RANGE + 1);
    }
    (pool, algo, ctx)
}

fn bench_ops(c: &mut Criterion) {
    for kind in [
        AlgoKind::Tracking,
        AlgoKind::TrackingBst,
        AlgoKind::Capsules,
        AlgoKind::CapsulesOpt,
        AlgoKind::Romulus,
        AlgoKind::RedoOpt,
        AlgoKind::OneFile,
    ] {
        let mut g = c.benchmark_group(kind.name());
        g.measurement_time(Duration::from_millis(600));
        g.warm_up_time(Duration::from_millis(150));
        g.sample_size(10);
        let (_pool, algo, ctx) = prefilled(kind);
        let mut key = 0u64;
        g.bench_function("find", |b| {
            b.iter(|| {
                key = key % RANGE + 1;
                std::hint::black_box(algo.find(&ctx, key))
            })
        });
        g.bench_function("insert_delete", |b| {
            // paired so the structure size stays stable across samples
            b.iter_batched(
                || key % RANGE + 1,
                |k| {
                    std::hint::black_box(algo.insert(&ctx, k));
                    std::hint::black_box(algo.delete(&ctx, k));
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
