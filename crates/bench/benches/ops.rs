//! Per-operation latency benches for every evaluated algorithm.
//!
//! These complement the figure harness: where `bin/figures` measures
//! multi-thread throughput over time windows (the paper's methodology),
//! these measure single-operation latency on a prefilled structure — useful
//! for spotting regressions in the hot paths. Hand-rolled timing loop (the
//! workspace builds offline, so no Criterion): each benchmark runs a short
//! warm-up, then a fixed measurement window, and reports mean ns/op.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{build, AlgoKind};
use pmem::{Backend, PmemPool, PoolCfg, ThreadCtx};

const RANGE: u64 = 500;

fn prefilled(kind: AlgoKind) -> (Arc<PmemPool>, Arc<dyn bench::SetAlgo>, ThreadCtx) {
    let pool = Arc::new(PmemPool::new(PoolCfg {
        capacity: 1 << 30,
        backend: Backend::Clflush,
        shadow: false,
        max_threads: 8,
        ..Default::default()
    }));
    let algo = build(kind, pool.clone(), 4, RANGE);
    let ctx = ThreadCtx::new(pool.clone(), 0);
    let mut rng = 0x5EEDu64;
    for _ in 0..RANGE / 2 {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        algo.insert(&ctx, (rng >> 33) % RANGE + 1);
    }
    (pool, algo, ctx)
}

/// Warm-up then timed window; returns (iterations, mean ns/iteration).
fn measure(mut f: impl FnMut()) -> (u64, f64) {
    let warmup_until = Instant::now() + Duration::from_millis(150);
    while Instant::now() < warmup_until {
        f();
    }
    let start = Instant::now();
    let deadline = start + Duration::from_millis(600);
    let mut iters = 0u64;
    while Instant::now() < deadline {
        // batch iterations between clock reads
        for _ in 0..64 {
            f();
        }
        iters += 64;
    }
    (iters, start.elapsed().as_nanos() as f64 / iters as f64)
}

fn main() {
    println!("{:<34} {:>12} {:>12}", "bench", "iters", "ns/op");
    for kind in [
        AlgoKind::Tracking,
        AlgoKind::TrackingBst,
        AlgoKind::Capsules,
        AlgoKind::CapsulesOpt,
        AlgoKind::Romulus,
        AlgoKind::RedoOpt,
        AlgoKind::OneFile,
    ] {
        let (_pool, algo, ctx) = prefilled(kind);
        let mut key = 0u64;
        let (iters, ns) = measure(|| {
            key = key % RANGE + 1;
            std::hint::black_box(algo.find(&ctx, key));
        });
        println!(
            "{:<34} {:>12} {:>12.1}",
            format!("{}/find", kind.name()),
            iters,
            ns
        );
        let mut key = 0u64;
        let (iters, ns) = measure(|| {
            // paired so the structure size stays stable across samples
            key = key % RANGE + 1;
            std::hint::black_box(algo.insert(&ctx, key));
            std::hint::black_box(algo.delete(&ctx, key));
        });
        println!(
            "{:<34} {:>12} {:>12.1}",
            format!("{}/insert_delete", kind.name()),
            iters,
            ns / 2.0
        );
    }
}
