//! Microbenchmarks of the pmem substrate's primitives — the raw
//! ingredients of the paper's cost analysis: how expensive is a `pwb` on a
//! just-written (cache-hot, thread-private) line versus one that is
//! repeatedly flushed and re-read (the invalidation round-trip behind the
//! paper's "high-impact" category), and what a `psync` costs next to them.
//! Hand-rolled timing loop (the workspace builds offline, so no Criterion).

use std::sync::Arc;
use std::time::{Duration, Instant};

use pmem::{Backend, PmemPool, PoolCfg, SiteId};

/// Warm-up then timed window; returns (iterations, mean ns/iteration).
fn measure(mut f: impl FnMut()) -> (u64, f64) {
    let warmup_until = Instant::now() + Duration::from_millis(100);
    while Instant::now() < warmup_until {
        f();
    }
    let start = Instant::now();
    let deadline = start + Duration::from_millis(500);
    let mut iters = 0u64;
    while Instant::now() < deadline {
        for _ in 0..64 {
            f();
        }
        iters += 64;
    }
    (iters, start.elapsed().as_nanos() as f64 / iters as f64)
}

fn report(name: &str, (iters, ns): (u64, f64)) {
    println!("{:<22} {:>12} {:>12.1}", name, iters, ns);
}

fn main() {
    let pool = Arc::new(PmemPool::new(PoolCfg {
        capacity: 64 << 20,
        backend: Backend::Clflush,
        shadow: false,
        max_threads: 8,
        ..Default::default()
    }));
    let site = SiteId(0);

    println!("{:<22} {:>12} {:>12}", "bench", "iters", "ns/op");

    let a = pool.alloc_lines(1);
    report(
        "load",
        measure(|| {
            std::hint::black_box(pool.load(a));
        }),
    );
    {
        let mut v = 0u64;
        report(
            "store",
            measure(|| {
                v += 1;
                pool.store(a, v);
            }),
        );
    }
    {
        let mut v = pool.load(a);
        report(
            "cas_success",
            measure(|| {
                let r = pool.cas(a, v, v + 1);
                v = match r {
                    Ok(old) => old + 1,
                    Err(seen) => seen,
                };
            }),
        );
    }
    // pwb of a line we keep writing (write → flush → write …): the
    // invalidation round-trip.
    {
        let hot = pool.alloc_lines(1);
        let mut v = 0u64;
        report(
            "pwb_hot_line",
            measure(|| {
                v += 1;
                pool.store(hot, v);
                pool.pwb(hot, site);
            }),
        );
    }
    // pwb of cold lines (the "new node" pattern: written once, flushed
    // once, not revisited). A large window is cycled instead of allocating
    // per iteration — by the time a line comes around again it has long
    // left the cache, so each flush sees a cold line without ever
    // exhausting the arena.
    {
        const WINDOW: u64 = 1 << 16; // 64k lines = 4 MiB, far beyond L2
        let window_base = pool.alloc_lines(WINDOW as usize);
        let mut i = 0u64;
        report(
            "pwb_fresh_line",
            measure(|| {
                let n = window_base.add((i % WINDOW) * pmem::WORDS_PER_LINE as u64);
                i += 1;
                pool.store(n, i);
                pool.pwb(n, site);
            }),
        );
    }
    report("psync_empty", measure(|| pool.psync()));
    {
        let hot = pool.alloc_lines(1);
        let mut v = 0u64;
        report(
            "pwb_plus_psync",
            measure(|| {
                v += 1;
                pool.store(hot, v);
                pool.pwb(hot, site);
                pool.psync();
            }),
        );
    }
}
