//! Criterion microbenchmarks of the pmem substrate's primitives — the raw
//! ingredients of the paper's cost analysis: how expensive is a `pwb` on a
//! just-written (cache-hot, thread-private) line versus one that is
//! repeatedly flushed and re-read (the invalidation round-trip behind the
//! paper's "high-impact" category), and what a `psync` costs next to them.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pmem::{Backend, PmemPool, PoolCfg, SiteId};

fn bench_primitives(c: &mut Criterion) {
    let pool = Arc::new(PmemPool::new(PoolCfg {
        capacity: 64 << 20,
        backend: Backend::Clflush,
        shadow: false,
        max_threads: 8,
    }));
    let site = SiteId(0);

    let mut g = c.benchmark_group("pmem");
    g.measurement_time(Duration::from_millis(500));
    g.warm_up_time(Duration::from_millis(100));
    g.sample_size(20);

    let a = pool.alloc_lines(1);
    g.bench_function("load", |b| b.iter(|| std::hint::black_box(pool.load(a))));
    g.bench_function("store", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            pool.store(a, v)
        })
    });
    g.bench_function("cas_success", |b| {
        let mut v = pool.load(a);
        b.iter(|| {
            let r = pool.cas(a, v, v + 1);
            v = match r {
                Ok(old) => old + 1,
                Err(seen) => seen,
            };
        })
    });
    // pwb of a line we keep writing (write → flush → write …): the
    // invalidation round-trip.
    g.bench_function("pwb_hot_line", |b| {
        let hot = pool.alloc_lines(1);
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            pool.store(hot, v);
            pool.pwb(hot, site);
        })
    });
    // pwb of cold lines (the "new node" pattern: written once, flushed
    // once, not revisited). A large window is cycled instead of allocating
    // per iteration — by the time a line comes around again it has long
    // left the cache, so each flush sees a cold line without ever
    // exhausting the arena.
    const WINDOW: u64 = 1 << 16; // 64k lines = 4 MiB, far beyond L2
    let window_base = pool.alloc_lines(WINDOW as usize);
    g.bench_function("pwb_fresh_line", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let n = window_base.add((i % WINDOW) * pmem::WORDS_PER_LINE as u64);
            i += 1;
            pool.store(n, i);
            pool.pwb(n, site);
        })
    });
    g.bench_function("psync_empty", |b| b.iter(|| pool.psync()));
    g.bench_function("pwb_plus_psync", |b| {
        let hot = pool.alloc_lines(1);
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            pool.store(hot, v);
            pool.pwb(hot, site);
            pool.psync();
        })
    });
    g.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
