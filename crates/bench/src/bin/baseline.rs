//! CLI producing the tracked perf baseline (`bench::baseline`).
//!
//! ```text
//! baseline [options]
//!   --smoke            CI tier: ~20x fewer iterations per bench
//!   --label L          report label and default file stem (default pr4)
//!   --out PATH         output JSON path (default BENCH_<label>.json)
//!   --prev PATH        earlier BENCH_*.json to compare against: trend
//!                      lines for off-cost, the thread sweep, and per-row
//!                      pwb/op + psync/op densities (all warn only), plus
//!                      a hard gate on the observers-on/off ratio (exit 1
//!                      if it worsens by more than 15%)
//!   --ops N            operations per micro-workload (overrides tier)
//! ```
//!
//! Writes the JSON report, prints the console table, and validates the
//! produced document against the `bench-baseline/v1` schema (non-zero exit
//! on schema violations, so CI catches a malformed report immediately).

use bench::baseline::{
    bench_rows_from_json, compare_bench_rows, extract_number, run_baseline, validate_json,
    BaselineCfg,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut label = "pr4".to_string();
    let mut out: Option<std::path::PathBuf> = None;
    let mut prev: Option<std::path::PathBuf> = None;
    let mut ops: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--label" => {
                i += 1;
                label = args[i].clone();
            }
            "--out" => {
                i += 1;
                out = Some(args[i].clone().into());
            }
            "--prev" => {
                i += 1;
                prev = Some(args[i].clone().into());
            }
            "--ops" => {
                i += 1;
                ops = Some(args[i].parse().expect("bad op count"));
            }
            flag => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut cfg = if smoke {
        BaselineCfg::smoke(&label)
    } else {
        BaselineCfg::full(&label)
    };
    if let Some(n) = ops {
        cfg.ops = n;
    }
    let mut prev_doc: Option<String> = None;
    if let Some(p) = &prev {
        let doc = std::fs::read_to_string(p).expect("reading --prev JSON");
        cfg.prev_off_ns_per_op = extract_number(&doc, "off_ns_per_op");
        if cfg.prev_off_ns_per_op.is_none() {
            eprintln!("--prev {} has no off_ns_per_op field", p.display());
            std::process::exit(2);
        }
        prev_doc = Some(doc);
    }

    let report = run_baseline(&cfg);
    print!("{}", report.to_text());

    // Scaling trend: compare the fresh thread sweep against the previous
    // report's (pre-PR-7 reports have no sweep — note and move on). Warns,
    // never fails: wall-clock throughput on a shared host is noisy; the
    // committed trajectory is what reviewers judge.
    if let Some(doc) = &prev_doc {
        let prev_pts = bench::parallel::sweep_points_from_json(doc);
        if prev_pts.is_empty() {
            println!("(prev report has no thread_sweep section; no scaling trend)");
        } else {
            let (lines, warnings) =
                bench::parallel::compare_sweeps(&prev_pts, &report.thread_sweep, 0.25);
            for l in lines {
                println!("{l}");
            }
            if warnings > 0 {
                println!("WARNING: {warnings} scaling regression(s) vs previous report");
            }
        }
    }

    // Persistence-density trend: executed pwb/op and psync/op per row vs
    // the previous report. These are deterministic functions of the fixed
    // scripts, so any growth is a real placement change — or a flushopt row
    // whose elision stopped biting. Warns only (rows come and go as the
    // schema grows; the hard gate below stays the overhead ratio).
    if let Some(doc) = &prev_doc {
        let prev_rows = bench_rows_from_json(doc);
        if prev_rows.is_empty() {
            println!("(prev report has no bench rows; no density trend)");
        } else {
            let (lines, warnings) = compare_bench_rows(&prev_rows, &report.rows, 0.05);
            for l in lines {
                println!("{l}");
            }
            if warnings > 0 {
                println!(
                    "WARNING: {warnings} persistence-density regression(s) vs previous report"
                );
            }
        }
    }

    // Overhead-ratio regression gate. Unlike wall-clock throughput (which
    // only warns above — shared hosts are noisy), the observers-on/off
    // ratio divides two runs of the same loop on the same host in the same
    // process, so host speed cancels out. A >15% worsening is a genuine
    // fast-path regression, not noise: fail the run.
    if let Some(doc) = &prev_doc {
        match extract_number(doc, "ratio") {
            Some(prev_ratio) if prev_ratio > 0.0 => {
                let ratio = report.overhead.ratio;
                let rel = ratio / prev_ratio - 1.0;
                println!(
                    "overhead ratio: {ratio:.2}x vs previous {prev_ratio:.2}x ({:+.1}%)",
                    rel * 100.0
                );
                if rel > 0.15 {
                    eprintln!(
                        "FAIL: observer overhead ratio regressed by {:.1}% (> 15% gate)",
                        rel * 100.0
                    );
                    std::process::exit(1);
                }
            }
            _ => println!("(prev report has no overhead ratio; no ratio gate)"),
        }
    }

    let json = report.to_json();
    if let Err(e) = validate_json(&json) {
        eprintln!("produced JSON violates the baseline schema: {e}");
        std::process::exit(1);
    }
    let path = out.unwrap_or_else(|| format!("BENCH_{label}.json").into());
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("creating output directory");
        }
    }
    std::fs::write(&path, json).expect("writing baseline JSON");
    println!("-> {}", path.display());
}
