//! Per-operation latency percentiles for every implementation.
//!
//! Complements the throughput harness and the Criterion benches with a
//! latency-distribution view: p50/p90/p99/p999 per operation type, from a
//! log-bucketed histogram (hand-rolled; no extra dependencies).
//!
//! ```text
//! cargo run -p bench --release --bin latency [-- --ops 200000 --range 500]
//! ```

use std::sync::Arc;
use std::time::Instant;

use bench::{build, AlgoKind};
use pmem::{Backend, PmemPool, PoolCfg, ThreadCtx};

/// Log-bucketed latency histogram: bucket i covers [2^(i/4), 2^((i+1)/4))
/// nanoseconds-ish (quarter-powers of two give <20 % bucket error, plenty
/// for percentile reporting).
struct Histogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: vec![0; 256],
            count: 0,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < 2 {
            return 0;
        }
        let log2 = 63 - ns.leading_zeros() as u64;
        let frac = (ns >> log2.saturating_sub(2)) & 0b11; // next 2 bits
        ((log2 * 4 + frac) as usize).min(255)
    }

    fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
    }

    /// Upper edge (ns) of the bucket holding the q-quantile.
    fn quantile(&self, q: f64) -> u64 {
        let target = (self.count as f64 * q) as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                let log2 = i as u64 / 4;
                let frac = i as u64 % 4;
                return (1u64 << log2) + ((frac + 1) << log2.saturating_sub(2));
            }
        }
        u64::MAX
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ops: u64 = 100_000;
    let mut range: u64 = 500;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ops" => {
                i += 1;
                ops = args[i].parse().expect("bad op count");
            }
            "--range" => {
                i += 1;
                range = args[i].parse().expect("bad range");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!(
        "{:<22} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "algo/op", "ops", "p50(ns)", "p90(ns)", "p99(ns)", "p999(ns)"
    );
    for kind in [
        AlgoKind::Tracking,
        AlgoKind::TrackingBst,
        AlgoKind::Capsules,
        AlgoKind::CapsulesOpt,
        AlgoKind::Romulus,
        AlgoKind::RedoOpt,
        AlgoKind::OneFile,
    ] {
        let pool = Arc::new(PmemPool::new(PoolCfg {
            capacity: 2 << 30,
            backend: Backend::Clflush,
            shadow: false,
            max_threads: 8,
            ..Default::default()
        }));
        let algo = build(kind, pool.clone(), 4, range);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        let mut rng = 0x5EEDu64;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..range / 2 {
            let k = next() % range + 1;
            algo.insert(&ctx, k);
        }
        let mut hists = [Histogram::new(), Histogram::new(), Histogram::new()];
        // Capsules is ~20x slower; keep wall time comparable.
        let n = if kind == AlgoKind::Capsules {
            ops / 10
        } else {
            ops
        };
        for _ in 0..n {
            if pool.remaining_lines() < 4096 {
                break;
            }
            let r = next();
            let key = r % range + 1;
            let op = (r >> 32) % 3;
            let t = Instant::now();
            match op {
                0 => {
                    std::hint::black_box(algo.insert(&ctx, key));
                }
                1 => {
                    std::hint::black_box(algo.delete(&ctx, key));
                }
                _ => {
                    std::hint::black_box(algo.find(&ctx, key));
                }
            }
            hists[op as usize].record(t.elapsed().as_nanos() as u64);
        }
        for (h, name) in hists.iter().zip(["insert", "delete", "find"]) {
            println!(
                "{:<22} {:>10} {:>8} {:>8} {:>8} {:>8}",
                format!("{}/{}", kind.name(), name),
                h.count,
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.quantile(0.999),
            );
        }
    }
}
