//! CLI regenerating the paper's figures.
//!
//! ```text
//! figures [all|fig3|fig4|fig5|fig6|ablation|range|mix|uc|categorize|attribution] [options]
//!   --threads 1,2,4,8      thread counts (default 1,2,4,8)
//!   --duration-ms 300      timed window per data point
//!   --range 500            key range
//!   --pool-mb 1024         pmem pool size per run
//!   --out results          output directory for CSVs
//!   --smoke                tiny preset (fast CI run)
//! ```

use std::time::Duration;

use bench::figures::{self, FigCfg};
use bench::workload::Mix;
use bench::AlgoKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut what = "all".to_string();
    let mut cfg = FigCfg::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                cfg.threads = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("bad thread count"))
                    .collect();
            }
            "--duration-ms" => {
                i += 1;
                cfg.duration = Duration::from_millis(args[i].parse().expect("bad duration"));
            }
            "--range" => {
                i += 1;
                cfg.key_range = args[i].parse().expect("bad range");
            }
            "--pool-mb" => {
                i += 1;
                cfg.pool_bytes = args[i].parse::<usize>().expect("bad pool size") << 20;
            }
            "--out" => {
                i += 1;
                cfg.out_dir = args[i].clone().into();
            }
            "--smoke" => {
                let out = cfg.out_dir.clone();
                cfg = FigCfg::smoke();
                cfg.out_dir = out;
            }
            "--attribution" => what = "attribution".to_string(),
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
            w => what = w.to_string(),
        }
        i += 1;
    }

    let emit = |csv: bench::csv::Csv| {
        println!("\n== {} ==\n{}", csv.name(), csv.to_text());
        let path = csv.write(&cfg.out_dir).expect("writing CSV");
        println!("-> {}", path.display());
    };

    match what.as_str() {
        "all" => {
            let files = figures::run_all(&cfg);
            println!("\nwrote {} CSVs to {}", files.len(), cfg.out_dir.display());
        }
        "fig3" | "fig4" => {
            let (mix, f) = if what == "fig3" {
                (Mix::READ_INTENSIVE, "fig3")
            } else {
                (Mix::UPDATE_INTENSIVE, "fig4")
            };
            let m = if mix.find_pct >= 50 {
                "read-intensive"
            } else {
                "update-intensive"
            };
            emit(figures::fig_throughput(
                &cfg,
                mix,
                &format!("{f}a_throughput_{m}"),
            ));
            emit(figures::fig_psyncs(&cfg, mix, &format!("{f}b_psyncs_{m}")));
            emit(figures::fig_no_psync(
                &cfg,
                mix,
                &format!("{f}c_no_psync_{m}"),
            ));
            emit(figures::fig_pwbs(&cfg, mix, &format!("{f}d_pwbs_{m}")));
            emit(figures::fig_pwb_categories(
                &cfg,
                mix,
                &format!("{f}e_pwb_categories_{m}"),
            ));
            emit(figures::fig_category_sweep(
                &cfg,
                mix,
                &format!("{f}f_category_sweep_{m}"),
            ));
        }
        "fig5" => emit(figures::fig_x_loss(
            &cfg,
            Mix::UPDATE_INTENSIVE,
            AlgoKind::Tracking,
            "fig5_x_loss_tracking",
        )),
        "fig6" => emit(figures::fig_x_loss(
            &cfg,
            Mix::UPDATE_INTENSIVE,
            AlgoKind::CapsulesOpt,
            "fig6_x_loss_capsules_opt",
        )),
        "ablation" => emit(figures::fig_ablation(
            &cfg,
            "ablation_tracking_design_choices",
        )),
        "range" => emit(figures::fig_range_sweep(&cfg, "appendix_range_sweep")),
        "mix" => emit(figures::fig_mix_sweep(&cfg, "appendix_mix_sweep")),
        "uc" => emit(figures::fig_uc_compare(&cfg, "appendix_uc_compare")),
        "attribution" => emit(figures::fig_attribution(&cfg, "appendix_site_attribution")),
        "categorize" => {
            for kind in [AlgoKind::Tracking, AlgoKind::CapsulesOpt] {
                println!(
                    "\n== {} sites ({} threads) ==",
                    kind.name(),
                    cfg.categorize_threads
                );
                for s in figures::categorize(&cfg, Mix::UPDATE_INTENSIVE, kind) {
                    println!(
                        "  {:<16} impact {:>5.1}%  category {}",
                        s.name,
                        s.impact * 100.0,
                        s.category.label()
                    );
                }
            }
        }
        other => {
            eprintln!(
                "unknown figure '{other}' (use all|fig3|fig4|fig5|fig6|ablation|range|mix|uc|categorize|attribution)"
            );
            std::process::exit(2);
        }
    }
}
