//! CLI driving the exhaustive crash-sweep verifier (`bench::sweep`).
//!
//! ```text
//! crashsweep [options]
//!   --structure list|bst|queue|stack|exchanger|hashmap|all   shape(s) to sweep (default all)
//!   --algo tracking|capsules|...|all                 set implementation(s) (default all
//!                                                    = the shape's full lineup)
//!   --shard I/N            run only crash points with k % N == I
//!   --sample P             run each point with probability P (deterministic in
//!                          the seed; 1.0 = exhaustive)
//!   --adversary pessimist|seeded                     crash model (default pessimist)
//!   --seed S               workload/sampling seed
//!   --ops N                script length (operations per sweep)
//!   --pool-mb M            pool size per replay (default 64)
//!   --engine checkpoint|scratch   replay engine (default checkpoint: restore the
//!                          nearest op-boundary snapshot instead of rebuilding
//!                          the structure per crash point)
//!   --paranoia P           cross-check each replayed point with probability P:
//!                          both engines re-run it traced and must agree on the
//!                          verdict and the event stream (checkpoint engine only)
//!   --multi-crash N        multi-crash tier: per first crash point, inject N
//!                          second crashes *inside recovery* (deterministic
//!                          points over recovery's own event count), re-run
//!                          recovery after each, and apply the full verdict;
//!                          CSVs gain a recrash_ prefix
//!   --churn                allocator-churn mode: reclaim pools (structures
//!                          retire removed nodes, boundaries drain limbo, every
//!                          verdict audits the free lists), plus the allocator's
//!                          own crash sweep; CSVs gain a churn_ prefix
//!   --palloc               sweep only the allocator itself (implies reclaim)
//!   --flushopt             arm the flush-elision layer on every replay pool:
//!                          the event space shrinks to the non-elided
//!                          instructions and the sweep proves the survivors
//!                          still recover at every crash point
//!
//!   --smoke                CI tier: the churn matrix over the retiring pairs
//!                          with a short script and sampled points (fast,
//!                          deterministic; combines with --shard/--seed)
//!   --out DIR              CSV directory (default results/crashsweep)
//! ```
//!
//! Exit status is non-zero if any replayed crash point violated
//! detectability or durable linearizability. One CSV per
//! structure × algorithm pair is written under `--out`; the first failing
//! point (if any) is minimized and its final trace window printed.

use bench::sweep::{run_palloc_sweep, run_sweep, AdversaryKind, SweepCfg, SweepReport};
use bench::{AlgoKind, StructureKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut structures: Vec<StructureKind> = StructureKind::all().to_vec();
    let mut algo: Option<AlgoKind> = None;
    let mut base = SweepCfg::new(StructureKind::List, AlgoKind::Tracking);
    let mut out = std::path::PathBuf::from("results/crashsweep");
    let (mut churn, mut palloc_only, mut smoke) = (false, false, false);
    let mut structures_named = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--structure" => {
                i += 1;
                structures_named = true;
                structures = match args[i].as_str() {
                    "all" => StructureKind::all().to_vec(),
                    s => vec![StructureKind::parse(s).unwrap_or_else(|| {
                        eprintln!(
                            "unknown structure '{s}' (list|bst|queue|stack|exchanger|hashmap|all)"
                        );
                        std::process::exit(2);
                    })],
                };
            }
            "--algo" => {
                i += 1;
                algo = match args[i].as_str() {
                    "all" => None,
                    s => Some(AlgoKind::parse(s).unwrap_or_else(|| {
                        eprintln!("unknown algorithm '{s}'");
                        std::process::exit(2);
                    })),
                };
            }
            "--shard" => {
                i += 1;
                let (idx, cnt) = args[i].split_once('/').unwrap_or_else(|| {
                    eprintln!("--shard expects I/N, e.g. --shard 0/4");
                    std::process::exit(2);
                });
                base.shard_index = idx.parse().expect("bad shard index");
                base.shard_count = cnt.parse().expect("bad shard count");
                assert!(
                    base.shard_count > 0 && base.shard_index < base.shard_count,
                    "shard index must be in [0, N)"
                );
            }
            "--sample" => {
                i += 1;
                base.sample = args[i].parse().expect("bad sample probability");
                assert!(
                    (0.0..=1.0).contains(&base.sample),
                    "sample must be in [0, 1]"
                );
            }
            "--adversary" => {
                i += 1;
                base.adversary = AdversaryKind::parse(&args[i]).unwrap_or_else(|| {
                    eprintln!("unknown adversary '{}' (pessimist|seeded)", args[i]);
                    std::process::exit(2);
                });
            }
            "--seed" => {
                i += 1;
                base.seed = args[i].parse().expect("bad seed");
            }
            "--ops" => {
                i += 1;
                base.script_len = args[i].parse().expect("bad script length");
            }
            "--pool-mb" => {
                i += 1;
                base.pool_bytes = args[i].parse::<usize>().expect("bad pool size") << 20;
            }
            "--engine" => {
                i += 1;
                base.checkpoint = match args[i].as_str() {
                    "checkpoint" => true,
                    "scratch" => false,
                    e => {
                        eprintln!("unknown engine '{e}' (checkpoint|scratch)");
                        std::process::exit(2);
                    }
                };
            }
            "--paranoia" => {
                i += 1;
                base.paranoia = args[i].parse().expect("bad paranoia probability");
                assert!(
                    (0.0..=1.0).contains(&base.paranoia),
                    "paranoia must be in [0, 1]"
                );
            }
            "--multi-crash" => {
                i += 1;
                base.multi_crash = args[i].parse().expect("bad multi-crash count");
            }
            "--churn" => churn = true,
            "--palloc" => palloc_only = true,
            "--flushopt" => base.flushopt = true,
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out = args[i].clone().into();
            }
            flag => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if smoke {
        // CI tier: churn matrix over the pairs that actually retire nodes,
        // short script, sampled points. ~seconds, still covering alloc,
        // retire, drain and recover_allocator paths end to end.
        churn = true;
        base.script_len = base.script_len.min(8);
        base.sample = base.sample.min(0.25);
        if !structures_named {
            structures = vec![
                StructureKind::List,
                StructureKind::Queue,
                StructureKind::Stack,
                StructureKind::Hashmap,
            ];
        }
    }
    if churn || palloc_only {
        base.reclaim = true;
    }

    let mut pairs: Vec<(StructureKind, AlgoKind)> = Vec::new();
    if smoke && algo.is_none() && !structures_named {
        // Only the pairs that actually retire nodes on a reclaim pool.
        pairs = vec![
            (StructureKind::List, AlgoKind::Tracking),
            (StructureKind::List, AlgoKind::Capsules),
            (StructureKind::List, AlgoKind::CapsulesOpt),
            (StructureKind::Queue, AlgoKind::Tracking),
            (StructureKind::Stack, AlgoKind::Tracking),
            (StructureKind::Hashmap, AlgoKind::Tracking),
        ];
    }
    if pairs.is_empty() {
        for s in &structures {
            match (s, algo) {
                // An explicit --algo narrows the list lineup; the other shapes
                // exist only as Tracking structures, so the explicit algo must
                // match their lineup or the pair is skipped (with a note when
                // it was named explicitly).
                (StructureKind::List, Some(a)) => pairs.push((*s, a)),
                (_, Some(a)) if s.lineup().contains(&a) => pairs.push((*s, a)),
                (_, Some(a)) => {
                    if structures.len() == 1 {
                        eprintln!(
                            "{} has no {} implementation (available: {})",
                            s.name(),
                            a.name(),
                            s.lineup()
                                .iter()
                                .map(|a| a.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        std::process::exit(2);
                    }
                }
                (_, None) => pairs.extend(s.lineup().into_iter().map(|a| (*s, a))),
            }
        }
    }

    println!(
        "crash sweep: {} pair(s), engine={}, adversary={}, shard {}/{}, sample {}, paranoia {}, seed {:#x}{}",
        pairs.len(),
        if base.checkpoint { "checkpoint" } else { "scratch" },
        base.adversary.name(),
        base.shard_index,
        base.shard_count,
        base.sample,
        base.paranoia,
        base.seed,
        if base.flushopt { ", flushopt" } else { "" },
    );

    let mut failed = false;
    let engine_start = std::time::Instant::now();
    let (mut total_points, mut total_paranoia) = (0u64, 0u64);
    let mut emit = |report: SweepReport, failed: &mut bool| {
        println!("{}", report.summary());
        let path = report.csv.write(&out).expect("writing CSV");
        println!("  -> {}", path.display());
        if let Some(f) = &report.first_failure {
            print!("{}", f.render());
        }
        total_points += report.points_run;
        total_paranoia += report.paranoia_checked;
        *failed |= !report.ok();
    };
    if !palloc_only {
        for (structure, algo) in pairs {
            let cfg = SweepCfg {
                structure,
                algo,
                ..base.clone()
            };
            emit(run_sweep(&cfg), &mut failed);
        }
    }
    if churn || palloc_only {
        // The allocator's own crash sweep rides along with every churn run.
        emit(run_palloc_sweep(&base), &mut failed);
    }
    // Engine-only wall clock (excludes process startup/compilation noise) —
    // the number the A/B `--engine` timing comparison records.
    println!(
        "engine elapsed: {:.3}s ({} points, {} paranoia-checked)",
        engine_start.elapsed().as_secs_f64(),
        total_points,
        total_paranoia,
    );
    if failed {
        eprintln!("crash sweep FAILED: see violations above");
        std::process::exit(1);
    }
    println!("crash sweep passed: every replayed crash point recovered correctly");
}
