//! CLI for the genuinely parallel throughput engine (`bench::parallel`).
//!
//! ```text
//! throughput [options]
//!   --smoke            CI tier: 2 subjects, short windows
//!   --threads LIST     comma-separated thread counts (default 1,2,4)
//!   --shards N         structure replicas, 0 = one per thread (default 1)
//!   --duration-ms N    timed window per point (default 200, smoke 40)
//!   --subjects LIST    comma-separated: queue,stack,comb-queue,comb-stack
//!   --label L          report label (default pr7)
//!   --out PATH         output JSON path (default BENCH_throughput_<label>.json)
//!   --prev PATH        earlier report to compare aggregate ops/sec against
//!   --flushopt         arm the flush-elision layer on every point's pool
//!                      (elision densities land in pwb_elided_per_op /
//!                      psync_coalesced_per_op, committed in the JSON)
//! ```
//!
//! Every point runs its threads as real concurrent OS threads — no turn
//! monitor — and reports aggregate and per-thread ops/sec plus the
//! count-based `pwb`/`psync` per operation (the scheduling-independent
//! signal; see EXPERIMENTS.md, "Scaling & throughput methodology").
//! The produced document is validated against `bench-throughput/v1`
//! (non-zero exit on violations, so CI catches malformed reports).

use std::time::Duration;

use bench::parallel::{
    compare_sweeps, run_parallel, sweep_points_from_json, throughput_json,
    validate_throughput_json, ParSubject, ParallelCfg, SweepPoint,
};

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',')
        .map(|t| t.trim().parse().expect("bad thread count"))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut threads_list: Option<Vec<usize>> = None;
    let mut shards: usize = 1;
    let mut duration_ms: Option<u64> = None;
    let mut subjects: Option<Vec<ParSubject>> = None;
    let mut label = "pr7".to_string();
    let mut out: Option<std::path::PathBuf> = None;
    let mut prev: Option<std::path::PathBuf> = None;
    let mut flushopt = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--flushopt" => flushopt = true,
            "--threads" => {
                i += 1;
                threads_list = Some(parse_list(&args[i]));
            }
            "--shards" => {
                i += 1;
                shards = args[i].parse().expect("bad shard count");
            }
            "--duration-ms" => {
                i += 1;
                duration_ms = Some(args[i].parse().expect("bad duration"));
            }
            "--subjects" => {
                i += 1;
                subjects = Some(
                    args[i]
                        .split(',')
                        .map(|t| {
                            ParSubject::parse(t.trim()).unwrap_or_else(|| {
                                eprintln!("unknown subject {t}");
                                std::process::exit(2);
                            })
                        })
                        .collect(),
                );
            }
            "--label" => {
                i += 1;
                label = args[i].clone();
            }
            "--out" => {
                i += 1;
                out = Some(args[i].clone().into());
            }
            "--prev" => {
                i += 1;
                prev = Some(args[i].clone().into());
            }
            flag => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let threads_list = threads_list.unwrap_or_else(|| if smoke { vec![2] } else { vec![1, 2, 4] });
    let subjects = subjects.unwrap_or_else(|| {
        if smoke {
            vec![ParSubject::Queue, ParSubject::CombQueue]
        } else {
            ParSubject::all().to_vec()
        }
    });
    let duration = Duration::from_millis(duration_ms.unwrap_or(if smoke { 40 } else { 200 }));

    if bench::baseline::degraded_parallelism(&threads_list) {
        eprintln!(
            "WARNING: sweep requests up to {} threads but the host exposes only {} \
             CPU(s); multi-thread points measure time-slicing, not contention. The \
             report will carry \"degraded_parallelism\": true.",
            threads_list.iter().max().unwrap_or(&0),
            bench::baseline::host_cpus(),
        );
    }

    println!(
        "{:<16} {:>3} {:>3} {:>10} {:>12} {:>12} {:>8} {:>9}",
        "subject", "thr", "shd", "ops", "ops/sec", "ops/sec/thr", "pwb/op", "psync/op"
    );
    let mut points: Vec<SweepPoint> = Vec::new();
    for &subject in &subjects {
        for &threads in &threads_list {
            let cfg = ParallelCfg {
                shards: if shards == 0 { threads } else { shards },
                duration,
                flushopt,
                ..ParallelCfg::contended(subject, threads)
            };
            let r = run_parallel(&cfg);
            println!(
                "{:<16} {:>3} {:>3} {:>10} {:>12.0} {:>12.0} {:>8.2} {:>9.2}",
                r.subject,
                r.threads,
                r.shards,
                r.ops,
                r.ops_per_sec(),
                r.per_thread_ops_per_sec(),
                r.pwb_per_op(),
                r.psync_per_op()
            );
            points.push(bench::parallel::SweepPoint {
                subject: r.subject,
                threads: r.threads,
                shards: r.shards,
                ops: r.ops,
                ops_per_sec: r.ops_per_sec(),
                per_thread_ops_per_sec: r.per_thread_ops_per_sec(),
                pwb_per_op: r.pwb_per_op(),
                psync_per_op: r.psync_per_op(),
                pwb_elided_per_op: r.pwb_elided_per_op(),
                psync_coalesced_per_op: r.psync_coalesced_per_op(),
            });
        }
    }

    if let Some(p) = &prev {
        let doc = std::fs::read_to_string(p).expect("reading --prev JSON");
        let prev_pts = sweep_points_from_json(&doc);
        if prev_pts.is_empty() {
            println!("prev {} has no sweep points to compare", p.display());
        } else {
            let (lines, warnings) = compare_sweeps(&prev_pts, &points, 0.25);
            for l in lines {
                println!("{l}");
            }
            if warnings > 0 {
                println!(
                    "WARNING: {warnings} scaling regression(s) vs {}",
                    p.display()
                );
            }
        }
    }

    let json = throughput_json(&label, &threads_list, &points);
    if let Err(e) = validate_throughput_json(&json) {
        eprintln!("produced JSON violates the throughput schema: {e}");
        std::process::exit(1);
    }
    let path = out.unwrap_or_else(|| format!("BENCH_throughput_{label}.json").into());
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("creating output directory");
        }
    }
    std::fs::write(&path, json).expect("writing throughput JSON");
    println!("-> {}", path.display());
}
