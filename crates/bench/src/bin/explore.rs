//! CLI driving the deterministic concurrent-schedule explorer
//! (`bench::explore`).
//!
//! ```text
//! explore [options]
//!   --structure list|bst|queue|stack|exchanger|hashmap|all   shape(s) to explore (default all)
//!   --algo tracking|capsules|...|all                 implementation(s) (default all =
//!                                                    the shape's schedulable lineup;
//!                                                    Romulus spins via the scheduler's
//!                                                    spin-yield channel)
//!   --threads N            virtual threads per schedule (default 2)
//!   --ops N                scripted operations per thread (default 4)
//!   --schedules N          schedules per strategy (default 4)
//!   --strategy rr|random|pct|all                     strategies to run (default all)
//!   --crash off|sampled    crash injection (default sampled)
//!   --crash-samples N      crash points per schedule in sampled mode (default 2)
//!   --adversary pessimist|seeded                     crash model (default pessimist)
//!   --seed S               script/strategy/sampling seed
//!   --shard I/N            run only (strategy, schedule) cells with index % N == I
//!   --pool-mb M            pool size (default 64)
//!   --out DIR              CSV directory (default results/explore)
//!   --flushopt             arm the flush-elision layer on the shared pool:
//!                          elided events vanish from the yield-point stream
//!                          and every injected crash must still recover
//!   --smoke                quick CI tier: 1 schedule per strategy, 1 crash sample
//! ```
//!
//! Exit status is non-zero if any executed schedule produced a
//! non-linearizable history (or a schedule replay diverged). One CSV per
//! structure × algorithm pair is written under `--out`.

use bench::explore::{run_explore, CrashMode, ExploreCfg, StrategyKind};
use bench::sweep::AdversaryKind;
use bench::{AlgoKind, StructureKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut structures: Vec<StructureKind> = StructureKind::all().to_vec();
    let mut algo: Option<AlgoKind> = None;
    let mut base = ExploreCfg::new(StructureKind::List, AlgoKind::Tracking);
    let mut crash_samples = 2u64;
    let mut crash_on = true;
    let mut out = std::path::PathBuf::from("results/explore");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--structure" => {
                i += 1;
                structures = match args[i].as_str() {
                    "all" => StructureKind::all().to_vec(),
                    s => vec![StructureKind::parse(s).unwrap_or_else(|| {
                        eprintln!(
                            "unknown structure '{s}' (list|bst|queue|stack|exchanger|hashmap|all)"
                        );
                        std::process::exit(2);
                    })],
                };
            }
            "--algo" => {
                i += 1;
                algo = match args[i].as_str() {
                    "all" => None,
                    s => Some(AlgoKind::parse(s).unwrap_or_else(|| {
                        eprintln!("unknown algorithm '{s}'");
                        std::process::exit(2);
                    })),
                };
            }
            "--threads" => {
                i += 1;
                base.threads = args[i].parse().expect("bad thread count");
            }
            "--ops" => {
                i += 1;
                base.ops_per_thread = args[i].parse().expect("bad ops count");
            }
            "--schedules" => {
                i += 1;
                base.schedules = args[i].parse().expect("bad schedule count");
            }
            "--strategy" => {
                i += 1;
                base.strategies = match args[i].as_str() {
                    "all" => StrategyKind::all().to_vec(),
                    s => vec![StrategyKind::parse(s).unwrap_or_else(|| {
                        eprintln!("unknown strategy '{s}' (rr|random|pct|all)");
                        std::process::exit(2);
                    })],
                };
            }
            "--crash" => {
                i += 1;
                crash_on = match args[i].as_str() {
                    "off" => false,
                    "sampled" => true,
                    c => {
                        eprintln!("unknown crash mode '{c}' (off|sampled)");
                        std::process::exit(2);
                    }
                };
            }
            "--crash-samples" => {
                i += 1;
                crash_samples = args[i].parse().expect("bad crash sample count");
            }
            "--adversary" => {
                i += 1;
                base.adversary = AdversaryKind::parse(&args[i]).unwrap_or_else(|| {
                    eprintln!("unknown adversary '{}' (pessimist|seeded)", args[i]);
                    std::process::exit(2);
                });
            }
            "--seed" => {
                i += 1;
                base.seed = args[i].parse().expect("bad seed");
            }
            "--shard" => {
                i += 1;
                let (idx, cnt) = args[i].split_once('/').unwrap_or_else(|| {
                    eprintln!("--shard expects I/N, e.g. --shard 0/4");
                    std::process::exit(2);
                });
                base.shard_index = idx.parse().expect("bad shard index");
                base.shard_count = cnt.parse().expect("bad shard count");
                assert!(
                    base.shard_count > 0 && base.shard_index < base.shard_count,
                    "shard index must be in [0, N)"
                );
            }
            "--pool-mb" => {
                i += 1;
                base.pool_bytes = args[i].parse::<usize>().expect("bad pool size") << 20;
            }
            "--out" => {
                i += 1;
                out = args[i].clone().into();
            }
            "--flushopt" => base.flushopt = true,
            "--smoke" => {
                base.schedules = 1;
                crash_samples = 1;
            }
            flag => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    base.crash = if crash_on {
        CrashMode::Sampled {
            per_schedule: crash_samples,
        }
    } else {
        CrashMode::Off
    };

    let mut pairs: Vec<(StructureKind, AlgoKind)> = Vec::new();
    for s in &structures {
        match algo {
            Some(a) if !a.schedulable() => {
                eprintln!(
                    "{} cannot run under the cooperative scheduler (blocking design)",
                    a.name()
                );
                std::process::exit(2);
            }
            Some(a) if s.explore_lineup().contains(&a) => pairs.push((*s, a)),
            Some(a) => {
                if structures.len() == 1 {
                    eprintln!(
                        "{} has no {} implementation (available: {})",
                        s.name(),
                        a.name(),
                        s.explore_lineup()
                            .iter()
                            .map(|a| a.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(2);
                }
            }
            None => pairs.extend(s.explore_lineup().into_iter().map(|a| (*s, a))),
        }
    }

    println!(
        "schedule explorer: {} pair(s), threads={}, ops/thread={}, schedules={}/strategy, \
         strategies=[{}], crash={}, adversary={}, shard {}/{}, seed {:#x}",
        pairs.len(),
        base.threads,
        base.ops_per_thread,
        base.schedules,
        base.strategies
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", "),
        match base.crash {
            CrashMode::Off => "off".to_string(),
            CrashMode::Sampled { per_schedule } => format!("sampled({per_schedule}/schedule)"),
        },
        base.adversary.name(),
        base.shard_index,
        base.shard_count,
        base.seed,
    );

    let mut failed = false;
    let start = std::time::Instant::now();
    let (mut total_runs, mut total_crash_runs) = (0u64, 0u64);
    for (structure, algo) in pairs {
        let cfg = ExploreCfg {
            structure,
            algo,
            ..base.clone()
        };
        let report = run_explore(&cfg);
        println!("{}", report.summary());
        let path = report.csv.write(&out).expect("writing CSV");
        println!("  -> {}", path.display());
        for v in &report.violations {
            println!(
                "  VIOLATION: strategy={} schedule={} crash_k={:?}: {}",
                v.strategy.name(),
                v.schedule,
                v.crash_k,
                v.note
            );
        }
        total_runs += report.runs;
        total_crash_runs += report.crash_runs;
        failed |= !report.ok();
    }
    println!(
        "explorer elapsed: {:.3}s ({} schedule runs, {} crash-injected runs)",
        start.elapsed().as_secs_f64(),
        total_runs,
        total_crash_runs,
    );
    if failed {
        eprintln!("schedule exploration FAILED: see violations above");
        std::process::exit(1);
    }
    println!("schedule exploration passed: every executed schedule linearized");
}
