//! # bench — the harness regenerating every figure of the paper
//!
//! The paper's evaluation (Section 5) consists of Figures 3–6 over a sorted
//! linked list with keys uniform in `[1, 500]`, prefilled with 250 random
//! inserts, under a read-intensive (70 % find) and an update-intensive
//! (30 % find) mix. This crate provides:
//!
//! * [`adapter`] — one uniform [`adapter::SetAlgo`] interface over all five
//!   evaluated implementations (Tracking list & BST, Capsules,
//!   Capsules-Opt, Romulus, RedoOpt);
//! * [`workload`] — the timed multi-thread throughput runner with
//!   persistence-instruction accounting;
//! * [`parallel`] / `bin/throughput` — the genuinely parallel throughput
//!   engine: N real OS threads over sharded queue/stack roots (plain
//!   Tracking and flat-combining variants) with per-thread
//!   [`pmem::SubArena`] allocation, emitting `bench-throughput/v1` JSON
//!   and the baseline's `thread_sweep` series;
//! * [`figures`] — drivers that reproduce each figure's measurement
//!   protocol, including the paper's pwb-categorization methodology
//!   (persistence-free baseline → single-site impact → L/M/H classes →
//!   category add/remove sweeps);
//! * [`sweep`] — the exhaustive crash-sweep verification engine: crash a
//!   scripted workload at every instrumented persistence event, then check
//!   detectability and durable linearizability of the recovered state
//!   against the [`linearize`] specifications;
//! * [`explore`] — the deterministic concurrent-schedule explorer:
//!   serialize N virtual threads through the pool's instrumented events
//!   under round-robin / seeded-random / PCT strategies, optionally crash
//!   at any (schedule, event) point, and check the concurrent history
//!   linearizes after recovery;
//! * `bin/figures` — the CLI that writes one CSV per figure into
//!   `results/`;
//! * `bin/crashsweep` — the CLI driving [`sweep`] over the full
//!   structure × algorithm matrix, writing one CSV per pair into
//!   `results/crashsweep/`;
//! * `bin/explore` — the CLI driving [`explore`] over the schedulable
//!   matrix, writing one CSV per pair into `results/explore/`;
//! * [`baseline`] / `bin/baseline` — the tracked perf baseline: fixed
//!   per-structure/per-competitor micro-workloads plus an
//!   instrumentation-overhead benchmark, emitted as `BENCH_*.json` at the
//!   repo root so successive PRs leave a comparable trajectory.
//!
//! Numbers are *shapes*, not absolutes: the substrate is simulated NVMM
//! over DRAM (`clflush`/`sfence`) and this container exposes a single CPU,
//! so thread "scaling" interleaves. See EXPERIMENTS.md for the
//! paper-vs-measured discussion.

#![warn(missing_docs)]

pub mod adapter;
pub mod baseline;
pub mod csv;
pub mod explore;
pub mod figures;
pub mod parallel;
pub mod sweep;
pub mod workload;

pub use adapter::{build, AlgoKind, SetAlgo, StructureKind};
pub use explore::{run_explore, CrashMode, ExploreCfg, ExploreReport, StrategyKind};
pub use parallel::{run_parallel, run_thread_sweep, ParSubject, ParallelCfg, ParallelResult};
pub use sweep::{run_palloc_sweep, run_sweep, SweepCfg, SweepReport};
pub use workload::{run, Mix, RunCfg, RunResult};
