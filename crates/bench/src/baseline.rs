//! Tracked performance baseline: fixed micro-workloads whose timings are
//! committed as `BENCH_*.json` at the repo root, so every PR leaves a
//! comparable datapoint and regressions in the simulated substrate are
//! visible as a trajectory rather than anecdotes.
//!
//! Three families of benchmarks, all single-threaded (the container exposes
//! one core; see DESIGN §1 — multi-thread numbers here would measure the
//! scheduler, not the algorithms):
//!
//! * **per-competitor list workloads** — a fixed op-count run of every
//!   paper competitor over the sorted-list set in Perf mode
//!   ([`pmem::Backend::Clflush`]), reporting ns/op, ops/sec, and the
//!   persistence-instruction and instrumented-event densities;
//! * **per-structure Tracking workloads** — the queue, stack, and
//!   exchanger shapes the crash sweep verifies;
//! * **allocator phases** — the recoverable free-list allocator's pop,
//!   retire, and drain paths (`pmem::palloc`), timed over a full recycling
//!   cycle on a `reclaim` pool;
//! * **instrumentation overhead** — a pure pool-primitive loop
//!   (load/store/cas/pwb/psync over a handful of lines) with every observer
//!   off versus trace+lint on. The *off* number is the cost the substrate
//!   adds to every hot path even when nobody is watching; keeping it near
//!   zero is what lets the paper's relative persistence-cost signal
//!   (Figures 3–4) survive simulation.
//!
//! The JSON schema is documented in EXPERIMENTS.md ("Performance
//! methodology") and sanity-checked by [`validate_json`], which the CI
//! smoke job runs against the freshly produced file.

use std::sync::Arc;
use std::time::Instant;

use pmem::{Backend, PmemPool, PoolCfg, SiteId, ThreadCtx};

use crate::adapter::{build, AlgoKind, StructureKind};
use crate::parallel::{run_thread_sweep, ParSubject, SweepPoint};

/// Schema identifier embedded in every report.
///
/// The tag is unchanged since PR 4; later additions are strictly additive
/// (`thread_sweep` since PR 7), so every committed `BENCH_*.json` remains
/// readable by the current tooling. EXPERIMENTS.md documents the schema
/// field by field with the PR each field appeared in.
pub const SCHEMA: &str = "bench-baseline/v1";

/// Configuration of one baseline capture.
#[derive(Clone, Debug)]
pub struct BaselineCfg {
    /// Operations per timed workload (the smoke tier shrinks this).
    pub ops: u64,
    /// Iterations of the primitive loop in the overhead benchmark.
    pub overhead_iters: u64,
    /// Thread counts of the parallel thread sweep (`bench::parallel`
    /// over the queue/stack shapes, plain and combining).
    pub sweep_threads: Vec<usize>,
    /// Timed window per sweep point, in milliseconds.
    pub sweep_window_ms: u64,
    /// Label recorded in the report (e.g. `pr4`).
    pub label: String,
    /// Previously captured `off_ns_per_op`, for trend reporting (read from
    /// an earlier `BENCH_*.json` with [`extract_number`]).
    pub prev_off_ns_per_op: Option<f64>,
}

impl BaselineCfg {
    /// Full-size capture.
    pub fn full(label: &str) -> BaselineCfg {
        BaselineCfg {
            ops: 40_000,
            overhead_iters: 4_000_000,
            sweep_threads: vec![1, 2, 4],
            sweep_window_ms: 200,
            label: label.to_string(),
            prev_off_ns_per_op: None,
        }
    }

    /// CI smoke tier: same benches, ~20× fewer iterations.
    pub fn smoke(label: &str) -> BaselineCfg {
        BaselineCfg {
            ops: 2_000,
            overhead_iters: 200_000,
            sweep_threads: vec![1, 2],
            sweep_window_ms: 40,
            label: label.to_string(),
            prev_off_ns_per_op: None,
        }
    }
}

/// One timed micro-workload.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Bench name (`list/Tracking`, `queue/Tracking`, …).
    pub name: String,
    /// Structure shape.
    pub structure: &'static str,
    /// Implementation.
    pub algo: String,
    /// Operations timed.
    pub ops: u64,
    /// Nanoseconds per operation.
    pub ns_per_op: f64,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Instrumented pool events per operation (from a traced Model-mode
    /// run of the same script — the crash sweep's cost currency).
    pub events_per_op: f64,
    /// Executed `pwb`s per operation.
    pub pwb_per_op: f64,
    /// Executed `psync`s+`pfence`s per operation.
    pub psync_per_op: f64,
    /// `pwb`s elided or coalesced away by the flush-elision layer, per
    /// operation ([`pmem::PoolCfg::flushopt`]; 0 on the layer-off rows).
    pub pwb_elided_per_op: f64,
    /// Fences elided inside coalescible regions, per operation (0 when the
    /// layer is off).
    pub psync_coalesced_per_op: f64,
}

/// The instrumentation-overhead benchmark: the primitive loop with all
/// observers off versus trace+lint on.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Iterations of the primitive loop.
    pub iters: u64,
    /// ns per primitive-loop iteration, observers off (the
    /// zero-cost-when-off claim under test).
    pub off_ns_per_op: f64,
    /// ns per iteration with trace+lint enabled.
    pub on_ns_per_op: f64,
    /// `on / off` slowdown.
    pub ratio: f64,
}

/// A full baseline capture.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    /// The configuration that produced it.
    pub cfg: BaselineCfg,
    /// Unix timestamp of the capture.
    pub created_unix: u64,
    /// Timed micro-workloads.
    pub rows: Vec<BenchRow>,
    /// The parallel thread sweep over the queue/stack shapes (plain and
    /// combining variants) on one contended shard.
    pub thread_sweep: Vec<SweepPoint>,
    /// The observers-off/on comparison.
    pub overhead: OverheadRow,
}

// xorshift64* — the same deterministic generator the other harnesses use.
#[inline]
fn next_rng(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

const KEY_RANGE: u64 = 64;
const SEED: u64 = 0xBA5E_11AE;

/// Drives `ops` deterministic mixed set operations (70 % find).
fn set_loop(algo: &dyn crate::adapter::SetAlgo, ctx: &ThreadCtx, ops: u64) {
    let mut rng = SEED;
    for _ in 0..ops {
        let r = next_rng(&mut rng);
        let key = r % KEY_RANGE + 1;
        match (r >> 32) % 10 {
            0..=6 => std::hint::black_box(algo.find(ctx, key)),
            7..=8 => std::hint::black_box(algo.insert(ctx, key)),
            _ => std::hint::black_box(algo.delete(ctx, key)),
        };
    }
}

fn perf_pool(bytes: usize, flushopt: bool) -> Arc<PmemPool> {
    Arc::new(PmemPool::new(PoolCfg {
        max_threads: 8,
        flushopt,
        ..PoolCfg::perf(bytes)
    }))
}

fn model_pool(bytes: usize, trace: bool, flushopt: bool) -> Arc<PmemPool> {
    Arc::new(PmemPool::new(PoolCfg {
        trace,
        max_threads: 8,
        trace_capacity: 64, // the total counter, not the window, is used
        flushopt,
        ..PoolCfg::model(bytes)
    }))
}

/// Times one per-competitor list workload and measures its event density.
/// With `flushopt` the pools arm the flush-elision layer and the row is
/// named `list/<Algo>+flushopt`; `pwb_per_op` then counts only the flushes
/// that actually executed, with the elided balance in `pwb_elided_per_op`.
fn bench_list(kind: AlgoKind, ops: u64, flushopt: bool) -> BenchRow {
    // Timed run: Perf mode, real flushes, observers off.
    let pool = perf_pool(256 << 20, flushopt);
    let algo = build(kind, pool.clone(), 2, KEY_RANGE + 4);
    let ctx = ThreadCtx::new(pool.clone(), 0);
    let mut rng = SEED ^ 0xF00D;
    for _ in 0..KEY_RANGE / 2 {
        algo.insert(&ctx, next_rng(&mut rng) % KEY_RANGE + 1);
    }
    pool.stats_reset();
    let t = Instant::now();
    set_loop(&*algo, &ctx, ops);
    let elapsed = t.elapsed();
    let stats = pool.stats();

    // Event density: a short traced Model-mode replay of the same script.
    let ev_ops = ops.min(512);
    let tp = model_pool(64 << 20, true, flushopt);
    let talgo = build(kind, tp.clone(), 2, KEY_RANGE + 4);
    let tctx = ThreadCtx::new(tp.clone(), 0);
    let mut rng = SEED ^ 0xF00D;
    for _ in 0..KEY_RANGE / 2 {
        talgo.insert(&tctx, next_rng(&mut rng) % KEY_RANGE + 1);
    }
    tp.trace_clear();
    set_loop(&*talgo, &tctx, ev_ops);
    let events = tp.trace_snapshot().total();

    let ns = elapsed.as_nanos() as f64 / ops as f64;
    let suffix = if flushopt { "+flushopt" } else { "" };
    BenchRow {
        name: format!("list/{}{}", kind.name(), suffix),
        structure: StructureKind::List.name(),
        algo: kind.name().to_string(),
        ops,
        ns_per_op: ns,
        ops_per_sec: 1e9 / ns,
        events_per_op: events as f64 / ev_ops as f64,
        pwb_per_op: stats.pwb_total() as f64 / ops as f64,
        psync_per_op: (stats.psync + stats.pfence) as f64 / ops as f64,
        pwb_elided_per_op: stats.pwb_elided_total() as f64 / ops as f64,
        psync_coalesced_per_op: stats.psync_coalesced as f64 / ops as f64,
    }
}

/// Times one Tracking-only structure (queue/stack/exchanger).
fn bench_structure(structure: StructureKind, ops: u64) -> BenchRow {
    let run = |pool: &Arc<PmemPool>, ctx: &ThreadCtx, n: u64| {
        let mut rng = SEED ^ 0xCAFE;
        match structure {
            StructureKind::Queue => {
                let q = tracking::RecoverableQueue::new(pool.clone(), 0);
                for _ in 0..n {
                    if next_rng(&mut rng) % 5 < 3 {
                        q.enqueue(ctx, rng % 1000 + 1);
                    } else {
                        std::hint::black_box(q.dequeue(ctx));
                    }
                }
            }
            StructureKind::Stack => {
                let s = tracking::RecoverableStack::new(pool.clone(), 0);
                for _ in 0..n {
                    if next_rng(&mut rng) % 5 < 3 {
                        s.push(ctx, rng % 1000 + 1);
                    } else {
                        std::hint::black_box(s.pop(ctx));
                    }
                }
            }
            StructureKind::Exchanger => {
                let x = tracking::RecoverableExchanger::new(pool.clone(), 0);
                for i in 0..n {
                    std::hint::black_box(x.exchange(ctx, i + 1, 2));
                }
            }
            StructureKind::Hashmap => {
                // 256-key universe over the default 8-bucket geometry: the
                // timed window includes several level migrations, so the
                // row prices resize amortization, not just bucket ops.
                let m = tracking::RecoverableHashMap::new(pool.clone(), 0);
                for _ in 0..n {
                    let r = next_rng(&mut rng);
                    let key = r % 256 + 1;
                    match (r >> 32) % 10 {
                        0..=5 => std::hint::black_box(m.get(ctx, key)).map(|_| ()),
                        6..=8 => std::hint::black_box(m.put(ctx, key, (r >> 16) | 1)).then_some(()),
                        _ => std::hint::black_box(m.remove(ctx, key)).map(|_| ()),
                    };
                }
            }
            _ => unreachable!("set shapes go through bench_list"),
        }
    };

    let pool = perf_pool(256 << 20, false);
    let ctx = ThreadCtx::new(pool.clone(), 0);
    pool.stats_reset();
    let t = Instant::now();
    run(&pool, &ctx, ops);
    let elapsed = t.elapsed();
    let stats = pool.stats();

    let ev_ops = ops.min(512);
    let tp = model_pool(64 << 20, true, false);
    let tctx = ThreadCtx::new(tp.clone(), 0);
    tp.trace_clear();
    run(&tp, &tctx, ev_ops);
    let events = tp.trace_snapshot().total();

    let ns = elapsed.as_nanos() as f64 / ops as f64;
    BenchRow {
        name: format!("{}/Tracking", structure.name()),
        structure: structure.name(),
        algo: "Tracking".to_string(),
        ops,
        ns_per_op: ns,
        ops_per_sec: 1e9 / ns,
        events_per_op: events as f64 / ev_ops as f64,
        pwb_per_op: stats.pwb_total() as f64 / ops as f64,
        psync_per_op: (stats.psync + stats.pfence) as f64 / ops as f64,
        pwb_elided_per_op: 0.0,
        psync_coalesced_per_op: 0.0,
    }
}

/// Times the recoverable free-list allocator (`pmem::palloc`) phase by
/// phase over `ops` class-1 blocks: free-list pops (`palloc/alloc`), limbo
/// pushes (`palloc/retire`), and the quiescent limbo→free-list drain
/// (`palloc/drain`, reported per drained block). The pool is pre-cycled so
/// the timed alloc phase pops recycled blocks rather than bumping the
/// arena — the number under test is the recycling path the bump arena
/// doesn't have.
fn bench_palloc(ops: u64) -> Vec<BenchRow> {
    const TID: usize = 0;
    fn cycle(
        pool: &Arc<PmemPool>,
        ctx: &ThreadCtx,
        n: u64,
        mut mark: impl FnMut(&str),
    ) -> Vec<pmem::PAddr> {
        // Prime: push n blocks through a full retire+drain cycle so the
        // free list holds exactly n class-1 blocks.
        let mut blocks: Vec<pmem::PAddr> = (0..n).map(|_| ctx.palloc(1)).collect();
        for b in &blocks {
            ctx.retire(*b, 1);
        }
        pool.palloc_drain(TID);
        mark("primed");
        blocks.clear();
        for _ in 0..n {
            blocks.push(ctx.palloc(1));
        }
        mark("alloc");
        for b in &blocks {
            ctx.retire(*b, 1);
        }
        mark("retire");
        pool.palloc_drain(TID);
        mark("drain");
        blocks
    }

    // Timed run: Perf mode, real flushes, observers off.
    let pool = Arc::new(PmemPool::new(PoolCfg {
        max_threads: 8,
        reclaim: true,
        ..PoolCfg::perf(256 << 20)
    }));
    let ctx = ThreadCtx::new(pool.clone(), TID);
    let mut marks: Vec<(std::time::Duration, u64, u64)> = Vec::new();
    {
        let mut last = Instant::now();
        let pool2 = pool.clone();
        cycle(&pool, &ctx, ops, |_| {
            let stats = pool2.stats();
            marks.push((
                last.elapsed(),
                stats.pwb_total(),
                stats.psync + stats.pfence,
            ));
            pool2.stats_reset();
            last = Instant::now();
        });
    }

    // Event density: the same cycle traced on a short Model-mode run.
    let ev_ops = ops.min(512);
    let tp = Arc::new(PmemPool::new(PoolCfg {
        trace: true,
        max_threads: 8,
        reclaim: true,
        trace_capacity: 64,
        ..PoolCfg::model(64 << 20)
    }));
    let tctx = ThreadCtx::new(tp.clone(), TID);
    let mut events: Vec<u64> = Vec::new();
    {
        let tp2 = tp.clone();
        cycle(&tp, &tctx, ev_ops, |_| {
            events.push(tp2.trace_snapshot().total());
            tp2.trace_clear();
        });
    }

    // marks[0]/events[0] are the untimed priming pass; phases follow.
    ["alloc", "retire", "drain"]
        .iter()
        .enumerate()
        .map(|(i, phase)| {
            let (elapsed, pwb, psync) = marks[i + 1];
            let ns = elapsed.as_nanos() as f64 / ops as f64;
            BenchRow {
                name: format!("palloc/{phase}"),
                structure: "palloc",
                algo: "palloc".to_string(),
                ops,
                ns_per_op: ns,
                ops_per_sec: 1e9 / ns,
                events_per_op: events[i + 1] as f64 / ev_ops as f64,
                pwb_per_op: pwb as f64 / ops as f64,
                psync_per_op: psync as f64 / ops as f64,
                pwb_elided_per_op: 0.0,
                psync_coalesced_per_op: 0.0,
            }
        })
        .collect()
}

/// The primitive loop of the overhead benchmark: 4 loads, 2 stores, 1 CAS,
/// 1 pwb, 1 psync per iteration over four resident lines — the instruction
/// mix of a short traversal plus one persisted update.
fn primitive_loop(pool: &PmemPool, iters: u64) {
    let a = pool.alloc_lines(4);
    let b = a.add(8);
    let c = a.add(16);
    let d = a.add(24);
    for i in 0..iters {
        std::hint::black_box(pool.load(a));
        std::hint::black_box(pool.load(b));
        std::hint::black_box(pool.load(c));
        std::hint::black_box(pool.load(d));
        pool.store(a, i);
        pool.store_at(b, i, SiteId(1));
        let _ = std::hint::black_box(pool.cas(c, i, i + 1));
        pool.pwb(a, SiteId(2));
        pool.psync();
    }
}

/// Measures the substrate's own per-event cost with observers off vs on.
///
/// Backend is [`Backend::Noop`] and shadow is off, so the loop times
/// *instrumentation* (flag checks, counters, crash-tick plumbing) rather
/// than flush hardware.
fn bench_overhead(iters: u64) -> OverheadRow {
    let off_pool = PmemPool::new(PoolCfg {
        backend: Backend::Noop,
        ..PoolCfg::perf(1 << 20)
    });
    // warm-up + timed
    primitive_loop(&off_pool, iters / 10);
    let t = Instant::now();
    primitive_loop(&off_pool, iters);
    let off_ns = t.elapsed().as_nanos() as f64 / iters as f64;

    let on_pool = PmemPool::new(PoolCfg {
        backend: Backend::Noop,
        trace: true,
        lint: true,
        trace_capacity: 64,
        ..PoolCfg::perf(1 << 20)
    });
    primitive_loop(&on_pool, iters / 10);
    let t = Instant::now();
    primitive_loop(&on_pool, iters);
    let on_ns = t.elapsed().as_nanos() as f64 / iters as f64;

    OverheadRow {
        iters,
        off_ns_per_op: off_ns,
        on_ns_per_op: on_ns,
        ratio: on_ns / off_ns.max(1e-9),
    }
}

/// Available parallelism of the host, sampled now (not cached): the value
/// recorded in emitted reports must describe the machine *at emit time*,
/// e.g. after the runner shrank a cpuset mid-session.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Does a sweep over `threads_list` oversubscribe this host? When true, the
/// multi-thread sweep points measure scheduler time-slicing, not contention,
/// and must not be compared against points captured on a wider machine.
pub fn degraded_parallelism(threads_list: &[usize]) -> bool {
    threads_list.iter().copied().max().unwrap_or(0) > host_cpus()
}

/// Runs every baseline bench per `cfg`.
pub fn run_baseline(cfg: &BaselineCfg) -> BaselineReport {
    let mut rows = Vec::new();
    let mut lineup = AlgoKind::paper_lineup().to_vec();
    lineup.push(AlgoKind::OneFile);
    for kind in &lineup {
        rows.push(bench_list(*kind, cfg.ops, false));
    }
    // The same list workloads with the flush-elision layer armed: the
    // committed before/after pairs the elision claims are judged against.
    for kind in &lineup {
        rows.push(bench_list(*kind, cfg.ops, true));
    }
    for structure in [
        StructureKind::Queue,
        StructureKind::Stack,
        StructureKind::Exchanger,
        StructureKind::Hashmap,
    ] {
        rows.push(bench_structure(structure, cfg.ops));
    }
    rows.extend(bench_palloc(cfg.ops));
    if degraded_parallelism(&cfg.sweep_threads) {
        eprintln!(
            "WARNING: thread sweep requests up to {} threads but the host exposes \
             only {} CPU(s); multi-thread points measure time-slicing, not \
             contention. The report will carry \"degraded_parallelism\": true.",
            cfg.sweep_threads.iter().max().unwrap_or(&0),
            host_cpus(),
        );
    }
    let thread_sweep = run_thread_sweep(
        &ParSubject::all(),
        &cfg.sweep_threads,
        std::time::Duration::from_millis(cfg.sweep_window_ms),
        512 << 20,
    );
    let overhead = bench_overhead(cfg.overhead_iters);
    BaselineReport {
        cfg: cfg.clone(),
        created_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        rows,
        thread_sweep,
        overhead,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

impl BaselineReport {
    /// Renders the report as the committed `BENCH_*.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"label\": \"{}\",\n", self.cfg.label));
        out.push_str(&format!("  \"created_unix\": {},\n", self.created_unix));
        out.push_str(&format!("  \"ops_per_bench\": {},\n", self.cfg.ops));
        out.push_str(&format!("  \"host_cpus\": {},\n", host_cpus()));
        out.push_str(&format!(
            "  \"degraded_parallelism\": {},\n",
            degraded_parallelism(&self.cfg.sweep_threads)
        ));
        out.push_str("  \"benches\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"structure\": \"{}\", \"algo\": \"{}\", \
                 \"ops\": {}, \"ns_per_op\": {}, \"ops_per_sec\": {}, \
                 \"events_per_op\": {}, \"pwb_per_op\": {}, \"psync_per_op\": {}, \
                 \"pwb_elided_per_op\": {}, \"psync_coalesced_per_op\": {}}}{}\n",
                r.name,
                r.structure,
                r.algo,
                r.ops,
                json_f(r.ns_per_op),
                json_f(r.ops_per_sec),
                json_f(r.events_per_op),
                json_f(r.pwb_per_op),
                json_f(r.psync_per_op),
                json_f(r.pwb_elided_per_op),
                json_f(r.psync_coalesced_per_op),
                if i + 1 == self.rows.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"thread_sweep\": [\n");
        for (i, p) in self.thread_sweep.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&p.to_json());
            out.push_str(if i + 1 == self.thread_sweep.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"overhead\": {\n");
        out.push_str(&format!(
            "    \"iters\": {},\n    \"off_ns_per_op\": {},\n    \"on_ns_per_op\": {},\n    \"ratio\": {}",
            self.overhead.iters,
            json_f(self.overhead.off_ns_per_op),
            json_f(self.overhead.on_ns_per_op),
            json_f(self.overhead.ratio),
        ));
        if let Some(prev) = self.cfg.prev_off_ns_per_op {
            out.push_str(&format!(
                ",\n    \"prev_off_ns_per_op\": {},\n    \"off_vs_prev\": {}",
                json_f(prev),
                json_f(self.overhead.off_ns_per_op / prev.max(1e-9)),
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Console table.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "{:<24} {:>10} {:>12} {:>10} {:>8} {:>8} {:>8} {:>8}\n",
            "bench", "ns/op", "ops/sec", "events/op", "pwb/op", "psync/op", "elide/op", "coal/op"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<24} {:>10.1} {:>12.0} {:>10.1} {:>8.2} {:>8.2} {:>8.2} {:>8.2}\n",
                r.name,
                r.ns_per_op,
                r.ops_per_sec,
                r.events_per_op,
                r.pwb_per_op,
                r.psync_per_op,
                r.pwb_elided_per_op,
                r.psync_coalesced_per_op
            ));
        }
        if !self.thread_sweep.is_empty() {
            out.push_str(&format!(
                "{:<18} {:>3} {:>12} {:>12} {:>8} {:>9}\n",
                "thread sweep", "thr", "ops/sec", "ops/sec/thr", "pwb/op", "psync/op"
            ));
            for p in &self.thread_sweep {
                out.push_str(&format!(
                    "{:<18} {:>3} {:>12.0} {:>12.0} {:>8.2} {:>9.2}\n",
                    p.subject,
                    p.threads,
                    p.ops_per_sec,
                    p.per_thread_ops_per_sec,
                    p.pwb_per_op,
                    p.psync_per_op
                ));
            }
        }
        out.push_str(&format!(
            "instrumentation overhead: off {:.2} ns/iter, on {:.2} ns/iter (x{:.1})",
            self.overhead.off_ns_per_op, self.overhead.on_ns_per_op, self.overhead.ratio
        ));
        if let Some(prev) = self.cfg.prev_off_ns_per_op {
            out.push_str(&format!(
                "; off vs prev {:.2} ns = x{:.2}",
                prev,
                self.overhead.off_ns_per_op / prev.max(1e-9)
            ));
        }
        out.push('\n');
        out
    }
}

/// Extracts the first `"key": <number>` occurrence from a JSON document
/// (enough structure awareness to read our own schema back without a JSON
/// dependency).
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Per-row `(name, pwb_per_op, psync_per_op)` triples of a baseline
/// document's `benches` section — the counters the `--prev` density
/// comparison runs on (hand-rolled like [`extract_number`]; thread-sweep
/// points use `subject` rather than `name` and are skipped naturally).
pub fn bench_rows_from_json(json: &str) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    for chunk in json.split("{\"name\": \"").skip(1) {
        let Some(name_end) = chunk.find('"') else {
            continue;
        };
        let body = &chunk[..chunk.find('}').unwrap_or(chunk.len())];
        if let (Some(pwb), Some(psync)) = (
            extract_number(body, "pwb_per_op"),
            extract_number(body, "psync_per_op"),
        ) {
            out.push((chunk[..name_end].to_string(), pwb, psync));
        }
    }
    out
}

/// Compares per-row persistence-instruction densities against a previous
/// report's rows: any same-named row whose executed `pwb`/op or `psync`/op
/// grew by more than `tol` (relative) yields a warning line. Unlike
/// wall-clock numbers these counters are deterministic functions of the
/// scripted workload, so a movement is a placement change (or an elision
/// that stopped working), not noise — but new rows and removed rows are
/// normal across schema growth, so this warns rather than fails.
pub fn compare_bench_rows(
    prev: &[(String, f64, f64)],
    cur: &[BenchRow],
    tol: f64,
) -> (Vec<String>, usize) {
    let mut lines = Vec::new();
    let mut warnings = 0;
    for r in cur {
        let Some((_, ppwb, ppsync)) = prev.iter().find(|(n, _, _)| *n == r.name) else {
            continue;
        };
        for (what, prev_v, cur_v) in [
            ("pwb/op", *ppwb, r.pwb_per_op),
            ("psync/op", *ppsync, r.psync_per_op),
        ] {
            if prev_v <= 0.0 {
                continue;
            }
            let rel = cur_v / prev_v - 1.0;
            if rel > tol {
                lines.push(format!(
                    "WARNING: {} {what} regressed {prev_v:.2} -> {cur_v:.2} ({:+.1}%)",
                    r.name,
                    rel * 100.0
                ));
                warnings += 1;
            }
        }
    }
    (lines, warnings)
}

/// Validates that `json` looks like a `bench-baseline/v1` document: schema
/// tag, non-empty bench list with the required numeric fields, and an
/// overhead block. Returns a description of the first problem found.
///
/// The `thread_sweep` section (added in PR 7) is validated when present —
/// it must then be non-empty with finite numerics — but its absence is
/// accepted, so pre-PR-7 committed reports still pass (the schema grows
/// additively; fresh reports always include it).
pub fn validate_json(json: &str) -> Result<(), String> {
    if !json.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("missing schema tag {SCHEMA:?}"));
    }
    for key in ["\"benches\": [", "\"overhead\": {"] {
        if !json.contains(key) {
            return Err(format!("missing section {key}"));
        }
    }
    if json.contains("\"thread_sweep\": [") {
        if json.matches("\"subject\":").count() == 0 {
            return Err("thread_sweep section present but empty".into());
        }
        for key in ["per_thread_ops_per_sec"] {
            match extract_number(json, key) {
                Some(v) if v.is_finite() && v >= 0.0 => {}
                Some(v) => return Err(format!("field {key} has non-finite/negative value {v}")),
                None => return Err(format!("missing numeric field {key}")),
            }
        }
    }
    let benches = json.matches("\"ns_per_op\":").count();
    if benches < 2 {
        return Err("fewer than one bench row plus overhead".into());
    }
    for key in [
        "ops_per_sec",
        "events_per_op",
        "pwb_per_op",
        "psync_per_op",
        "off_ns_per_op",
        "on_ns_per_op",
        "ratio",
    ] {
        match extract_number(json, key) {
            Some(v) if v.is_finite() && v >= 0.0 => {}
            Some(v) => return Err(format!("field {key} has non-finite/negative value {v}")),
            None => return Err(format!("missing numeric field {key}")),
        }
    }
    // Elision densities (additive since PR 9): validated when present, so
    // earlier committed reports still pass; fresh reports always carry them.
    if json.contains("\"pwb_elided_per_op\":") {
        for key in ["pwb_elided_per_op", "psync_coalesced_per_op"] {
            match extract_number(json, key) {
                Some(v) if v.is_finite() && v >= 0.0 => {}
                Some(v) => return Err(format!("field {key} has non-finite/negative value {v}")),
                None => return Err(format!("missing numeric field {key}")),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_roundtrips_schema() {
        let mut cfg = BaselineCfg::smoke("unit");
        cfg.ops = 64;
        cfg.overhead_iters = 2_000;
        cfg.sweep_threads = vec![1, 2];
        cfg.sweep_window_ms = 20;
        cfg.prev_off_ns_per_op = Some(12.5);
        let report = run_baseline(&cfg);
        assert_eq!(
            report.rows.len(),
            19,
            "6 list competitors x (flushopt off + on) + 4 structures + 3 allocator phases"
        );
        for r in &report.rows {
            assert!(r.ns_per_op > 0.0, "{} measured nothing", r.name);
            assert!(r.events_per_op > 0.0, "{} counted no events", r.name);
        }
        // The elision layer only ever removes work: a +flushopt row must
        // execute no more pwbs than its layer-off twin, and the Capsules
        // (Izraelevitz-transformed) list must show actual elision even on
        // the tiny unit-test workload.
        for r in &report.rows {
            let Some(base) = r.name.strip_suffix("+flushopt") else {
                assert_eq!(
                    r.pwb_elided_per_op, 0.0,
                    "{} elided pwbs with the layer off",
                    r.name
                );
                continue;
            };
            let twin = report
                .rows
                .iter()
                .find(|t| t.name == base)
                .expect("every +flushopt row has a layer-off twin");
            assert!(
                r.pwb_per_op <= twin.pwb_per_op + 1e-9,
                "{}: executed pwb/op grew under flushopt ({} -> {})",
                r.name,
                twin.pwb_per_op,
                r.pwb_per_op
            );
            // Issued-count invariance: the layer moves and removes
            // *executions*, never what the algorithm asked for, so
            // executed + elided must reproduce the layer-off count
            // exactly (and likewise for fences).
            assert!(
                (r.pwb_per_op + r.pwb_elided_per_op - twin.pwb_per_op).abs() < 1e-9,
                "{}: issued pwb/op drifted under flushopt ({} + {} != {})",
                r.name,
                r.pwb_per_op,
                r.pwb_elided_per_op,
                twin.pwb_per_op
            );
            assert!(
                (r.psync_per_op + r.psync_coalesced_per_op - twin.psync_per_op).abs() < 1e-9,
                "{}: issued psync/op drifted under flushopt ({} + {} != {})",
                r.name,
                r.psync_per_op,
                r.psync_coalesced_per_op,
                twin.psync_per_op
            );
        }
        let cap = report
            .rows
            .iter()
            .find(|r| r.name == "list/Capsules+flushopt")
            .unwrap();
        assert!(
            cap.pwb_elided_per_op > 0.0,
            "Capsules Full-persist traverse must elide some pwbs"
        );
        assert_eq!(
            report.thread_sweep.len(),
            10,
            "5 parallel subjects x 2 thread counts"
        );
        for p in &report.thread_sweep {
            assert!(p.ops > 0, "{} @{}T completed no ops", p.subject, p.threads);
        }
        assert!(report.overhead.off_ns_per_op > 0.0);
        let json = report.to_json();
        validate_json(&json).expect("self-produced JSON must validate");
        assert_eq!(extract_number(&json, "prev_off_ns_per_op"), Some(12.5));
        let parsed = crate::parallel::sweep_points_from_json(&json);
        assert_eq!(parsed.len(), 10, "sweep points must parse back");
        assert!(report.to_text().contains("list/Tracking"));
        assert!(report.to_text().contains("queue/Combining"));
    }

    #[test]
    fn bench_row_density_comparison_flags_regressions() {
        let prev_doc = "{\"benches\": [\n    \
            {\"name\": \"list/Tracking\", \"pwb_per_op\": 6.0, \"psync_per_op\": 3.4},\n    \
            {\"name\": \"list/Capsules+flushopt\", \"pwb_per_op\": 5.0, \"psync_per_op\": 4.0}\n  ]}";
        let prev = bench_rows_from_json(prev_doc);
        assert_eq!(prev.len(), 2);
        assert_eq!(prev[0], ("list/Tracking".to_string(), 6.0, 3.4));
        let row = |name: &str, pwb: f64, psync: f64| BenchRow {
            name: name.to_string(),
            structure: "list",
            algo: "x".to_string(),
            ops: 1,
            ns_per_op: 1.0,
            ops_per_sec: 1.0,
            events_per_op: 1.0,
            pwb_per_op: pwb,
            psync_per_op: psync,
            pwb_elided_per_op: 0.0,
            psync_coalesced_per_op: 0.0,
        };
        // Unchanged + unknown rows: silent. A >5% pwb/op growth: flagged.
        let (lines, warnings) = compare_bench_rows(
            &prev,
            &[
                row("list/Tracking", 6.0, 3.4),
                row("queue/Tracking", 99.0, 99.0),
            ],
            0.05,
        );
        assert_eq!(warnings, 0, "{lines:?}");
        let (lines, warnings) =
            compare_bench_rows(&prev, &[row("list/Capsules+flushopt", 9.0, 4.0)], 0.05);
        assert_eq!(warnings, 1);
        assert!(lines[0].contains("list/Capsules+flushopt"), "{lines:?}");
        assert!(lines[0].contains("pwb/op"), "{lines:?}");
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate_json("{}").is_err());
        assert!(validate_json("{\"schema\": \"bench-baseline/v1\"}").is_err());
    }

    #[test]
    fn extract_number_reads_fields() {
        let doc = "{\"a\": 3.25, \"b\": -1, \"c\": \"x\"}";
        assert_eq!(extract_number(doc, "a"), Some(3.25));
        assert_eq!(extract_number(doc, "b"), Some(-1.0));
        assert_eq!(extract_number(doc, "c"), None);
        assert_eq!(extract_number(doc, "zz"), None);
    }
}
