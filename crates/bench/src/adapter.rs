//! A uniform set interface over all evaluated implementations.

use std::sync::Arc;

use pmem::{PmemPool, SiteId, ThreadCtx};

/// The concurrent-set operations every evaluated algorithm exposes, plus
/// the metadata the categorization experiments need (its `pwb` site table).
pub trait SetAlgo: Send + Sync {
    /// Inserts `key`; `false` if present.
    fn insert(&self, ctx: &ThreadCtx, key: u64) -> bool;
    /// Deletes `key`; `false` if absent.
    fn delete(&self, ctx: &ThreadCtx, key: u64) -> bool;
    /// Is `key` present?
    fn find(&self, ctx: &ThreadCtx, key: u64) -> bool;
    /// [`Self::insert`] without the system's `CP_q := 0` pre-step (crash
    /// harnesses call [`ThreadCtx::begin_op`] themselves).
    fn insert_started(&self, ctx: &ThreadCtx, key: u64) -> bool;
    /// [`Self::delete`] without the system's `CP_q := 0` pre-step.
    fn delete_started(&self, ctx: &ThreadCtx, key: u64) -> bool;
    /// `Insert.Recover` — the recovery function after a crash during insert.
    fn recover_insert(&self, ctx: &ThreadCtx, key: u64) -> bool;
    /// `Delete.Recover`.
    fn recover_delete(&self, ctx: &ThreadCtx, key: u64) -> bool;
    /// `Find.Recover`.
    fn recover_find(&self, ctx: &ThreadCtx, key: u64) -> bool;
    /// Post-crash structural repair (Romulus' region recovery); a no-op for
    /// the lock-free algorithms.
    fn recover_structure(&self) {}
    /// The algorithm's `pwb` call sites (id, name).
    fn sites(&self) -> &'static [(SiteId, &'static str)];
    /// Quiescent key count (sanity checking between runs).
    fn len(&self) -> usize;
    /// Is the set empty (quiescent)?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The implementations of the paper's evaluation, Figure 3a's legend.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AlgoKind {
    /// The paper's contribution applied to the sorted linked list (§4).
    Tracking,
    /// Tracking applied to the external BST (§6) — extra datapoint, not in
    /// the paper's figures.
    TrackingBst,
    /// Ablation: Tracking list with the naive flush-every-shared-read
    /// placement (what the paper's persistence-instruction scheme avoids).
    TrackingNaive,
    /// Ablation: Tracking list without the read-only optimization.
    TrackingNoReadOpt,
    /// Flat-combining detectable variant of the queue/stack shapes
    /// (`tracking::CombiningQueue` / `CombiningStack`) — not a set
    /// implementation; only the queue/stack sweeps and the explorer list
    /// it (see [`StructureKind::lineup`]).
    TrackingComb,
    /// Capsules + full durability transformation.
    Capsules,
    /// Hand-tuned Capsules-Opt.
    CapsulesOpt,
    /// Romulus-style blocking durable TM.
    Romulus,
    /// RedoOpt-style wait-free universal construction.
    RedoOpt,
    /// OneFile-style wait-free persistent TM (measured in the paper but
    /// dominated by RedoOpt, hence absent from its figures).
    OneFile,
}

impl AlgoKind {
    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<AlgoKind> {
        Some(match s {
            "tracking" => AlgoKind::Tracking,
            "tracking-bst" => AlgoKind::TrackingBst,
            "tracking-naive" => AlgoKind::TrackingNaive,
            "tracking-no-read-opt" => AlgoKind::TrackingNoReadOpt,
            "tracking-comb" => AlgoKind::TrackingComb,
            "capsules" => AlgoKind::Capsules,
            "capsules-opt" => AlgoKind::CapsulesOpt,
            "romulus" => AlgoKind::Romulus,
            "redo-opt" | "redoopt" => AlgoKind::RedoOpt,
            "onefile" | "one-file" => AlgoKind::OneFile,
            _ => return None,
        })
    }

    /// Display name (matches the paper's legends).
    pub fn name(self) -> &'static str {
        match self {
            AlgoKind::Tracking => "Tracking",
            AlgoKind::TrackingBst => "Tracking-BST",
            AlgoKind::TrackingNaive => "Tracking[naive-flush]",
            AlgoKind::TrackingNoReadOpt => "Tracking[no-read-opt]",
            AlgoKind::TrackingComb => "Tracking-Comb",
            AlgoKind::Capsules => "Capsules",
            AlgoKind::CapsulesOpt => "Capsules-Opt",
            AlgoKind::Romulus => "Romulus",
            AlgoKind::RedoOpt => "RedoOpt",
            AlgoKind::OneFile => "OneFile",
        }
    }

    /// The five list-based competitors of Figures 3–4.
    pub fn paper_lineup() -> [AlgoKind; 5] {
        [
            AlgoKind::Tracking,
            AlgoKind::Capsules,
            AlgoKind::CapsulesOpt,
            AlgoKind::Romulus,
            AlgoKind::RedoOpt,
        ]
    }

    /// Can this implementation run under the cooperative schedule explorer
    /// (`bench::explore`), which parks every virtual thread except one?
    ///
    /// `true` for everything. The lock-free competitors qualify outright:
    /// the granted thread finishes its operation in finitely many
    /// instrumented events no matter who stays parked. Romulus — the one
    /// blocking design — qualifies through the *spin channel*
    /// ([`pmem::yield_spin`]): its writer-mutex wait and its seqlock
    /// reader spin both hand the explorer's turn back on every wait-loop
    /// iteration, so the lock holder (or active writer) can be scheduled
    /// to completion instead of deadlocking the turn protocol. Spin
    /// yields are not pool events: they advance neither the event count
    /// nor the crash countdown, keeping crash-point indexing identical
    /// between a count run and its replays.
    ///
    /// The combining variant never needed the spin channel: it waits on
    /// instrumented pool loads (the request/ready words and the combiner
    /// lock), so every wait-loop iteration is already a yield point, and
    /// a parked combiner's lock is observably free — any granted waiter
    /// takes over as combiner rather than livelocking.
    pub fn schedulable(self) -> bool {
        true
    }
}

/// The recoverable structure shapes the crash sweep verifies.
///
/// The set shapes (`List`, `Bst`) go through the [`SetAlgo`] adapters built
/// by [`build`]; the non-set shapes are the Tracking-only structures
/// (`tracking::RecoverableQueue` / `RecoverableStack` /
/// `RecoverableExchanger` / `RecoverableHashMap`), whose recovery entry
/// points (`recover_enqueue`, `recover_pop`, `recover_exchange`,
/// `recover_put`, …) the sweep engine drives directly.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StructureKind {
    /// Sorted linked-list set (the paper's running example, §4).
    List,
    /// External binary search tree set (§6).
    Bst,
    /// Durable FIFO queue.
    Queue,
    /// Durable LIFO stack.
    Stack,
    /// Durable elimination exchanger.
    Exchanger,
    /// Resizable hash-table map (`tracking::RecoverableHashMap`): bucket
    /// ops *and* the Clevel-style resize protocol run through Tracking, so
    /// the sweep injects crashes mid-migration as well as mid-operation.
    Hashmap,
}

impl StructureKind {
    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<StructureKind> {
        Some(match s {
            "list" => StructureKind::List,
            "bst" => StructureKind::Bst,
            "queue" => StructureKind::Queue,
            "stack" => StructureKind::Stack,
            "exchanger" => StructureKind::Exchanger,
            "hashmap" | "map" => StructureKind::Hashmap,
            _ => return None,
        })
    }

    /// CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            StructureKind::List => "list",
            StructureKind::Bst => "bst",
            StructureKind::Queue => "queue",
            StructureKind::Stack => "stack",
            StructureKind::Exchanger => "exchanger",
            StructureKind::Hashmap => "hashmap",
        }
    }

    /// Every shape, in sweep order.
    pub fn all() -> [StructureKind; 6] {
        [
            StructureKind::List,
            StructureKind::Bst,
            StructureKind::Queue,
            StructureKind::Stack,
            StructureKind::Exchanger,
            StructureKind::Hashmap,
        ]
    }

    /// The algorithms a sweep of this shape covers: every list competitor
    /// for `List`, the Tracking implementation only for the shapes that
    /// exist solely as Tracking structures.
    pub fn lineup(self) -> Vec<AlgoKind> {
        match self {
            StructureKind::List => AlgoKind::paper_lineup().to_vec(),
            StructureKind::Bst => vec![AlgoKind::TrackingBst],
            StructureKind::Queue | StructureKind::Stack => {
                vec![AlgoKind::Tracking, AlgoKind::TrackingComb]
            }
            StructureKind::Exchanger | StructureKind::Hashmap => vec![AlgoKind::Tracking],
        }
    }

    /// [`Self::lineup`] restricted to the implementations the schedule
    /// explorer can serialize (see [`AlgoKind::schedulable`]).
    pub fn explore_lineup(self) -> Vec<AlgoKind> {
        self.lineup()
            .into_iter()
            .filter(|a| a.schedulable())
            .collect()
    }
}

struct TrackingAdapter(tracking::RecoverableList);

impl SetAlgo for TrackingAdapter {
    fn insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.insert(ctx, key)
    }
    fn delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.delete(ctx, key)
    }
    fn find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.find(ctx, key)
    }
    fn insert_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.insert_started(ctx, key)
    }
    fn delete_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.delete_started(ctx, key)
    }
    fn recover_insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_insert(ctx, key)
    }
    fn recover_delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_delete(ctx, key)
    }
    fn recover_find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_find(ctx, key)
    }
    fn sites(&self) -> &'static [(SiteId, &'static str)] {
        &tracking::sites::SITES
    }
    fn len(&self) -> usize {
        self.0.keys().len()
    }
}

struct TrackingBstAdapter(tracking::RecoverableBst);

impl SetAlgo for TrackingBstAdapter {
    fn insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.insert(ctx, key)
    }
    fn delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.delete(ctx, key)
    }
    fn find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.find(ctx, key)
    }
    fn insert_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.insert_started(ctx, key)
    }
    fn delete_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.delete_started(ctx, key)
    }
    fn recover_insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_insert(ctx, key)
    }
    fn recover_delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_delete(ctx, key)
    }
    fn recover_find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_find(ctx, key)
    }
    fn sites(&self) -> &'static [(SiteId, &'static str)] {
        &tracking::sites::SITES
    }
    fn len(&self) -> usize {
        self.0.keys().len()
    }
}

struct CapsulesAdapter(capsules::CapsulesList);

impl SetAlgo for CapsulesAdapter {
    fn insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.insert(ctx, key)
    }
    fn delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.delete(ctx, key)
    }
    fn find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.find(ctx, key)
    }
    fn insert_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.insert_started(ctx, key)
    }
    fn delete_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.delete_started(ctx, key)
    }
    fn recover_insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_insert(ctx, key)
    }
    fn recover_delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_delete(ctx, key)
    }
    fn recover_find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_find(ctx, key)
    }
    fn sites(&self) -> &'static [(SiteId, &'static str)] {
        &capsules::sites::SITES
    }
    fn len(&self) -> usize {
        self.0.keys().len()
    }
}

struct RomulusAdapter(romulus::RomulusList);

impl SetAlgo for RomulusAdapter {
    fn insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.insert(ctx, key)
    }
    fn delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.delete(ctx, key)
    }
    fn find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.find(ctx, key)
    }
    fn insert_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.insert_started(ctx, key)
    }
    fn delete_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.delete_started(ctx, key)
    }
    fn recover_insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_insert(ctx, key)
    }
    fn recover_delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_delete(ctx, key)
    }
    fn recover_find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_find(ctx, key)
    }
    fn recover_structure(&self) {
        self.0.tm().recover();
    }
    fn sites(&self) -> &'static [(SiteId, &'static str)] {
        &romulus::sites::SITES
    }
    fn len(&self) -> usize {
        self.0.keys().len()
    }
}

struct RedoAdapter(redo::RedoSet);

impl SetAlgo for RedoAdapter {
    fn insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.insert(ctx, key)
    }
    fn delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.delete(ctx, key)
    }
    fn find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.find(ctx, key)
    }
    fn insert_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.insert_started(ctx, key)
    }
    fn delete_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.delete_started(ctx, key)
    }
    fn recover_insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_insert(ctx, key)
    }
    fn recover_delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_delete(ctx, key)
    }
    fn recover_find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_find(ctx, key)
    }
    fn sites(&self) -> &'static [(SiteId, &'static str)] {
        &redo::sites::SITES
    }
    fn len(&self) -> usize {
        self.0.keys().len()
    }
}

struct OneFileAdapter(onefile::OneFileList);

impl SetAlgo for OneFileAdapter {
    fn insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.insert(ctx, key)
    }
    fn delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.delete(ctx, key)
    }
    fn find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.find(ctx, key)
    }
    fn insert_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.insert_started(ctx, key)
    }
    fn delete_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.delete_started(ctx, key)
    }
    fn recover_insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_insert(ctx, key)
    }
    fn recover_delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_delete(ctx, key)
    }
    fn recover_find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.0.recover_find(ctx, key)
    }
    fn sites(&self) -> &'static [(SiteId, &'static str)] {
        &onefile::sites::SITES
    }
    fn len(&self) -> usize {
        self.0.keys().len()
    }
}

/// Builds the structure of `kind` in `pool` (rooted at root cell 0).
/// `threads` and `key_range` size the per-thread tables of the algorithms
/// that need them (Romulus' region, RedoOpt's state object).
pub fn build(
    kind: AlgoKind,
    pool: Arc<PmemPool>,
    threads: usize,
    key_range: u64,
) -> Arc<dyn SetAlgo> {
    match kind {
        AlgoKind::TrackingComb => {
            panic!("Tracking-Comb is a queue/stack variant, not a set implementation")
        }
        AlgoKind::Tracking => Arc::new(TrackingAdapter(tracking::RecoverableList::new(pool, 0))),
        AlgoKind::TrackingNaive => {
            Arc::new(TrackingAdapter(tracking::RecoverableList::with_config(
                pool,
                0,
                tracking::list::ListConfig {
                    traversal_flush: true,
                    read_only_opt: true,
                },
            )))
        }
        AlgoKind::TrackingNoReadOpt => {
            Arc::new(TrackingAdapter(tracking::RecoverableList::with_config(
                pool,
                0,
                tracking::list::ListConfig {
                    traversal_flush: false,
                    read_only_opt: false,
                },
            )))
        }
        AlgoKind::TrackingBst => {
            Arc::new(TrackingBstAdapter(tracking::RecoverableBst::new(pool, 0)))
        }
        AlgoKind::Capsules => Arc::new(CapsulesAdapter(capsules::CapsulesList::new(
            pool,
            0,
            capsules::PersistPolicy::Full,
        ))),
        AlgoKind::CapsulesOpt => Arc::new(CapsulesAdapter(capsules::CapsulesList::new(
            pool,
            0,
            capsules::PersistPolicy::Opt,
        ))),
        AlgoKind::Romulus => Arc::new(RomulusAdapter(romulus::RomulusList::new(
            pool,
            0,
            key_range as usize + 16,
        ))),
        AlgoKind::RedoOpt => Arc::new(RedoAdapter(redo::RedoSet::new(
            pool,
            0,
            threads,
            key_range as usize + 16,
        ))),
        AlgoKind::OneFile => Arc::new(OneFileAdapter(onefile::OneFileList::new(
            pool,
            0,
            threads,
            key_range as usize + 16,
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PoolCfg;

    #[test]
    fn every_kind_builds_and_operates() {
        for kind in [
            AlgoKind::Tracking,
            AlgoKind::TrackingBst,
            AlgoKind::TrackingNaive,
            AlgoKind::TrackingNoReadOpt,
            AlgoKind::Capsules,
            AlgoKind::CapsulesOpt,
            AlgoKind::Romulus,
            AlgoKind::RedoOpt,
            AlgoKind::OneFile,
        ] {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(32 << 20)));
            let ctx = ThreadCtx::new(pool.clone(), 0);
            let s = build(kind, pool, 4, 500);
            assert!(s.insert(&ctx, 10), "{kind:?}");
            assert!(s.find(&ctx, 10), "{kind:?}");
            assert!(s.delete(&ctx, 10), "{kind:?}");
            assert!(!s.find(&ctx, 10), "{kind:?}");
            assert!(s.is_empty(), "{kind:?}");
            assert!(!s.sites().is_empty());
        }
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in AlgoKind::paper_lineup() {
            let lower = kind.name().to_lowercase();
            assert_eq!(AlgoKind::parse(&lower), Some(kind));
        }
        assert_eq!(AlgoKind::parse("nope"), None);
    }
}
