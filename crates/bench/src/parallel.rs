//! Genuinely parallel throughput engine: N real OS threads running
//! concurrently against sharded structure roots, with per-thread
//! [`pmem::SubArena`] allocation.
//!
//! This is the scaling counterpart to [`crate::workload`]. That engine
//! times the paper's *set* competitors; this one times the queue/stack
//! shapes — the structures with a single contended root — in both their
//! plain Tracking form and the flat-combining variants
//! ([`tracking::CombiningQueue`] / [`tracking::CombiningStack`]), which
//! exist precisely to change the *per-operation persistence bill* under
//! contention, plus the resizable [`tracking::RecoverableHashMap`]
//! (contended puts that occasionally co-drive a level migration — the
//! one subject whose work per op changes with the thread count). Three
//! levers are exposed:
//!
//! * **threads** — real `std::thread` workers, no turn monitor, no
//!   serialization. On a single-core host the threads time-slice, which
//!   still exercises every synchronization path; the count-based
//!   `pwb`/`psync`-per-op numbers are scheduling-independent and are the
//!   primary cross-variant signal (see EXPERIMENTS.md, "Scaling &
//!   throughput methodology").
//! * **shards** — the structure is replicated over `shards` root cells
//!   and thread *t* works shard `t % shards`. One shard is the fully
//!   contended configuration the combining variants target; `shards ==
//!   threads` is the embarrassingly parallel upper bound.
//! * **sub-arenas** — each worker installs a thread-private
//!   [`pmem::SubArena`] so node/descriptor allocation bumps a local
//!   cursor and touches the global one only on chunk refills
//!   (`chunk_lines == 0` disables this, for measuring the contended
//!   cursor).
//!
//! The workload is the storm tests' 50/50 producer/consumer mix with a
//! small prefill, so pops mostly succeed and both code paths stay hot.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use pmem::{install_thread_arena, uninstall_thread_arena, SubArena};
use pmem::{Backend, PmemPool, PoolCfg, ThreadCtx};
use tracking::{
    CombiningQueue, CombiningStack, RecoverableHashMap, RecoverableQueue, RecoverableStack,
};

// xorshift64* — the deterministic generator every harness here uses.
#[inline]
fn next_rng(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Which structure a parallel run drives.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ParSubject {
    /// Plain Tracking MS-style queue.
    Queue,
    /// Plain Tracking Treiber-style stack.
    Stack,
    /// Flat-combining detectable queue.
    CombQueue,
    /// Flat-combining detectable stack.
    CombStack,
    /// Resizable Tracking hash map. Unlike the single-root queue/stack
    /// shapes, contention here spreads over buckets — the interesting
    /// parallel behavior is threads *helping* a concurrent resize.
    Hashmap,
}

impl ParSubject {
    /// All subjects, in report order.
    pub fn all() -> [ParSubject; 5] {
        [
            ParSubject::Queue,
            ParSubject::CombQueue,
            ParSubject::Stack,
            ParSubject::CombStack,
            ParSubject::Hashmap,
        ]
    }

    /// Stable report name (also the JSON `subject` field).
    pub fn name(&self) -> &'static str {
        match self {
            ParSubject::Queue => "queue/Tracking",
            ParSubject::Stack => "stack/Tracking",
            ParSubject::CombQueue => "queue/Combining",
            ParSubject::CombStack => "stack/Combining",
            ParSubject::Hashmap => "hashmap/Tracking",
        }
    }

    /// Parses a `--subjects` CLI token (the name or a short alias).
    pub fn parse(s: &str) -> Option<ParSubject> {
        match s {
            "queue" | "queue/Tracking" => Some(ParSubject::Queue),
            "stack" | "stack/Tracking" => Some(ParSubject::Stack),
            "comb-queue" | "queue/Combining" => Some(ParSubject::CombQueue),
            "comb-stack" | "stack/Combining" => Some(ParSubject::CombStack),
            "hashmap" | "hashmap/Tracking" => Some(ParSubject::Hashmap),
            _ => None,
        }
    }
}

/// One parallel-run configuration.
#[derive(Clone, Debug)]
pub struct ParallelCfg {
    /// Structure under test.
    pub subject: ParSubject,
    /// Real OS worker threads.
    pub threads: usize,
    /// Structure replicas (root cells); thread `t` drives shard
    /// `t % shards`. Capped at [`pmem::NUM_ROOTS`].
    pub shards: usize,
    /// Timed-window length.
    pub duration: Duration,
    /// Pool capacity in bytes.
    pub pool_bytes: usize,
    /// Persistence backend.
    pub backend: Backend,
    /// RNG seed.
    pub seed: u64,
    /// Sub-arena chunk size in lines (0 = no per-thread arena).
    pub chunk_lines: usize,
    /// Values prefilled per shard (so pops mostly succeed).
    pub prefill: u64,
    /// Arm the flush-elision layer ([`pmem::PoolCfg::flushopt`]) on the
    /// shared pool. Default `false`.
    pub flushopt: bool,
}

impl ParallelCfg {
    /// Defaults for `subject` at `threads` threads: one contended shard,
    /// Clflush backend, per-thread arenas on.
    pub fn contended(subject: ParSubject, threads: usize) -> ParallelCfg {
        ParallelCfg {
            subject,
            threads,
            shards: 1,
            duration: Duration::from_millis(200),
            pool_bytes: 1 << 30,
            backend: Backend::Clflush,
            seed: 0x7A11E1,
            chunk_lines: pmem::DEFAULT_CHUNK_LINES,
            prefill: 256,
            flushopt: false,
        }
    }
}

/// What one parallel run measured.
#[derive(Clone, Debug)]
pub struct ParallelResult {
    /// Subject name.
    pub subject: &'static str,
    /// Worker threads.
    pub threads: usize,
    /// Shards used (post-cap).
    pub shards: usize,
    /// Completed operations across all threads.
    pub ops: u64,
    /// Completed operations per thread.
    pub per_thread_ops: Vec<u64>,
    /// Actual timed-window length.
    pub elapsed: Duration,
    /// `pwb` executions in the window.
    pub pwb: u64,
    /// `psync` + `pfence` executions in the window.
    pub psync: u64,
    /// `pwb`s elided/coalesced by the flush-elision layer in the window
    /// (0 unless the pool was built with [`pmem::PoolCfg::flushopt`]).
    pub pwb_elided: u64,
    /// Fences elided inside coalescible regions in the window.
    pub psync_coalesced: u64,
    /// Sub-arena chunk refills across all workers (global-cursor touches).
    pub arena_refills: u64,
    /// Lines stranded in abandoned sub-arena chunks.
    pub arena_waste_lines: u64,
}

impl ParallelResult {
    /// Aggregate operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Mean per-thread operations per second.
    pub fn per_thread_ops_per_sec(&self) -> f64 {
        self.ops_per_sec() / self.threads.max(1) as f64
    }

    /// `pwb`s per completed operation.
    pub fn pwb_per_op(&self) -> f64 {
        self.pwb as f64 / self.ops.max(1) as f64
    }

    /// `psync`s (incl. `pfence`s) per completed operation.
    pub fn psync_per_op(&self) -> f64 {
        self.psync as f64 / self.ops.max(1) as f64
    }

    /// Elided/coalesced `pwb`s per completed operation.
    pub fn pwb_elided_per_op(&self) -> f64 {
        self.pwb_elided as f64 / self.ops.max(1) as f64
    }

    /// Coalesced fences per completed operation.
    pub fn psync_coalesced_per_op(&self) -> f64 {
        self.psync_coalesced as f64 / self.ops.max(1) as f64
    }
}

/// One structure replica; dispatches the 50/50 mix.
enum Shard {
    Q(RecoverableQueue),
    S(RecoverableStack),
    CQ(CombiningQueue),
    CS(CombiningStack),
    H(RecoverableHashMap),
}

/// Key universe of the hashmap shard: big enough that the default 8-bucket
/// geometry resizes several times inside the timed window, small enough
/// that gets mostly hit.
const HASHMAP_PAR_KEYS: u64 = 4096;

impl Shard {
    fn build(subject: ParSubject, pool: &Arc<PmemPool>, root: usize, nthreads: usize) -> Shard {
        match subject {
            ParSubject::Queue => Shard::Q(RecoverableQueue::new(pool.clone(), root)),
            ParSubject::Stack => Shard::S(RecoverableStack::new(pool.clone(), root)),
            ParSubject::CombQueue => Shard::CQ(CombiningQueue::new(pool.clone(), root, nthreads)),
            ParSubject::CombStack => Shard::CS(CombiningStack::new(pool.clone(), root, nthreads)),
            ParSubject::Hashmap => Shard::H(RecoverableHashMap::new(pool.clone(), root)),
        }
    }

    #[inline]
    fn op(&self, ctx: &ThreadCtx, r: u64) {
        let v = (r >> 8) % 100_000 + 1;
        match self {
            Shard::Q(q) => {
                if r & 1 == 0 {
                    q.enqueue(ctx, v);
                } else {
                    std::hint::black_box(q.dequeue(ctx));
                }
            }
            Shard::S(s) => {
                if r & 1 == 0 {
                    s.push(ctx, v);
                } else {
                    std::hint::black_box(s.pop(ctx));
                }
            }
            Shard::CQ(q) => {
                if r & 1 == 0 {
                    q.enqueue(ctx, v);
                } else {
                    std::hint::black_box(q.dequeue(ctx));
                }
            }
            Shard::CS(s) => {
                if r & 1 == 0 {
                    s.push(ctx, v);
                } else {
                    std::hint::black_box(s.pop(ctx));
                }
            }
            Shard::H(m) => {
                // Producer side (the prefill's `r & !1` lands here) puts;
                // the other half splits between gets and removes so the
                // table keeps churning through its resize trigger.
                let key = (r >> 8) % HASHMAP_PAR_KEYS + 1;
                if r & 1 == 0 {
                    std::hint::black_box(m.put(ctx, key, v));
                } else if r & 2 == 0 {
                    std::hint::black_box(m.get(ctx, key));
                } else {
                    std::hint::black_box(m.remove(ctx, key));
                }
            }
        }
    }
}

/// Runs one timed parallel measurement per `cfg`.
pub fn run_parallel(cfg: &ParallelCfg) -> ParallelResult {
    let threads = cfg.threads.max(1);
    let shards = cfg.shards.clamp(1, pmem::NUM_ROOTS);
    let pool = Arc::new(PmemPool::new(PoolCfg {
        capacity: cfg.pool_bytes,
        backend: cfg.backend,
        shadow: false,
        max_threads: threads.next_power_of_two().max(8),
        flushopt: cfg.flushopt,
        ..Default::default()
    }));
    let shard_list: Arc<Vec<Shard>> = Arc::new(
        (0..shards)
            .map(|i| Shard::build(cfg.subject, &pool, i, threads))
            .collect(),
    );
    // Prefill each shard from thread slot 0 so pops mostly succeed.
    {
        let ctx = ThreadCtx::new(pool.clone(), 0);
        let mut rng = cfg.seed ^ 0xF111;
        for shard in shard_list.iter() {
            for _ in 0..cfg.prefill {
                shard.op(&ctx, next_rng(&mut rng) & !1); // force producer side
            }
        }
    }
    pool.stats_reset();
    let before = pool.stats();

    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let pool = pool.clone();
        let shard_list = shard_list.clone();
        let stop = stop.clone();
        let barrier = barrier.clone();
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            if cfg.chunk_lines > 0 {
                install_thread_arena(SubArena::new(pool.clone(), cfg.chunk_lines));
            }
            let ctx = ThreadCtx::new(pool.clone(), t);
            let shard = &shard_list[t % shard_list.len()];
            let mut rng = cfg.seed ^ (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
            barrier.wait();
            let mut ops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Leave headroom so allocation never aborts the run.
                if pool.remaining_lines() < 8192 {
                    break;
                }
                shard.op(&ctx, next_rng(&mut rng));
                ops += 1;
            }
            let (refills, waste) = match uninstall_thread_arena() {
                Some(a) => (a.refills(), a.waste_lines() as u64),
                None => (0, 0),
            };
            (ops, refills, waste)
        }));
    }
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let mut per_thread_ops = Vec::with_capacity(threads);
    let (mut refills, mut waste) = (0u64, 0u64);
    for h in handles {
        let (ops, r, w) = h.join().expect("parallel worker panicked");
        per_thread_ops.push(ops);
        refills += r;
        waste += w;
    }
    let elapsed = start.elapsed();
    let d = pool.stats().delta(&before);
    ParallelResult {
        subject: cfg.subject.name(),
        threads,
        shards,
        ops: per_thread_ops.iter().sum(),
        per_thread_ops,
        elapsed,
        pwb: d.pwb_total(),
        psync: d.psync + d.pfence,
        pwb_elided: d.pwb_elided_total(),
        psync_coalesced: d.psync_coalesced,
        arena_refills: refills,
        arena_waste_lines: waste,
    }
}

/// One `(subject, threads)` datapoint of a thread sweep, as recorded in
/// the committed JSON reports (`thread_sweep` section of
/// `bench-baseline/v1`, `points` of `bench-throughput/v1`).
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Subject name.
    pub subject: &'static str,
    /// Worker threads.
    pub threads: usize,
    /// Shards used.
    pub shards: usize,
    /// Completed operations.
    pub ops: u64,
    /// Aggregate operations per second.
    pub ops_per_sec: f64,
    /// Mean per-thread operations per second.
    pub per_thread_ops_per_sec: f64,
    /// `pwb`s per operation.
    pub pwb_per_op: f64,
    /// `psync`s per operation.
    pub psync_per_op: f64,
    /// Elided/coalesced `pwb`s per operation (additive since PR 9; 0 on
    /// layer-off pools).
    pub pwb_elided_per_op: f64,
    /// Coalesced fences per operation.
    pub psync_coalesced_per_op: f64,
}

impl SweepPoint {
    fn from_result(r: &ParallelResult) -> SweepPoint {
        SweepPoint {
            subject: r.subject,
            threads: r.threads,
            shards: r.shards,
            ops: r.ops,
            ops_per_sec: r.ops_per_sec(),
            per_thread_ops_per_sec: r.per_thread_ops_per_sec(),
            pwb_per_op: r.pwb_per_op(),
            psync_per_op: r.psync_per_op(),
            pwb_elided_per_op: r.pwb_elided_per_op(),
            psync_coalesced_per_op: r.psync_coalesced_per_op(),
        }
    }

    /// Renders the point as a JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let f = |v: f64| {
            if v.is_finite() {
                format!("{v:.3}")
            } else {
                "null".to_string()
            }
        };
        format!(
            "{{\"subject\": \"{}\", \"threads\": {}, \"shards\": {}, \"ops\": {}, \
             \"ops_per_sec\": {}, \"per_thread_ops_per_sec\": {}, \
             \"pwb_per_op\": {}, \"psync_per_op\": {}, \
             \"pwb_elided_per_op\": {}, \"psync_coalesced_per_op\": {}}}",
            self.subject,
            self.threads,
            self.shards,
            self.ops,
            f(self.ops_per_sec),
            f(self.per_thread_ops_per_sec),
            f(self.pwb_per_op),
            f(self.psync_per_op),
            f(self.pwb_elided_per_op),
            f(self.psync_coalesced_per_op),
        )
    }
}

/// Runs `subjects × threads_list` on one contended shard and returns the
/// datapoints in sweep order.
pub fn run_thread_sweep(
    subjects: &[ParSubject],
    threads_list: &[usize],
    duration: Duration,
    pool_bytes: usize,
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &subject in subjects {
        for &threads in threads_list {
            let cfg = ParallelCfg {
                duration,
                pool_bytes,
                ..ParallelCfg::contended(subject, threads)
            };
            out.push(SweepPoint::from_result(&run_parallel(&cfg)));
        }
    }
    out
}

/// Schema identifier of the standalone `throughput` report.
pub const THROUGHPUT_SCHEMA: &str = "bench-throughput/v1";

/// Renders a standalone `bench-throughput/v1` document.
pub fn throughput_json(label: &str, threads_list: &[usize], points: &[SweepPoint]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{THROUGHPUT_SCHEMA}\",\n"));
    out.push_str(&format!("  \"label\": \"{label}\",\n"));
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        crate::baseline::host_cpus()
    ));
    out.push_str(&format!(
        "  \"degraded_parallelism\": {},\n",
        crate::baseline::degraded_parallelism(threads_list)
    ));
    out.push_str(&format!(
        "  \"threads\": [{}],\n",
        threads_list
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&p.to_json());
        out.push_str(if i + 1 == points.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a `bench-throughput/v1` document: schema tag, a non-empty
/// `points` array, and finite non-negative numerics per point.
pub fn validate_throughput_json(json: &str) -> Result<(), String> {
    if !json.contains(&format!("\"schema\": \"{THROUGHPUT_SCHEMA}\"")) {
        return Err(format!("missing schema tag {THROUGHPUT_SCHEMA:?}"));
    }
    if !json.contains("\"points\": [") {
        return Err("missing points section".into());
    }
    let n = json.matches("\"subject\":").count();
    if n == 0 {
        return Err("no sweep points".into());
    }
    for key in [
        "ops_per_sec",
        "per_thread_ops_per_sec",
        "pwb_per_op",
        "psync_per_op",
    ] {
        match crate::baseline::extract_number(json, key) {
            Some(v) if v.is_finite() && v >= 0.0 => {}
            Some(v) => return Err(format!("field {key} has non-finite/negative value {v}")),
            None => return Err(format!("missing numeric field {key}")),
        }
    }
    Ok(())
}

/// Extracts every sweep point `(subject, threads, ops_per_sec,
/// psync_per_op)` from a committed JSON document — works on both the
/// baseline's `thread_sweep` section and the throughput report's `points`
/// (the objects are identical). Used by `baseline --prev` to flag scaling
/// regressions without a JSON dependency.
pub fn sweep_points_from_json(json: &str) -> Vec<(String, usize, f64, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("{\"subject\": \"") {
        let obj_start = at + "{\"subject\": \"".len();
        let Some(name_end) = rest[obj_start..].find('"') else {
            break;
        };
        let subject = rest[obj_start..obj_start + name_end].to_string();
        let Some(obj_end) = rest[at..].find('}') else {
            break;
        };
        let obj = &rest[at..at + obj_end + 1];
        let threads = crate::baseline::extract_number(obj, "threads").unwrap_or(0.0) as usize;
        let ops_per_sec = crate::baseline::extract_number(obj, "ops_per_sec").unwrap_or(0.0);
        let psync_per_op = crate::baseline::extract_number(obj, "psync_per_op").unwrap_or(0.0);
        if threads > 0 {
            out.push((subject, threads, ops_per_sec, psync_per_op));
        }
        rest = &rest[at + obj_end + 1..];
    }
    out
}

/// Compares a fresh sweep against a previous report's points, returning
/// one human-readable line per matching `(subject, threads)` pair and a
/// warning count for aggregate-throughput drops beyond `tolerance`
/// (e.g. `0.25` flags drops of more than 25 %). Time-based throughput on
/// a shared CI host is noisy, so callers report, not fail, on warnings.
pub fn compare_sweeps(
    prev: &[(String, usize, f64, f64)],
    cur: &[SweepPoint],
    tolerance: f64,
) -> (Vec<String>, usize) {
    let mut lines = Vec::new();
    let mut warnings = 0;
    for p in cur {
        let Some((_, _, prev_ops, _)) = prev
            .iter()
            .find(|(s, t, _, _)| s == p.subject && *t == p.threads)
        else {
            continue;
        };
        let ratio = p.ops_per_sec / prev_ops.max(1e-9);
        let flag = if ratio < 1.0 - tolerance {
            warnings += 1;
            "  <-- REGRESSION"
        } else {
            ""
        };
        lines.push(format!(
            "{} @{}T: {:.0} ops/s vs prev {:.0} = x{:.2}{}",
            p.subject, p.threads, p.ops_per_sec, prev_ops, ratio, flag
        ));
    }
    (lines, warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(subject: ParSubject, threads: usize) -> ParallelCfg {
        ParallelCfg {
            duration: Duration::from_millis(40),
            pool_bytes: 256 << 20,
            backend: Backend::Noop,
            prefill: 64,
            ..ParallelCfg::contended(subject, threads)
        }
    }

    #[test]
    fn every_subject_sustains_two_threads() {
        for subject in ParSubject::all() {
            let r = run_parallel(&tiny(subject, 2));
            assert_eq!(r.per_thread_ops.len(), 2);
            assert!(r.ops > 0, "{} completed no ops", r.subject);
            assert!(
                r.per_thread_ops.iter().all(|&o| o > 0),
                "{} starved a thread: {:?}",
                r.subject,
                r.per_thread_ops
            );
            assert!(r.pwb > 0 && r.psync > 0, "{} must persist", r.subject);
        }
    }

    #[test]
    fn sharding_spreads_threads() {
        let mut cfg = tiny(ParSubject::Stack, 2);
        cfg.shards = 2;
        let r = run_parallel(&cfg);
        assert_eq!(r.shards, 2);
        assert!(r.ops > 0);
    }

    #[test]
    fn arena_refills_stay_rare() {
        let r = run_parallel(&tiny(ParSubject::Queue, 2));
        // Each 4096-line chunk serves dozens of ops, so refills must stay a
        // tiny fraction of throughput; a regression to per-op global-cursor
        // traffic would put refills on the order of `ops` itself. The bound
        // scales with completed ops so a faster machine (more ops in the
        // 40 ms window, hence more refills) cannot trip it.
        assert!(
            r.arena_refills <= r.ops / 32 + 8,
            "arena refills {} vs {} ops suggest the sub-arena is not serving allocations",
            r.arena_refills,
            r.ops
        );
    }

    #[test]
    fn throughput_json_roundtrips() {
        let pts = run_thread_sweep(
            &[ParSubject::Stack],
            &[1, 2],
            Duration::from_millis(30),
            256 << 20,
        );
        assert_eq!(pts.len(), 2);
        let json = throughput_json("unit", &[1, 2], &pts);
        validate_throughput_json(&json).expect("self-produced JSON must validate");
        let parsed = sweep_points_from_json(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "stack/Tracking");
        assert_eq!(parsed[0].1, 1);
        let (lines, warnings) = compare_sweeps(&parsed, &pts, 0.25);
        assert_eq!(lines.len(), 2);
        assert_eq!(warnings, 0, "identical sweeps cannot regress");
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate_throughput_json("{}").is_err());
        assert!(validate_throughput_json("{\"schema\": \"bench-throughput/v1\"}").is_err());
    }
}
