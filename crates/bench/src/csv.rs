//! A minimal CSV writer for the figure outputs (no format crates needed).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Accumulates rows and writes them to `results/<name>.csv`.
pub struct Csv {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Starts a CSV with the given column names.
    pub fn new(name: &str, header: &[&str]) -> Csv {
        Csv {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The CSV's file stem.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a row (stringified cells; caller formats numbers).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable values.
    pub fn push<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Writes `results/<name>.csv` under `dir`, returning the path.
    pub fn write(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut w = BufWriter::new(File::create(&path)?);
        writeln!(w, "{}", self.header.join(","))?;
        for r in &self.rows {
            writeln!(w, "{}", r.join(","))?;
        }
        w.flush()?;
        Ok(path)
    }

    /// Renders the table as aligned text (for the console summary).
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        for r in &self.rows {
            out.push('\n');
            out.push_str(&fmt_row(r));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_formats() {
        let mut c = Csv::new("unit_test_fig", &["algo", "threads", "mops"]);
        c.push(&["Tracking".to_string(), "4".to_string(), "1.25".to_string()]);
        let dir = std::env::temp_dir().join("bench-csv-test");
        let path = c.write(&dir).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.starts_with("algo,threads,mops\n"));
        assert!(body.contains("Tracking,4,1.25"));
        let text = c.to_text();
        assert!(text.contains("Tracking"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut c = Csv::new("x", &["a", "b"]);
        c.push(&["only-one"]);
    }
}
