//! Exhaustive crash-sweep verification: crash a scripted workload at
//! *every* instrumented persistence event and check both of the paper's
//! correctness obligations at each point.
//!
//! The engine turns the ad-hoc sweeps of the integration tests into a
//! systematic, reportable harness. One sweep of a `(structure, algorithm)`
//! pair proceeds in three phases:
//!
//! 1. **Count.** Run the deterministic scripted workload once, crash-free,
//!    on a traced pool ([`pmem::PoolCfg::trace`]). Every instrumented
//!    primitive records exactly one trace event and consumes exactly one
//!    crash-countdown tick, so [`pmem::TraceSnapshot::total`] is the exact
//!    number `N` of possible crash points.
//! 2. **Sweep.** For each `k ∈ [0, N)` (optionally sharded or sampled):
//!    arm [`pmem::CrashCtl::arm_after`] and replay the script under
//!    [`pmem::run_crashable`]. Two replay engines exist:
//!    * the **checkpointed engine** (default, [`SweepCfg::checkpoint`]):
//!      one additional traced *capture* run takes [`pmem::PoolSnapshot`]s
//!      at operation boundaries every ~√N events; each point then
//!      [`pmem::PmemPool::restore`]s the nearest checkpoint at or before
//!      `k`, rebases the countdown to `k − checkpoint.events`, and replays
//!      only the remaining operations — `O(N·√N)` total work instead of
//!      the scratch engine's `O(N²)`;
//!    * the **scratch engine** rebuilds the structure in a fresh pool and
//!      replays the whole script per point (the original, trivially
//!      correct engine — kept for A/B timing and as the referee).
//!
//!    [`SweepCfg::paranoia`] cross-checks a sampled subset of points under
//!    *both* engines, traced, and reports any difference in verdicts or
//!    pre-crash event streams as a violation.
//!
//!    The injected [`pmem::CrashPoint`] unwinds
//!    mid-operation; the harness then resolves the crash model
//!    ([`pmem::PmemPool::crash`] under a configurable adversary), runs the
//!    algorithm's recovery entry points, and checks:
//!    * **detectability** — the recovered response equals the response the
//!      crashed operation *must* produce per the sequential model (the
//!      operation took effect exactly once, and the thread can tell), and
//!    * **durable linearizability** — the pre-crash responses, the
//!      recovered response, and a post-recovery read-only observation phase
//!      form one linearizable history of the [`linearize`] specification,
//!      with the structure's quiescent state matching the model.
//! 3. **Minimize.** If any point failed, the smallest failing `k` is
//!    re-run on a traced pool and the last events before the injection are
//!    rendered (with [`pmem::PmemPool::site_name`] attribution) into a
//!    [`FailureReport`] — the exact store/flush window a debugging session
//!    needs.
//!
//! A crash may also land *inside* [`pmem::ThreadCtx::begin_op`] — the
//! system's `CP_q := 0` prologue, before the operation body touched the
//! structure. Recovery functions are only specified for crashes after the
//! prologue (they consult `RD_q`, which still describes the *previous*
//! operation), so the harness plays the recovering system faithfully: it
//! re-issues the prologue and invokes the operation fresh rather than
//! calling `recover_*`.
//!
//! The workload scripts are deterministic functions of the sweep seed, so
//! the count and every replay observe the identical event stream, and a
//! failing `k` reproduces exactly. The `crashsweep` binary drives this
//! engine over the full structure × algorithm matrix and writes one CSV per
//! pair under `results/crashsweep/`.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use linearize::{
    History, MapOp, MapRet, MapSpec, QueueOp, QueueRet, QueueSpec, SetOp, SetSpec, Spec, StackOp,
    StackRet, StackSpec,
};
use pmem::{
    run_crashable, CrashAdversary, Event, PAddr, PessimistAdversary, PmemPool, PoolCfg,
    PoolSnapshot, SeededAdversary, SiteId, ThreadCtx,
};
use tracking::{
    CombiningQueue, CombiningStack, RecoverableExchanger, RecoverableHashMap, RecoverableQueue,
    RecoverableStack,
};

use crate::adapter::{build, AlgoKind, SetAlgo, StructureKind};
use crate::csv::Csv;

/// Key universe of the set scripts (kept far below the [`SetSpec`] bitmap's
/// 64-key ceiling so the observation phase stays cheap).
pub const SET_KEYS: u64 = 12;

/// Key universe of the hashmap scripts. Paired with the deliberately tiny
/// `HASHMAP_SWEEP_CFG` (2 initial buckets, chains capped at 2) it forces
/// several level migrations *inside* the scripted window, so the exhaustive
/// sweep crashes the resize protocol at every publish / migrate / seal /
/// finish event, not just the bucket operations.
pub const MAP_KEYS: u64 = 12;

/// Hash-table geometry used by every sweep/explore case: small enough that
/// the 12-op script crosses multiple resizes.
pub(crate) const HASHMAP_SWEEP_CFG: tracking::hashmap::HashMapConfig =
    tracking::hashmap::HashMapConfig {
        initial_buckets: 2,
        max_chain: 2,
    };

/// Threads parameter passed to [`build`] (sizes per-thread tables of the
/// algorithms that need them; the sweep itself is single-threaded so that
/// exhaustive crash-point enumeration is deterministic and the model
/// unambiguous — concurrent interleavings are [`crate::explore`]'s job).
const SWEEP_THREADS: usize = 2;

/// Crash adversary applied when resolving each injected crash.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AdversaryKind {
    /// [`PessimistAdversary`]: every unflushed line reverts — maximal loss,
    /// the strongest durability obligation, fully deterministic.
    Pessimist,
    /// [`SeededAdversary`] reseeded per crash point: each line
    /// independently survives or reverts, covering partial-loss interleavings.
    Seeded,
}

impl AdversaryKind {
    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<AdversaryKind> {
        Some(match s {
            "pessimist" => AdversaryKind::Pessimist,
            "seeded" => AdversaryKind::Seeded,
            _ => return None,
        })
    }

    /// CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            AdversaryKind::Pessimist => "pessimist",
            AdversaryKind::Seeded => "seeded",
        }
    }

    pub(crate) fn instantiate(self, k: u64, seed: u64) -> Box<dyn CrashAdversary> {
        match self {
            AdversaryKind::Pessimist => Box::new(PessimistAdversary),
            AdversaryKind::Seeded => Box::new(SeededAdversary::new(
                splitmix64(seed ^ k.wrapping_mul(0x9E37_79B9)) | 1,
            )),
        }
    }
}

/// Configuration of one sweep (one structure × algorithm pair).
#[derive(Clone, Debug)]
pub struct SweepCfg {
    /// Which structure shape to sweep.
    pub structure: StructureKind,
    /// Which implementation. For the set shapes this picks among the full
    /// lineup; for queue/stack, [`AlgoKind::TrackingComb`] selects the
    /// flat-combining variant and everything else the plain Tracking one.
    pub algo: AlgoKind,
    /// Seed for the workload script, sampling, and the seeded adversary.
    pub seed: u64,
    /// This shard's index in `[0, shard_count)`.
    pub shard_index: u64,
    /// Number of shards splitting the crash points (`k % shard_count ==
    /// shard_index` selects this shard's points). `1` = run everything.
    pub shard_count: u64,
    /// Probability of running each crash point (`1.0` = exhaustive).
    /// Selection is a deterministic function of `(seed, k)`.
    pub sample: f64,
    /// Crash adversary.
    pub adversary: AdversaryKind,
    /// Pool size for each replay.
    pub pool_bytes: usize,
    /// Number of operations in the scripted workload.
    pub script_len: usize,
    /// Events rendered around a minimized failure.
    pub trace_tail: usize,
    /// Replay engine: `true` (the default) replays each crash point from
    /// the nearest op-boundary checkpoint of a single capture run; `false`
    /// rebuilds the structure from scratch per point (the original engine,
    /// kept as the paranoia cross-check and for A/B timing).
    pub checkpoint: bool,
    /// Probability that a replayed point is additionally cross-checked:
    /// both engines re-run it traced and must produce identical verdicts
    /// and identical pre-crash event streams. `0.0` = off; only meaningful
    /// with `checkpoint`. Selection is deterministic in `(seed, k)`.
    pub paranoia: f64,
    /// `pwb` site mask applied to every pool of the sweep
    /// ([`PmemPool::set_sites_mask`]). A disabled site's `pwb`s are
    /// invisible to crash-point enumeration — they neither tick the crash
    /// countdown nor trace. Default `u64::MAX` (all sites enabled).
    pub site_mask: u64,
    /// Build pools with the recoverable free-list allocator
    /// ([`pmem::PoolCfg::reclaim`]): structures retire removed nodes, the
    /// harness drains limbo at every operation boundary (a quiescent
    /// point), each drain step is itself a swept crash point, recovery
    /// runs [`PmemPool::recover_allocator`] before structure recovery, and
    /// every verdict additionally audits the allocator's lists
    /// ([`PmemPool::palloc_check`]). Default `false` (bump arena; event
    /// streams bit-identical to before this knob existed).
    pub reclaim: bool,
    /// Build pools with the flush-elision layer armed
    /// ([`pmem::PoolCfg::flushopt`]): `pwb`s of clean lines elide, dirty
    /// ones defer into the per-thread combining buffer, and fences inside
    /// the algorithms' coalescible regions elide when nothing is pending.
    /// Elided events are invisible to crash-point enumeration (like masked
    /// sites), so the event space shrinks — the sweep then proves the
    /// *remaining* points all recover, i.e. that the layer elided only
    /// genuinely redundant instructions. Default `false` (event streams
    /// bit-identical to before this knob existed).
    pub flushopt: bool,
    /// Multi-crash tier: number of *second* crash points injected per
    /// first crash point (`0` = off, the classic single-crash sweep,
    /// bit-identical to before this knob existed). When `> 0`, each
    /// replayed point additionally (a) snapshots the post-crash state,
    /// (b) runs recovery once crash-free to count its instrumented events
    /// `M` and take the single-crash verdict, then (c) for each of the
    /// `multi_crash` second points restores the snapshot, re-arms the
    /// countdown at a deterministic `k₂ ∈ [0, M)`, crashes *inside
    /// recovery*, resolves the crash model again, re-runs recovery to
    /// completion, and applies the full detectability + durable
    /// linearizability + allocator-audit verdict. This checks the paper's
    /// requirement that recovery functions are themselves crash-restartable
    /// — a crash mid-recovery followed by a fresh recovery must still
    /// produce the exactly-once response.
    pub multi_crash: u64,
}

impl SweepCfg {
    /// Defaults for a pair: exhaustive, single shard, pessimist adversary.
    pub fn new(structure: StructureKind, algo: AlgoKind) -> SweepCfg {
        SweepCfg {
            structure,
            algo,
            seed: 0xC0FF_EE11,
            shard_index: 0,
            shard_count: 1,
            sample: 1.0,
            adversary: AdversaryKind::Pessimist,
            pool_bytes: 64 << 20,
            script_len: 12,
            trace_tail: 14,
            checkpoint: true,
            paranoia: 0.0,
            site_mask: u64::MAX,
            reclaim: false,
            multi_crash: 0,
            flushopt: false,
        }
    }
}

/// Outcome of one crash point.
#[derive(Clone, Debug)]
pub struct PointOutcome {
    /// The armed crash point (`k` events survived, event `k` crashed).
    pub k: u64,
    /// Index of the operation the crash interrupted.
    pub op_index: usize,
    /// Rendered operation (`Insert(7)`, `Dequeue`, …).
    pub op: String,
    /// Whether the armed crash actually fired. `false` before the end of a
    /// sweep means the replay diverged from the count run — itself a
    /// verification failure (non-deterministic event stream).
    pub crashed: bool,
    /// Did the recovered response match the sequential model?
    pub detect_ok: bool,
    /// Did the full history linearize and the quiescent state check out?
    pub durable_ok: bool,
    /// The replay panicked with the pool's exhaustion message instead of
    /// reaching a verdict: a capacity problem, not a crash-consistency
    /// finding. `note` carries the actionable message.
    pub exhausted: bool,
    /// Failure detail (empty when the point passed).
    pub note: String,
    /// Second crash points injected mid-recovery at this point (multi-crash
    /// tier only; `0` on classic single-crash sweeps).
    pub recrash_points: u64,
    /// Rendered trace window (traced re-runs only).
    pub trace_tail: Vec<String>,
}

impl PointOutcome {
    /// Did this crash point pass both obligations?
    pub fn ok(&self) -> bool {
        self.crashed && self.detect_ok && self.durable_ok && !self.exhausted
    }
}

/// The minimized description of the first (smallest-`k`) failing point.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// Smallest failing crash point.
    pub k: u64,
    /// Interrupted operation index.
    pub op_index: usize,
    /// Rendered interrupted operation.
    pub op: String,
    /// What went wrong.
    pub detail: String,
    /// The last trace events before the injection, site-attributed.
    pub trace_tail: Vec<String>,
}

impl FailureReport {
    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "minimized failure: k={} interrupts op[{}] = {}\n  {}\n  last events before the crash:\n",
            self.k, self.op_index, self.op, self.detail
        );
        for line in &self.trace_tail {
            out.push_str("    ");
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Result of one full sweep.
pub struct SweepReport {
    /// The configuration that produced this report.
    pub cfg: SweepCfg,
    /// Report/CSV label: `structure_algo`, with a `churn_` prefix on
    /// reclaim sweeps, a `recrash_` prefix on multi-crash tiers, or
    /// `churn_palloc` for the allocator's own sweep.
    pub label: String,
    /// Total instrumented events `N` of the crash-free script.
    pub total_events: u64,
    /// Crash points actually replayed.
    pub points_run: u64,
    /// Crash points skipped by sharding/sampling.
    pub points_skipped: u64,
    /// Points additionally cross-checked by paranoia mode (both engines
    /// re-run traced; any divergence lands in `violations`).
    pub paranoia_checked: u64,
    /// Total second crash points injected mid-recovery across all replayed
    /// points (multi-crash tier; `0` on classic sweeps).
    pub recrash_checked: u64,
    /// Every failing point, ascending by `k`.
    pub violations: Vec<PointOutcome>,
    /// Minimized first failure (when any point failed).
    pub first_failure: Option<FailureReport>,
    /// Per-point CSV (one row per replayed point).
    pub csv: Csv,
}

impl SweepReport {
    /// Did every replayed point pass?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line console summary.
    pub fn summary(&self) -> String {
        let recrash = if self.recrash_checked > 0 {
            format!(" recrash={}", self.recrash_checked)
        } else {
            String::new()
        };
        format!(
            "{:<32} events={:<5} run={:<5} skipped={:<5} violations={}{} {}",
            self.label,
            self.total_events,
            self.points_run,
            self.points_skipped,
            self.violations.len(),
            recrash,
            if self.ok() { "OK" } else { "FAIL" },
        )
    }
}

// ---------------------------------------------------------------- scripts

/// xorshift64* — the same tiny deterministic generator the integration
/// tests use; reproduced here so `bench` stays dependency-free.
pub(crate) struct Rng(pub(crate) u64);

impl Rng {
    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic membership test for `--sample p`.
pub(crate) fn sampled(seed: u64, k: u64, p: f64) -> bool {
    let r = splitmix64(seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    ((r >> 11) as f64 / (1u64 << 53) as f64) < p
}

fn set_script(seed: u64, len: usize) -> Vec<SetOp> {
    let mut rng = Rng(splitmix64(seed) | 1);
    (0..len)
        .map(|_| {
            let r = rng.next();
            let key = r % SET_KEYS + 1;
            match (r >> 32) % 8 {
                0..=3 => SetOp::Insert(key),
                4..=6 => SetOp::Delete(key),
                _ => SetOp::Find(key),
            }
        })
        .collect()
}

fn queue_script(seed: u64, len: usize) -> Vec<QueueOp> {
    let mut rng = Rng(splitmix64(seed) | 1);
    let mut next = 100;
    (0..len)
        .map(|_| {
            if rng.next() % 5 < 3 {
                next += 1;
                QueueOp::Enqueue(next)
            } else {
                QueueOp::Dequeue
            }
        })
        .collect()
}

fn stack_script(seed: u64, len: usize) -> Vec<StackOp> {
    let mut rng = Rng(splitmix64(seed) | 1);
    let mut next = 200;
    (0..len)
        .map(|_| {
            if rng.next() % 5 < 3 {
                next += 1;
                StackOp::Push(next)
            } else {
                StackOp::Pop
            }
        })
        .collect()
}

fn map_script(seed: u64, len: usize) -> Vec<MapOp> {
    let mut rng = Rng(splitmix64(seed) | 1);
    (0..len)
        .map(|_| {
            let r = rng.next();
            let key = r % MAP_KEYS + 1;
            match (r >> 32) % 8 {
                // Put-heavy so the table actually grows through resizes.
                0..=4 => MapOp::Put(key, (r >> 40) % 90 + 100),
                5..=6 => MapOp::Remove(key),
                _ => MapOp::Get(key),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- subjects

/// One recoverable structure under test, described by its sequential
/// specification. `exec` is the post-prologue operation body (the harness
/// issues [`ThreadCtx::begin_op`] itself, so a crash inside the prologue is
/// a distinct, covered case); `recover` is the matching `*.Recover`
/// function; `observe` runs the post-recovery read-only phase, appending
/// what it sees to the history and checking quiescent structural
/// invariants.
pub(crate) trait CrashSubject {
    type S: Spec + Default;

    fn exec(&self, ctx: &ThreadCtx, op: &<Self::S as Spec>::Op) -> <Self::S as Spec>::Ret;
    fn recover(&self, ctx: &ThreadCtx, op: &<Self::S as Spec>::Op) -> <Self::S as Spec>::Ret;
    fn recover_structure(&self) {}
    fn observe(&self, ctx: &ThreadCtx, h: &mut History<Self::S>) -> Result<(), String>;

    /// Verdict over a genuinely concurrent execution (the schedule
    /// explorer's oracle): the per-thread completed operations — including
    /// recovered responses of crash-interrupted ones — must, together with
    /// the post-run observation phase, form a linearizable history, and the
    /// structure must pass its quiescent invariants. The default is exactly
    /// that; the exchanger overrides it with a pairing oracle, because its
    /// sequential spec (`exchange → None`) only describes isolated threads.
    fn concurrent_verdict(
        &self,
        ctx: &ThreadCtx,
        recorded: &[CompletedOp<Self::S>],
    ) -> Result<(), String> {
        let mut h: History<Self::S> = History::new();
        for r in recorded {
            h.record_on(r.tid, r.op.clone(), r.ret.clone(), r.inv, r.res);
        }
        self.observe(ctx, &mut h)?;
        h.check(Self::S::default())
            .map(|_| ())
            .map_err(|e| format!("not linearizable: {e}"))
    }
}

/// One completed (or crash-recovered) operation of a concurrent execution,
/// as fed to [`CrashSubject::concurrent_verdict`].
pub(crate) struct CompletedOp<S: Spec> {
    /// Logical (virtual) thread that ran the operation.
    pub(crate) tid: usize,
    pub(crate) op: S::Op,
    pub(crate) ret: S::Ret,
    /// Invocation / response stamps from the shared [`linearize::Clock`].
    pub(crate) inv: u64,
    pub(crate) res: u64,
}

pub(crate) struct SetSubject {
    pub(crate) algo: Arc<dyn SetAlgo>,
}

impl CrashSubject for SetSubject {
    type S = SetSpec;

    fn exec(&self, ctx: &ThreadCtx, op: &SetOp) -> bool {
        match *op {
            SetOp::Insert(k) => self.algo.insert_started(ctx, k),
            SetOp::Delete(k) => self.algo.delete_started(ctx, k),
            SetOp::Find(k) => self.algo.find(ctx, k),
        }
    }

    fn recover(&self, ctx: &ThreadCtx, op: &SetOp) -> bool {
        match *op {
            SetOp::Insert(k) => self.algo.recover_insert(ctx, k),
            SetOp::Delete(k) => self.algo.recover_delete(ctx, k),
            SetOp::Find(k) => self.algo.recover_find(ctx, k),
        }
    }

    fn recover_structure(&self) {
        self.algo.recover_structure();
    }

    fn observe(&self, ctx: &ThreadCtx, h: &mut History<SetSpec>) -> Result<(), String> {
        let mut present = 0usize;
        for key in 1..=SET_KEYS {
            let found = self.algo.find(ctx, key);
            present += found as usize;
            let t = h.invoke(0, SetOp::Find(key));
            h.ret(t, found);
        }
        let len = self.algo.len();
        if len != present {
            return Err(format!(
                "structural check: len() = {len} but {present} keys answer find"
            ));
        }
        Ok(())
    }
}

pub(crate) struct QueueSubject {
    pub(crate) q: RecoverableQueue,
}

impl CrashSubject for QueueSubject {
    type S = QueueSpec;

    fn exec(&self, ctx: &ThreadCtx, op: &QueueOp) -> QueueRet {
        match *op {
            QueueOp::Enqueue(v) => {
                self.q.enqueue_started(ctx, v);
                QueueRet::Enqueued
            }
            QueueOp::Dequeue => QueueRet::Dequeued(self.q.dequeue_started(ctx)),
        }
    }

    fn recover(&self, ctx: &ThreadCtx, op: &QueueOp) -> QueueRet {
        match *op {
            QueueOp::Enqueue(v) => {
                self.q.recover_enqueue(ctx, v);
                QueueRet::Enqueued
            }
            QueueOp::Dequeue => QueueRet::Dequeued(self.q.recover_dequeue(ctx)),
        }
    }

    fn observe(&self, ctx: &ThreadCtx, h: &mut History<QueueSpec>) -> Result<(), String> {
        // Drain: each dequeue is a real recorded operation, ending with the
        // observation that the queue is empty.
        let cap = self.q.len() + 1;
        for _ in 0..cap {
            let v = self.q.dequeue(ctx);
            let t = h.invoke(0, QueueOp::Dequeue);
            h.ret(t, QueueRet::Dequeued(v));
            if v.is_none() {
                break;
            }
        }
        if !self.q.is_empty() {
            return Err("structural check: queue not empty after drain".into());
        }
        Ok(())
    }
}

/// [`QueueSubject`] for the flat-combining variant — same spec and
/// observation phase, so the combining queue answers to exactly the
/// linearizability and detectability obligations the plain one does.
pub(crate) struct CombQueueSubject {
    pub(crate) q: CombiningQueue,
}

impl CrashSubject for CombQueueSubject {
    type S = QueueSpec;

    fn exec(&self, ctx: &ThreadCtx, op: &QueueOp) -> QueueRet {
        match *op {
            QueueOp::Enqueue(v) => {
                self.q.enqueue_started(ctx, v);
                QueueRet::Enqueued
            }
            QueueOp::Dequeue => QueueRet::Dequeued(self.q.dequeue_started(ctx)),
        }
    }

    fn recover(&self, ctx: &ThreadCtx, op: &QueueOp) -> QueueRet {
        match *op {
            QueueOp::Enqueue(v) => {
                self.q.recover_enqueue(ctx, v);
                QueueRet::Enqueued
            }
            QueueOp::Dequeue => QueueRet::Dequeued(self.q.recover_dequeue(ctx)),
        }
    }

    fn recover_structure(&self) {
        // The crash may keep the volatile image of the combiner lock /
        // request / ready lines (cache-eviction modeling); clear them
        // before any per-op recovery or a surviving lock wedges it.
        self.q.recover_structure();
    }

    fn observe(&self, ctx: &ThreadCtx, h: &mut History<QueueSpec>) -> Result<(), String> {
        let cap = self.q.len() + 1;
        for _ in 0..cap {
            let v = self.q.dequeue(ctx);
            let t = h.invoke(0, QueueOp::Dequeue);
            h.ret(t, QueueRet::Dequeued(v));
            if v.is_none() {
                break;
            }
        }
        if !self.q.is_empty() {
            return Err("structural check: combining queue not empty after drain".into());
        }
        Ok(())
    }
}

pub(crate) struct StackSubject {
    pub(crate) s: RecoverableStack,
}

impl CrashSubject for StackSubject {
    type S = StackSpec;

    fn exec(&self, ctx: &ThreadCtx, op: &StackOp) -> StackRet {
        match *op {
            StackOp::Push(v) => {
                self.s.push_started(ctx, v);
                StackRet::Pushed
            }
            StackOp::Pop => StackRet::Popped(self.s.pop_started(ctx)),
        }
    }

    fn recover(&self, ctx: &ThreadCtx, op: &StackOp) -> StackRet {
        match *op {
            StackOp::Push(v) => {
                self.s.recover_push(ctx, v);
                StackRet::Pushed
            }
            StackOp::Pop => StackRet::Popped(self.s.recover_pop(ctx)),
        }
    }

    fn observe(&self, ctx: &ThreadCtx, h: &mut History<StackSpec>) -> Result<(), String> {
        let cap = self.s.len() + 1;
        for _ in 0..cap {
            let v = self.s.pop(ctx);
            let t = h.invoke(0, StackOp::Pop);
            h.ret(t, StackRet::Popped(v));
            if v.is_none() {
                break;
            }
        }
        if !self.s.is_empty() {
            return Err("structural check: stack not empty after drain".into());
        }
        Ok(())
    }
}

/// [`StackSubject`] for the flat-combining variant.
pub(crate) struct CombStackSubject {
    pub(crate) s: CombiningStack,
}

impl CrashSubject for CombStackSubject {
    type S = StackSpec;

    fn exec(&self, ctx: &ThreadCtx, op: &StackOp) -> StackRet {
        match *op {
            StackOp::Push(v) => {
                self.s.push_started(ctx, v);
                StackRet::Pushed
            }
            StackOp::Pop => StackRet::Popped(self.s.pop_started(ctx)),
        }
    }

    fn recover(&self, ctx: &ThreadCtx, op: &StackOp) -> StackRet {
        match *op {
            StackOp::Push(v) => {
                self.s.recover_push(ctx, v);
                StackRet::Pushed
            }
            StackOp::Pop => StackRet::Popped(self.s.recover_pop(ctx)),
        }
    }

    fn recover_structure(&self) {
        self.s.recover_structure();
    }

    fn observe(&self, ctx: &ThreadCtx, h: &mut History<StackSpec>) -> Result<(), String> {
        let cap = self.s.len() + 1;
        for _ in 0..cap {
            let v = self.s.pop(ctx);
            let t = h.invoke(0, StackOp::Pop);
            h.ret(t, StackRet::Popped(v));
            if v.is_none() {
                break;
            }
        }
        if !self.s.is_empty() {
            return Err("structural check: combining stack not empty after drain".into());
        }
        Ok(())
    }
}

/// A lone thread can never meet a partner, so every exchange must complete
/// unmatched (`None`) and leave the slot free — which is exactly what a
/// detectably-recovered exchange must also conclude after a crash.
#[derive(Clone, Default)]
pub(crate) struct ExchangeSpec;

impl Spec for ExchangeSpec {
    type Op = u64;
    type Ret = Option<u64>;
    type Digest = ();

    fn apply(&mut self, _op: &u64) -> Option<u64> {
        None
    }

    fn digest(&self) {}
}

/// Spin budget for exchanger ops (small: keeps the event count per op, and
/// therefore the sweep, short while still exercising the wait loop).
pub(crate) const EXCHANGE_SPIN: usize = 6;

pub(crate) struct ExchangerSubject {
    pub(crate) x: RecoverableExchanger,
}

impl CrashSubject for ExchangerSubject {
    type S = ExchangeSpec;

    fn exec(&self, ctx: &ThreadCtx, op: &u64) -> Option<u64> {
        self.x.exchange_started(ctx, *op, EXCHANGE_SPIN)
    }

    fn recover(&self, ctx: &ThreadCtx, op: &u64) -> Option<u64> {
        self.x.recover_exchange(ctx, *op, EXCHANGE_SPIN)
    }

    fn observe(&self, _ctx: &ThreadCtx, _h: &mut History<ExchangeSpec>) -> Result<(), String> {
        if !self.x.is_free() {
            return Err("structural check: exchanger slot not free after recovery".into());
        }
        Ok(())
    }

    /// Pairing oracle: every exchange that returned `Some(v)` must have a
    /// unique partner — the operation that offered `v` — whose own result
    /// is this operation's offer, on a *different* thread, with genuinely
    /// overlapping intervals (a rendezvous has no sequential witness).
    /// Offers are unique across the run, so the partner map is well-defined.
    /// Unmatched (`None`) results carry no obligation; the slot must end
    /// free either way.
    fn concurrent_verdict(
        &self,
        _ctx: &ThreadCtx,
        recorded: &[CompletedOp<ExchangeSpec>],
    ) -> Result<(), String> {
        for r in recorded {
            let Some(got) = r.ret else { continue };
            let partner = recorded
                .iter()
                .find(|p| p.op == got)
                .ok_or_else(|| format!("t{} exchanged value {got} nobody offered", r.tid))?;
            if partner.tid == r.tid {
                return Err(format!(
                    "t{} exchanged value {got} with itself (offer {})",
                    r.tid, r.op
                ));
            }
            if partner.ret != Some(r.op) {
                return Err(format!(
                    "asymmetric pairing: t{} offered {} and got {got}, but t{} \
                     offering {got} got {:?}",
                    r.tid, r.op, partner.tid, partner.ret
                ));
            }
            if !(r.inv < partner.res && partner.inv < r.res) {
                return Err(format!(
                    "t{} [{}, {}] paired with t{} [{}, {}] without overlapping — \
                     a rendezvous must be concurrent",
                    r.tid, r.inv, r.res, partner.tid, partner.inv, partner.res
                ));
            }
        }
        if !self.x.is_free() {
            return Err("structural check: exchanger slot not free after the run".into());
        }
        Ok(())
    }
}

pub(crate) struct HashmapSubject {
    pub(crate) m: RecoverableHashMap,
}

impl CrashSubject for HashmapSubject {
    type S = MapSpec;

    fn exec(&self, ctx: &ThreadCtx, op: &MapOp) -> MapRet {
        match *op {
            MapOp::Put(k, v) => MapRet::Put(self.m.put_started(ctx, k, v)),
            MapOp::Remove(k) => MapRet::Removed(self.m.remove_started(ctx, k)),
            MapOp::Get(k) => MapRet::Got(self.m.get(ctx, k)),
        }
    }

    fn recover(&self, ctx: &ThreadCtx, op: &MapOp) -> MapRet {
        match *op {
            MapOp::Put(k, v) => MapRet::Put(self.m.recover_put(ctx, k, v)),
            MapOp::Remove(k) => MapRet::Removed(self.m.recover_remove(ctx, k)),
            MapOp::Get(k) => MapRet::Got(self.m.recover_get(ctx, k)),
        }
    }

    fn observe(&self, ctx: &ThreadCtx, h: &mut History<MapSpec>) -> Result<(), String> {
        let mut present = 0usize;
        for key in 1..=MAP_KEYS {
            let got = self.m.get(ctx, key);
            present += got.is_some() as usize;
            let t = h.invoke(0, MapOp::Get(key));
            h.ret(t, MapRet::Got(got));
        }
        let len = self.m.len();
        if len != present {
            return Err(format!(
                "structural check: len() = {len} but {present} keys answer get"
            ));
        }
        // `check_invariants` walks every bucket of the current level
        // (sorted chains, bucket-hash residency, no stale tags, no pending
        // next level) and panics on violation; surface that as a verdict,
        // not a sweep-killing panic.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.m.check_invariants()))
            .map_err(|p| {
                let msg = p
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| p.downcast_ref::<&str>().copied())
                    .unwrap_or("invariant panic");
                format!("structural check: {msg}")
            })?;
        Ok(())
    }
}

// ------------------------------------------------------- palloc subject

/// Unnamed site used by the palloc subject's own bookkeeping stores.
const P_WORK: SiteId = SiteId(60);

/// Payload stamp written into word 2 of every owned block; a block handed
/// out twice is zeroed by the second allocation, destroying the stamp.
const OWNED_PATTERN: u64 = 0xA110_C47E_D000_0000;

/// One step of the allocator-churn script swept by [`run_palloc_sweep`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum PallocOp {
    /// Allocate a block of this class (1..=[`pmem::MAX_CLASS`] lines) and
    /// push it, durably, onto the subject's owned list.
    Alloc(usize),
    /// Durably pop the owned-list head and retire it to the limbo list.
    Retire,
    /// Drain every thread's limbo list ([`PmemPool::palloc_drain_all`]).
    Drain,
}

/// Trivial sequential spec: allocator steps have no observable response —
/// the verdict is entirely the structural audit in
/// [`PallocSubject::observe`] plus the engine's [`PmemPool::palloc_check`].
#[derive(Clone, Default)]
pub(crate) struct PallocSpec;

impl Spec for PallocSpec {
    type Op = PallocOp;
    type Ret = bool;
    type Digest = ();

    fn apply(&mut self, _op: &PallocOp) -> bool {
        true
    }

    fn digest(&self) {}
}

/// Sweeps the allocator *itself*: the script allocates, retires and drains
/// blocks through the instrumented palloc protocols, keeping every live
/// block on a persistent singly-linked "owned" list anchored at a root
/// cell. After each injected crash plus [`PmemPool::recover_allocator`],
/// [`PallocSubject::observe`] audits the heap: every owned block's payload
/// stamp must be intact (a block issued twice is zeroed by the second
/// allocation) and no owned block may overlap a free-list or limbo block —
/// the no-double-allocate obligation at every possible crash point.
pub(crate) struct PallocSubject {
    owned: PAddr,
}

impl PallocSubject {
    /// `(address, class)` of every block on the owned list.
    fn owned_blocks(&self, pool: &PmemPool) -> Result<Vec<(u64, usize)>, String> {
        let mut out = Vec::new();
        let mut p = pool.load(self.owned);
        while p != 0 {
            if out.len() > 100_000 {
                return Err("owned list cycles".into());
            }
            let b = PAddr(p);
            let class = pool.load(b.add(1)) as usize;
            if !(1..=pmem::MAX_CLASS).contains(&class) {
                return Err(format!("owned block {p:#x} carries class {class}"));
            }
            if pool.load(b.add(2)) != OWNED_PATTERN ^ p {
                return Err(format!(
                    "owned block {p:#x} payload stamp clobbered — issued twice?"
                ));
            }
            out.push((p, class));
            p = pool.load(b);
        }
        Ok(out)
    }
}

impl CrashSubject for PallocSubject {
    type S = PallocSpec;

    fn exec(&self, ctx: &ThreadCtx, op: &PallocOp) -> bool {
        let pool = ctx.pool();
        match *op {
            PallocOp::Alloc(class) => {
                let b = ctx.palloc(class);
                // Link (w0), class (w1) and stamp (w2) are durable before
                // the head moves, so a durable head implies an intact,
                // well-formed block; a crash in between leaks at most `b`.
                pool.store(b, pool.load(self.owned));
                pool.store(b.add(1), class as u64);
                pool.store(b.add(2), OWNED_PATTERN ^ b.raw());
                pool.pwb(b, P_WORK);
                pool.pfence();
                pool.store(self.owned, b.raw());
                pool.pwb(self.owned, P_WORK);
                pool.psync();
            }
            PallocOp::Retire => {
                let head = pool.load(self.owned);
                if head != 0 {
                    let b = PAddr(head);
                    let class = pool.load(b.add(1)) as usize;
                    // The pop is durable *before* the block is retired: no
                    // crash can leave it both owned and on a limbo list.
                    pool.store(self.owned, pool.load(b));
                    pool.pwb(self.owned, P_WORK);
                    pool.psync();
                    ctx.retire(b, class);
                }
            }
            PallocOp::Drain => pool.palloc_drain_all(),
        }
        true
    }

    fn recover(&self, ctx: &ThreadCtx, op: &PallocOp) -> bool {
        // Allocator steps are not detectable operations — a restarted
        // system simply re-invokes them. A crashed step leaks at most its
        // one in-flight block (the paper's bounded-leak budget), which the
        // audit tolerates; what it must never do is double-issue.
        self.exec(ctx, op)
    }

    fn observe(&self, ctx: &ThreadCtx, _h: &mut History<PallocSpec>) -> Result<(), String> {
        let pool = ctx.pool();
        let owned = self
            .owned_blocks(pool)
            .map_err(|e| format!("owned audit: {e}"))?;
        // No owned block may overlap any block the allocator considers
        // re-issuable (free list or limbo), and owned blocks must not
        // overlap each other.
        let mut spans: Vec<(u64, u64, &'static str)> = owned
            .iter()
            .map(|&(a, c)| (a, a + (c * pmem::WORDS_PER_LINE) as u64, "owned"))
            .collect();
        for (a, c) in pool
            .palloc_free_blocks()
            .into_iter()
            .chain(pool.palloc_limbo_blocks())
        {
            spans.push((a, a + (c * pmem::WORDS_PER_LINE) as u64, "recyclable"));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            let ((a0, end0, k0), (a1, _, k1)) = (w[0], w[1]);
            if a1 < end0 {
                return Err(format!(
                    "blocks overlap: {k0} block {a0:#x} (ends {end0:#x}) and {k1} block {a1:#x}"
                ));
            }
        }
        Ok(())
    }
}

/// Deterministic allocator-churn script: ~1/2 allocs across every size
/// class, ~3/8 retires, ~1/8 explicit drains (boundaries drain too).
fn palloc_script(seed: u64, len: usize) -> Vec<PallocOp> {
    let mut rng = Rng(splitmix64(seed) | 1);
    (0..len)
        .map(|_| {
            let r = rng.next();
            match (r >> 32) % 8 {
                0..=3 => PallocOp::Alloc((r % pmem::MAX_CLASS as u64) as usize + 1),
                4..=6 => PallocOp::Retire,
                _ => PallocOp::Drain,
            }
        })
        .collect()
}

fn make_palloc_case(cfg: &SweepCfg) -> Box<dyn Case> {
    let c = cfg.clone();
    Box::new(CaseRunner::new(
        palloc_script(cfg.seed, cfg.script_len),
        move |traced| {
            let pool = pool_for(&c, traced);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            let owned = pool.root(0);
            (pool, PallocSubject { owned }, ctx)
        },
    ))
}

// ---------------------------------------------------------------- engine

fn pool_for(cfg: &SweepCfg, traced: bool) -> Arc<PmemPool> {
    let base = PoolCfg {
        reclaim: cfg.reclaim,
        flushopt: cfg.flushopt,
        ..PoolCfg::model(cfg.pool_bytes)
    };
    let pool = Arc::new(PmemPool::new(if traced {
        PoolCfg {
            trace: true,
            trace_capacity: 4096,
            ..base
        }
    } else {
        base
    }));
    pool.set_sites_mask(cfg.site_mask);
    pool
}

/// Object-safe face of one generic [`CaseRunner`].
trait Case {
    fn count_events(&self, cfg: &SweepCfg) -> u64;
    /// Capture run of the checkpointed engine: one traced crash-free
    /// execution that takes pool snapshots at operation boundaries. Must
    /// run before [`Case::run_point_checkpointed`].
    fn prepare(&self, cfg: &SweepCfg, total_events: u64);
    /// Scratch engine: rebuild the structure, replay the whole script.
    fn run_point(&self, cfg: &SweepCfg, k: u64, traced: bool) -> PointOutcome;
    /// Checkpointed engine: restore the nearest checkpoint, replay the
    /// remaining ops with the countdown rebased to the checkpoint.
    fn run_point_checkpointed(&self, cfg: &SweepCfg, k: u64, traced: bool) -> PointOutcome;
    /// Re-runs point `k` traced under *both* engines; `Some(detail)` when
    /// their verdicts or pre-crash event streams diverge.
    fn paranoia_check(&self, cfg: &SweepCfg, k: u64) -> Option<String>;
}

/// One replay checkpoint: the pool state at an operation boundary,
/// `events` instrumented events into the script.
struct Checkpoint {
    op_idx: usize,
    events: u64,
    snap: PoolSnapshot,
}

/// The attach-once replay context of the checkpointed engine. The subject
/// is built (attached) exactly once, on the capture run's pool, and reused
/// for every replay — attaching anew per point could itself mutate
/// persistent state (Romulus opens a transaction on attach), whereas
/// [`PmemPool::restore`] rewinds everything a replay dirtied.
struct ReplayState<Sub: CrashSubject> {
    pool: Arc<PmemPool>,
    sub: Sub,
    ctx: ThreadCtx,
    /// Crash-free responses of the capture run; `responses[..cp.op_idx]`
    /// seeds a replay's history prefix.
    responses: Vec<<<Sub as CrashSubject>::S as Spec>::Ret>,
    /// Ascending by `events`; `checkpoints[0]` is always the script start.
    checkpoints: Vec<Checkpoint>,
}

struct CaseRunner<Sub: CrashSubject, B> {
    script: Vec<<<Sub as CrashSubject>::S as Spec>::Op>,
    /// `format!("{:?}")` of each script op, rendered once — the verdict of
    /// every crash point names its interrupted op, and re-rendering per
    /// point is measurable across a full matrix.
    op_strs: Vec<String>,
    build: B,
    replay: RefCell<Option<ReplayState<Sub>>>,
}

impl<Sub, B> CaseRunner<Sub, B>
where
    Sub: CrashSubject,
    B: Fn(bool) -> (Arc<PmemPool>, Sub, ThreadCtx),
{
    fn new(script: Vec<<<Sub as CrashSubject>::S as Spec>::Op>, build: B) -> Self {
        CaseRunner {
            op_strs: script.iter().map(|op| format!("{op:?}")).collect(),
            script,
            build,
            replay: RefCell::new(None),
        }
    }
}

impl<Sub, B> CaseRunner<Sub, B>
where
    Sub: CrashSubject,
    B: Fn(bool) -> (Arc<PmemPool>, Sub, ThreadCtx),
{
    /// The shared script loop — identical in the count run, the capture run
    /// and every replay, so tick streams line up exactly. Runs ops
    /// `[start, len)`; `at_boundary(i)` fires right before op `i`'s
    /// prologue, where the pool is quiescent (the checkpoint hook);
    /// `progress` tracks `(op index, past-the-prologue)`; `responses`
    /// collects completed ops.
    fn run_script(
        &self,
        sub: &Sub,
        ctx: &ThreadCtx,
        start: usize,
        progress: &Cell<(usize, bool)>,
        responses: &RefCell<Vec<<Sub::S as Spec>::Ret>>,
        mut at_boundary: impl FnMut(usize),
    ) {
        for (i, op) in self.script.iter().enumerate().skip(start) {
            at_boundary(i);
            progress.set((i, false));
            // Operation boundaries are the pool's quiescent points: drain
            // every thread's limbo list so retired blocks become
            // re-issuable. On a bump pool this is a plain branch — zero
            // instrumented events, so legacy event counts are unchanged. On
            // a reclaim pool each drain step is itself instrumented and
            // therefore a swept crash point; a crash inside the drain is
            // attributed to `(i, pre-prologue)`, the same attribution both
            // engines compute (the checkpoint snapshot at boundary `i` is
            // taken *before* the drain runs).
            ctx.pool().palloc_drain_all();
            ctx.begin_op(SiteId(0));
            progress.set((i, true));
            let r = sub.exec(ctx, op);
            responses.borrow_mut().push(r);
        }
    }

    /// Everything after the armed crash unwinds (or fails to): resolve the
    /// crash model, run recovery, check both obligations. Shared verbatim
    /// between the scratch and checkpointed engines, so their verdicts can
    /// only differ if the replayed *state* differs — exactly what paranoia
    /// mode cross-checks.
    #[allow(clippy::too_many_arguments)]
    fn finish_point(
        &self,
        cfg: &SweepCfg,
        k: u64,
        pool: &PmemPool,
        sub: &Sub,
        ctx: &ThreadCtx,
        progress: (usize, bool),
        responses: &RefCell<Vec<<Sub::S as Spec>::Ret>>,
        crashed: bool,
        trace_tail: Vec<String>,
    ) -> PointOutcome {
        let (j, past_prologue) = progress;
        let mut outcome = PointOutcome {
            k,
            op_index: j,
            op: self.op_strs[j].clone(),
            crashed,
            detect_ok: true,
            durable_ok: true,
            exhausted: false,
            note: String::new(),
            recrash_points: 0,
            trace_tail,
        };
        if !crashed {
            // The count said event k exists, yet the replay finished: the
            // event stream diverged between runs. Report, don't recover.
            outcome.note = "replay completed without reaching the armed crash point".into();
            return outcome;
        }

        pool.crash(&mut *cfg.adversary.instantiate(k, cfg.seed));

        // Ground truth: the sequential model over the completed prefix; the
        // interrupted operation must take effect exactly once — no matter
        // how many further crashes interrupt recovery itself.
        let mut model = Sub::S::default();
        for op in &self.script[..j] {
            model.apply(op);
        }
        let expected = model.apply(&self.script[j]);

        if cfg.multi_crash == 0 {
            // No further crash can fire before the next restore/rebuild, so
            // the crash model's bookkeeping is dead weight for the rest of
            // the verdict; restore (or the next scratch build) re-arms it.
            pool.set_crash_model_dormant(true);
            let pp = Cell::new(past_prologue);
            let actual = self.run_recovery(pool, sub, ctx, j, &pp);
            self.judge(
                &mut outcome,
                pool,
                sub,
                ctx,
                j,
                responses,
                &expected,
                actual,
                "",
            );
            return outcome;
        }

        // Multi-crash tier: the crash model stays live, because recovery is
        // about to crash too. The count pass doubles as the single-crash
        // verdict: recovery runs crash-free under a sentinel countdown
        // whose remainder counts recovery's instrumented events `M`.
        let base = pool.snapshot();
        const SENTINEL: u64 = 1 << 40;
        pool.crash_ctl().arm_after(SENTINEL);
        let pp = Cell::new(past_prologue);
        let r0 = self.run_recovery(pool, sub, ctx, j, &pp);
        let recovery_events = SENTINEL - pool.crash_ctl().remaining() as u64;
        pool.crash_ctl().disarm();
        self.judge(
            &mut outcome,
            pool,
            sub,
            ctx,
            j,
            responses,
            &expected,
            r0,
            "",
        );

        for i in 0..cfg.multi_crash {
            let k2 = splitmix64(cfg.seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i << 48))
                % recovery_events.max(1);
            pool.restore(&base);
            let pp = Cell::new(past_prologue);
            pool.crash_ctl().arm_after(k2);
            let first_pass = run_crashable(|| self.run_recovery(pool, sub, ctx, j, &pp)).is_some();
            pool.crash_ctl().disarm();
            outcome.recrash_points += 1;
            let tag = format!("recrash k2={k2}: ");
            if first_pass {
                // The count pass said event k2 exists within recovery, yet
                // this replay finished: recovery is non-deterministic from
                // identical post-crash state — itself a violation.
                outcome.detect_ok = false;
                outcome.note.push_str(&tag);
                outcome
                    .note
                    .push_str("recovery completed without reaching the armed crash point; ");
                continue;
            }
            // Second crash fired mid-recovery: resolve the crash model
            // again (fresh adversary stream, deterministic in (k, k2)) and
            // run recovery from the top — entry point per where the
            // re-crash fell, exactly as a twice-restarted system would.
            pool.crash(&mut *cfg.adversary.instantiate(k ^ (k2 << 20) ^ 0xD00D, cfg.seed));
            let r2 = self.run_recovery(pool, sub, ctx, j, &pp);
            self.judge(
                &mut outcome,
                pool,
                sub,
                ctx,
                j,
                responses,
                &expected,
                r2,
                &tag,
            );
        }
        pool.set_crash_model_dormant(true);
        outcome
    }

    /// One full recovery pass, ordered as a restarted system orders it:
    /// allocator recovery first (structure recovery may allocate, and it
    /// must not see a half-linked free list; no-op on bump pools), then
    /// structure-global recovery, then the interrupted thread's entry
    /// point. `past_prologue` is updated in place: a re-crash landing
    /// *after* this pass re-issued the prologue resumes through
    /// `recover`, not a third prologue — `CP_q`/`RD_q` describe the
    /// current operation from that moment on.
    fn run_recovery(
        &self,
        pool: &PmemPool,
        sub: &Sub,
        ctx: &ThreadCtx,
        j: usize,
        past_prologue: &Cell<bool>,
    ) -> <Sub::S as Spec>::Ret {
        pool.recover_allocator();
        sub.recover_structure();
        if past_prologue.get() {
            sub.recover(ctx, &self.script[j])
        } else {
            // Crash inside begin_op: RD_q still describes the previous
            // operation, so `recover` would resolve the wrong op. The
            // system re-invokes from the prologue instead (see module docs).
            ctx.begin_op(SiteId(0));
            past_prologue.set(true);
            sub.exec(ctx, &self.script[j])
        }
    }

    /// Applies both of the paper's obligations (plus the allocator audit)
    /// to one recovered response, appending failures to `outcome`. `tag`
    /// prefixes notes so multi-crash verdicts name their second point.
    #[allow(clippy::too_many_arguments)]
    fn judge(
        &self,
        outcome: &mut PointOutcome,
        pool: &PmemPool,
        sub: &Sub,
        ctx: &ThreadCtx,
        j: usize,
        responses: &RefCell<Vec<<Sub::S as Spec>::Ret>>,
        expected: &<Sub::S as Spec>::Ret,
        actual: <Sub::S as Spec>::Ret,
        tag: &str,
    ) {
        if actual != *expected {
            outcome.detect_ok = false;
            outcome.note.push_str(&format!(
                "{tag}detectability: recovered response {:?}, sequential model says {:?}; ",
                actual, expected
            ));
        }

        // Durable linearizability: completed prefix + recovered op +
        // post-recovery observation must linearize from the empty state.
        let mut h: History<Sub::S> = History::new();
        for (op, r) in self.script[..j].iter().zip(responses.borrow().iter()) {
            let t = h.invoke(0, op.clone());
            h.ret(t, r.clone());
        }
        let t = h.invoke(0, self.script[j].clone());
        h.ret(t, actual);
        let structural = sub.observe(ctx, &mut h);
        let lin = h.check(Sub::S::default());
        if structural.is_err() || lin.is_err() {
            outcome.durable_ok = false;
            if let Err(e) = structural {
                outcome.note.push_str(tag);
                outcome.note.push_str(&e);
                outcome.note.push_str("; ");
            }
            if let Err(e) = lin {
                outcome.note.push_str(tag);
                outcome.note.push_str("not linearizable: ");
                outcome.note.push_str(&e);
            }
        }
        // Allocator audit (reclaim pools; `Ok(())` on bump pools): the
        // recovered free lists must be well-formed — no cycles, no
        // overlapping or duplicated blocks, no dangling announcements.
        if let Err(e) = pool.palloc_check() {
            outcome.durable_ok = false;
            outcome.note.push_str(tag);
            outcome.note.push_str("allocator audit: ");
            outcome.note.push_str(&e);
            outcome.note.push_str("; ");
        }
    }

    /// A replay panic that is not the injected crash: a pool-exhaustion
    /// panic becomes a distinct `exhausted` outcome carrying the pool's
    /// actionable capacity message (it used to masquerade as an opaque
    /// worker panic killing the whole sweep); anything else is a real bug
    /// and resumes unwinding.
    fn classify_panic(
        &self,
        k: u64,
        progress: (usize, bool),
        payload: Box<dyn std::any::Any + Send>,
    ) -> PointOutcome {
        let Some(msg) = pmem::exhaustion_message(payload.as_ref()) else {
            std::panic::resume_unwind(payload);
        };
        let (j, _) = progress;
        PointOutcome {
            k,
            op_index: j,
            op: self.op_strs[j].clone(),
            crashed: false,
            detect_ok: true,
            durable_ok: true,
            exhausted: true,
            note: format!("pool exhausted: {msg}"),
            recrash_points: 0,
            trace_tail: Vec::new(),
        }
    }

    /// Scratch engine, also returning the pre-crash event stream when
    /// traced (paranoia comparison input).
    fn run_point_impl(&self, cfg: &SweepCfg, k: u64, traced: bool) -> (PointOutcome, Vec<Event>) {
        let (pool, sub, ctx) = (self.build)(traced);
        pool.trace_clear(); // constructor events are not crash points
        pool.crash_ctl().arm_after(k);
        let progress = Cell::new((0, false));
        let responses = RefCell::new(Vec::new());
        let done = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_crashable(|| self.run_script(&sub, &ctx, 0, &progress, &responses, |_| {}))
        }));
        pool.crash_ctl().disarm();
        let (events, trace_tail) = capture_stream(&pool, cfg, traced);
        let done = match done {
            Ok(d) => d,
            Err(p) => return (self.classify_panic(k, progress.get(), p), events),
        };
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.finish_point(
                cfg,
                k,
                &pool,
                &sub,
                &ctx,
                progress.get(),
                &responses,
                done.is_none(),
                trace_tail,
            )
        }))
        .unwrap_or_else(|p| self.classify_panic(k, progress.get(), p));
        (out, events)
    }

    /// Checkpointed engine: restore the nearest checkpoint at or before
    /// `k`, rebase the crash countdown to it, replay only the remaining
    /// operations.
    fn run_point_ckpt_impl(
        &self,
        cfg: &SweepCfg,
        k: u64,
        traced: bool,
    ) -> (PointOutcome, Vec<Event>) {
        let guard = self.replay.borrow();
        let st = guard
            .as_ref()
            .expect("prepare() must run before a checkpointed replay");
        let cp = &st.checkpoints[st.checkpoints.partition_point(|c| c.events <= k) - 1];
        st.pool.restore(&cp.snap);
        st.pool.set_trace_enabled(traced);
        st.pool.crash_ctl().arm_after(k - cp.events);
        let progress = Cell::new((cp.op_idx, false));
        let responses = RefCell::new(st.responses[..cp.op_idx].to_vec());
        let done = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_crashable(|| {
                self.run_script(&st.sub, &st.ctx, cp.op_idx, &progress, &responses, |_| {})
            })
        }));
        st.pool.crash_ctl().disarm();
        let (events, trace_tail) = capture_stream(&st.pool, cfg, traced);
        let done = match done {
            Ok(d) => d,
            Err(p) => return (self.classify_panic(k, progress.get(), p), events),
        };
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.finish_point(
                cfg,
                k,
                &st.pool,
                &st.sub,
                &st.ctx,
                progress.get(),
                &responses,
                done.is_none(),
                trace_tail,
            )
        }))
        .unwrap_or_else(|p| self.classify_panic(k, progress.get(), p));
        (out, events)
    }
}

impl<Sub, B> Case for CaseRunner<Sub, B>
where
    Sub: CrashSubject,
    B: Fn(bool) -> (Arc<PmemPool>, Sub, ThreadCtx),
{
    fn count_events(&self, _cfg: &SweepCfg) -> u64 {
        let (pool, sub, ctx) = (self.build)(true);
        pool.trace_clear(); // constructor events are not crash points
        let progress = Cell::new((0, false));
        let responses = RefCell::new(Vec::new());
        self.run_script(&sub, &ctx, 0, &progress, &responses, |_| {});
        pool.trace_snapshot().total()
    }

    fn prepare(&self, _cfg: &SweepCfg, total_events: u64) {
        // ~√E events between checkpoints: replay cost per point drops from
        // O(E) to O(√E) while the capture keeps only O(√E) snapshots.
        let interval = ((total_events as f64).sqrt().ceil() as u64).max(4);
        let (pool, sub, ctx) = (self.build)(true);
        pool.trace_clear();
        let progress = Cell::new((0, false));
        let responses = RefCell::new(Vec::new());
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        self.run_script(&sub, &ctx, 0, &progress, &responses, |i| {
            let events = pool.trace_event_total();
            let due = match checkpoints.last() {
                None => true, // the script start is always a checkpoint
                Some(last) => events - last.events >= interval,
            };
            if due {
                checkpoints.push(Checkpoint {
                    op_idx: i,
                    events,
                    snap: pool.snapshot(),
                });
            }
        });
        assert_eq!(
            pool.trace_event_total(),
            total_events,
            "capture run diverged from the count run"
        );
        pool.set_trace_enabled(false); // replays run dark unless asked
        *self.replay.borrow_mut() = Some(ReplayState {
            pool,
            sub,
            ctx,
            responses: responses.into_inner(),
            checkpoints,
        });
    }

    fn run_point(&self, cfg: &SweepCfg, k: u64, traced: bool) -> PointOutcome {
        self.run_point_impl(cfg, k, traced).0
    }

    fn run_point_checkpointed(&self, cfg: &SweepCfg, k: u64, traced: bool) -> PointOutcome {
        self.run_point_ckpt_impl(cfg, k, traced).0
    }

    fn paranoia_check(&self, cfg: &SweepCfg, k: u64) -> Option<String> {
        let (s, s_ev) = self.run_point_impl(cfg, k, true);
        let (c, c_ev) = self.run_point_ckpt_impl(cfg, k, true);
        let sv = (s.crashed, s.op_index, s.detect_ok, s.durable_ok);
        let cv = (c.crashed, c.op_index, c.detect_ok, c.durable_ok);
        if sv != cv {
            return Some(format!(
                "verdicts diverge: scratch (crashed, op, detect, durable) = {sv:?}, \
                 checkpointed = {cv:?}"
            ));
        }
        // The checkpointed stream starts at its checkpoint and the rings
        // may have dropped their oldest entries, so compare the overlap —
        // sequence numbers line up because restore rewinds the counter to
        // the capture run's value at the boundary.
        let n = s_ev.len().min(c_ev.len());
        let (st, ct) = (&s_ev[s_ev.len() - n..], &c_ev[c_ev.len() - n..]);
        if let Some(i) = (0..n).find(|&i| st[i] != ct[i]) {
            return Some(format!(
                "event streams diverge: scratch {:?} vs checkpointed {:?}",
                st[i], ct[i]
            ));
        }
        None
    }
}

/// Trace snapshot + rendered tail of a traced replay (empty when dark).
fn capture_stream(pool: &PmemPool, cfg: &SweepCfg, traced: bool) -> (Vec<Event>, Vec<String>) {
    if !traced {
        return (Vec::new(), Vec::new());
    }
    let snap = pool.trace_snapshot();
    let tail = render_tail(pool, &snap.events, cfg.trace_tail);
    (snap.events, tail)
}

fn render_tail(pool: &PmemPool, events: &[Event], n: usize) -> Vec<String> {
    let start = events.len().saturating_sub(n);
    events[start..]
        .iter()
        .map(|e| {
            let site = if e.site == pmem::NO_SITE {
                String::new()
            } else {
                match pool.site_name(SiteId(e.site)) {
                    Some(name) => format!("  site {} ({})", e.site, name),
                    None => format!("  site {}", e.site),
                }
            };
            format!(
                "seq {:>6}  t{} {:<8} line {:>5} word {:>7} {}{}",
                e.seq,
                e.tid,
                e.kind.label(),
                e.line,
                e.addr,
                if e.dirty { "dirty" } else { "clean" },
                site,
            )
        })
        .collect()
}

fn make_case(cfg: &SweepCfg) -> Box<dyn Case> {
    let c = cfg.clone();
    match cfg.structure {
        StructureKind::List | StructureKind::Bst => Box::new(CaseRunner::new(
            set_script(cfg.seed, cfg.script_len),
            move |traced| {
                let pool = pool_for(&c, traced);
                let algo = build(c.algo, pool.clone(), SWEEP_THREADS, SET_KEYS + 4);
                pool.register_site_names(algo.sites());
                let ctx = ThreadCtx::new(pool.clone(), 0);
                (pool, SetSubject { algo }, ctx)
            },
        )),
        StructureKind::Queue if cfg.algo == AlgoKind::TrackingComb => Box::new(CaseRunner::new(
            queue_script(cfg.seed, cfg.script_len),
            move |traced| {
                let pool = pool_for(&c, traced);
                pool.register_site_names(&tracking::sites::SITES);
                let q = CombiningQueue::new(pool.clone(), 0, SWEEP_THREADS);
                let ctx = ThreadCtx::new(pool.clone(), 0);
                (pool, CombQueueSubject { q }, ctx)
            },
        )),
        StructureKind::Queue => Box::new(CaseRunner::new(
            queue_script(cfg.seed, cfg.script_len),
            move |traced| {
                let pool = pool_for(&c, traced);
                pool.register_site_names(&tracking::sites::SITES);
                let q = RecoverableQueue::new(pool.clone(), 0);
                let ctx = ThreadCtx::new(pool.clone(), 0);
                (pool, QueueSubject { q }, ctx)
            },
        )),
        StructureKind::Stack if cfg.algo == AlgoKind::TrackingComb => Box::new(CaseRunner::new(
            stack_script(cfg.seed, cfg.script_len),
            move |traced| {
                let pool = pool_for(&c, traced);
                pool.register_site_names(&tracking::sites::SITES);
                let s = CombiningStack::new(pool.clone(), 0, SWEEP_THREADS);
                let ctx = ThreadCtx::new(pool.clone(), 0);
                (pool, CombStackSubject { s }, ctx)
            },
        )),
        StructureKind::Stack => Box::new(CaseRunner::new(
            stack_script(cfg.seed, cfg.script_len),
            move |traced| {
                let pool = pool_for(&c, traced);
                pool.register_site_names(&tracking::sites::SITES);
                let s = RecoverableStack::new(pool.clone(), 0);
                let ctx = ThreadCtx::new(pool.clone(), 0);
                (pool, StackSubject { s }, ctx)
            },
        )),
        StructureKind::Exchanger => Box::new(CaseRunner::new(vec![101, 202], move |traced| {
            let pool = pool_for(&c, traced);
            pool.register_site_names(&tracking::sites::SITES);
            let x = RecoverableExchanger::new(pool.clone(), 0);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            (pool, ExchangerSubject { x }, ctx)
        })),
        StructureKind::Hashmap => Box::new(CaseRunner::new(
            map_script(cfg.seed, cfg.script_len),
            move |traced| {
                let pool = pool_for(&c, traced);
                pool.register_site_names(&tracking::sites::SITES);
                let m = RecoverableHashMap::with_config(pool.clone(), 0, HASHMAP_SWEEP_CFG);
                let ctx = ThreadCtx::new(pool.clone(), 0);
                (pool, HashmapSubject { m }, ctx)
            },
        )),
    }
}

pub(crate) fn file_slug(s: &str) -> String {
    s.chars()
        .map(|ch| {
            if ch.is_ascii_alphanumeric() {
                ch.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// Deterministic second hash stream for paranoia sampling (decorrelated
/// from the `--sample` selection).
const PARANOIA_SALT: u64 = 0x5AFE_C0DE_D00D_F00D;

/// Per-point CSV schema (unchanged since the engine's introduction;
/// exhausted points are encoded in `note`, not a new column).
const SWEEP_CSV_COLUMNS: &[&str] = &[
    "k",
    "op_index",
    "op",
    "crashed",
    "detect_ok",
    "durable_ok",
    "note",
];

/// Runs one full sweep per [`SweepCfg`] and returns its report.
pub fn run_sweep(cfg: &SweepCfg) -> SweepReport {
    let label = format!(
        "{}{}{}_{}",
        if cfg.multi_crash > 0 { "recrash_" } else { "" },
        if cfg.reclaim { "churn_" } else { "" },
        cfg.structure.name(),
        file_slug(cfg.algo.name())
    );
    run_sweep_case(cfg, make_case(cfg), label)
}

/// Sweeps the allocator itself (the `PallocSubject` script): forces a reclaim
/// pool, runs the allocator-churn script, and audits the heap at every
/// crash point. `cfg.structure`/`cfg.algo` are ignored.
pub fn run_palloc_sweep(cfg: &SweepCfg) -> SweepReport {
    let cfg = SweepCfg {
        reclaim: true,
        ..cfg.clone()
    };
    let case = make_palloc_case(&cfg);
    let label = format!(
        "{}churn_palloc",
        if cfg.multi_crash > 0 { "recrash_" } else { "" }
    );
    run_sweep_case(&cfg, case, label)
}

fn run_sweep_case(cfg: &SweepCfg, case: Box<dyn Case>, label: String) -> SweepReport {
    // A pool too small for the crash-free script is a configuration
    // problem, not a crash-consistency finding: classify it as one
    // `exhausted` violation carrying the pool's actionable capacity
    // message instead of letting the panic kill the whole matrix.
    let counted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case.count_events(cfg)));
    let total_events = match counted {
        Ok(n) => n,
        Err(p) => {
            let Some(msg) = pmem::exhaustion_message(p.as_ref()) else {
                std::panic::resume_unwind(p);
            };
            let out = PointOutcome {
                k: 0,
                op_index: 0,
                op: String::new(),
                crashed: false,
                detect_ok: true,
                durable_ok: true,
                exhausted: true,
                note: format!("pool exhausted during the crash-free count run: {msg}"),
                recrash_points: 0,
                trace_tail: Vec::new(),
            };
            return SweepReport {
                cfg: cfg.clone(),
                label: label.clone(),
                total_events: 0,
                points_run: 0,
                points_skipped: 0,
                paranoia_checked: 0,
                recrash_checked: 0,
                violations: vec![out],
                first_failure: None,
                csv: Csv::new(&label, SWEEP_CSV_COLUMNS),
            };
        }
    };
    if cfg.checkpoint {
        case.prepare(cfg, total_events);
    }
    let mut csv = Csv::new(&label, SWEEP_CSV_COLUMNS);
    let mut violations = Vec::new();
    let (mut points_run, mut points_skipped) = (0u64, 0u64);
    let mut paranoia_checked = 0u64;
    let mut recrash_checked = 0u64;
    for k in 0..total_events {
        let in_shard = cfg.shard_count <= 1 || k % cfg.shard_count == cfg.shard_index;
        if !in_shard || (cfg.sample < 1.0 && !sampled(cfg.seed, k, cfg.sample)) {
            points_skipped += 1;
            continue;
        }
        let p = if cfg.checkpoint {
            case.run_point_checkpointed(cfg, k, false)
        } else {
            case.run_point(cfg, k, false)
        };
        if cfg.checkpoint
            && cfg.paranoia > 0.0
            && sampled(cfg.seed ^ PARANOIA_SALT, k, cfg.paranoia)
        {
            paranoia_checked += 1;
            if let Some(err) = case.paranoia_check(cfg, k) {
                violations.push(PointOutcome {
                    k,
                    op_index: p.op_index,
                    op: p.op.clone(),
                    crashed: p.crashed,
                    detect_ok: false,
                    durable_ok: p.durable_ok,
                    exhausted: p.exhausted,
                    note: format!("paranoia: {err}"),
                    recrash_points: 0,
                    trace_tail: Vec::new(),
                });
            }
        }
        csv.push(&[
            k.to_string(),
            p.op_index.to_string(),
            p.op.clone(),
            p.crashed.to_string(),
            p.detect_ok.to_string(),
            p.durable_ok.to_string(),
            csv_escape(&p.note),
        ]);
        points_run += 1;
        recrash_checked += p.recrash_points;
        if !p.ok() {
            violations.push(p);
        }
    }
    let first_failure = violations.first().map(|worst| {
        let traced = case.run_point(cfg, worst.k, true);
        FailureReport {
            k: worst.k,
            op_index: worst.op_index,
            op: worst.op.clone(),
            detail: if worst.note.is_empty() {
                "replay diverged".into()
            } else {
                worst.note.clone()
            },
            trace_tail: traced.trace_tail,
        }
    });
    SweepReport {
        cfg: cfg.clone(),
        label,
        total_events,
        points_run,
        points_skipped,
        paranoia_checked,
        recrash_checked,
        violations,
        first_failure,
        csv,
    }
}

/// Keeps failure notes inside one CSV cell.
pub(crate) fn csv_escape(s: &str) -> String {
    s.replace(',', ";").replace('\n', " ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_and_bounded() {
        let a = set_script(42, 12);
        let b = set_script(42, 12);
        assert_eq!(a, b);
        assert_ne!(a, set_script(43, 12));
        for op in &a {
            let (SetOp::Insert(k) | SetOp::Delete(k) | SetOp::Find(k)) = op;
            assert!((1..=SET_KEYS).contains(k));
        }
        assert_eq!(queue_script(7, 10), queue_script(7, 10));
        assert_eq!(stack_script(7, 10), stack_script(7, 10));
    }

    #[test]
    fn pinned_hashmap_script_reaches_a_resize() {
        // The sweep-regression pin (tests/tests/sweep_regression.rs) claims
        // its counted event space covers a full resize; this guards the
        // claim — the pinned script against the aggressive sweep config
        // must grow the table past its initial two buckets.
        let script = map_script(0xDECA_FBAD, 24);
        let pool = std::sync::Arc::new(PmemPool::new(PoolCfg::model(4 << 20)));
        let m = RecoverableHashMap::with_config(pool.clone(), 0, HASHMAP_SWEEP_CFG);
        let ctx = ThreadCtx::new(pool, 0);
        for op in &script {
            match *op {
                MapOp::Put(k, v) => drop(m.put(&ctx, k, v)),
                MapOp::Remove(k) => drop(m.remove(&ctx, k)),
                MapOp::Get(k) => drop(m.get(&ctx, k)),
            }
        }
        assert!(
            m.bucket_count() > HASHMAP_SWEEP_CFG.initial_buckets,
            "pinned script never resized ({} buckets): the sweep pin no \
             longer covers the resize protocol",
            m.bucket_count()
        );
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_proportional() {
        let hits: Vec<bool> = (0..1000).map(|k| sampled(9, k, 0.25)).collect();
        let again: Vec<bool> = (0..1000).map(|k| sampled(9, k, 0.25)).collect();
        assert_eq!(hits, again);
        let n = hits.iter().filter(|&&h| h).count();
        assert!((100..400).contains(&n), "0.25 sample hit {n}/1000");
        assert_eq!((0..100).filter(|&k| sampled(9, k, 0.0)).count(), 0);
        assert_eq!((0..100).filter(|&k| sampled(9, k, 1.0)).count(), 100);
    }

    #[test]
    fn exchanger_sweep_is_clean() {
        let mut cfg = SweepCfg::new(StructureKind::Exchanger, AlgoKind::Tracking);
        cfg.pool_bytes = 4 << 20;
        let report = run_sweep(&cfg);
        assert!(report.total_events > 0);
        assert_eq!(report.points_run, report.total_events);
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    #[test]
    fn combining_queue_and_stack_sweeps_are_clean() {
        // Crash-sweep smoke over the flat-combining variants: every pwb of
        // the announcement/round/publish protocol becomes a crash point, and
        // recovery must replay each announced op exactly once. Sampled so the
        // smoke stays cheap; the seed makes the sample deterministic.
        for kind in [StructureKind::Queue, StructureKind::Stack] {
            let mut cfg = SweepCfg::new(kind, AlgoKind::TrackingComb);
            cfg.pool_bytes = 4 << 20;
            cfg.script_len = 8;
            cfg.sample = 0.35;
            cfg.adversary = AdversaryKind::Seeded;
            let report = run_sweep(&cfg);
            assert!(report.total_events > 0, "{kind:?} sweep saw no pwb events");
            assert!(report.ok(), "{kind:?} violations: {:?}", report.violations);
        }
    }

    #[test]
    fn traced_rerun_renders_a_site_attributed_window() {
        let mut cfg = SweepCfg::new(StructureKind::Exchanger, AlgoKind::Tracking);
        cfg.pool_bytes = 4 << 20;
        let case = make_case(&cfg);
        let p = case.run_point(&cfg, 5, true);
        assert!(p.crashed);
        assert!(!p.trace_tail.is_empty(), "traced rerun must keep a window");
        assert!(
            p.trace_tail.iter().all(|l| l.contains("seq")),
            "window lines carry sequence numbers: {:?}",
            p.trace_tail
        );
    }

    #[test]
    fn failure_report_renders_every_ingredient() {
        let r = FailureReport {
            k: 17,
            op_index: 3,
            op: "Insert(7)".into(),
            detail: "detectability: recovered response false, model says true".into(),
            trace_tail: vec!["seq 41 t0 pwb line 9 word 76 dirty  site 2 (insert)".into()],
        };
        let text = r.render();
        assert!(text.contains("k=17"));
        assert!(text.contains("op[3] = Insert(7)"));
        assert!(text.contains("model says true"));
        assert!(text.contains("site 2 (insert)"));
        assert_eq!(csv_escape("a,b\nc"), "a;b c");
    }

    #[test]
    fn engines_agree_under_full_paranoia() {
        // Every point of the exchanger sweep cross-checked: scratch and
        // checkpointed replays must produce identical verdicts and
        // identical pre-crash event streams (seq, kind, site, addr, dirty).
        let mut cfg = SweepCfg::new(StructureKind::Exchanger, AlgoKind::Tracking);
        cfg.pool_bytes = 4 << 20;
        cfg.paranoia = 1.0;
        let ck = run_sweep(&cfg);
        assert!(ck.ok(), "violations: {:?}", ck.violations);
        assert_eq!(ck.paranoia_checked, ck.points_run);

        let scratch = run_sweep(&SweepCfg {
            checkpoint: false,
            paranoia: 0.0,
            ..cfg
        });
        assert!(scratch.ok());
        assert_eq!(ck.total_events, scratch.total_events);
        assert_eq!(ck.points_run, scratch.points_run);
    }

    #[test]
    fn palloc_sweep_is_clean_under_full_paranoia() {
        // The allocator's own crash sweep: every alloc/retire/drain step
        // crashed, recovered, heap audited — under cross-checked engines.
        let mut cfg = SweepCfg::new(StructureKind::Exchanger, AlgoKind::Tracking);
        cfg.pool_bytes = 4 << 20;
        cfg.script_len = 10;
        cfg.paranoia = 1.0;
        let r = run_palloc_sweep(&cfg);
        assert_eq!(r.label, "churn_palloc");
        assert!(r.total_events > 0);
        assert_eq!(r.points_run, r.total_events);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert!(r.summary().contains("churn_palloc"));
    }

    #[test]
    fn palloc_sweep_survives_the_seeded_adversary() {
        let mut cfg = SweepCfg::new(StructureKind::Exchanger, AlgoKind::Tracking);
        cfg.pool_bytes = 4 << 20;
        cfg.script_len = 10;
        cfg.adversary = AdversaryKind::Seeded;
        let r = run_palloc_sweep(&cfg);
        assert!(r.ok(), "violations: {:?}", r.violations);
    }

    #[test]
    fn reclaim_queue_sweep_is_clean_and_adds_drain_events() {
        let mut cfg = SweepCfg::new(StructureKind::Queue, AlgoKind::Tracking);
        cfg.pool_bytes = 4 << 20;
        cfg.script_len = 8;
        let plain = run_sweep(&cfg);
        cfg.reclaim = true;
        let churn = run_sweep(&cfg);
        assert!(plain.ok(), "violations: {:?}", plain.violations);
        assert!(churn.ok(), "violations: {:?}", churn.violations);
        assert_eq!(churn.label, "churn_queue_tracking");
        assert!(
            churn.total_events > plain.total_events,
            "retire + boundary drains must appear in the enumeration \
             ({} vs {})",
            churn.total_events,
            plain.total_events
        );
    }

    #[test]
    fn multi_crash_tier_survives_crashes_inside_recovery() {
        // Every first crash point of the exchanger sweep gets two further
        // crashes injected *inside recovery*; each twice-interrupted
        // operation must still produce its exactly-once response and a
        // linearizable history. Deterministic: a second run reproduces the
        // CSV bit for bit.
        let mut cfg = SweepCfg::new(StructureKind::Exchanger, AlgoKind::Tracking);
        cfg.pool_bytes = 4 << 20;
        cfg.multi_crash = 2;
        let r = run_sweep(&cfg);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert_eq!(r.label, "recrash_exchanger_tracking");
        assert_eq!(
            r.recrash_checked,
            2 * r.points_run,
            "every replayed point must inject exactly multi_crash second crashes"
        );
        assert!(r.summary().contains("recrash="));
        let again = run_sweep(&cfg);
        assert_eq!(r.csv.to_text(), again.csv.to_text());

        // The tier must not disturb the classic sweep: same points, same
        // event count with the knob off.
        let classic = run_sweep(&SweepCfg {
            multi_crash: 0,
            ..cfg
        });
        assert_eq!(classic.total_events, r.total_events);
        assert!(classic.ok());
    }

    #[test]
    fn multi_crash_tier_is_clean_on_a_reclaim_list() {
        // Double crashes over a reclaim pool: the second crash can land
        // inside recover_allocator or a drain step, and the re-run recovery
        // plus allocator audit must still come back clean. Sampled to keep
        // the test cheap.
        let mut cfg = SweepCfg::new(StructureKind::List, AlgoKind::Tracking);
        cfg.pool_bytes = 8 << 20;
        cfg.script_len = 8;
        cfg.sample = 0.2;
        cfg.reclaim = true;
        cfg.multi_crash = 2;
        cfg.adversary = AdversaryKind::Seeded;
        let r = run_sweep(&cfg);
        assert_eq!(r.label, "recrash_churn_list_tracking");
        assert!(r.points_run > 0);
        assert!(r.recrash_checked > 0);
        assert!(r.ok(), "violations: {:?}", r.violations);
    }

    #[test]
    fn exhausted_count_run_is_classified_not_a_panic() {
        // A script that provably overruns the arena: the sweep must return
        // a report whose single violation carries the pool's capacity
        // message, instead of unwinding out of the harness.
        let mut cfg = SweepCfg::new(StructureKind::Queue, AlgoKind::Tracking);
        cfg.pool_bytes = 1 << 20;
        cfg.script_len = 30_000;
        cfg.sample = 0.0;
        let r = run_sweep(&cfg);
        assert!(!r.ok());
        assert_eq!(r.total_events, 0);
        assert_eq!(r.violations.len(), 1);
        let v = &r.violations[0];
        assert!(v.exhausted);
        assert!(!v.ok());
        assert!(
            v.note.contains(pmem::EXHAUSTED_PREFIX),
            "note must carry the actionable message: {}",
            v.note
        );
    }

    #[test]
    fn masked_site_is_invisible_to_enumeration() {
        // Disabling a pwb site removes exactly its events from the crash
        // point space. pwb(CP_q) fires twice per queue op — once in the
        // prologue, once when the op persists its new checkpoint — so
        // masking S_CP shrinks N by exactly two per scripted operation.
        let mut cfg = SweepCfg::new(StructureKind::Queue, AlgoKind::Tracking);
        cfg.pool_bytes = 4 << 20;
        cfg.sample = 0.0; // count only
        let full = run_sweep(&cfg);
        cfg.site_mask = !(1 << tracking::sites::S_CP.0);
        let masked = run_sweep(&cfg);
        assert_eq!(
            full.total_events - masked.total_events,
            2 * cfg.script_len as u64,
            "both pwb(CP_q) per op must vanish from the enumeration"
        );
    }

    #[test]
    fn sharding_partitions_the_points() {
        let mut cfg = SweepCfg::new(StructureKind::Exchanger, AlgoKind::Tracking);
        cfg.pool_bytes = 4 << 20;
        cfg.shard_count = 3;
        let mut run = 0;
        for i in 0..3 {
            cfg.shard_index = i;
            let r = run_sweep(&cfg);
            assert!(r.ok());
            run += r.points_run;
        }
        let full = run_sweep(&SweepCfg {
            shard_count: 1,
            ..cfg
        });
        assert_eq!(run, full.points_run, "shards must cover every point");
        assert_eq!(run, full.total_events);
    }
}
