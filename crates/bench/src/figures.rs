//! Figure drivers: one function per figure of the paper's evaluation.
//!
//! Every driver mirrors the measurement protocol Section 5 describes:
//!
//! * **3a/4a** — throughput of the five implementations across threads;
//! * **3b/4b** — `psync`s per operation;
//! * **3c/4c** — throughput with all `psync`/`pfence` removed, against the
//!   full version (Tracking and Capsules-Opt — the pairs whose overlap is
//!   the paper's "psync cost is negligible" finding);
//! * **3d/4d** — `pwb`s per operation;
//! * **3e/4e** — executed `pwb`s split into the low/medium/high impact
//!   categories (single-site impact measured against the persistence-free
//!   version; thresholds 10 % and 30 % as in the paper);
//! * **3f/4f** — the combined-impact sweep: full version, then remove
//!   category L, then M, then H (the last point being `[no pwbs]`);
//! * **5/6** — the X-caused performance loss: persistence-free plus
//!   exactly one category, for X ∈ {L, M, H}.

use std::path::PathBuf;
use std::time::Duration;

use pmem::{Backend, SiteId};

use crate::adapter::AlgoKind;
use crate::csv::Csv;
use crate::workload::{run, Mix, RunCfg};

/// Impact categories of `pwb` code lines (paper's L/M/H).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Category {
    /// ≤ 10 % single-site performance loss.
    Low,
    /// 10–30 %.
    Medium,
    /// > 30 %.
    High,
}

impl Category {
    fn of(impact: f64) -> Category {
        if impact <= 0.10 {
            Category::Low
        } else if impact <= 0.30 {
            Category::Medium
        } else {
            Category::High
        }
    }

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Low => "L",
            Category::Medium => "M",
            Category::High => "H",
        }
    }
}

/// Sweep-wide configuration shared by all figure drivers.
#[derive(Clone, Debug)]
pub struct FigCfg {
    /// Thread counts for the X axis.
    pub threads: Vec<usize>,
    /// Timed window per data point.
    pub duration: Duration,
    /// Key range (paper: 500).
    pub key_range: u64,
    /// Pool capacity per run.
    pub pool_bytes: usize,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Thread count at which single-site impacts are measured.
    pub categorize_threads: usize,
}

impl Default for FigCfg {
    fn default() -> Self {
        FigCfg {
            threads: vec![1, 2, 4, 8],
            duration: Duration::from_millis(300),
            key_range: 500,
            pool_bytes: 1 << 30,
            out_dir: PathBuf::from("results"),
            categorize_threads: 4,
        }
    }
}

impl FigCfg {
    /// A very small configuration for smoke tests and `cargo bench` runs.
    pub fn smoke() -> Self {
        FigCfg {
            threads: vec![2],
            duration: Duration::from_millis(60),
            key_range: 128,
            pool_bytes: 512 << 20,
            categorize_threads: 2,
            ..Default::default()
        }
    }

    fn base(&self, kind: AlgoKind, threads: usize, mix: Mix) -> RunCfg {
        RunCfg {
            kind,
            threads,
            duration: self.duration,
            key_range: self.key_range,
            mix,
            pool_bytes: self.pool_bytes,
            backend: Backend::Clflush,
            seed: 0xD1CE,
            psync_enabled: true,
            site_mask: u64::MAX,
            flushopt: false,
        }
    }
}

fn mixname(mix: Mix) -> &'static str {
    if mix.find_pct >= 50 {
        "read-intensive"
    } else {
        "update-intensive"
    }
}

/// Figures 3a / 4a: throughput vs threads for the five implementations.
pub fn fig_throughput(cfg: &FigCfg, mix: Mix, name: &str) -> Csv {
    let mut csv = Csv::new(name, &["algo", "threads", "mops", "ops"]);
    for kind in AlgoKind::paper_lineup() {
        for &t in &cfg.threads {
            let r = run(&cfg.base(kind, t, mix));
            csv.push(&[
                kind.name().to_string(),
                t.to_string(),
                format!("{:.4}", r.mops()),
                r.ops.to_string(),
            ]);
        }
    }
    csv
}

/// Figures 3b / 4b: `psync`s per operation (counting backend — the counts
/// are backend-independent and the no-op backend keeps the sweep fast).
pub fn fig_psyncs(cfg: &FigCfg, mix: Mix, name: &str) -> Csv {
    let mut csv = Csv::new(name, &["algo", "threads", "psync_per_op"]);
    for kind in AlgoKind::paper_lineup() {
        for &t in &cfg.threads {
            let mut rc = cfg.base(kind, t, mix);
            rc.backend = Backend::Noop;
            let r = run(&rc);
            csv.push(&[
                kind.name().to_string(),
                t.to_string(),
                format!("{:.3}", r.psync_per_op()),
            ]);
        }
    }
    csv
}

/// Figures 3c / 4c: full vs `[no psyncs]` throughput for Tracking and
/// Capsules-Opt.
pub fn fig_no_psync(cfg: &FigCfg, mix: Mix, name: &str) -> Csv {
    let mut csv = Csv::new(name, &["variant", "threads", "mops"]);
    for kind in [AlgoKind::Tracking, AlgoKind::CapsulesOpt] {
        for &t in &cfg.threads {
            let full = run(&cfg.base(kind, t, mix));
            let mut rc = cfg.base(kind, t, mix);
            rc.psync_enabled = false;
            let nosync = run(&rc);
            csv.push(&[
                kind.name().to_string(),
                t.to_string(),
                format!("{:.4}", full.mops()),
            ]);
            csv.push(&[
                format!("{}[no psyncs]", kind.name()),
                t.to_string(),
                format!("{:.4}", nosync.mops()),
            ]);
        }
    }
    csv
}

/// Figures 3d / 4d: `pwb`s per operation.
pub fn fig_pwbs(cfg: &FigCfg, mix: Mix, name: &str) -> Csv {
    let mut csv = Csv::new(name, &["algo", "threads", "pwb_per_op"]);
    for kind in AlgoKind::paper_lineup() {
        for &t in &cfg.threads {
            let mut rc = cfg.base(kind, t, mix);
            rc.backend = Backend::Noop;
            let r = run(&rc);
            csv.push(&[
                kind.name().to_string(),
                t.to_string(),
                format!("{:.3}", r.pwb_per_op()),
            ]);
        }
    }
    csv
}

/// One categorized site: id, name, measured single-site impact, class.
#[derive(Clone, Debug)]
pub struct SiteImpact {
    /// Site id.
    pub site: SiteId,
    /// Site name (from the algorithm's site table).
    pub name: &'static str,
    /// Relative throughput loss of enabling only this site over the
    /// persistence-free version.
    pub impact: f64,
    /// The L/M/H class.
    pub category: Category,
}

/// The paper's single-site categorization methodology: measure the
/// persistence-free version, then each `pwb` code line alone (psync stays
/// removed), and classify by relative loss.
pub fn categorize(cfg: &FigCfg, mix: Mix, kind: AlgoKind) -> Vec<SiteImpact> {
    let t = cfg.categorize_threads;
    let mut free = cfg.base(kind, t, mix);
    free.psync_enabled = false;
    free.site_mask = 0;
    let base = run(&free).mops();
    // Discover the algorithm's sites from its site table.
    let sites: &[(SiteId, &'static str)] = {
        // a throwaway build to query the table
        let pool = std::sync::Arc::new(pmem::PmemPool::new(pmem::PoolCfg {
            capacity: 16 << 20,
            backend: Backend::Noop,
            shadow: false,
            max_threads: 8,
            ..Default::default()
        }));
        crate::adapter::build(kind, pool, 1, cfg.key_range).sites()
    };
    let mut out = Vec::new();
    for &(site, name) in sites {
        let mut rc = cfg.base(kind, t, mix);
        rc.psync_enabled = false;
        rc.site_mask = 1u64 << site.0;
        let r = run(&rc);
        if r.pwb_total() == 0 {
            continue; // site never executes under this policy/mix
        }
        let impact = (1.0 - r.mops() / base).max(0.0);
        out.push(SiteImpact {
            site,
            name,
            impact,
            category: Category::of(impact),
        });
    }
    out
}

fn mask_of(sites: &[SiteImpact], pred: impl Fn(&SiteImpact) -> bool) -> u64 {
    sites
        .iter()
        .filter(|s| pred(s))
        .fold(0u64, |m, s| m | 1u64 << s.site.0)
}

/// Figures 3e / 4e: executed `pwb`s per impact category, for Tracking and
/// Capsules-Opt. Also records each site's measured impact (the raw data of
/// the categorization).
pub fn fig_pwb_categories(cfg: &FigCfg, mix: Mix, name: &str) -> Csv {
    let mut csv = Csv::new(
        name,
        &["algo", "site", "impact_pct", "category", "pwbs_per_op"],
    );
    for kind in [AlgoKind::Tracking, AlgoKind::CapsulesOpt] {
        let sites = categorize(cfg, mix, kind);
        // Count executed pwbs per site in a full (all sites) counting run.
        let mut rc = cfg.base(kind, cfg.categorize_threads, mix);
        rc.backend = Backend::Noop;
        let full = run(&rc);
        for s in &sites {
            let per_op = full.pwb_per_site[s.site.0 as usize] as f64 / full.ops.max(1) as f64;
            csv.push(&[
                kind.name().to_string(),
                s.name.to_string(),
                format!("{:.1}", s.impact * 100.0),
                s.category.label().to_string(),
                format!("{:.3}", per_op),
            ]);
        }
        for cat in [Category::Low, Category::Medium, Category::High] {
            let total: u64 = sites
                .iter()
                .filter(|s| s.category == cat)
                .map(|s| full.pwb_per_site[s.site.0 as usize])
                .sum();
            csv.push(&[
                kind.name().to_string(),
                format!("TOTAL-{}", cat.label()),
                String::new(),
                cat.label().to_string(),
                format!("{:.3}", total as f64 / full.ops.max(1) as f64),
            ]);
        }
    }
    csv
}

/// Figures 3f / 4f: the combined impact of removing categories one by one:
/// full → −L → −L−M → −L−M−H (= `[no pwbs]`), across threads.
pub fn fig_category_sweep(cfg: &FigCfg, mix: Mix, name: &str) -> Csv {
    let mut csv = Csv::new(name, &["variant", "threads", "mops"]);
    for kind in [AlgoKind::Tracking, AlgoKind::CapsulesOpt] {
        let sites = categorize(cfg, mix, kind);
        let all = mask_of(&sites, |_| true);
        let not_l = mask_of(&sites, |s| s.category != Category::Low);
        let only_h = mask_of(&sites, |s| s.category == Category::High);
        let variants: [(String, u64); 4] = [
            (kind.name().to_string(), u64::MAX),
            (format!("{}[-L]", kind.name()), not_l | !all),
            (format!("{}[-L-M]", kind.name()), only_h | !all),
            (format!("{}[no pwbs]", kind.name()), !all),
        ];
        for &t in &cfg.threads {
            for (label, mask) in &variants {
                let mut rc = cfg.base(kind, t, mix);
                rc.site_mask = *mask;
                let r = run(&rc);
                csv.push(&[label.clone(), t.to_string(), format!("{:.4}", r.mops())]);
            }
        }
    }
    csv
}

/// Figures 5 / 6: the X-caused performance loss for one algorithm:
/// persistence-free, free + only category X (X ∈ {L, M, H}), and full,
/// across threads.
pub fn fig_x_loss(cfg: &FigCfg, mix: Mix, kind: AlgoKind, name: &str) -> Csv {
    let mut csv = Csv::new(name, &["variant", "threads", "mops"]);
    let sites = categorize(cfg, mix, kind);
    let cats = [
        ("persistence-free", 0u64),
        ("+L", mask_of(&sites, |s| s.category == Category::Low)),
        ("+M", mask_of(&sites, |s| s.category == Category::Medium)),
        ("+H", mask_of(&sites, |s| s.category == Category::High)),
    ];
    for &t in &cfg.threads {
        for (label, mask) in &cats {
            let mut rc = cfg.base(kind, t, mix);
            rc.psync_enabled = false;
            rc.site_mask = *mask;
            let r = run(&rc);
            csv.push(&[label.to_string(), t.to_string(), format!("{:.4}", r.mops())]);
        }
        let full = run(&cfg.base(kind, t, mix));
        csv.push(&[
            "full".to_string(),
            t.to_string(),
            format!("{:.4}", full.mops()),
        ]);
    }
    csv
}

/// Ablation study (beyond the paper's figures): what Tracking's two design
/// choices buy. Compares the paper's configuration against the naive
/// flush-every-read placement and against disabling the read-only
/// optimization, reporting throughput and pwb volume.
pub fn fig_ablation(cfg: &FigCfg, name: &str) -> Csv {
    let mut csv = Csv::new(name, &["variant", "mix", "threads", "mops", "pwb_per_op"]);
    let variants = [
        AlgoKind::Tracking,
        AlgoKind::TrackingNaive,
        AlgoKind::TrackingNoReadOpt,
        AlgoKind::CapsulesOpt,
    ];
    for mix in [Mix::READ_INTENSIVE, Mix::UPDATE_INTENSIVE] {
        for kind in variants {
            for &t in &cfg.threads {
                let r = run(&cfg.base(kind, t, mix));
                csv.push(&[
                    kind.name().to_string(),
                    mixname(mix).to_string(),
                    t.to_string(),
                    format!("{:.4}", r.mops()),
                    format!("{:.2}", r.pwb_per_op()),
                ]);
            }
        }
    }
    csv
}

/// Key-range sweep (the paper's appendix: "experiments for other ranges …
/// exhibit the same trends").
pub fn fig_range_sweep(cfg: &FigCfg, name: &str) -> Csv {
    let mut csv = Csv::new(name, &["algo", "range", "mops"]);
    let t = cfg.categorize_threads;
    for range in [100u64, 500, 2000] {
        for kind in AlgoKind::paper_lineup() {
            let mut rc = cfg.base(kind, t, Mix::UPDATE_INTENSIVE);
            rc.key_range = range;
            let r = run(&rc);
            csv.push(&[
                kind.name().to_string(),
                range.to_string(),
                format!("{:.4}", r.mops()),
            ]);
        }
    }
    csv
}

/// Operation-mix sweep (the paper: "results for other operation type
/// distributions were similar").
pub fn fig_mix_sweep(cfg: &FigCfg, name: &str) -> Csv {
    let mut csv = Csv::new(name, &["algo", "find_pct", "mops", "pwb_per_op"]);
    let t = cfg.categorize_threads;
    for find_pct in [0u32, 30, 50, 70, 90, 100] {
        for kind in [AlgoKind::Tracking, AlgoKind::CapsulesOpt] {
            let r = run(&cfg.base(kind, t, Mix { find_pct }));
            csv.push(&[
                kind.name().to_string(),
                find_pct.to_string(),
                format!("{:.4}", r.mops()),
                format!("{:.2}", r.pwb_per_op()),
            ]);
        }
    }
    csv
}

/// Universal-construction head-to-head (checks the paper's parenthetical
/// claim that "RedoOpt constantly outperformed OneFile and all other
/// algorithms in \[16\]"): RedoOpt's whole-object copies vs OneFile's
/// word-granular redo logs, both mixes.
pub fn fig_uc_compare(cfg: &FigCfg, name: &str) -> Csv {
    let mut csv = Csv::new(name, &["algo", "mix", "threads", "mops", "pwb_per_op"]);
    for mix in [Mix::READ_INTENSIVE, Mix::UPDATE_INTENSIVE] {
        for kind in [AlgoKind::RedoOpt, AlgoKind::OneFile] {
            for &t in &cfg.threads {
                let r = run(&cfg.base(kind, t, mix));
                csv.push(&[
                    kind.name().to_string(),
                    mixname(mix).to_string(),
                    t.to_string(),
                    format!("{:.4}", r.mops()),
                    format!("{:.2}", r.pwb_per_op()),
                ]);
            }
        }
    }
    csv
}

/// Per-site cost attribution (beyond the paper's figures), built on the
/// pmem trace/lint instrumentation: for every algorithm, a deterministic
/// single-threaded workload runs with the flush lint enabled and the table
/// reports, per `pwb` call site, the executed flush count, flushes per
/// operation, the fraction of flushes that wrote back a genuinely dirty
/// line (`dirty_ratio` — low values mean the site mostly re-flushes clean
/// lines), and the absolute number of redundant flushes. `unflushed` counts
/// lint findings whose lost store originated at the site (non-zero only
/// for lines legitimately in flight when the run stopped, or for real
/// durability gaps).
pub fn fig_attribution(cfg: &FigCfg, name: &str) -> Csv {
    use pmem::LintKind;
    let mut csv = Csv::new(
        name,
        &[
            "algo",
            "site",
            "name",
            "pwbs",
            "pwb_per_op",
            "dirty_ratio",
            "redundant",
            "unflushed",
            "pwb_per_op_flushopt",
            "elided_per_op_flushopt",
        ],
    );
    const OPS: u64 = 4_000;
    let kinds = [
        AlgoKind::Tracking,
        AlgoKind::TrackingBst,
        AlgoKind::Capsules,
        AlgoKind::CapsulesOpt,
        AlgoKind::Romulus,
        AlgoKind::RedoOpt,
        AlgoKind::OneFile,
    ];
    for kind in kinds {
        // Each algorithm runs the identical script twice: once plain (the
        // lint's redundancy attribution — the "before" columns) and once
        // with the flush-elision layer armed (the "after" columns: what of
        // that redundancy the layer actually removes, per site). The lint
        // stays on in the second run so its elided-dirty-pwb cross-check
        // guards every elision the report counts.
        let measure = |flushopt: bool| {
            let pool = std::sync::Arc::new(pmem::PmemPool::new(pmem::PoolCfg {
                capacity: 256 << 20,
                backend: Backend::Noop,
                shadow: false,
                max_threads: 8,
                lint: true,
                flushopt,
                ..Default::default()
            }));
            let algo = crate::adapter::build(kind, pool.clone(), 1, cfg.key_range);
            let ctx = pmem::ThreadCtx::new(pool.clone(), 0);
            // Attribute only steady-state operations, not construction.
            pool.stats_reset();
            pool.lint_clear();
            let mut rng = 0x5EED_D1CEu64;
            for i in 0..OPS {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let key = (rng >> 33) % cfg.key_range + 1;
                match i % 4 {
                    0 => {
                        algo.insert(&ctx, key);
                    }
                    2 => {
                        algo.delete(&ctx, key);
                    }
                    _ => {
                        algo.find(&ctx, key);
                    }
                }
            }
            (pool.stats(), pool.lint_report(), pool)
        };
        let (stats, report, pool) = measure(false);
        let (fo_stats, fo_report, _fo_pool) = measure(true);
        assert_eq!(
            fo_report.count(LintKind::ElidedDirtyPwb),
            0,
            "{}: flushopt elided a pwb the lint believes was of a dirty line",
            kind.name()
        );
        for (site, pwbs) in stats.site_rows() {
            let unflushed = report
                .of_kind(LintKind::UnflushedDirty)
                .filter(|d| d.site == site.0)
                .count();
            csv.push(&[
                kind.name().to_string(),
                site.0.to_string(),
                pool.site_name(site).unwrap_or("?").to_string(),
                pwbs.to_string(),
                format!("{:.3}", pwbs as f64 / OPS as f64),
                format!("{:.3}", report.dirty_ratio(site)),
                report.pwb_redundant[site.0 as usize].to_string(),
                unflushed.to_string(),
                format!("{:.3}", fo_stats.pwb_at(site) as f64 / OPS as f64),
                format!(
                    "{:.3}",
                    fo_stats.pwb_elided_per_site[site.0 as usize] as f64 / OPS as f64
                ),
            ]);
        }
    }
    csv
}

/// Runs every figure of the paper and writes the CSVs. Returns the list of
/// written files.
pub fn run_all(cfg: &FigCfg) -> Vec<PathBuf> {
    let mut written = Vec::new();
    let mut emit = |csv: Csv| {
        println!("\n== {} ==\n{}", csv.name(), csv.to_text());
        written.push(csv.write(&cfg.out_dir).expect("writing CSV"));
    };
    for (mix, f) in [
        (Mix::READ_INTENSIVE, "fig3"),
        (Mix::UPDATE_INTENSIVE, "fig4"),
    ] {
        emit(fig_throughput(
            cfg,
            mix,
            &format!("{f}a_throughput_{}", mixname(mix)),
        ));
        emit(fig_psyncs(
            cfg,
            mix,
            &format!("{f}b_psyncs_{}", mixname(mix)),
        ));
        emit(fig_no_psync(
            cfg,
            mix,
            &format!("{f}c_no_psync_{}", mixname(mix)),
        ));
        emit(fig_pwbs(cfg, mix, &format!("{f}d_pwbs_{}", mixname(mix))));
        emit(fig_pwb_categories(
            cfg,
            mix,
            &format!("{f}e_pwb_categories_{}", mixname(mix)),
        ));
        emit(fig_category_sweep(
            cfg,
            mix,
            &format!("{f}f_category_sweep_{}", mixname(mix)),
        ));
    }
    emit(fig_x_loss(
        cfg,
        Mix::UPDATE_INTENSIVE,
        AlgoKind::Tracking,
        "fig5_x_loss_tracking",
    ));
    emit(fig_x_loss(
        cfg,
        Mix::UPDATE_INTENSIVE,
        AlgoKind::CapsulesOpt,
        "fig6_x_loss_capsules_opt",
    ));
    emit(fig_ablation(cfg, "ablation_tracking_design_choices"));
    emit(fig_range_sweep(cfg, "appendix_range_sweep"));
    emit(fig_mix_sweep(cfg, "appendix_mix_sweep"));
    emit(fig_uc_compare(cfg, "appendix_uc_compare"));
    emit(fig_attribution(cfg, "appendix_site_attribution"));
    written
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_thresholds() {
        assert_eq!(Category::of(0.05), Category::Low);
        assert_eq!(Category::of(0.10), Category::Low);
        assert_eq!(Category::of(0.2), Category::Medium);
        assert_eq!(Category::of(0.30), Category::Medium);
        assert_eq!(Category::of(0.5), Category::High);
    }

    #[test]
    fn attribution_emits_rows_for_every_algo() {
        let cfg = FigCfg::smoke();
        let csv = fig_attribution(&cfg, "attribution_test");
        let text = csv.to_text();
        for algo in ["Tracking", "Capsules-Opt", "Romulus", "RedoOpt", "OneFile"] {
            assert!(text.contains(algo), "missing rows for {algo}:\n{text}");
        }
        // site names resolved through the pool registry, not left unknown
        assert!(
            text.contains("new-node") || text.contains("result"),
            "{text}"
        );
    }

    #[test]
    fn categorize_tracking_smoke() {
        let cfg = FigCfg::smoke();
        let sites = categorize(&cfg, Mix::UPDATE_INTENSIVE, AlgoKind::Tracking);
        assert!(!sites.is_empty(), "tracking must have active pwb sites");
        // every executed site got a class
        for s in &sites {
            assert!(
                s.impact >= 0.0 && s.impact <= 1.0,
                "{}: {}",
                s.name,
                s.impact
            );
        }
    }

    #[test]
    fn fig_throughput_smoke() {
        let cfg = FigCfg::smoke();
        let csv = fig_throughput(&cfg, Mix::READ_INTENSIVE, "smoke_fig3a");
        let text = csv.to_text();
        for kind in AlgoKind::paper_lineup() {
            assert!(text.contains(kind.name()), "{} missing", kind.name());
        }
    }
}
