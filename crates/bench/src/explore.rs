//! Deterministic concurrent-schedule exploration with crash injection.
//!
//! The crash sweep ([`crate::sweep`]) proves every *single-threaded* crash
//! point recovers; this module attacks the other axis: genuinely concurrent
//! executions. It runs N real OS threads against one structure but
//! *serializes* them into a deterministic interleaving — a **schedule** —
//! and checks that the per-thread responses (plus a post-run observation
//! phase) form a linearizable history of the structure's [`linearize`]
//! specification. Optionally it crashes the whole system at a chosen event
//! of a chosen schedule and verifies the recovered responses still
//! linearize.
//!
//! ## How a schedule is executed
//!
//! Every instrumented pool event (`load`/`store`/`cas`/`pwb`/`pfence`/
//! `psync`) is a *yield point*: with the pool's scheduler bit set
//! ([`pmem::PmemPool::set_sched_enabled`]), each event first invokes the
//! executing thread's [`pmem::set_yield_hook`] hook. Each worker's hook
//! calls into a shared scheduler monitor (`Sched`): a mutex/condvar *turn* that exactly one
//! worker holds at a time. A worker only runs while it holds the turn; at
//! every yield point the exploration strategy picks who executes the next
//! event, and the turn is handed over (or kept). The result is a serial
//! event order that is a deterministic function of `(strategy, seed,
//! schedule index)` — re-running the same triple replays the identical
//! interleaving, which is what makes crash points addressable.
//!
//! Because the yield points ride the same slow path as the
//! [`pmem::CrashCtl`] tick (hook first, then tick), a crash-free run of a
//! schedule counts its events `E`, and any `k < E` can then be armed with
//! [`pmem::CrashCtl::arm_after`] to crash that same schedule
//! deterministically. For the lock-free subjects event index and tick
//! index coincide exactly; a blocking subject's wait loops (Romulus) add
//! extra ticks between events, so `k` names "the k-th tick of this
//! schedule's serial execution" — still a fixed, replayable point, since
//! the wait-loop iteration counts are themselves deterministic under the
//! turn protocol, and still dense in the schedule (`k < E ≤ total
//! ticks`, so every armed crash fires). The crash unwinds the unlucky worker, which broadcasts
//! ([`pmem::CrashCtl::raise`]) so every other worker crashes at its next
//! event — a full-system power failure, as the paper models it. The driver
//! then resolves the crash model, runs each crashed thread's `recover`
//! entry point (sequentially, as a restarted system would), and feeds all
//! completed + recovered operations with their original invocation stamps
//! to the structure subject's concurrent verdict
//! (`sweep::CrashSubject::concurrent_verdict`).
//!
//! ## Strategies
//!
//! * **round-robin** — strict alternation among live threads: maximal
//!   fine-grained interleaving, the densest overlap structure.
//! * **random** — each decision picks a live thread uniformly from a
//!   seeded deterministic generator: unbiased coverage of the
//!   interleaving space.
//! * **pct** — PCT-style priority schedules (Burckhardt et al., ASPLOS
//!   '10): threads get shuffled priorities, the highest-priority live
//!   thread always runs, and at `d−1` seeded *change points* (event
//!   indices in a calibrated horizon) the current leader is demoted to
//!   the bottom. Finds bugs that need long undisturbed runs punctuated
//!   by a context switch at one precise spot.
//!
//! Progress: the lock-free structures complete the granted thread's
//! operation in finitely many events even if every other thread stays
//! parked, so schedules terminate on events alone. Blocking subjects
//! (Romulus: an OS writer mutex plus seqlock reader spins) additionally
//! route their busy-wait loops through the *spin channel*
//! ([`pmem::set_spin_hook`] / [`pmem::yield_spin`]): a waiter that cannot
//! proceed hands the turn back via `Sched::spin_point`, which — unlike a
//! yield point — does **not** advance the event count or the crash
//! countdown (wait-loop iteration counts are scheduling artifacts, and
//! counting them would desynchronize crash-point indexing between a count
//! run and its replays). Under PCT the spinner is demoted exactly like a
//! change-point demotion, so the lock holder it waits on becomes the
//! leader and runs to release. A fuel counter on events and a second one
//! on spins abort the run loudly if either termination assumption is
//! violated.
//!
//! The `explore` binary drives this engine over the structure × algorithm ×
//! strategy matrix and writes one CSV per pair under `results/explore/`.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use linearize::{MapOp, QueueOp, SetOp, Spec, StackOp};
use pmem::{run_crashable, PmemPool, PoolCfg, PoolSnapshot, SiteId, ThreadCtx};
use tracking::{RecoverableExchanger, RecoverableHashMap, RecoverableQueue, RecoverableStack};

use crate::adapter::{build, AlgoKind, StructureKind};
use crate::csv::Csv;
use crate::sweep::{
    csv_escape, file_slug, splitmix64, AdversaryKind, CombQueueSubject, CombStackSubject,
    CompletedOp, CrashSubject, ExchangerSubject, HashmapSubject, QueueSubject, Rng, SetSubject,
    StackSubject, HASHMAP_SWEEP_CFG, MAP_KEYS, SET_KEYS,
};

// --------------------------------------------------------------- strategies

/// A schedule-exploration strategy (see the module docs for what each
/// one is good at).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StrategyKind {
    /// Strict alternation among live threads.
    RoundRobin,
    /// Uniform seeded-random choice per decision.
    Random,
    /// PCT-style priority schedules with seeded change points.
    Pct,
}

impl StrategyKind {
    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<StrategyKind> {
        Some(match s {
            "rr" | "round-robin" => StrategyKind::RoundRobin,
            "random" => StrategyKind::Random,
            "pct" => StrategyKind::Pct,
            _ => return None,
        })
    }

    /// CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::RoundRobin => "round-robin",
            StrategyKind::Random => "random",
            StrategyKind::Pct => "pct",
        }
    }

    /// Every strategy, in matrix order.
    pub fn all() -> [StrategyKind; 3] {
        [
            StrategyKind::RoundRobin,
            StrategyKind::Random,
            StrategyKind::Pct,
        ]
    }
}

/// PCT safety valve: if the leader is picked this many consecutive times
/// while others are live, it is demoted anyway. With lock-free subjects a
/// leader retires long before this; the guard only matters if a future
/// subject violates the progress assumption.
const PCT_MAX_BURST: u64 = 100_000;

/// Number of PCT change points (`d − 1` for bug depth `d = 3`).
const PCT_CHANGE_POINTS: usize = 2;

/// One instantiated strategy: the deterministic decision function of a
/// single schedule. `pick` is called once per scheduling decision and must
/// return a live thread.
enum Strategy {
    RoundRobin {
        last: usize,
    },
    Random {
        rng: Rng,
    },
    Pct {
        /// Priority per thread; higher runs. Demotions assign values from
        /// `floor` downward so the demoted thread ranks below everyone.
        prio: Vec<i64>,
        floor: i64,
        /// Ascending event indices at which the current leader is demoted.
        change: Vec<u64>,
        next_change: usize,
        burst: u64,
        last: usize,
    },
}

impl Strategy {
    fn new(kind: StrategyKind, n: usize, seed: u64, horizon: u64) -> Strategy {
        match kind {
            StrategyKind::RoundRobin => Strategy::RoundRobin { last: n - 1 },
            StrategyKind::Random => Strategy::Random {
                rng: Rng(splitmix64(seed) | 1),
            },
            StrategyKind::Pct => {
                let mut rng = Rng(splitmix64(seed) | 1);
                // Fisher–Yates shuffle of the priorities 1..=n.
                let mut prio: Vec<i64> = (1..=n as i64).collect();
                for i in (1..n).rev() {
                    let j = (rng.next() % (i as u64 + 1)) as usize;
                    prio.swap(i, j);
                }
                let h = horizon.max(16);
                let mut change: Vec<u64> = (0..PCT_CHANGE_POINTS).map(|_| rng.next() % h).collect();
                change.sort_unstable();
                Strategy::Pct {
                    prio,
                    floor: 0,
                    change,
                    next_change: 0,
                    burst: 0,
                    last: usize::MAX,
                }
            }
        }
    }

    /// Picks the thread that executes the next event. `alive` has at least
    /// one live entry; `events` counts the events executed so far.
    fn pick(&mut self, alive: &[bool], events: u64) -> usize {
        debug_assert!(alive.iter().any(|&a| a));
        match self {
            Strategy::RoundRobin { last } => {
                let n = alive.len();
                let mut i = (*last + 1) % n;
                while !alive[i] {
                    i = (i + 1) % n;
                }
                *last = i;
                i
            }
            Strategy::Random { rng } => {
                let live: Vec<usize> = (0..alive.len()).filter(|&i| alive[i]).collect();
                live[(rng.next() % live.len() as u64) as usize]
            }
            Strategy::Pct {
                prio,
                floor,
                change,
                next_change,
                burst,
                last,
            } => {
                let leader = |prio: &[i64]| {
                    (0..alive.len())
                        .filter(|&i| alive[i])
                        .max_by_key(|&i| prio[i])
                        .unwrap()
                };
                while *next_change < change.len() && events >= change[*next_change] {
                    let cur = leader(prio);
                    *floor -= 1;
                    prio[cur] = *floor;
                    *next_change += 1;
                }
                let mut cur = leader(prio);
                if cur == *last {
                    *burst += 1;
                    if *burst > PCT_MAX_BURST && alive.iter().filter(|&&a| a).count() > 1 {
                        *floor -= 1;
                        prio[cur] = *floor;
                        *burst = 0;
                        cur = leader(prio);
                    }
                } else {
                    *burst = 0;
                }
                *last = cur;
                cur
            }
        }
    }

    /// Demotes thread `t` below every other priority. Only PCT carries
    /// priorities; the memoryless strategies need no demotion for spin
    /// progress (round-robin rotates past the spinner by construction,
    /// random picks every live thread with positive probability). Called
    /// from [`Sched::spin_point`] so a busy-waiting PCT leader stops being
    /// re-picked forever while the thread it waits on stays parked.
    fn demote(&mut self, t: usize) {
        if let Strategy::Pct {
            prio, floor, burst, ..
        } = self
        {
            *floor -= 1;
            prio[t] = *floor;
            *burst = 0;
        }
    }
}

// ---------------------------------------------------------------- scheduler

/// Sentinel for "nobody holds the turn" (pre-launch / all retired).
const NOBODY: usize = usize::MAX;

struct SchedSt {
    started: bool,
    /// The virtual thread currently allowed to run.
    granted: usize,
    alive: Vec<bool>,
    live: usize,
    /// Events executed so far (== crash-countdown ticks in a crash-free
    /// run of a lock-free subject: the hook and the tick ride the same
    /// instrumented slow path; blocking subjects add extra ticks from
    /// their wait loops, which stay deterministic under the turn
    /// protocol).
    events: u64,
    /// Spin yields taken so far (see [`Sched::spin_point`]) — bounded by
    /// its own backstop, never mixed into `events`.
    spins: u64,
    fuel: u64,
    abort: bool,
    strategy: Strategy,
}

/// The cooperative turn: a mutex/condvar protocol serializing N workers
/// into one deterministic event order. Exactly one worker holds the turn;
/// it runs until its next yield point, where the strategy decides who
/// executes the next event.
struct Sched {
    st: Mutex<SchedSt>,
    cv: Condvar,
}

impl Sched {
    fn new(n: usize, strategy: Strategy, fuel: u64) -> Sched {
        Sched {
            st: Mutex::new(SchedSt {
                started: false,
                granted: NOBODY,
                alive: vec![true; n],
                live: n,
                events: 0,
                spins: 0,
                fuel,
                abort: false,
                strategy,
            }),
            cv: Condvar::new(),
        }
    }

    /// Poison-tolerant lock: an aborting worker panics while holding the
    /// mutex, and everyone else must still be able to observe the abort.
    fn lock(&self) -> std::sync::MutexGuard<'_, SchedSt> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(
        &self,
        g: std::sync::MutexGuard<'a, SchedSt>,
    ) -> std::sync::MutexGuard<'a, SchedSt> {
        self.cv.wait(g).unwrap_or_else(|e| e.into_inner())
    }

    /// Opens the start gate and grants the strategy's first pick. Called by
    /// the driver after every worker has been spawned.
    fn launch(&self) {
        let mut st = self.lock();
        st.started = true;
        let st = &mut *st;
        st.granted = st.strategy.pick(&st.alive, st.events);
        self.cv.notify_all();
    }

    /// Blocks the worker until the exploration has launched *and* it holds
    /// the turn. Workers call this before touching the pool, so nothing —
    /// not even a clock stamp — executes outside the serial order.
    fn gate(&self, me: usize) {
        let mut st = self.lock();
        while !(st.started && st.granted == me) {
            if st.abort {
                drop(st);
                panic!("schedule explorer aborted");
            }
            st = self.wait(st);
        }
    }

    /// The yield point: called (via the thread's yield hook) immediately
    /// before each of the worker's instrumented events. Decides who
    /// executes the next event, hands the turn over if it is someone else,
    /// and blocks until the turn comes back. On return the caller owns the
    /// event it is about to execute.
    fn yield_point(&self, me: usize) {
        let mut st = self.lock();
        debug_assert_eq!(st.granted, me, "only the turn holder reaches a yield point");
        let next = {
            let st = &mut *st;
            st.strategy.pick(&st.alive, st.events)
        };
        if next != me {
            st.granted = next;
            self.cv.notify_all();
            while st.granted != me {
                if st.abort {
                    drop(st);
                    panic!("schedule explorer aborted");
                }
                st = self.wait(st);
            }
        }
        if st.abort {
            drop(st);
            panic!("schedule explorer aborted");
        }
        st.events += 1;
        if st.events >= st.fuel {
            st.abort = true;
            self.cv.notify_all();
            let fuel = st.fuel;
            drop(st);
            panic!(
                "schedule explorer: fuel exhausted after {fuel} events — \
                 a subject violated the lock-free progress assumption"
            );
        }
    }

    /// The *spin* point: called (via the thread's spin hook) from a
    /// busy-wait loop in a blocking subject — the spinner cannot proceed
    /// until another thread runs, so it releases the turn and blocks until
    /// it is granted again. Crucially this is **not** an instrumented pool
    /// event: `events` does not advance (a spin count is a scheduling
    /// artifact; counting it would desynchronize crash-point indexing
    /// between a count run and its crash replays) and the crash countdown
    /// is not ticked here (the subject's wait loop ticks it itself, after
    /// the yield, so a raised system-wide crash still stops the spinner).
    ///
    /// The spinner is demoted under PCT before the next pick — otherwise a
    /// spinning leader is re-picked forever and the thread it waits on
    /// never runs. A separate spin backstop aborts if the wait never
    /// resolves (a genuine deadlock: with every worker either retired or
    /// unable to release what the spinner waits on, no pick can help).
    fn spin_point(&self, me: usize) {
        let mut st = self.lock();
        debug_assert_eq!(st.granted, me, "only the turn holder reaches a spin point");
        st.spins += 1;
        if st.spins >= st.fuel {
            st.abort = true;
            self.cv.notify_all();
            let fuel = st.fuel;
            drop(st);
            panic!(
                "schedule explorer: spin backstop exhausted after {fuel} spin yields — \
                 a blocked subject never unblocked (deadlock under the explored schedule)"
            );
        }
        let next = {
            let st = &mut *st;
            st.strategy.demote(me);
            st.strategy.pick(&st.alive, st.events)
        };
        if next != me {
            st.granted = next;
            self.cv.notify_all();
            while st.granted != me {
                if st.abort {
                    drop(st);
                    panic!("schedule explorer aborted");
                }
                st = self.wait(st);
            }
        }
        if st.abort {
            drop(st);
            panic!("schedule explorer aborted");
        }
    }

    /// Removes the worker from the schedule (script finished or crash
    /// unwound) and hands the turn to the strategy's next pick, cascading
    /// until every worker has retired.
    fn retire(&self, me: usize) {
        let mut st = self.lock();
        if st.alive[me] {
            st.alive[me] = false;
            st.live -= 1;
        }
        if st.granted == me {
            st.granted = if st.live == 0 {
                NOBODY
            } else {
                let st = &mut *st;
                st.strategy.pick(&st.alive, st.events)
            };
        }
        self.cv.notify_all();
    }

    fn events(&self) -> u64 {
        self.lock().events
    }
}

// ------------------------------------------------------------- per-run data

/// How crash injection is applied to explored schedules.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// Crash-free exploration only.
    Off,
    /// After each clean schedule run, re-run it with a crash armed at each
    /// of up to `per_schedule` distinct seeded event indices.
    Sampled {
        /// Crash points injected per explored schedule.
        per_schedule: u64,
    },
}

/// Configuration of one exploration (one structure × algorithm pair).
#[derive(Clone, Debug)]
pub struct ExploreCfg {
    /// Which structure shape to explore.
    pub structure: StructureKind,
    /// Which implementation (must be [`AlgoKind::schedulable`]).
    pub algo: AlgoKind,
    /// Virtual threads per schedule (≥ 2).
    pub threads: usize,
    /// Scripted operations per thread.
    pub ops_per_thread: usize,
    /// Schedules explored per strategy.
    pub schedules: u64,
    /// Strategies to run.
    pub strategies: Vec<StrategyKind>,
    /// Crash injection mode.
    pub crash: CrashMode,
    /// Crash adversary for injected crashes.
    pub adversary: AdversaryKind,
    /// Seed for scripts, strategies, and crash sampling.
    pub seed: u64,
    /// This shard's index in `[0, shard_count)`.
    pub shard_index: u64,
    /// Number of shards splitting the (strategy, schedule) grid.
    pub shard_count: u64,
    /// Pool size.
    pub pool_bytes: usize,
    /// Abort backstop: maximum events per schedule run.
    pub fuel: u64,
    /// Build the pool with the recoverable free-list allocator
    /// ([`pmem::PoolCfg::reclaim`]): structures retire removed nodes,
    /// recovery runs [`PmemPool::recover_allocator`] before structure
    /// recovery, the end of every schedule drains limbo (a quiescent
    /// point), and every verdict additionally audits the allocator's lists.
    /// Default `false`.
    pub reclaim: bool,
    /// Build the pool with the flush-elision layer armed
    /// ([`pmem::PoolCfg::flushopt`]). Under the cooperative scheduler this
    /// exercises the layer's concurrency story: elided `pwb`s and coalesced
    /// fences vanish from the yield-point stream (schedules get shorter),
    /// deferred flushes drain at another virtual thread's fence, and every
    /// injected crash must still recover detectably. Default `false`.
    pub flushopt: bool,
}

impl ExploreCfg {
    /// Defaults for a pair: 2 threads × 4 ops, 4 schedules per strategy,
    /// all three strategies, sampled crash injection.
    pub fn new(structure: StructureKind, algo: AlgoKind) -> ExploreCfg {
        ExploreCfg {
            structure,
            algo,
            threads: 2,
            ops_per_thread: 4,
            schedules: 4,
            strategies: StrategyKind::all().to_vec(),
            crash: CrashMode::Sampled { per_schedule: 2 },
            adversary: AdversaryKind::Pessimist,
            seed: 0xDE7E_C7AB,
            shard_index: 0,
            shard_count: 1,
            pool_bytes: 64 << 20,
            fuel: 5_000_000,
            reclaim: false,
            flushopt: false,
        }
    }
}

/// Outcome of one executed schedule (crash-free or crash-injected).
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Strategy that generated the schedule.
    pub strategy: StrategyKind,
    /// Schedule index within the strategy.
    pub schedule: u64,
    /// Armed crash point, if any.
    pub crash_k: Option<u64>,
    /// Instrumented events executed (before the crash, if one fired).
    pub events: u64,
    /// Completed + recovered operations fed to the verdict.
    pub ops_recorded: usize,
    /// Virtual threads whose in-flight operation was crash-interrupted.
    pub crashed_threads: usize,
    /// Did the history linearize and the structure pass its invariants?
    pub ok: bool,
    /// A worker panicked with the pool's exhaustion message: a capacity
    /// problem, not a schedule finding. `note` carries the actionable
    /// message and `ok` is `false`.
    pub exhausted: bool,
    /// Failure detail (empty when the run passed).
    pub note: String,
}

/// Result of one full exploration.
pub struct ExploreReport {
    /// The configuration that produced this report.
    pub cfg: ExploreCfg,
    /// Crash-free schedule runs executed.
    pub runs: u64,
    /// Schedule runs skipped by sharding.
    pub runs_skipped: u64,
    /// Crash-injected runs executed.
    pub crash_runs: u64,
    /// Total events across all executed runs.
    pub total_events: u64,
    /// Every failing run.
    pub violations: Vec<RunOutcome>,
    /// Per-run CSV (one row per executed run).
    pub csv: Csv,
}

impl ExploreReport {
    /// Did every executed run pass?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line console summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<9} {:<22} t={} runs={:<4} crash-runs={:<4} skipped={:<3} events={:<7} violations={} {}",
            self.cfg.structure.name(),
            self.cfg.algo.name(),
            self.cfg.threads,
            self.runs,
            self.crash_runs,
            self.runs_skipped,
            self.total_events,
            self.violations.len(),
            if self.ok() { "OK" } else { "FAIL" },
        )
    }
}

// ----------------------------------------------------------------- scripts

/// Per-thread set script over the shared key universe — shared keys are the
/// point: conflicting inserts/deletes of the same key on different threads
/// are what the linearizability check bites on.
fn set_script_for(seed: u64, t: usize, len: usize) -> Vec<SetOp> {
    let mut rng = Rng(splitmix64(seed ^ (t as u64 + 1).wrapping_mul(0xA5A5_1234)) | 1);
    (0..len)
        .map(|_| {
            let r = rng.next();
            let key = r % SET_KEYS + 1;
            match (r >> 32) % 8 {
                0..=3 => SetOp::Insert(key),
                4..=6 => SetOp::Delete(key),
                _ => SetOp::Find(key),
            }
        })
        .collect()
}

/// Per-thread queue script. Values are unique across threads (thread `t`
/// enqueues from base `(t+1)·1000`) so the checker can tell whose element a
/// dequeue observed.
fn queue_script_for(seed: u64, t: usize, len: usize) -> Vec<QueueOp> {
    let mut rng = Rng(splitmix64(seed ^ (t as u64 + 1).wrapping_mul(0x5EED_4321)) | 1);
    let mut next = (t as u64 + 1) * 1000;
    (0..len)
        .map(|_| {
            if rng.next() % 5 < 3 {
                next += 1;
                QueueOp::Enqueue(next)
            } else {
                QueueOp::Dequeue
            }
        })
        .collect()
}

/// Per-thread stack script; same unique-value scheme as the queue.
fn stack_script_for(seed: u64, t: usize, len: usize) -> Vec<StackOp> {
    let mut rng = Rng(splitmix64(seed ^ (t as u64 + 1).wrapping_mul(0x57AC_8765)) | 1);
    let mut next = (t as u64 + 1) * 1000;
    (0..len)
        .map(|_| {
            if rng.next() % 5 < 3 {
                next += 1;
                StackOp::Push(next)
            } else {
                StackOp::Pop
            }
        })
        .collect()
}

/// Per-thread exchanger script: each op offers a globally unique value, so
/// the pairing oracle's partner map is well-defined.
fn exchange_script_for(t: usize, len: usize) -> Vec<u64> {
    (0..len as u64).map(|i| (t as u64 + 1) * 1000 + i).collect()
}

/// Per-thread hashmap script. Thread 0 is put-heavy over the shared key
/// universe (driving chains past the resize trigger), the others mix
/// puts/removes/gets on the same keys — so resizes race bucket operations
/// and other resizes, the schedules the hashmap exists to survive.
fn map_script_for(seed: u64, t: usize, len: usize) -> Vec<MapOp> {
    let mut rng = Rng(splitmix64(seed ^ (t as u64 + 1).wrapping_mul(0x4A5F_9876)) | 1);
    (0..len)
        .map(|_| {
            let r = rng.next();
            let key = r % MAP_KEYS + 1;
            if t == 0 {
                MapOp::Put(key, (r >> 40) % 90 + 100)
            } else {
                match (r >> 32) % 8 {
                    0..=3 => MapOp::Put(key, (r >> 40) % 90 + 200),
                    4..=6 => MapOp::Remove(key),
                    _ => MapOp::Get(key),
                }
            }
        })
        .collect()
}

// ------------------------------------------------------------------ engine

/// What a worker knows about its crash-interrupted operation, harvested
/// after the unwind for the recovery phase.
#[derive(Copy, Clone)]
struct CrashedOp {
    op_index: usize,
    /// Did the crash land after `begin_op`'s `CP_q := 0` prologue? Recovery
    /// functions are only defined past the prologue (see `sweep` docs);
    /// before it, the system re-invokes from scratch.
    past_prologue: bool,
    /// Invocation stamp taken when the operation was invoked — the
    /// recovered response keeps it, so its interval genuinely spans the
    /// crash.
    inv: u64,
}

/// Everything one worker hands back to the driver.
struct WorkerOut<S: Spec> {
    tid: usize,
    done: Vec<CompletedOp<S>>,
    crashed: Option<CrashedOp>,
    /// A panic other than the injected [`pmem::CrashPoint`] (pool
    /// exhaustion, assertion failure). Harvested — not propagated — so the
    /// worker still retires from the scheduler and the sibling workers,
    /// cascaded into crashing, can be joined; the driver classifies it.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// One worker's scripted run: gate on the scheduler, execute the script
/// serially under the turn protocol, harvest the in-flight op if a crash
/// unwinds it.
fn worker_body<Sub: CrashSubject>(
    me: usize,
    sched: &Arc<Sched>,
    clock: &AtomicU64,
    sub: &Sub,
    ctx: &ThreadCtx,
    script: &[<Sub::S as Spec>::Op],
) -> WorkerOut<Sub::S> {
    let hook_sched = sched.clone();
    pmem::set_yield_hook(Box::new(move || hook_sched.yield_point(me)));
    let spin_sched = sched.clone();
    pmem::set_spin_hook(Box::new(move || spin_sched.spin_point(me)));
    sched.gate(me);
    let done: RefCell<Vec<CompletedOp<Sub::S>>> = RefCell::new(Vec::new());
    let cur = Cell::new(CrashedOp {
        op_index: 0,
        past_prologue: false,
        inv: 0,
    });
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_crashable(|| {
            for (i, op) in script.iter().enumerate() {
                // All stamps are taken while holding the turn, so the shared
                // clock's order is exactly the serial order of the schedule.
                let inv = clock.fetch_add(1, Ordering::Relaxed);
                cur.set(CrashedOp {
                    op_index: i,
                    past_prologue: false,
                    inv,
                });
                ctx.begin_op(SiteId(0));
                cur.set(CrashedOp {
                    op_index: i,
                    past_prologue: true,
                    inv,
                });
                let ret = sub.exec(ctx, op);
                let res = clock.fetch_add(1, Ordering::Relaxed);
                done.borrow_mut().push(CompletedOp {
                    tid: me,
                    op: op.clone(),
                    ret,
                    inv,
                    res,
                });
            }
        })
    }));
    pmem::clear_yield_hook();
    pmem::clear_spin_hook();
    // Any abnormal exit — the injected crash or a harvested panic — raises
    // the cascade: every other worker crashes at its next instrumented
    // event, so nobody waits forever on a turn this worker will never take.
    // Idempotent across the cascade.
    let (crashed, panic) = match out {
        Ok(Some(())) => (None, None),
        Ok(None) => {
            ctx.pool().crash_ctl().raise();
            (Some(cur.get()), None)
        }
        Err(p) => {
            ctx.pool().crash_ctl().raise();
            (Some(cur.get()), Some(p))
        }
    };
    sched.retire(me);
    WorkerOut {
        tid: me,
        done: done.into_inner(),
        crashed,
        panic,
    }
}

/// Object-safe face of one generic [`ExpRunner`].
trait ExpCase {
    /// Executes one schedule, crash-free (`crash_k == None`) or with a
    /// crash armed at event `crash_k`. `horizon` bounds PCT change points;
    /// the driver fixes it once (from a calibration run) so a crash replay
    /// constructs the *identical* strategy as the crash-free run it
    /// replays.
    fn run_one(
        &self,
        cfg: &ExploreCfg,
        strategy: StrategyKind,
        schedule: u64,
        crash_k: Option<u64>,
        horizon: u64,
    ) -> RunOutcome;
}

/// The attach-once exploration context: pool, subject, and per-thread
/// contexts are built once; every schedule run rewinds the pool to the
/// `base` snapshot ([`PmemPool::restore`] re-arms the crash model and
/// leaves the scheduler bit alone).
struct ExpRunner<Sub: CrashSubject> {
    pool: Arc<PmemPool>,
    sub: Sub,
    ctxs: Vec<ThreadCtx>,
    scripts: Vec<Vec<<Sub::S as Spec>::Op>>,
    base: PoolSnapshot,
}

impl<Sub> ExpRunner<Sub>
where
    Sub: CrashSubject + Sync,
    <Sub::S as Spec>::Op: Send + Sync,
    <Sub::S as Spec>::Ret: Send,
{
    fn new(
        pool: Arc<PmemPool>,
        sub: Sub,
        threads: usize,
        scripts: Vec<Vec<<Sub::S as Spec>::Op>>,
    ) -> Self {
        let ctxs = (0..threads)
            .map(|t| ThreadCtx::new(pool.clone(), t))
            .collect();
        let base = pool.snapshot();
        ExpRunner {
            pool,
            sub,
            ctxs,
            scripts,
            base,
        }
    }
}

impl<Sub> ExpCase for ExpRunner<Sub>
where
    Sub: CrashSubject + Sync,
    <Sub::S as Spec>::Op: Send + Sync,
    <Sub::S as Spec>::Ret: Send,
{
    fn run_one(
        &self,
        cfg: &ExploreCfg,
        strategy: StrategyKind,
        schedule: u64,
        crash_k: Option<u64>,
        horizon: u64,
    ) -> RunOutcome {
        let n = cfg.threads;
        self.pool.restore(&self.base);
        let sched_seed = splitmix64(
            cfg.seed
                ^ (strategy as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ schedule.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        let sched = Arc::new(Sched::new(
            n,
            Strategy::new(strategy, n, sched_seed, horizon),
            cfg.fuel,
        ));
        let clock = AtomicU64::new(0);
        if let Some(k) = crash_k {
            self.pool.crash_ctl().arm_after(k);
        } else {
            self.pool.crash_ctl().disarm();
        }
        self.pool.set_sched_enabled(true);

        let mut outs: Vec<WorkerOut<Sub::S>> = Vec::with_capacity(n);
        let mut worker_panic: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for t in 0..n {
                let sched = &sched;
                let clock = &clock;
                let sub = &self.sub;
                let ctx = &self.ctxs[t];
                let script = &self.scripts[t];
                handles.push(
                    s.spawn(move || worker_body(t, sched, clock, sub, ctx, script.as_slice())),
                );
            }
            sched.launch();
            for h in handles {
                match h.join() {
                    Ok(o) => outs.push(o),
                    Err(p) => worker_panic = Some(p),
                }
            }
        });
        self.pool.set_sched_enabled(false);
        self.pool.crash_ctl().disarm();
        let events = sched.events();

        outs.sort_by_key(|o| o.tid);
        // Harvested worker panics: pool exhaustion becomes a distinct
        // `exhausted` outcome with the actionable capacity message (it used
        // to surface as an opaque worker panic killing the exploration);
        // anything else is a real bug and resumes unwinding.
        if worker_panic.is_none() {
            worker_panic = outs.iter_mut().find_map(|o| o.panic.take());
        }
        if let Some(p) = worker_panic {
            let Some(msg) = pmem::exhaustion_message(p.as_ref()) else {
                std::panic::resume_unwind(p);
            };
            return RunOutcome {
                strategy,
                schedule,
                crash_k,
                events,
                ops_recorded: 0,
                crashed_threads: 0,
                ok: false,
                exhausted: true,
                note: format!("pool exhausted: {msg}"),
            };
        }
        let crashed: Vec<(usize, CrashedOp)> = outs
            .iter()
            .filter_map(|o| o.crashed.map(|c| (o.tid, c)))
            .collect();
        let mut recorded: Vec<CompletedOp<Sub::S>> =
            outs.into_iter().flat_map(|o| o.done).collect();

        let mut outcome = RunOutcome {
            strategy,
            schedule,
            crash_k,
            events,
            ops_recorded: recorded.len(),
            crashed_threads: crashed.len(),
            ok: true,
            exhausted: false,
            note: String::new(),
        };

        match (crash_k, crashed.is_empty()) {
            (Some(_), true) => {
                // The count run said event k exists in this schedule, yet
                // the replay finished — the interleaving diverged, itself a
                // determinism violation.
                outcome.ok = false;
                outcome.note = "armed crash never fired: schedule replay diverged".into();
                return outcome;
            }
            (None, false) => {
                outcome.ok = false;
                outcome.note = "crash fired in a crash-free run".into();
                return outcome;
            }
            _ => {}
        }

        if let Some(k) = crash_k {
            // Power failure: resolve the crash model, repair the structure,
            // then recover each interrupted thread the way a restarted
            // system would — sequentially, by ascending thread id, reusing
            // each thread's own recovery slots. Recovered responses keep
            // the original invocation stamp and take a fresh response
            // stamp, so their intervals span the crash.
            self.pool
                .crash(&mut *cfg.adversary.instantiate(k, cfg.seed));
            self.pool.set_crash_model_dormant(true);
            // Allocator recovery first, as a restarted system would order
            // it: per-thread structure recovery below may allocate and must
            // not see a half-linked free list (no-op on bump pools).
            self.pool.recover_allocator();
            self.sub.recover_structure();
            for (tid, c) in &crashed {
                let ctx = &self.ctxs[*tid];
                let op = &self.scripts[*tid][c.op_index];
                let ret = if c.past_prologue {
                    self.sub.recover(ctx, op)
                } else {
                    ctx.begin_op(SiteId(0));
                    self.sub.exec(ctx, op)
                };
                let res = clock.fetch_add(1, Ordering::Relaxed);
                recorded.push(CompletedOp {
                    tid: *tid,
                    op: op.clone(),
                    ret,
                    inv: c.inv,
                    res,
                });
            }
            outcome.ops_recorded = recorded.len();
        }

        // The run is quiescent — every worker retired, every interrupted op
        // recovered — so this is a legal drain point: retired blocks become
        // re-issuable, and the audit below must find limbo resolvable.
        self.pool.palloc_drain_all();

        if let Err(e) = self.sub.concurrent_verdict(&self.ctxs[0], &recorded) {
            outcome.ok = false;
            outcome.note = e;
        }
        // Allocator audit (reclaim pools; `Ok(())` on bump pools).
        if let Err(e) = self.pool.palloc_check() {
            outcome.ok = false;
            outcome.note.push_str("; allocator audit: ");
            outcome.note.push_str(&e);
        }
        outcome
    }
}

fn make_case(cfg: &ExploreCfg) -> Box<dyn ExpCase> {
    let pool = Arc::new(PmemPool::new(PoolCfg {
        reclaim: cfg.reclaim,
        flushopt: cfg.flushopt,
        ..PoolCfg::model(cfg.pool_bytes)
    }));
    let (n, len, seed) = (cfg.threads, cfg.ops_per_thread, cfg.seed);
    match cfg.structure {
        StructureKind::List | StructureKind::Bst => {
            let algo = build(cfg.algo, pool.clone(), n, SET_KEYS + 4);
            pool.register_site_names(algo.sites());
            let scripts = (0..n).map(|t| set_script_for(seed, t, len)).collect();
            Box::new(ExpRunner::new(pool, SetSubject { algo }, n, scripts))
        }
        StructureKind::Queue if cfg.algo == AlgoKind::TrackingComb => {
            pool.register_site_names(&tracking::sites::SITES);
            let q = tracking::CombiningQueue::new(pool.clone(), 0, n);
            let scripts = (0..n).map(|t| queue_script_for(seed, t, len)).collect();
            Box::new(ExpRunner::new(pool, CombQueueSubject { q }, n, scripts))
        }
        StructureKind::Queue => {
            pool.register_site_names(&tracking::sites::SITES);
            let q = RecoverableQueue::new(pool.clone(), 0);
            let scripts = (0..n).map(|t| queue_script_for(seed, t, len)).collect();
            Box::new(ExpRunner::new(pool, QueueSubject { q }, n, scripts))
        }
        StructureKind::Stack if cfg.algo == AlgoKind::TrackingComb => {
            pool.register_site_names(&tracking::sites::SITES);
            let s = tracking::CombiningStack::new(pool.clone(), 0, n);
            let scripts = (0..n).map(|t| stack_script_for(seed, t, len)).collect();
            Box::new(ExpRunner::new(pool, CombStackSubject { s }, n, scripts))
        }
        StructureKind::Stack => {
            pool.register_site_names(&tracking::sites::SITES);
            let s = RecoverableStack::new(pool.clone(), 0);
            let scripts = (0..n).map(|t| stack_script_for(seed, t, len)).collect();
            Box::new(ExpRunner::new(pool, StackSubject { s }, n, scripts))
        }
        StructureKind::Exchanger => {
            pool.register_site_names(&tracking::sites::SITES);
            let x = RecoverableExchanger::new(pool.clone(), 0);
            let scripts = (0..n).map(|t| exchange_script_for(t, len)).collect();
            Box::new(ExpRunner::new(pool, ExchangerSubject { x }, n, scripts))
        }
        StructureKind::Hashmap => {
            pool.register_site_names(&tracking::sites::SITES);
            let m = RecoverableHashMap::with_config(pool.clone(), 0, HASHMAP_SWEEP_CFG);
            let scripts = (0..n).map(|t| map_script_for(seed, t, len)).collect();
            Box::new(ExpRunner::new(pool, HashmapSubject { m }, n, scripts))
        }
    }
}

/// Decorrelates crash-point sampling from every other seeded stream.
const CRASH_SALT: u64 = 0xCAFE_F00D_BAAD_5EED;

/// Up to `per_schedule` distinct seeded crash points in `[0, events)`.
fn crash_points(seed: u64, strategy: StrategyKind, schedule: u64, events: u64, n: u64) -> Vec<u64> {
    let mut ks = Vec::new();
    if events == 0 {
        return ks;
    }
    let base =
        splitmix64(seed ^ CRASH_SALT ^ (strategy as u64 + 1).wrapping_mul(0x517C_C1B7_2722_0A95))
            ^ schedule;
    let mut draw = 0u64;
    while (ks.len() as u64) < n.min(events) {
        let k = splitmix64(base ^ draw.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % events;
        if !ks.contains(&k) {
            ks.push(k);
        }
        draw += 1;
        if draw > 16 * n {
            break; // tiny event spaces: accept fewer points
        }
    }
    ks.sort_unstable();
    ks
}

/// Runs one full exploration per [`ExploreCfg`] and returns its report.
///
/// # Panics
///
/// Panics if the configuration is invalid: fewer than 2 threads, an
/// implementation the explorer cannot serialize
/// ([`AlgoKind::schedulable`]), or a history too large for the
/// [`linearize`] checker's 63-operation bitmask (recorded operations plus
/// the observation phase).
pub fn run_explore(cfg: &ExploreCfg) -> ExploreReport {
    assert!(cfg.threads >= 2, "exploration needs at least 2 threads");
    assert!(
        cfg.algo.schedulable(),
        "{} cannot run under the cooperative scheduler (blocking design)",
        cfg.algo.name()
    );
    // Worst-case history: every scripted op recorded, plus the observation
    // phase (12 finds for sets, one drain op per completed push/enqueue
    // plus the final empty witness for queue/stack, none for the
    // exchanger). The linearize DFS indexes operations in a u64 bitmask.
    let scripted = cfg.threads * cfg.ops_per_thread;
    assert!(
        2 * scripted < 63 && scripted + SET_KEYS as usize <= 63,
        "history too large for the linearize checker: {} threads x {} ops",
        cfg.threads,
        cfg.ops_per_thread
    );

    let case = make_case(cfg);
    // Calibrate the PCT horizon with one throwaway crash-free round-robin
    // run (also a cheap end-to-end smoke of the pair before the matrix).
    // Fixed once for the whole exploration: a crash replay must construct
    // the identical strategy as the crash-free run it replays, and shards
    // must generate the same schedules as an unsharded run.
    let horizon = case
        .run_one(cfg, StrategyKind::RoundRobin, 0, None, 0)
        .events;

    let mut csv = Csv::new(
        &format!(
            "explore_{}{}_{}_t{}",
            if cfg.reclaim { "churn_" } else { "" },
            cfg.structure.name(),
            file_slug(cfg.algo.name()),
            cfg.threads
        ),
        &[
            "strategy",
            "schedule",
            "threads",
            "crash_k",
            "events",
            "ops_recorded",
            "crashed_threads",
            "ok",
            "note",
        ],
    );
    let mut violations = Vec::new();
    let (mut runs, mut runs_skipped, mut crash_runs, mut total_events) = (0u64, 0u64, 0u64, 0u64);
    let record = |csv: &mut Csv, r: &RunOutcome, violations: &mut Vec<RunOutcome>| {
        csv.push(&[
            r.strategy.name().to_string(),
            r.schedule.to_string(),
            cfg.threads.to_string(),
            r.crash_k.map(|k| k.to_string()).unwrap_or_default(),
            r.events.to_string(),
            r.ops_recorded.to_string(),
            r.crashed_threads.to_string(),
            r.ok.to_string(),
            csv_escape(&r.note),
        ]);
        if !r.ok {
            violations.push(r.clone());
        }
    };

    for (si, &strategy) in cfg.strategies.iter().enumerate() {
        for schedule in 0..cfg.schedules {
            let grid_index = si as u64 * cfg.schedules + schedule;
            if cfg.shard_count > 1 && grid_index % cfg.shard_count != cfg.shard_index {
                runs_skipped += 1;
                continue;
            }
            let free = case.run_one(cfg, strategy, schedule, None, horizon);
            runs += 1;
            total_events += free.events;
            let clean = free.ok;
            let events = free.events;
            record(&mut csv, &free, &mut violations);
            if let CrashMode::Sampled { per_schedule } = cfg.crash {
                if clean {
                    for k in crash_points(cfg.seed, strategy, schedule, events, per_schedule) {
                        let r = case.run_one(cfg, strategy, schedule, Some(k), horizon);
                        crash_runs += 1;
                        total_events += r.events;
                        record(&mut csv, &r, &mut violations);
                    }
                }
            }
        }
    }

    ExploreReport {
        cfg: cfg.clone(),
        runs,
        runs_skipped,
        crash_runs,
        total_events,
        violations,
        csv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_alternates_and_skips_dead_threads() {
        let mut s = Strategy::new(StrategyKind::RoundRobin, 3, 1, 0);
        let alive = [true, true, true];
        let picks: Vec<usize> = (0..6).map(|e| s.pick(&alive, e)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        let partial = [true, false, true];
        let picks: Vec<usize> = (0..4).map(|e| s.pick(&partial, e)).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn random_strategy_is_deterministic_and_live() {
        let alive = [true, true, true, true];
        let mut a = Strategy::new(StrategyKind::Random, 4, 99, 0);
        let mut b = Strategy::new(StrategyKind::Random, 4, 99, 0);
        let pa: Vec<usize> = (0..64).map(|e| a.pick(&alive, e)).collect();
        let pb: Vec<usize> = (0..64).map(|e| b.pick(&alive, e)).collect();
        assert_eq!(pa, pb);
        // A different seed explores a different schedule.
        let mut c = Strategy::new(StrategyKind::Random, 4, 100, 0);
        let pc: Vec<usize> = (0..64).map(|e| c.pick(&alive, e)).collect();
        assert_ne!(pa, pc);
        // Every pick is a live thread, and over 64 picks all 4 appear.
        let mut seen = [false; 4];
        for &p in &pa {
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pct_runs_leader_until_change_point_demotes_it() {
        let alive = [true, true];
        let mut s = Strategy::new(StrategyKind::Pct, 2, 7, 64);
        let picks: Vec<usize> = (0..64).map(|e| s.pick(&alive, e)).collect();
        // The leader runs in long bursts; a change point flips it at most
        // PCT_CHANGE_POINTS times.
        let switches = picks.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            switches <= PCT_CHANGE_POINTS,
            "PCT switched {switches} times: {picks:?}"
        );
    }

    #[test]
    fn crash_points_are_distinct_in_range_and_deterministic() {
        let a = crash_points(42, StrategyKind::Random, 3, 100, 5);
        let b = crash_points(42, StrategyKind::Random, 3, 100, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let mut uniq = a.clone();
        uniq.dedup();
        assert_eq!(uniq, a, "points must be distinct and sorted");
        assert!(a.iter().all(|&k| k < 100));
        // Tiny event spaces yield fewer (but never duplicate) points.
        let tiny = crash_points(42, StrategyKind::Pct, 0, 3, 8);
        assert!(tiny.len() <= 3);
        assert!(crash_points(42, StrategyKind::Pct, 0, 0, 8).is_empty());
    }

    #[test]
    fn explore_map_scripts_reach_a_resize() {
        // The resize-vs-insert exploration below (and its committed golden
        // CSV in the integration suite) is only meaningful if the scripted
        // key mix actually grows the table. Puts are insert-if-absent, so
        // the distinct-key set — and with it the resize trigger — is the
        // same under any interleaving; serializing the two scripts
        // thread-by-thread is a faithful guard.
        let pool = std::sync::Arc::new(PmemPool::new(PoolCfg::model(4 << 20)));
        let m = RecoverableHashMap::with_config(pool.clone(), 0, HASHMAP_SWEEP_CFG);
        for t in 0..2 {
            let ctx = ThreadCtx::new(pool.clone(), t);
            for op in map_script_for(0, t, 12) {
                match op {
                    MapOp::Put(k, v) => drop(m.put(&ctx, k, v)),
                    MapOp::Remove(k) => drop(m.remove(&ctx, k)),
                    MapOp::Get(k) => drop(m.get(&ctx, k)),
                }
            }
        }
        assert!(
            m.bucket_count() > HASHMAP_SWEEP_CFG.initial_buckets,
            "t=2 x 12-op explore scripts never resized ({} buckets)",
            m.bucket_count()
        );
    }

    #[test]
    fn two_thread_queue_schedule_linearizes_and_replays_identically() {
        let mut cfg = ExploreCfg::new(StructureKind::Queue, AlgoKind::Tracking);
        cfg.pool_bytes = 8 << 20;
        cfg.schedules = 2;
        cfg.crash = CrashMode::Off;
        let a = run_explore(&cfg);
        assert!(a.ok(), "violations: {:?}", a.violations);
        assert_eq!(a.runs, cfg.strategies.len() as u64 * cfg.schedules);
        let b = run_explore(&cfg);
        assert_eq!(
            a.csv.to_text(),
            b.csv.to_text(),
            "identical cfg must replay identical schedules"
        );
        assert_eq!(a.total_events, b.total_events);
    }

    #[test]
    fn combining_queue_and_stack_schedules_linearize() {
        // Linearizability spot-check for the flat-combining variants: the
        // combiner applies announced ops in thread order within a round, so
        // every interleaving the explorer drives must still produce a history
        // the sequential oracle accepts. Crash injection exercises the
        // announcement/RD_q recovery path under adversarial persistence.
        for kind in [StructureKind::Queue, StructureKind::Stack] {
            let mut cfg = ExploreCfg::new(kind, AlgoKind::TrackingComb);
            cfg.pool_bytes = 8 << 20;
            cfg.ops_per_thread = 3;
            cfg.schedules = 2;
            cfg.crash = CrashMode::Sampled { per_schedule: 2 };
            let r = run_explore(&cfg);
            assert!(r.ok(), "{kind:?} violations: {:?}", r.violations);
            assert!(
                r.crash_runs > 0,
                "{kind:?} sampled mode must inject crashes"
            );
        }
    }

    #[test]
    fn stack_stale_gather_schedule_linearizes() {
        // Regression for a lost push: the stack gather read `top_word`,
        // then the top node's info, with no re-read of `top_cell`. A PCT
        // schedule that preempts a pusher between the two loads while the
        // other thread pushes over (and thereby re-versions) the gathered
        // node made the stale tagging CAS succeed, the update CAS fail
        // silently, and the push report success without installing its
        // node. This is the exact explorer configuration that caught it
        // (pct, default seed, schedule 2, no crashes).
        let mut cfg = ExploreCfg::new(StructureKind::Stack, AlgoKind::Tracking);
        cfg.pool_bytes = 8 << 20;
        cfg.strategies = vec![StrategyKind::Pct];
        cfg.crash = CrashMode::Off;
        let r = run_explore(&cfg);
        assert!(r.ok(), "violations: {:?}", r.violations);
    }

    #[test]
    fn crash_injected_exchanger_schedules_recover() {
        let mut cfg = ExploreCfg::new(StructureKind::Exchanger, AlgoKind::Tracking);
        cfg.pool_bytes = 8 << 20;
        cfg.ops_per_thread = 2;
        cfg.schedules = 2;
        cfg.crash = CrashMode::Sampled { per_schedule: 3 };
        let r = run_explore(&cfg);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert!(r.crash_runs > 0, "sampled mode must inject crashes");
    }

    #[test]
    fn three_thread_list_exploration_is_clean() {
        let mut cfg = ExploreCfg::new(StructureKind::List, AlgoKind::Tracking);
        cfg.pool_bytes = 8 << 20;
        cfg.threads = 3;
        cfg.ops_per_thread = 3;
        cfg.schedules = 1;
        cfg.crash = CrashMode::Sampled { per_schedule: 1 };
        let r = run_explore(&cfg);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert!(r.crash_runs >= 1);
    }

    #[test]
    fn reclaim_queue_exploration_recovers_and_audits_clean() {
        // Allocator-churn exploration: concurrent enqueues/dequeues retire
        // nodes, crashes land anywhere (including inside palloc protocols),
        // recovery runs recover_allocator first, and every verdict audits
        // the free lists. The CSV name gains the churn_ prefix.
        let mut cfg = ExploreCfg::new(StructureKind::Queue, AlgoKind::Tracking);
        cfg.pool_bytes = 8 << 20;
        cfg.ops_per_thread = 3;
        cfg.schedules = 2;
        cfg.crash = CrashMode::Sampled { per_schedule: 3 };
        cfg.reclaim = true;
        let r = run_explore(&cfg);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert!(r.crash_runs > 0);
        assert!(r.csv.to_text().starts_with("strategy") || !r.csv.to_text().is_empty());
    }

    #[test]
    fn exhausted_worker_is_classified_not_a_panic() {
        // A per-thread script that overruns a deliberately tiny pool: the
        // run must come back as an `exhausted` outcome carrying the pool's
        // capacity message instead of unwinding out of the explorer (and
        // the sibling worker, gated on the scheduler, must still shut down
        // cleanly via the crash cascade rather than deadlocking).
        // The layout reserves 1 + NUM_ROOTS + MAX_THREADS = 145 lines, so a
        // 160-line pool leaves ~14 heap lines: small enough that a modest
        // enqueue-heavy script overruns it mid-schedule, large enough that
        // pool and queue construction succeed.
        let mut cfg = ExploreCfg::new(StructureKind::Queue, AlgoKind::Tracking);
        cfg.pool_bytes = 10 << 10;
        cfg.schedules = 1;
        cfg.strategies = vec![StrategyKind::RoundRobin];
        cfg.crash = CrashMode::Off;
        let mut hit = None;
        for ops in [4usize, 8, 12, 15] {
            cfg.ops_per_thread = ops;
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_explore(&cfg)));
            match r {
                Ok(rep) => {
                    if rep.violations.iter().any(|v| v.exhausted) {
                        hit = Some(rep);
                        break;
                    }
                }
                Err(p) => {
                    // A panic reaching us means classification failed.
                    panic!(
                        "exhaustion escaped as a panic: {:?}",
                        pmem::exhaustion_message(p.as_ref())
                    );
                }
            }
        }
        let rep = hit.expect("no script size exhausted the 128 KiB pool");
        let v = rep.violations.iter().find(|v| v.exhausted).unwrap();
        assert!(
            v.note.contains(pmem::EXHAUSTED_PREFIX),
            "note must carry the actionable message: {}",
            v.note
        );
    }

    #[test]
    fn sharding_partitions_the_schedule_grid() {
        let mut cfg = ExploreCfg::new(StructureKind::Stack, AlgoKind::Tracking);
        cfg.pool_bytes = 8 << 20;
        cfg.schedules = 2;
        cfg.crash = CrashMode::Off;
        cfg.shard_count = 3;
        let mut runs = 0;
        for i in 0..3 {
            cfg.shard_index = i;
            let r = run_explore(&cfg);
            assert!(r.ok(), "violations: {:?}", r.violations);
            runs += r.runs;
        }
        let full = run_explore(&ExploreCfg {
            shard_count: 1,
            shard_index: 0,
            ..cfg
        });
        assert_eq!(runs, full.runs, "shards must cover the whole grid");
    }

    #[test]
    fn romulus_schedules_linearize_and_recover() {
        // The one blocking subject: its writer mutex and seqlock reader
        // spins go through the spin channel, so schedules terminate even
        // though a parked writer blocks everyone else. Crash injection
        // exercises the twin-region recovery (MUTATING restore / COPYING
        // roll-forward) from genuinely concurrent interleavings, including
        // crashes that land while another thread busy-waits on the lock.
        let mut cfg = ExploreCfg::new(StructureKind::List, AlgoKind::Romulus);
        cfg.pool_bytes = 8 << 20;
        cfg.ops_per_thread = 3;
        cfg.schedules = 2;
        cfg.crash = CrashMode::Sampled { per_schedule: 2 };
        let r = run_explore(&cfg);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert!(r.crash_runs > 0, "sampled mode must inject crashes");
        // Determinism despite the extra spin traffic: identical cfg must
        // replay identical schedules.
        let again = run_explore(&cfg);
        assert_eq!(r.csv.to_text(), again.csv.to_text());
    }

    #[test]
    #[should_panic(expected = "history too large")]
    fn oversized_history_is_rejected() {
        let mut cfg = ExploreCfg::new(StructureKind::Queue, AlgoKind::Tracking);
        cfg.threads = 8;
        cfg.ops_per_thread = 8;
        run_explore(&cfg);
    }
}
