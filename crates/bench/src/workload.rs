//! The timed throughput runner: the paper's benchmark loop.
//!
//! Keys are drawn uniformly from `[1, key_range]`; the structure is
//! prefilled with `key_range / 2` random inserts (the paper's 250 inserts
//! over range 500 ≈ 40 % full); each worker then draws operations from the
//! configured mix until the deadline. Persistence-instruction counters are
//! snapshotted around the timed window so every run reports its
//! `pwb`/`psync` per operation alongside throughput.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use pmem::{Backend, PmemPool, PoolCfg, ThreadCtx};

use crate::adapter::{build, AlgoKind, SetAlgo};

/// Operation mix (percentages; insert/delete split the remainder evenly).
#[derive(Copy, Clone, Debug)]
pub struct Mix {
    /// Percentage of `find` operations.
    pub find_pct: u32,
}

impl Mix {
    /// The paper's read-intensive benchmark (70 % finds).
    pub const READ_INTENSIVE: Mix = Mix { find_pct: 70 };
    /// The paper's update-intensive benchmark (30 % finds).
    pub const UPDATE_INTENSIVE: Mix = Mix { find_pct: 30 };
}

/// One throughput-run configuration.
#[derive(Clone, Debug)]
pub struct RunCfg {
    /// Which implementation to run.
    pub kind: AlgoKind,
    /// Worker threads.
    pub threads: usize,
    /// Timed-window length.
    pub duration: Duration,
    /// Keys are uniform in `[1, key_range]`.
    pub key_range: u64,
    /// Operation mix.
    pub mix: Mix,
    /// Pool capacity in bytes (arena for nodes + descriptors).
    pub pool_bytes: usize,
    /// Persistence backend for the run.
    pub backend: Backend,
    /// RNG seed (deterministic workloads across variants).
    pub seed: u64,
    /// Disable `psync`/`pfence` (the paper's `[no psyncs]` variants).
    pub psync_enabled: bool,
    /// `pwb` site mask (bit *i* enables site *i*); `u64::MAX` = all.
    pub site_mask: u64,
    /// Arm the flush-elision layer ([`pmem::PoolCfg::flushopt`]): redundant
    /// `pwb`s elide against the per-line flush-state table and fences inside
    /// the algorithms' coalescible regions elide when nothing is pending.
    /// Not meaningful combined with `psync_enabled: false` (a masked fence
    /// returns before draining the combining buffer, so up to its capacity
    /// in flushes would linger unexecuted — the `[no psyncs]` variants are
    /// measured without the layer). Default `false`.
    pub flushopt: bool,
}

impl RunCfg {
    /// Paper-shaped defaults for `kind` at `threads` threads.
    pub fn paper(kind: AlgoKind, threads: usize) -> RunCfg {
        RunCfg {
            kind,
            threads,
            duration: Duration::from_millis(300),
            key_range: 500,
            mix: Mix::READ_INTENSIVE,
            pool_bytes: 1 << 30,
            backend: Backend::Clflush,
            seed: 0xD1CE,
            psync_enabled: true,
            site_mask: u64::MAX,
            flushopt: false,
        }
    }
}

/// What a run measured.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Completed operations across all threads.
    pub ops: u64,
    /// Actual timed-window length.
    pub elapsed: Duration,
    /// `pwb` executions per site during the window.
    pub pwb_per_site: [u64; pmem::MAX_SITES],
    /// `psync` + `pfence` executions during the window.
    pub psync: u64,
}

impl RunResult {
    /// Million operations per second.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// Total `pwb`s in the window.
    pub fn pwb_total(&self) -> u64 {
        self.pwb_per_site.iter().sum()
    }

    /// `pwb`s per completed operation.
    pub fn pwb_per_op(&self) -> f64 {
        self.pwb_total() as f64 / self.ops.max(1) as f64
    }

    /// `psync`s (incl. `pfence`s) per completed operation.
    pub fn psync_per_op(&self) -> f64 {
        self.psync as f64 / self.ops.max(1) as f64
    }
}

// xorshift64* — cheap deterministic per-thread RNG for the hot loop.
#[inline]
fn next_rng(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Runs one timed throughput measurement per `cfg`.
pub fn run(cfg: &RunCfg) -> RunResult {
    let pool = Arc::new(PmemPool::new(PoolCfg {
        capacity: cfg.pool_bytes,
        backend: cfg.backend,
        shadow: false,
        max_threads: cfg.threads.max(1).next_power_of_two().max(8),
        flushopt: cfg.flushopt,
        ..Default::default()
    }));
    let algo = build(cfg.kind, pool.clone(), cfg.threads, cfg.key_range);
    prefill(&pool, &*algo, cfg);
    pool.set_psync_enabled(cfg.psync_enabled);
    pool.set_sites_mask(cfg.site_mask);
    pool.stats_reset();
    let before = pool.stats();

    let stop = Arc::new(AtomicBool::new(false));
    let total_ops = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));
    let mut handles = Vec::with_capacity(cfg.threads);
    for t in 0..cfg.threads {
        let pool = pool.clone();
        let algo: Arc<dyn SetAlgo> = algo.clone();
        let stop = stop.clone();
        let total_ops = total_ops.clone();
        let barrier = barrier.clone();
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            let ctx = ThreadCtx::new(pool.clone(), t);
            let mut rng = cfg.seed ^ (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
            barrier.wait();
            let mut ops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Leave headroom so allocation never aborts the run.
                if pool.remaining_lines() < 4096 {
                    break;
                }
                let r = next_rng(&mut rng);
                let key = r % cfg.key_range + 1;
                let dice = (r >> 32) % 100;
                let f = cfg.mix.find_pct as u64;
                if dice < f {
                    std::hint::black_box(algo.find(&ctx, key));
                } else if dice < f + (100 - f) / 2 {
                    std::hint::black_box(algo.insert(&ctx, key));
                } else {
                    std::hint::black_box(algo.delete(&ctx, key));
                }
                ops += 1;
            }
            total_ops.fetch_add(ops, Ordering::Relaxed);
        }));
    }
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("worker panicked");
    }
    let elapsed = start.elapsed();
    let after = pool.stats();
    let d = after.delta(&before);
    // restore pool instrumentation defaults (pool is dropped anyway)
    RunResult {
        ops: total_ops.load(Ordering::Relaxed),
        elapsed,
        pwb_per_site: d.pwb_per_site,
        psync: d.psync + d.pfence,
    }
}

fn prefill(pool: &Arc<PmemPool>, algo: &dyn SetAlgo, cfg: &RunCfg) {
    let ctx = ThreadCtx::new(pool.clone(), 0);
    let mut rng = cfg.seed ^ 0xABCDEF;
    for _ in 0..cfg.key_range / 2 {
        let key = next_rng(&mut rng) % cfg.key_range + 1;
        algo.insert(&ctx, key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(kind: AlgoKind) -> RunCfg {
        RunCfg {
            duration: Duration::from_millis(50),
            pool_bytes: 256 << 20,
            key_range: 64,
            backend: Backend::Noop,
            ..RunCfg::paper(kind, 2)
        }
    }

    #[test]
    fn every_algorithm_sustains_a_tiny_run() {
        for kind in AlgoKind::paper_lineup() {
            let r = run(&tiny(kind));
            assert!(r.ops > 0, "{kind:?} completed no ops");
            assert!(r.elapsed.as_millis() >= 45, "{kind:?} window too short");
        }
    }

    #[test]
    fn tracking_counts_persistence_instructions() {
        let r = run(&tiny(AlgoKind::Tracking));
        assert!(r.pwb_total() > 0, "tracking must flush");
        assert!(r.psync > 0, "tracking must fence");
        assert!(r.pwb_per_op() >= 1.0, "at least the RD flush per op");
    }

    #[test]
    fn site_mask_suppresses_pwbs() {
        let mut cfg = tiny(AlgoKind::Tracking);
        cfg.site_mask = 0;
        cfg.psync_enabled = false;
        let r = run(&cfg);
        assert_eq!(r.pwb_total(), 0, "persistence-free run must not flush");
        assert_eq!(r.psync, 0);
    }

    #[test]
    fn update_mix_produces_more_updates_than_read_mix() {
        let mut read = tiny(AlgoKind::Tracking);
        read.mix = Mix::READ_INTENSIVE;
        let mut upd = tiny(AlgoKind::Tracking);
        upd.mix = Mix::UPDATE_INTENSIVE;
        let r1 = run(&read);
        let r2 = run(&upd);
        // update ops persist more: pwb/op must be clearly higher
        assert!(
            r2.pwb_per_op() > r1.pwb_per_op(),
            "update-intensive should flush more per op ({} vs {})",
            r2.pwb_per_op(),
            r1.pwb_per_op()
        );
    }
}
