//! The persistent-memory pool: allocation, word primitives, persistence
//! instructions, and simulated crashes.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock};

use crate::addr::{PAddr, WORDS_PER_LINE};
use crate::crash::CrashCtl;
use crate::epoch::{
    new_epoch, Epoch, EP_CRASH, EP_FLUSHOPT, EP_FOOT, EP_LINT, EP_MASK, EP_SCHED, EP_SHADOW,
    EP_TRACE,
};
use crate::flushopt::{FlushDecision, FlushOpt, FlushOptSnap};
use crate::lint::{FlushLint, LineState, LintReport};
use crate::persist::{self, Backend, SiteId, SiteMask, MAX_SITES};
use crate::shadow::{CrashAdversary, LineSnap, ShadowMem};
use crate::stats::{Stats, StatsSnapshot};
use crate::trace::{trace_tid, EventKind, Trace, TraceSnapshot, NO_SITE};

/// Epoch bits that force `load` off its fast path. Lint ignores reads, so
/// only crash injection, the trace and the scheduler are relevant.
const EP_LOAD_SLOW: u64 = EP_CRASH | EP_TRACE | EP_SCHED;
/// Epoch bits that force `store`/`cas` off their fast paths (the lint
/// tracks writes, the replay footprint tracks written lines, the
/// flush-elision layer must see every store re-dirty its line).
const EP_DATA_SLOW: u64 = EP_CRASH | EP_TRACE | EP_LINT | EP_FOOT | EP_SCHED | EP_FLUSHOPT;
/// Epoch bits that force `pwb`/`pfence`/`psync` off their fast paths (the
/// shadow crash model additionally hooks persistence instructions, and the
/// flush-elision layer decides each instruction's fate).
const EP_PERSIST_SLOW: u64 =
    EP_CRASH | EP_TRACE | EP_LINT | EP_SHADOW | EP_FOOT | EP_SCHED | EP_FLUSHOPT;

/// Number of root-directory cells (each on its own cache line).
pub const NUM_ROOTS: usize = 16;

/// Pool construction parameters.
///
/// Two presets cover the common cases — [`PoolCfg::model`] for crash-model
/// tests (shadow memory on, persistence instructions free) and
/// [`PoolCfg::perf`] for timed runs (real cache-line flushes, no shadow) —
/// and struct-update syntax layers the observers on top:
///
/// ```
/// use pmem::{PmemPool, PoolCfg, PessimistAdversary, SiteId};
/// let pool = PmemPool::new(PoolCfg {
///     trace: true, // record every instrumented event
///     lint: true,  // flag misplaced persistence instructions
///     ..PoolCfg::model(8 << 20)
/// });
/// let a = pool.alloc_lines(1);
/// pool.store(a, 5);
/// pool.pwb(a, SiteId(0));
/// pool.psync();
/// pool.crash(&mut PessimistAdversary); // Model mode: crashes resolvable
/// assert_eq!(pool.load(a), 5, "flushed-and-synced store survives");
/// assert!(pool.lint_report().is_clean());
/// ```
#[derive(Clone, Debug)]
pub struct PoolCfg {
    /// Pool capacity in bytes (rounded up to whole cache lines).
    pub capacity: usize,
    /// Persistence-instruction behaviour (see [`Backend`]).
    pub backend: Backend,
    /// Enable the shadow-memory crash model (Model mode). Doubles memory
    /// use and adds bookkeeping to `pwb`/`psync`; meant for tests, not for
    /// performance runs.
    pub shadow: bool,
    /// Number of per-thread recovery slots (`CP_q`/`RD_q` lines) to reserve.
    pub max_threads: usize,
    /// Start with the persistence-event trace enabled (see [`crate::trace`]).
    /// Can be toggled later with [`PmemPool::set_trace_enabled`].
    pub trace: bool,
    /// Start with the flush lint enabled (see [`crate::lint`]). Can be
    /// toggled later with [`PmemPool::set_lint_enabled`].
    pub lint: bool,
    /// Per-thread event-ring capacity for the trace (oldest events are
    /// dropped beyond this; see [`TraceSnapshot::dropped`]).
    pub trace_capacity: usize,
    /// Enable the recoverable free-list allocator (see [`crate::palloc`]):
    /// reserves one persistent metadata line per thread, makes
    /// [`PmemPool::palloc_lines`] recycle retired blocks, and arms the
    /// deferred-reclamation machinery. Off by default — without it the pool
    /// is the paper's pure bump arena and allocation stays free of
    /// instrumented events.
    pub reclaim: bool,
    /// Enable the flush-elision and coalescing layer (see
    /// [`crate::flushopt`]): a `pwb` of a line already flushed since its
    /// last store becomes a no-op, same-line `pwb`s between two fences are
    /// write-combined, and fences inside [`PmemPool::coalesce_fences`]
    /// regions elide when nothing is pending. Off by default — the
    /// optimization is itself under test, so every harness runs both ways.
    /// Can be toggled later with [`PmemPool::set_flushopt_enabled`].
    pub flushopt: bool,
}

impl Default for PoolCfg {
    fn default() -> Self {
        PoolCfg {
            capacity: 64 << 20,
            backend: Backend::Clflush,
            shadow: false,
            max_threads: crate::thread::MAX_THREADS,
            trace: false,
            lint: false,
            trace_capacity: 4096,
            reclaim: false,
            flushopt: false,
        }
    }
}

impl PoolCfg {
    /// Small shadowed pool with no-op persistence backend: the standard
    /// configuration for crash-model tests.
    pub fn model(capacity: usize) -> Self {
        PoolCfg {
            capacity,
            backend: Backend::Noop,
            shadow: true,
            ..Default::default()
        }
    }

    /// Performance configuration with real cache-line flushes.
    pub fn perf(capacity: usize) -> Self {
        PoolCfg {
            capacity,
            backend: Backend::Clflush,
            shadow: false,
            ..Default::default()
        }
    }
}

/// Allocates a zero-initialized `AtomicU64` slice without touching every
/// page up front (the OS maps zero pages lazily), so multi-GiB pools are
/// cheap until used.
pub(crate) fn alloc_zeroed_atomics(n: usize) -> Box<[AtomicU64]> {
    use std::alloc::{alloc_zeroed, Layout};
    let layout = Layout::array::<AtomicU64>(n).expect("pool too large");
    // SAFETY: AtomicU64 is a transparent wrapper over u64 with no drop glue;
    // the all-zero bit pattern is a valid AtomicU64. The Box takes ownership
    // of the allocation with the exact layout it was allocated with.
    unsafe {
        let ptr = alloc_zeroed(layout) as *mut AtomicU64;
        assert!(!ptr.is_null(), "pool allocation failed ({n} words)");
        Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, n))
    }
}

/// A simulated persistent main memory (see crate docs).
///
/// All methods take `&self`; a pool is shared across threads behind an
/// `Arc`. Word reads/writes/CAS are the paper's base-object primitives;
/// [`PmemPool::pwb`], [`PmemPool::pfence`] and [`PmemPool::psync`] are the
/// persistence instructions.
pub struct PmemPool {
    words: Box<[AtomicU64]>,
    next: AtomicUsize,
    backend: Backend,
    shadow: Option<ShadowMem>,
    stats: Stats,
    mask: SiteMask,
    crash_ctl: CrashCtl,
    recovery_base: usize, // first word of the per-thread recovery table
    /// First word of the per-thread allocator metadata table (equals
    /// `heap_base` when the pool was built without `reclaim`).
    pub(crate) palloc_base: usize,
    /// First allocatable heap word (everything below is reserved layout).
    pub(crate) heap_base: usize,
    /// Free-list allocator armed at construction ([`PoolCfg::reclaim`]).
    pub(crate) reclaim: bool,
    /// Volatile count of cache lines currently sitting on class free lists
    /// (not limbo — those are not yet allocatable). Maintained conservatively
    /// for [`Self::remaining_lines`]: decremented *before* a pop takes
    /// effect, incremented only once a push is durable, and recomputed from
    /// the lists at the quiescent points (`restore`/`crash`/recovery).
    pub(crate) free_lines: AtomicUsize,
    /// Debug-only ledger of retired-but-not-yet-quiescent block addresses,
    /// used to assert that no address is re-issued before a full epoch
    /// quiescence (see `palloc`).
    #[cfg(debug_assertions)]
    pub(crate) retired_debug: Mutex<std::collections::HashSet<u64>>,
    max_threads: usize,
    trace: Trace,
    lint: FlushLint,
    /// The flush-elision layer (see [`crate::flushopt`]); allocated
    /// unconditionally (its tables are lazily zero-mapped like the
    /// lint's), consulted only under [`EP_FLUSHOPT`].
    flushopt: FlushOpt,
    /// The fused instrumentation epoch (see [`crate::epoch`]): one relaxed
    /// load of this word answers every "do I need the slow path?" question
    /// a primitive has — crash injection armed, trace on, lint on, shadow
    /// model present. The [`CrashCtl`] shares it (to clear [`EP_CRASH`] on
    /// auto-disarm); the observer toggles maintain the trace/lint bits.
    epoch: Epoch,
    /// Read-mostly: registered once by algorithm constructors, then read on
    /// every report/attribution path. An `RwLock` lets concurrent report
    /// rendering proceed without serializing on registration.
    site_names: RwLock<[Option<&'static str>; MAX_SITES]>,
    /// Replay-footprint tracking (see [`EP_FOOT`] and [`Self::restore`]).
    foot: Mutex<Footprint>,
}

/// Which lines the pool has dirtied since the last [`PmemPool::restore`].
/// Armed by the first restore (via [`EP_FOOT`]) and maintained by the
/// mutating slow paths, it lets the next restore rewrite only diverged
/// lines and lets [`PmemPool::crash`] resolve only potentially-dirty lines,
/// instead of both scanning the whole allocated prefix per crash point.
#[derive(Default)]
struct Footprint {
    /// Tracking armed: the pool has been restored at least once.
    live: bool,
    /// Id of the last-restored snapshot (0 = none).
    snap_id: u64,
    /// Lines mutated since the last restore (duplicates allowed; sorted and
    /// deduplicated when consumed).
    lines: Vec<usize>,
    /// Lines whose volatile and persisted views differed — or that held a
    /// pending `pwb` snapshot — when the restored checkpoint was captured.
    hot: Vec<usize>,
    /// Lint generation right after the last line-state import, to skip
    /// re-importing a table nothing has touched since.
    lint_gen: u64,
}

fn lock_foot(m: &Mutex<Footprint>) -> MutexGuard<'_, Footprint> {
    // Poison-tolerant like every other pool lock: injected CrashPoint
    // panics never unwind while the footprint is held.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl PmemPool {
    /// Creates a pool per `cfg`. Layout: line 0 reserved (null), then
    /// [`NUM_ROOTS`] root lines, then `cfg.max_threads` recovery lines,
    /// then (with [`PoolCfg::reclaim`]) `cfg.max_threads` allocator
    /// metadata lines, then the allocatable heap.
    pub fn new(cfg: PoolCfg) -> Self {
        let recovery_base = (1 + NUM_ROOTS) * WORDS_PER_LINE;
        let palloc_base = recovery_base + cfg.max_threads * WORDS_PER_LINE;
        let heap_base = palloc_base
            + if cfg.reclaim {
                cfg.max_threads * WORDS_PER_LINE
            } else {
                0
            };
        let nwords = (cfg.capacity / 8)
            .next_multiple_of(WORDS_PER_LINE)
            .max(heap_base + 16 * WORDS_PER_LINE);
        let words = alloc_zeroed_atomics(nwords);
        let reclaim = cfg.reclaim;
        let epoch = new_epoch(
            if cfg.trace { EP_TRACE } else { 0 }
                | if cfg.lint { EP_LINT } else { 0 }
                | if cfg.shadow { EP_SHADOW } else { 0 }
                | if cfg.flushopt { EP_FLUSHOPT } else { 0 },
        );
        let pool = PmemPool {
            words,
            next: AtomicUsize::new(heap_base),
            backend: cfg.backend,
            shadow: if cfg.shadow {
                Some(ShadowMem::new(nwords))
            } else {
                None
            },
            stats: Stats::new(),
            mask: SiteMask::all_on(),
            crash_ctl: CrashCtl::with_epoch(epoch.clone()),
            recovery_base,
            palloc_base,
            heap_base,
            reclaim: cfg.reclaim,
            free_lines: AtomicUsize::new(0),
            #[cfg(debug_assertions)]
            retired_debug: Mutex::new(std::collections::HashSet::new()),
            max_threads: cfg.max_threads,
            trace: Trace::new(cfg.trace_capacity, cfg.trace),
            lint: FlushLint::new(cfg.lint, nwords / WORDS_PER_LINE),
            flushopt: FlushOpt::new(nwords / WORDS_PER_LINE),
            epoch,
            site_names: RwLock::new([None; MAX_SITES]),
            foot: Mutex::new(Footprint::default()),
        };
        if reclaim {
            pool.register_site_names(&crate::palloc::PALLOC_SITES);
        }
        pool
    }

    /// Address of root cell `i` (data-structure entry points). Each root
    /// occupies its own cache line.
    pub fn root(&self, i: usize) -> PAddr {
        assert!(i < NUM_ROOTS, "root index out of range");
        PAddr(((1 + i) * WORDS_PER_LINE) as u64)
    }

    /// Address of thread `tid`'s recovery line (`CP_q` at word 0, `RD_q` at
    /// word 1; the rest of the line is padding against false sharing).
    pub fn recovery_line(&self, tid: usize) -> PAddr {
        assert!(
            tid < self.max_threads,
            "tid {tid} >= max_threads {}",
            self.max_threads
        );
        PAddr((self.recovery_base + tid * WORDS_PER_LINE) as u64)
    }

    /// Number of recovery slots reserved at construction.
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Line-aligned bump allocation of `nlines` cache lines; the memory is
    /// zeroed. Returns `None` when the pool is exhausted.
    ///
    /// The bump arena itself never recycles memory; a bump address is
    /// always fresh. On a pool built **without** [`PoolCfg::reclaim`] this
    /// is the only allocation path, the arena stands in for the garbage
    /// collector the paper assumes (see crate docs), and ABA from address
    /// reuse is ruled out by construction. On a pool built **with**
    /// `reclaim`, [`Self::palloc_lines`] layers per-size-class free lists
    /// on top of this arena and *does* re-issue retired addresses — but
    /// only after a full epoch quiescence ([`Self::palloc_drain`] moves
    /// blocks from limbo to the free lists solely at quiescent points, and
    /// a debug assertion in the pop path checks that no still-retired
    /// address is ever handed out). The bump pointer lives outside pmem but
    /// is monotone, which is equivalent to persisting the watermark on
    /// every allocation.
    ///
    /// When the calling thread has a [`crate::arena::SubArena`] installed
    /// for this pool ([`crate::arena::install_thread_arena`]), the request
    /// is served from the thread's private chunk instead, and the global
    /// cursor is only touched on chunk refills. Arena chunks are carved
    /// from this same cursor, so the never-issued-twice property is
    /// unchanged (see the `arena` module docs).
    pub fn try_alloc_lines(&self, nlines: usize) -> Option<PAddr> {
        if let Some(served) = crate::arena::thread_arena_alloc(self, nlines) {
            return served;
        }
        self.try_alloc_lines_global(nlines)
    }

    /// The shared bump path: CAS-advances the global cursor. Arena refills
    /// come here directly so a refill is never re-routed to the arena.
    pub(crate) fn try_alloc_lines_global(&self, nlines: usize) -> Option<PAddr> {
        let need = nlines * WORDS_PER_LINE;
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            if cur + need > self.words.len() {
                return None;
            }
            match self.next.compare_exchange_weak(
                cur,
                cur + need,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(PAddr(cur as u64)),
                Err(c) => cur = c,
            }
        }
    }

    /// Like [`Self::try_alloc_lines`] but panics on exhaustion with an
    /// actionable message.
    pub fn alloc_lines(&self, nlines: usize) -> PAddr {
        self.try_alloc_lines(nlines).unwrap_or_else(|| {
            panic!(
                "pmem pool exhausted ({} words): increase PoolCfg.capacity or shorten the run",
                self.words.len()
            )
        })
    }

    /// A consistent **lower bound** on the cache lines still available for
    /// allocation: the untouched bump region plus every block currently on
    /// a class free list (limbo blocks are excluded — they only become
    /// allocatable at the next quiescence).
    ///
    /// Guarantee: the returned value never exceeds the number of lines that
    /// could actually be allocated at the instant of the call, even under
    /// concurrent allocation. The bump component uses a `SeqCst` load of a
    /// monotone cursor (so it can only under-report a racing bump), and the
    /// free-list component is a counter that is decremented *before* a pop
    /// takes effect and incremented only once a push is durable — a racing
    /// reader can miss a block in flight, never count one twice.
    pub fn remaining_lines(&self) -> usize {
        let next = self.next.load(Ordering::SeqCst).min(self.words.len());
        let bump = (self.words.len() - next) / WORDS_PER_LINE;
        bump + self.free_lines.load(Ordering::SeqCst)
    }

    /// Total pool size in words (allocation limit).
    pub(crate) fn nwords(&self) -> usize {
        self.words.len()
    }

    /// Current bump-allocation watermark in words.
    pub(crate) fn alloc_watermark(&self) -> usize {
        self.next.load(Ordering::SeqCst)
    }

    /// Uninstrumented word read: no crash tick, no trace event, no yield.
    /// For harness-internal walks (allocator audits, accounting refresh)
    /// that must be invisible to crash-point enumeration and replay
    /// streams.
    #[inline]
    pub(crate) fn raw_load(&self, w: usize) -> u64 {
        self.words[w].load(Ordering::Acquire)
    }

    /// Uninstrumented zeroing of `[start, start + n)` words. Not a traced
    /// event, but the mutated lines *are* recorded in the replay footprint
    /// (incremental restore and bounded crash resolution must see them).
    /// Durability is the caller's problem: the zeros reach the persisted
    /// image only through the caller's own `pwb`/`pfence` of those lines.
    pub(crate) fn raw_zero_words(&self, start: usize, n: usize) {
        for w in start..start + n {
            self.words[w].store(0, Ordering::Release);
        }
        let bits = self.epoch_bits(EP_FOOT | EP_FLUSHOPT);
        if bits != 0 {
            let first = start / WORDS_PER_LINE;
            let last = (start + n - 1) / WORDS_PER_LINE;
            for line in first..=last {
                if bits & EP_FOOT != 0 {
                    self.note_line(line);
                }
                // The zeros dirtied the lines like any store would; the
                // elision layer must not treat a stale flush as covering
                // them.
                if bits & EP_FLUSHOPT != 0 {
                    self.flushopt.on_store(line);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Word primitives (read / write / CAS)
    // ------------------------------------------------------------------

    /// One relaxed load of the fused instrumentation epoch, masked down to
    /// the bits the calling primitive cares about. Relaxed is sufficient:
    /// every bit is a harness-level control (arm a crash, enable an
    /// observer) that is always flipped *before* the workload it governs
    /// starts, on the same thread or across a spawn/join edge that already
    /// synchronizes — the epoch never carries data-dependent state between
    /// racing operations, so no primitive's correctness rests on seeing a
    /// flip "in time".
    #[inline]
    fn epoch_bits(&self, mask: u64) -> u64 {
        self.epoch.load(Ordering::Relaxed) & mask
    }

    /// Atomic read of a word (acquire).
    #[inline]
    pub fn load(&self, a: PAddr) -> u64 {
        let bits = self.epoch_bits(EP_LOAD_SLOW);
        if bits == 0 {
            return self.words[a.word()].load(Ordering::Acquire);
        }
        self.load_slow(a, bits)
    }

    #[inline(never)]
    fn load_slow(&self, a: PAddr, bits: u64) -> u64 {
        // Yield before the tick: the scheduler decides who runs this event,
        // and an armed crash must fire on whichever thread it granted.
        if bits & EP_SCHED != 0 {
            crate::sched::yield_now();
        }
        if bits & EP_CRASH != 0 {
            self.crash_ctl.tick();
        }
        let v = self.words[a.word()].load(Ordering::Acquire);
        if bits & EP_TRACE != 0 {
            self.observe_load(a);
        }
        v
    }

    /// Atomic write of a word (release). Under TSO (x86) writes become
    /// visible in program order, matching the paper's model.
    #[inline]
    pub fn store(&self, a: PAddr, v: u64) {
        self.store_raw(a, v, NO_SITE);
    }

    /// [`Self::store`] attributed to a call site, so trace events and lint
    /// findings about the written line name the code that dirtied it.
    ///
    /// ```
    /// use pmem::{EventKind, PmemPool, PoolCfg, SiteId};
    /// let pool = PmemPool::new(PoolCfg { trace: true, ..PoolCfg::model(1 << 20) });
    /// pool.register_site_names(&[(SiteId(3), "result-field")]);
    /// let a = pool.alloc_lines(1);
    /// pool.store_at(a, 9, SiteId(3));
    /// let e = pool.trace_snapshot().events[0];
    /// assert_eq!((e.kind, e.site), (EventKind::Store, 3));
    /// assert_eq!(pool.site_name(SiteId(3)), Some("result-field"));
    /// ```
    #[inline]
    pub fn store_at(&self, a: PAddr, v: u64, site: SiteId) {
        self.store_raw(a, v, site.0);
    }

    #[inline]
    fn store_raw(&self, a: PAddr, v: u64, site: u8) {
        let bits = self.epoch_bits(EP_DATA_SLOW);
        if bits == 0 {
            self.words[a.word()].store(v, Ordering::Release);
            return;
        }
        self.store_slow(a, v, site, bits);
    }

    #[inline(never)]
    fn store_slow(&self, a: PAddr, v: u64, site: u8, bits: u64) {
        if bits & EP_SCHED != 0 {
            crate::sched::yield_now();
        }
        if bits & EP_CRASH != 0 {
            self.crash_ctl.tick();
        }
        self.words[a.word()].store(v, Ordering::Release);
        if bits & EP_FLUSHOPT != 0 {
            self.flushopt.on_store(a.line());
        }
        if bits & EP_FOOT != 0 {
            self.note_line(a.line());
        }
        if bits & (EP_TRACE | EP_LINT) != 0 {
            self.observe_write(a, EventKind::Store, site);
        }
    }

    /// Atomic compare-and-swap. Returns `Ok(old)` on success and `Err(seen)`
    /// on failure. On x86 this compiles to `lock cmpxchg`, which serializes
    /// outstanding stores — the very effect behind the paper's finding that
    /// `psync` cost is negligible in CAS-heavy code (Section 5).
    #[inline]
    pub fn cas(&self, a: PAddr, old: u64, new: u64) -> Result<u64, u64> {
        self.cas_raw(a, old, new, NO_SITE)
    }

    /// [`Self::cas`] attributed to a call site (see [`Self::store_at`]).
    /// Failed CASes are recorded too ([`EventKind::CasFail`]) — they tick
    /// the crash countdown and appear in the trace, but write nothing.
    ///
    /// ```
    /// use pmem::{EventKind, PmemPool, PoolCfg, SiteId};
    /// let pool = PmemPool::new(PoolCfg { trace: true, ..PoolCfg::model(1 << 20) });
    /// let a = pool.alloc_lines(1);
    /// assert_eq!(pool.cas_at(a, 0, 7, SiteId(5)), Ok(0));
    /// assert_eq!(pool.cas_at(a, 0, 9, SiteId(5)), Err(7));
    /// let kinds: Vec<_> = pool.trace_snapshot().events.iter().map(|e| e.kind).collect();
    /// assert_eq!(kinds, [EventKind::Cas, EventKind::CasFail]);
    /// ```
    #[inline]
    pub fn cas_at(&self, a: PAddr, old: u64, new: u64, site: SiteId) -> Result<u64, u64> {
        self.cas_raw(a, old, new, site.0)
    }

    #[inline]
    fn cas_raw(&self, a: PAddr, old: u64, new: u64, site: u8) -> Result<u64, u64> {
        let bits = self.epoch_bits(EP_DATA_SLOW);
        if bits == 0 {
            return self.words[a.word()].compare_exchange(
                old,
                new,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
        self.cas_slow(a, old, new, site, bits)
    }

    #[inline(never)]
    fn cas_slow(&self, a: PAddr, old: u64, new: u64, site: u8, bits: u64) -> Result<u64, u64> {
        if bits & EP_SCHED != 0 {
            crate::sched::yield_now();
        }
        if bits & EP_CRASH != 0 {
            self.crash_ctl.tick();
        }
        let r = self.words[a.word()].compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst);
        if r.is_ok() && bits & EP_FLUSHOPT != 0 {
            self.flushopt.on_store(a.line());
        }
        if r.is_ok() && bits & EP_FOOT != 0 {
            self.note_line(a.line());
        }
        if bits & (EP_TRACE | EP_LINT) != 0 {
            self.observe_cas(a, new, r.is_ok(), site);
        }
        r
    }

    // ------------------------------------------------------------------
    // Persistence instructions
    // ------------------------------------------------------------------

    /// `pwb`: initiates write-back of the cache line containing `a`,
    /// attributed to call site `site`. A disabled site is a no-op that is
    /// not counted — the site's code line has been "removed" in the paper's
    /// categorization methodology.
    ///
    /// The mask check comes **before** the crash-injection tick: a disabled
    /// site must be completely invisible to crash-point enumeration (it
    /// neither ticks, counts, traces, nor flushes), so sweeps over a masked
    /// workload see exactly the events the masked program would execute.
    #[inline]
    pub fn pwb(&self, a: PAddr, site: SiteId) {
        let bits = self.epoch_bits(EP_PERSIST_SLOW | EP_MASK);
        if bits == 0 {
            self.stats.count_pwb(site);
            self.pwb_backend(a);
            return;
        }
        self.pwb_slow(a, site, bits);
    }

    #[inline(never)]
    fn pwb_slow(&self, a: PAddr, site: SiteId, bits: u64) {
        // Mask check first, then the tick: a disabled site is invisible to
        // crash-point enumeration, and a crash firing at this event must
        // leave the pwb entirely unexecuted (not counted, not flushed,
        // not snapshotted).
        if bits & EP_MASK != 0 && !self.mask.site_enabled(site) {
            return;
        }
        // The elision layer rules next, still before the yield and the
        // tick: an elided/deferred/coalesced pwb executes nothing, so —
        // exactly like a masked site — it is no yield point and no crash
        // point, and it neither counts, traces, nor touches the shadow.
        if bits & EP_FLUSHOPT != 0 {
            match self.flushopt.pwb_decision(a.line(), site.0) {
                FlushDecision::Execute { pre } => {
                    self.pwb_execute(a, site, bits, Some(pre));
                }
                FlushDecision::Elide => {
                    self.stats.count_pwb_elided(site);
                    // Cross-check: the layer claims this line was flushed
                    // since its last store. If the lint's independent
                    // table says dirty, record the violation.
                    if bits & EP_LINT != 0 {
                        self.lint.on_elided_pwb(a.line(), site);
                    }
                }
                FlushDecision::Coalesced => {
                    // Folded into an already-buffered flush of the same
                    // line: redundant by construction (no lint check —
                    // the line is genuinely dirty, and the queued entry
                    // covers it at the next fence).
                    self.stats.count_pwb_elided(site);
                }
                FlushDecision::Deferred => {
                    // Parked: the draining fence executes it (and counts
                    // it) later. Nothing is recorded now.
                }
            }
            return;
        }
        self.pwb_execute(a, site, bits, None);
    }

    /// The committed tail of a `pwb`: yield, crash tick, count, backend
    /// flush, shadow snapshot, footprint, observers. Shared by the direct
    /// path and the combining buffer's drain, so a drained flush is
    /// indistinguishable — to the crash model, the trace and the lint —
    /// from one executed in place. `fo_pre` carries the elision layer's
    /// pre-read line word when that layer is live (`None` when flushopt is
    /// off).
    fn pwb_execute(&self, a: PAddr, site: SiteId, bits: u64, fo_pre: Option<u64>) {
        // After the mask/elision checks — an invisible pwb is no yield
        // point, exactly as it is no crash point — and before the tick, so
        // the scheduler decides who runs the event an armed crash would
        // land on. A crash here unwinds before `obligate`, leaving the
        // layer's accounting consistent (the pwb never executed).
        if bits & EP_SCHED != 0 {
            crate::sched::yield_now();
        }
        if bits & EP_CRASH != 0 {
            self.crash_ctl.tick();
        }
        // The commit obligation becomes visible *before* the shadow takes
        // the pending snapshot, so a concurrently-elided fence in another
        // thread can never slip between the two.
        if fo_pre.is_some() {
            self.flushopt.obligate();
        }
        self.stats.count_pwb(site);
        self.pwb_backend(a);
        if bits & EP_SHADOW != 0 {
            if let Some(sh) = &self.shadow {
                sh.pwb(&self.words, a.line());
            }
        }
        if bits & EP_FOOT != 0 {
            // The pending snapshot just taken may be committed by a later
            // psync, silently changing this line's persisted image.
            self.note_line(a.line());
        }
        if bits & (EP_TRACE | EP_LINT) != 0 {
            self.observe_pwb(a, site);
        }
        if let Some(pre) = fo_pre {
            self.flushopt.note_real_pwb(a.line(), pre);
        }
    }

    #[inline]
    fn pwb_backend(&self, a: PAddr) {
        match self.backend {
            Backend::Clflush => {
                let line_base = a.line() * WORDS_PER_LINE;
                persist::hw_flush(self.words[line_base..].as_ptr() as *const u8);
            }
            Backend::Delay { pwb_ns, .. } => persist::busy_wait_ns(pwb_ns),
            Backend::Noop => {}
        }
    }

    /// `pwb` over a `nwords`-long object: one flush per covered line.
    #[inline]
    pub fn pwb_range(&self, a: PAddr, nwords: usize, site: SiteId) {
        let first = a.line();
        let last = PAddr(a.raw() + nwords.max(1) as u64 - 1).line();
        for line in first..=last {
            self.pwb(PAddr((line * WORDS_PER_LINE) as u64), site);
        }
    }

    /// `pfence`: orders preceding `pwb`s before subsequent ones. Like the
    /// paper's testbed (whose machine lacks a distinct `pfence`), it is
    /// implemented exactly as `psync`.
    #[inline]
    pub fn pfence(&self) {
        let bits = self.epoch_bits(EP_PERSIST_SLOW | EP_MASK);
        if bits == 0 {
            self.stats.count_pfence();
            self.fence_backend();
            return;
        }
        self.fence_slow(EventKind::Pfence, bits);
    }

    /// `psync`: waits until all preceding `pwb`s have reached persistent
    /// memory.
    #[inline]
    pub fn psync(&self) {
        let bits = self.epoch_bits(EP_PERSIST_SLOW | EP_MASK);
        if bits == 0 {
            self.stats.count_psync();
            self.fence_backend();
            return;
        }
        self.fence_slow(EventKind::Psync, bits);
    }

    #[inline(never)]
    fn fence_slow(&self, kind: EventKind, bits: u64) {
        // Mask check first, then the tick: a disabled fence is invisible to
        // crash-point enumeration, and a crash at this event must leave the
        // fence unexecuted (nothing committed to the shadow's persisted
        // image, not counted).
        if bits & EP_MASK != 0 && !self.mask.psync_enabled() {
            return;
        }
        if bits & EP_FLUSHOPT != 0 {
            // Inside a coalescible region with globally nothing to commit
            // — no buffered pwbs, no executed-but-unfenced ones — the
            // fence is the identity and elides: no yield, no tick, no
            // trace, only the coalesce counter. (Checked before the drain:
            // a drain would create the very obligations that forbid
            // elision.)
            if self.flushopt.fence_elidable() {
                self.stats.count_psync_coalesced();
                return;
            }
            // A real fence first drains the combining buffer, executing
            // every deferred pwb with full instrumentation, so the
            // committed event stream keeps the store → pwb → fence shape
            // every observer assumes.
            for (line, site) in self.flushopt.take_deferred() {
                let a = PAddr((line * WORDS_PER_LINE) as u64);
                let pre = self.flushopt.line_word(line);
                self.pwb_execute(a, SiteId(site), bits, Some(pre));
            }
        }
        if bits & EP_SCHED != 0 {
            crate::sched::yield_now();
        }
        if bits & EP_CRASH != 0 {
            self.crash_ctl.tick();
        }
        match kind {
            EventKind::Pfence => self.stats.count_pfence(),
            _ => self.stats.count_psync(),
        }
        self.fence_backend();
        if bits & EP_SHADOW != 0 {
            if let Some(sh) = &self.shadow {
                sh.psync();
            }
        }
        if bits & EP_FLUSHOPT != 0 {
            self.flushopt.on_fence();
        }
        if bits & (EP_TRACE | EP_LINT) != 0 {
            self.observe_fence(kind);
        }
    }

    #[inline]
    fn fence_backend(&self) {
        match self.backend {
            Backend::Clflush => persist::hw_sfence(),
            Backend::Delay { psync_ns, .. } => persist::busy_wait_ns(psync_ns),
            Backend::Noop => {}
        }
    }

    /// `pbarrier(x)`: flush an `nwords` object and fence — the paper's
    /// shorthand for "these pwbs are ordered before whatever follows"
    /// (Algorithm 1 lines 3 and 19).
    #[inline]
    pub fn pbarrier(&self, a: PAddr, nwords: usize, site: SiteId) {
        self.pwb_range(a, nwords, site);
        self.pfence();
    }

    // ------------------------------------------------------------------
    // Instrumentation control
    // ------------------------------------------------------------------

    /// Enables/disables one `pwb` call site.
    pub fn set_site_enabled(&self, site: SiteId, on: bool) {
        self.mask.set_site(site, on);
        self.refresh_mask_epoch();
    }

    /// Replaces the whole site mask (bit *i* = site *i* enabled).
    pub fn set_sites_mask(&self, mask: u64) {
        self.mask.set_mask(mask);
        self.refresh_mask_epoch();
    }

    /// Current site mask.
    pub fn sites_mask(&self) -> u64 {
        self.mask.mask()
    }

    /// Enables/disables `psync`/`pfence` (the paper's "no psyncs" variants,
    /// Figures 3c/4c). Incompatible with the flush-elision layer: a masked
    /// fence returns before draining the per-thread combining buffers, so
    /// deferred flushes could linger forever.
    pub fn set_psync_enabled(&self, on: bool) {
        assert!(
            on || !self.flushopt_enabled(),
            "cannot mask psync while the flush-elision layer is armed: \
             masked fences would never drain deferred pwbs"
        );
        self.mask.set_psync(on);
        self.refresh_mask_epoch();
    }

    /// Re-derives [`EP_MASK`] from the current mask state, so the unmasked
    /// fast paths never consult the mask at all.
    fn refresh_mask_epoch(&self) {
        let masked = self.mask.mask() != u64::MAX || !self.mask.psync_enabled();
        self.set_epoch_bit(EP_MASK, masked);
    }

    /// Snapshot of the persistence-instruction counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Zeroes the persistence-instruction counters.
    pub fn stats_reset(&self) {
        self.stats.reset();
    }

    /// Crash-injection controls (see [`CrashCtl`]).
    pub fn crash_ctl(&self) -> &CrashCtl {
        &self.crash_ctl
    }

    /// Arms or disarms the cooperative-scheduler yield points (see
    /// [`crate::sched`]): while armed, every instrumented event first calls
    /// the executing thread's registered yield hook. Threads without a hook
    /// (e.g. the main thread running recovery after an explored crash) fall
    /// straight through. Survives [`Self::restore`], so the schedule
    /// explorer arms it once per pool and rewinds freely between schedules.
    pub fn set_sched_enabled(&self, on: bool) {
        self.set_epoch_bit(EP_SCHED, on);
    }

    /// Arms or disarms the flush-elision layer (see [`crate::flushopt`]
    /// and [`PoolCfg::flushopt`]). Arming **resets** the layer's state
    /// first: stores made while it was off never reached its per-line
    /// table, so any surviving "flushed" credential could elide a flush
    /// the algorithm still needs. Disarming leaves buffered pwbs behind —
    /// only toggle at a quiescent point where nothing is deferred (or
    /// follow with a `psync` first). Refuses to arm while `psync` is
    /// masked (see [`Self::set_psync_enabled`]).
    pub fn set_flushopt_enabled(&self, on: bool) {
        if on {
            assert!(
                self.mask.psync_enabled(),
                "cannot arm the flush-elision layer while psync is masked: \
                 masked fences would never drain deferred pwbs"
            );
            self.flushopt.reset();
        }
        self.set_epoch_bit(EP_FLUSHOPT, on);
    }

    /// Is the flush-elision layer currently armed?
    pub fn flushopt_enabled(&self) -> bool {
        self.epoch_bits(EP_FLUSHOPT) != 0
    }

    /// Marks the calling thread as inside a *fence-coalescible region*
    /// until the returned guard drops: a `pfence`/`psync` issued while the
    /// region is open **and** nothing is pending anywhere (no buffered
    /// pwbs, no executed-but-unfenced ones) elides as
    /// [`StatsSnapshot::psync_coalesced`]. Algorithms wrap fence-heavy
    /// read phases — Capsules' traverse, Tracking's help-engine scans —
    /// whose fences only re-commit already-durable lines. A no-op unless
    /// the pool has flushopt armed; nesting is allowed.
    pub fn coalesce_fences(&self) -> FenceRegionGuard<'_> {
        self.flushopt.region_enter();
        FenceRegionGuard { fo: &self.flushopt }
    }

    // ------------------------------------------------------------------
    // Observation: persistence-event trace + flush lint
    // ------------------------------------------------------------------

    /// Mirrors an observer toggle into the fused epoch word. SeqCst for the
    /// same reason as arming a crash: enabling an observer is a rare
    /// control action that must not reorder with the workload it brackets.
    fn set_epoch_bit(&self, bit: u64, on: bool) {
        if on {
            self.epoch.fetch_or(bit, Ordering::SeqCst);
        } else {
            self.epoch.fetch_and(!bit, Ordering::SeqCst);
        }
    }

    /// Enables/disables the persistence-event trace (see [`crate::trace`]).
    pub fn set_trace_enabled(&self, on: bool) {
        self.trace.set_enabled(on);
        self.set_epoch_bit(EP_TRACE, on);
    }

    /// Is the trace currently recording?
    pub fn trace_enabled(&self) -> bool {
        self.trace.enabled()
    }

    /// Copies out the retained trace window, merged across threads in
    /// global sequence order.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.trace.snapshot()
    }

    /// Discards all retained trace events and resets the drop counter.
    pub fn trace_clear(&self) {
        self.trace.clear();
    }

    /// Enables/disables the flush lint (see [`crate::lint`]).
    pub fn set_lint_enabled(&self, on: bool) {
        self.lint.set_enabled(on);
        self.set_epoch_bit(EP_LINT, on);
    }

    /// Is the lint currently recording findings?
    pub fn lint_enabled(&self) -> bool {
        self.lint.enabled()
    }

    /// Copies out the lint's findings and per-site flush counters,
    /// including one ephemeral [`crate::LintKind::UnflushedDirty`] entry per
    /// line that is dirty right now.
    pub fn lint_report(&self) -> LintReport {
        self.lint.report()
    }

    /// Forgets all lint findings, counters and tracked line state.
    pub fn lint_clear(&self) {
        self.lint.clear();
    }

    /// Registers human-readable names for call sites, used by
    /// [`Self::site_name`] and by report rendering. Algorithm crates call
    /// this from their constructors with their `sites` table; later
    /// registrations overwrite earlier ones per site.
    pub fn register_site_names(&self, names: &[(SiteId, &'static str)]) {
        let mut tbl = self
            .site_names
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        for (site, name) in names {
            tbl[site.idx()] = Some(name);
        }
    }

    /// The registered name of `site`, if any. Read-locked only: concurrent
    /// report rendering never serializes against other readers.
    pub fn site_name(&self, site: SiteId) -> Option<&'static str> {
        self.site_names
            .read()
            .unwrap_or_else(PoisonError::into_inner)[site.idx()]
    }

    /// Renders the current lint report with registered site names.
    pub fn lint_report_text(&self) -> String {
        self.lint_report().render(|s| {
            if s as usize >= MAX_SITES {
                None
            } else {
                self.site_name(SiteId(s))
            }
        })
    }

    /// Records a mutated line in the replay footprint (slow paths only,
    /// gated on [`EP_FOOT`]).
    #[cold]
    fn note_line(&self, line: usize) {
        lock_foot(&self.foot).lines.push(line);
    }

    // The observe_* fns inline into the `_slow` dispatch bodies, which are
    // `inline(never)` rather than `#[cold]`: kept out of the disabled fast
    // path's code stream, but compiled for speed — with observers on they
    // run on every event, and `cold` would switch the whole observer path
    // to size optimization.
    #[inline]
    fn observe_load(&self, a: PAddr) {
        // No `trace.enabled()` re-check: this is only reached under
        // EP_TRACE, and `set_trace_enabled` keeps flag and epoch bit in
        // lockstep at harness-quiescent points.
        let seq = self.trace.next_seq();
        let dirty = self.lint.line_dirty(a.line());
        self.trace
            .record(seq, EventKind::Load, NO_SITE, a.raw(), dirty);
    }

    #[inline]
    fn observe_write(&self, a: PAddr, kind: EventKind, site: u8) {
        let tid = trace_tid();
        let seq = self.trace.next_seq();
        let dirty = self.lint.on_write(a.line(), site, tid, seq);
        if self.trace.enabled() {
            self.trace.record(seq, kind, site, a.raw(), dirty);
        }
    }

    #[inline]
    fn observe_cas(&self, a: PAddr, new: u64, success: bool, site: u8) {
        let tid = trace_tid();
        let seq = self.trace.next_seq();
        let dirty = if success {
            self.lint.on_write(a.line(), site, tid, seq)
        } else {
            self.lint.line_dirty(a.line())
        };
        if self.trace.enabled() {
            let kind = if success {
                EventKind::Cas
            } else {
                EventKind::CasFail
            };
            self.trace.record(seq, kind, site, a.raw(), dirty);
        }
        if success {
            if let Some(target_line) = self.publish_target(new) {
                self.lint.on_publish(target_line, tid, seq);
            }
        }
    }

    /// Decodes a CAS'd value as a published pool pointer, if it looks like
    /// one: untagged, nonzero, line-aligned, inside the allocated heap. A
    /// heuristic — a plain integer can alias a line address — but the lint
    /// only flags targets it has independent evidence are unpersisted.
    fn publish_target(&self, new: u64) -> Option<usize> {
        let w = crate::addr::untagged(new) as usize;
        let heap_base = self.heap_base;
        if w == 0 || !w.is_multiple_of(WORDS_PER_LINE) || w < heap_base {
            return None;
        }
        if w >= self.next.load(Ordering::Relaxed) {
            return None;
        }
        Some(w / WORDS_PER_LINE)
    }

    #[inline]
    fn observe_pwb(&self, a: PAddr, site: SiteId) {
        let seq = self.trace.next_seq();
        let was_dirty = self.lint.on_pwb(a.line(), site, seq);
        if self.trace.enabled() {
            self.trace
                .record(seq, EventKind::Pwb, site.0, a.raw(), was_dirty);
        }
    }

    #[inline]
    fn observe_fence(&self, kind: EventKind) {
        let seq = self.trace.next_seq();
        self.lint.on_fence();
        if self.trace.enabled() {
            self.trace.record(seq, kind, NO_SITE, 0, false);
        }
    }

    // ------------------------------------------------------------------
    // Crash model
    // ------------------------------------------------------------------

    /// Resolves a simulated system-wide crash (Model mode only): every cache
    /// line's surviving content is decided by `adversary`, volatile state is
    /// re-initialized from it, and crash injection is disarmed.
    ///
    /// Requires quiescence: all worker threads must have stopped (e.g.
    /// unwound via an injected [`crate::CrashPoint`]) before this is called.
    ///
    /// # Panics
    /// If the pool was built without `shadow` (there is no crash model to
    /// consult in Perf mode).
    pub fn crash(&self, adversary: &mut dyn CrashAdversary) {
        let sh = self
            .shadow
            .as_ref()
            .expect("PmemPool::crash requires PoolCfg.shadow = true (Model mode)");
        self.crash_ctl.disarm();
        // Only lines up to the allocation watermark can differ between the
        // volatile and persisted views.
        let nlines = self.next.load(Ordering::Relaxed).div_ceil(WORDS_PER_LINE);
        let mut foot = lock_foot(&self.foot);
        if foot.live {
            // Footprint tracking bounds the scan: a line absent from the
            // checkpoint's hot set, the mutation record and the pending map
            // has identical views, exactly the lines the full scan skips.
            // Ascending order keeps seeded adversaries bit-compatible with
            // the full scan.
            let mut scan: Vec<usize> = foot
                .hot
                .iter()
                .chain(foot.lines.iter())
                .copied()
                .chain(sh.pending_lines())
                .collect();
            scan.sort_unstable();
            scan.dedup();
            sh.crash_bounded(&self.words, adversary, &scan);
            // Resolution rewrote the scanned lines: they now diverge from
            // the restored checkpoint.
            foot.lines.extend_from_slice(&scan);
        } else {
            drop(foot);
            sh.crash(&self.words, adversary, nlines);
        }
        // Lines still dirty at the crash are exactly the losses the
        // adversary could pick; record them as permanent findings and reset
        // the lint's view (volatile == persisted after resolution). Both
        // matter only to the observers — a dark replay (no trace, no lint)
        // skips the walk, and the next restore re-imports the line states.
        if self.trace.enabled() || self.lint.enabled() {
            self.lint.on_crash(self.trace.next_seq());
        }
        // Forget every elision credential and buffered flush: after
        // resolution, volatile and persisted images agree, but recovery
        // must re-earn its elisions and no pre-crash deferral survives
        // (those pwbs are exactly the losses the adversary already chose).
        self.flushopt.reset();
        // Crash resolution may have rewound free-list pushes/pops; rebuild
        // the volatile allocator accounting from the surviving lists.
        if self.reclaim {
            self.refresh_palloc_accounting();
        }
    }

    /// Puts the shadow crash model to sleep, or wakes it (Model mode only;
    /// a no-op otherwise). While dormant, `pwb`/`psync` stop maintaining
    /// the pending and persisted images. The crash-sweep verdict phase uses
    /// this right after [`Self::crash`] resolves: no further crash can be
    /// injected before the pool is restored or rebuilt, so the bookkeeping
    /// would be dead weight on every recovery/observation event.
    /// [`Self::restore`] re-arms the model automatically.
    pub fn set_crash_model_dormant(&self, dormant: bool) {
        if self.shadow.is_some() {
            self.set_epoch_bit(EP_SHADOW, !dormant);
        }
    }

    /// Reads the *persisted* image of a word (Model mode test introspection).
    pub fn persisted_load(&self, a: PAddr) -> u64 {
        self.shadow
            .as_ref()
            .expect("persisted_load requires Model mode")
            .persisted_load(a.word())
    }

    // ------------------------------------------------------------------
    // Snapshot / restore (checkpointed replay)
    // ------------------------------------------------------------------

    /// Exact number of trace events recorded since the last
    /// [`Self::trace_clear`] (retained plus dropped), without merging the
    /// per-thread rings. The sweep engine samples this at operation
    /// boundaries to place checkpoints.
    pub fn trace_event_total(&self) -> u64 {
        self.trace.total()
    }

    /// Captures the pool's complete persistent-memory state: the volatile
    /// word image up to the allocation watermark, the shadow's persisted
    /// image and pending `pwb` snapshots (Model mode), the allocation
    /// cursor, the site mask, and the trace sequence counter. Root cells
    /// and per-thread recovery slots live inside the word image, so they
    /// are covered automatically.
    ///
    /// Requires quiescence (no concurrent pool operations) — the intended
    /// caller is the crash-sweep engine between scripted operations.
    pub fn snapshot(&self) -> PoolSnapshot {
        let next = self.next.load(Ordering::SeqCst);
        let words: Vec<u64> = (0..next)
            .map(|i| self.words[i].load(Ordering::Acquire))
            .collect();
        let (persisted, pending) = match &self.shadow {
            Some(sh) => {
                let (p, pend) = sh.export(next);
                (Some(p), pend)
            }
            None => (None, Vec::new()),
        };
        let (lint_lines, lint_flushed) = self.lint.export_state();
        // Hot lines: views differ or a pwb is pending — the only lines a
        // crash resolution of this exact state could touch, precomputed
        // once here so replays from this checkpoint can scan just them.
        let mut hot_lines: Vec<usize> = Vec::new();
        if let Some(p) = &persisted {
            for line in 0..next.div_ceil(WORDS_PER_LINE) {
                let base = line * WORDS_PER_LINE;
                let end = (base + WORDS_PER_LINE).min(next);
                if (base..end).any(|w| words[w] != p[w]) {
                    hot_lines.push(line);
                }
            }
            hot_lines.extend(pending.iter().map(|&(l, _)| l));
            hot_lines.sort_unstable();
            hot_lines.dedup();
        }
        static NEXT_SNAP_ID: AtomicU64 = AtomicU64::new(1);
        PoolSnapshot {
            id: NEXT_SNAP_ID.fetch_add(1, Ordering::Relaxed),
            next,
            words,
            persisted,
            pending,
            hot_lines,
            lint_lines,
            lint_flushed,
            // Checkpointing (not a plain read): returns the capturing
            // thread's banked seqs so a restored replay re-issues exactly
            // the seqs this run issues next.
            trace_seq: self.trace.seq_checkpoint(),
            sites_mask: self.mask.mask(),
            psync_on: self.mask.psync_enabled(),
            flushopt: self.flushopt.export_state(),
        }
    }

    /// Rewinds the pool to a state captured by [`Self::snapshot`] — words,
    /// shadow images, allocation cursor, site mask and trace sequence
    /// counter. Memory the pool dirtied *after* the snapshot (words between
    /// the snapshot's and the current allocation watermark) is zeroed in
    /// both the volatile and persisted images, so re-allocation hands out
    /// freshly zeroed lines exactly as a fresh pool would. Crash injection
    /// is disarmed and the trace/lint observers are cleared (their enable
    /// flags are left alone — the caller decides what to observe next).
    ///
    /// Requires quiescence, and the snapshot must come from this pool (the
    /// allocation watermark may only have grown since it was taken).
    pub fn restore(&self, snap: &PoolSnapshot) {
        let cur_next = self.next.load(Ordering::SeqCst);
        assert!(
            snap.next <= cur_next && snap.next <= self.words.len(),
            "restore: snapshot does not belong to this pool"
        );
        let mut foot = lock_foot(&self.foot);
        // Restoring the same snapshot again? Then everything that diverged
        // since the last restore is in the footprint (mutating slow paths
        // record lines while EP_FOOT is set, and `crash` records the lines
        // it resolved), so rewriting just those lines — instead of the
        // whole allocated prefix — reproduces the snapshot exactly. This is
        // the per-crash-point hot path of the checkpointed sweep engine.
        let incremental = foot.live && foot.snap_id == snap.id;
        if incremental {
            foot.lines.sort_unstable();
            foot.lines.dedup();
            for &line in &foot.lines {
                let base = line * WORDS_PER_LINE;
                for w in base..base + WORDS_PER_LINE {
                    // Lines allocated after the capture rewind to zero, as
                    // a fresh pool would hand them out.
                    let v = snap.words.get(w).copied().unwrap_or(0);
                    self.words[w].store(v, Ordering::Release);
                }
            }
            if let Some(sh) = &self.shadow {
                let persisted = snap
                    .persisted
                    .as_ref()
                    .expect("restore: snapshot from a non-shadow pool into Model mode");
                sh.import_lines(&foot.lines, persisted, &snap.pending);
            }
        } else {
            for (i, w) in snap.words.iter().enumerate() {
                self.words[i].store(*w, Ordering::Release);
            }
            for i in snap.next..cur_next {
                self.words[i].store(0, Ordering::Release);
            }
            if let Some(sh) = &self.shadow {
                let persisted = snap
                    .persisted
                    .as_ref()
                    .expect("restore: snapshot from a non-shadow pool into Model mode");
                sh.import(persisted, &snap.pending, cur_next);
            }
            foot.hot = snap.hot_lines.clone();
        }
        self.next.store(snap.next, Ordering::SeqCst);
        self.mask.set_mask(snap.sites_mask);
        self.mask.set_psync(snap.psync_on);
        self.refresh_mask_epoch();
        self.crash_ctl.disarm();
        // Findings and counters reset, but the line-state machine is put
        // back exactly as captured: it feeds the `dirty` annotation of
        // traced events, and a replay from this checkpoint must reproduce
        // the original timeline's annotations byte for byte. Re-importing
        // is skipped when nothing has touched the table since the last
        // import of this same snapshot (dark replays drive neither the
        // trace nor the lint).
        let lint_gen = self.lint.generation();
        if !(incremental && foot.lint_gen == lint_gen) {
            self.lint.clear();
            self.lint.import_state(&snap.lint_lines, &snap.lint_flushed);
            foot.lint_gen = self.lint.generation();
        }
        self.trace.clear();
        self.trace.set_seq(snap.trace_seq);
        // The elision layer is execution-affecting (unlike the lint, a
        // pure observer), so its state is re-imported unconditionally: a
        // replay from this checkpoint must make the same elide/defer
        // decisions the original timeline did.
        self.flushopt.import_state(&snap.flushopt);
        // Arm footprint tracking for the replay that follows. Seeding with
        // the snapshot's pending lines covers the one mutation a replay can
        // make without a recording slow path firing for that line: a psync
        // committing a pending snapshot it inherited from the checkpoint.
        foot.live = true;
        foot.snap_id = snap.id;
        foot.lines.clear();
        foot.lines.extend(snap.pending.iter().map(|&(l, _)| l));
        drop(foot);
        self.set_epoch_bit(EP_FOOT, true);
        // Wake the crash model if the verdict phase of the previous crash
        // point put it to sleep (see `set_crash_model_dormant`).
        if self.shadow.is_some() {
            self.set_epoch_bit(EP_SHADOW, true);
        }
        // The restored image carries its own free lists and limbo lists;
        // rebuild the volatile allocator accounting to match.
        if self.reclaim {
            self.refresh_palloc_accounting();
        }
    }
}

/// RAII guard of a fence-coalescible region (see
/// [`PmemPool::coalesce_fences`]). Dropping it closes the region — also on
/// unwind, so an injected [`crate::CrashPoint`] panic mid-region never
/// leaves the thread marked coalescible into its recovery code.
pub struct FenceRegionGuard<'a> {
    fo: &'a FlushOpt,
}

impl Drop for FenceRegionGuard<'_> {
    fn drop(&mut self) {
        self.fo.region_exit();
    }
}

/// The stable prefix of the panic message [`PmemPool::alloc_lines`] raises
/// on pool exhaustion, for payload classification.
pub const EXHAUSTED_PREFIX: &str = "pmem pool exhausted";

/// Recognizes a pool-exhaustion panic payload (the panic raised by
/// [`PmemPool::alloc_lines`] when the arena is full) and returns its
/// actionable message. Harnesses use this to classify an exhausted run as
/// a capacity problem instead of an opaque worker failure:
///
/// ```
/// use pmem::{exhaustion_message, PmemPool, PoolCfg};
/// let p = PmemPool::new(PoolCfg::model(0)); // minimum-size pool
/// while p.try_alloc_lines(1).is_some() {}
/// let err = std::panic::catch_unwind(|| p.alloc_lines(1)).unwrap_err();
/// assert!(exhaustion_message(err.as_ref()).unwrap().contains("capacity"));
/// ```
pub fn exhaustion_message(payload: &(dyn std::any::Any + Send)) -> Option<&str> {
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied())?;
    msg.starts_with(EXHAUSTED_PREFIX).then_some(msg)
}

/// A point-in-time copy of a pool's full persistent state (see
/// [`PmemPool::snapshot`]). Opaque outside the crate; the sweep engine
/// stores these as replay checkpoints.
pub struct PoolSnapshot {
    /// Process-unique id, so a pool can recognize "restoring the same
    /// snapshot as last time" and take the incremental path.
    id: u64,
    /// Allocation cursor (words) at capture time.
    next: usize,
    /// Volatile word image `[0, next)`.
    words: Vec<u64>,
    /// Shadow persisted image `[0, next)` (Model mode pools only).
    persisted: Option<Vec<u64>>,
    /// Shadow pending `pwb` snapshots, sorted by line.
    pending: Vec<(usize, LineSnap)>,
    /// Lines whose views differed (or had a pending snapshot) at capture
    /// time, ascending — the scan set for crash resolution during replays.
    hot_lines: Vec<usize>,
    /// Flush-lint line states, sorted by line (feeds trace `dirty` flags).
    lint_lines: Vec<(usize, LineState)>,
    /// Flush-lint flushed-awaiting-fence worklist.
    lint_flushed: Vec<usize>,
    /// Global trace sequence counter at capture time.
    trace_seq: u64,
    /// Site mask at capture time.
    sites_mask: u64,
    /// `psync`/`pfence` enable flag at capture time.
    psync_on: bool,
    /// Flush-elision layer state at capture time (line states, commit
    /// obligations, buffered pwbs).
    flushopt: FlushOptSnap,
}

impl PoolSnapshot {
    /// Approximate heap size of this snapshot in bytes (capacity planning
    /// for checkpoint schedules).
    pub fn approx_bytes(&self) -> usize {
        self.words.len() * 8
            + self.persisted.as_ref().map_or(0, |p| p.len() * 8)
            + self.pending.len() * (8 + std::mem::size_of::<LineSnap>())
    }

    /// Allocation watermark (in words) at capture time. Words at or past
    /// the watermark were not yet allocated when the snapshot was taken.
    pub fn watermark(&self) -> usize {
        self.next
    }

    /// The captured *volatile* image of word `w`, or `None` past the
    /// watermark. Forensic introspection for crash-state debugging.
    pub fn word(&self, w: usize) -> Option<u64> {
        self.words.get(w).copied()
    }

    /// The captured shadow *persisted* image of word `w` (`None` for
    /// non-shadow pools or past the watermark). Forensic introspection.
    pub fn persisted_word(&self, w: usize) -> Option<u64> {
        self.persisted.as_ref().and_then(|p| p.get(w).copied())
    }

    /// The captured *pending* `pwb` snapshot covering word `w`, if its
    /// cache line had one in flight. Forensic introspection.
    pub fn pending_word(&self, w: usize) -> Option<u64> {
        let line = w / WORDS_PER_LINE;
        self.pending
            .iter()
            .find(|&&(l, _)| l == line)
            .map(|&(_, snap)| snap[w % WORDS_PER_LINE])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::PessimistAdversary;

    fn model_pool() -> PmemPool {
        PmemPool::new(PoolCfg::model(1 << 20))
    }

    #[test]
    fn layout_reserves_null_roots_recovery() {
        let p = model_pool();
        assert!(p.root(0).word() >= WORDS_PER_LINE); // line 0 reserved
        assert_eq!(p.root(1).word() - p.root(0).word(), WORDS_PER_LINE);
        let r0 = p.recovery_line(0);
        assert!(r0.word() > p.root(NUM_ROOTS - 1).word());
        let heap = p.alloc_lines(1);
        assert!(heap.word() > p.recovery_line(p.max_threads() - 1).word());
    }

    #[test]
    #[should_panic(expected = "root index")]
    fn root_bounds_checked() {
        model_pool().root(NUM_ROOTS);
    }

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        let b = p.alloc_lines(2);
        let c = p.alloc_lines(1);
        assert_eq!(a.word() % WORDS_PER_LINE, 0);
        assert_eq!(b.word(), a.word() + WORDS_PER_LINE);
        assert_eq!(c.word(), b.word() + 2 * WORDS_PER_LINE);
    }

    #[test]
    fn alloc_exhaustion_returns_none() {
        let p = PmemPool::new(PoolCfg::model(0)); // minimum-size pool
                                                  // eat everything
        while p.try_alloc_lines(1).is_some() {}
        assert!(p.try_alloc_lines(1).is_none());
        assert_eq!(p.remaining_lines(), 0);
    }

    #[test]
    fn load_store_cas_roundtrip() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        assert_eq!(p.load(a), 0); // zero-initialized
        p.store(a, 17);
        assert_eq!(p.load(a), 17);
        assert_eq!(p.cas(a, 17, 23), Ok(17));
        assert_eq!(p.load(a), 23);
        assert_eq!(p.cas(a, 17, 99), Err(23));
        assert_eq!(p.load(a), 23);
    }

    #[test]
    fn stats_count_instructions() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.pwb(a, SiteId(2));
        p.pwb(a, SiteId(2));
        p.psync();
        p.pfence();
        let s = p.stats();
        assert_eq!(s.pwb_at(SiteId(2)), 2);
        assert_eq!(s.psync, 1);
        assert_eq!(s.pfence, 1);
    }

    #[test]
    fn disabled_site_neither_flushes_nor_counts() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.store(a, 5);
        p.set_site_enabled(SiteId(1), false);
        p.pwb(a, SiteId(1));
        p.psync();
        assert_eq!(p.stats().pwb_at(SiteId(1)), 0);
        // not flushed => lost by a pessimist crash
        p.crash(&mut PessimistAdversary);
        assert_eq!(p.load(a), 0);
    }

    #[test]
    fn disabled_psync_not_counted_and_not_committed() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.store(a, 5);
        p.pwb(a, SiteId(0));
        p.set_psync_enabled(false);
        p.psync();
        assert_eq!(p.stats().psync, 0);
        p.crash(&mut PessimistAdversary);
        assert_eq!(p.load(a), 0, "psync was disabled, pwb never committed");
    }

    #[test]
    fn pwb_psync_makes_word_durable() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.store(a, 5);
        p.pwb(a, SiteId(0));
        p.psync();
        p.crash(&mut PessimistAdversary);
        assert_eq!(p.load(a), 5);
        assert_eq!(p.persisted_load(a), 5);
    }

    #[test]
    fn pwb_range_covers_multi_line_objects() {
        let p = model_pool();
        let a = p.alloc_lines(2); // 16-word object
        for i in 0..16 {
            p.store(a.add(i), i + 1);
        }
        p.pwb_range(a, 16, SiteId(0));
        p.psync();
        p.crash(&mut PessimistAdversary);
        for i in 0..16 {
            assert_eq!(p.load(a.add(i)), i + 1);
        }
        assert_eq!(p.stats().pwb_at(SiteId(0)), 2); // two lines, two pwbs
    }

    #[test]
    fn pbarrier_is_pwb_plus_fence() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.store(a, 9);
        p.pbarrier(a, 1, SiteId(3));
        let s = p.stats();
        assert_eq!(s.pwb_at(SiteId(3)), 1);
        assert_eq!(s.pfence, 1);
        p.crash(&mut PessimistAdversary);
        assert_eq!(p.load(a), 9);
    }

    #[test]
    fn crash_injection_stops_mid_sequence() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.crash_ctl().arm_after(2); // two events survive, third crashes
        let done = crate::crash::run_crashable(|| {
            p.store(a, 1); // event 0
            p.pwb(a, SiteId(0)); // event 1
            p.psync(); // event 2 -> crash before completing
            true
        });
        assert_eq!(done, None);
        p.crash(&mut PessimistAdversary);
        // The pwb was issued but never synced; pessimist drops it.
        assert_eq!(p.load(a), 0);
    }

    #[test]
    fn perf_mode_pool_smoke() {
        let p = PmemPool::new(PoolCfg::perf(1 << 20));
        let a = p.alloc_lines(1);
        p.store(a, 7);
        p.pwb(a, SiteId(0)); // real clflush on x86-64
        p.psync(); // real sfence
        assert_eq!(p.load(a), 7);
        assert_eq!(p.stats().pwb_total(), 1);
    }

    #[test]
    fn delay_backend_injects_latency() {
        let p = PmemPool::new(PoolCfg {
            capacity: 1 << 20,
            backend: Backend::Delay {
                pwb_ns: 200_000,
                psync_ns: 0,
            },
            shadow: false,
            ..Default::default()
        });
        let a = p.alloc_lines(1);
        let t = std::time::Instant::now();
        p.pwb(a, SiteId(0));
        assert!(t.elapsed().as_nanos() >= 200_000);
    }

    #[test]
    fn trace_records_pool_events_in_order() {
        let p = PmemPool::new(PoolCfg {
            trace: true,
            ..PoolCfg::model(1 << 20)
        });
        let a = p.alloc_lines(1);
        p.store_at(a, 7, SiteId(4));
        p.pwb(a, SiteId(4));
        p.psync();
        p.load(a);
        let snap = p.trace_snapshot();
        let kinds: Vec<crate::EventKind> = snap.events.iter().map(|e| e.kind).collect();
        use crate::EventKind::*;
        assert_eq!(kinds, vec![Store, Pwb, Psync, Load]);
        assert_eq!(snap.events[0].site, 4);
        assert!(snap.events[0].dirty, "store dirties its line");
        assert!(snap.events[1].dirty, "pwb found the line dirty");
        assert!(!snap.events[3].dirty, "after psync the line is clean");
        assert_eq!(snap.events[0].line, a.line());
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn trace_disabled_records_nothing() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.store(a, 1);
        p.pwb(a, SiteId(0));
        assert!(p.trace_snapshot().events.is_empty());
        p.set_trace_enabled(true);
        p.store(a, 2);
        assert_eq!(p.trace_snapshot().events.len(), 1);
    }

    #[test]
    fn lint_flags_seeded_redundant_pwb_at_its_site() {
        let p = PmemPool::new(PoolCfg {
            lint: true,
            ..PoolCfg::model(1 << 20)
        });
        let a = p.alloc_lines(1);
        p.store(a, 1);
        p.pwb(a, SiteId(2)); // useful
        p.pwb(a, SiteId(9)); // redundant: nothing stored in between
        p.psync();
        let r = p.lint_report();
        assert_eq!(r.count(crate::LintKind::RedundantPwb), 1);
        let d = r.of_kind(crate::LintKind::RedundantPwb).next().unwrap();
        assert_eq!(d.site, 9, "flagged at the redundant flush's site");
        assert_eq!(d.line, a.line());
        assert_eq!(r.pwb_dirty[2], 1);
        assert_eq!(r.pwb_redundant[9], 1);
    }

    #[test]
    fn lint_flags_seeded_missing_pwb_at_store_site() {
        let p = PmemPool::new(PoolCfg {
            lint: true,
            ..PoolCfg::model(1 << 20)
        });
        let a = p.alloc_lines(2);
        let b = a.add(WORDS_PER_LINE as u64);
        p.store_at(a, 1, SiteId(3));
        p.store_at(b, 2, SiteId(7)); // never flushed
        p.pwb(a, SiteId(3));
        p.psync();
        let r = p.lint_report();
        assert_eq!(r.count(crate::LintKind::UnflushedDirty), 1);
        let d = r.of_kind(crate::LintKind::UnflushedDirty).next().unwrap();
        assert_eq!(
            d.site, 7,
            "attributed to the store that dirtied the lost line"
        );
        assert_eq!(d.line, b.line());
        // ... and a pessimist crash indeed loses exactly that line
        p.crash(&mut PessimistAdversary);
        assert_eq!(p.load(a), 1);
        assert_eq!(p.load(b), 0);
    }

    #[test]
    fn lint_flags_publish_of_unflushed_node() {
        let p = PmemPool::new(PoolCfg {
            lint: true,
            ..PoolCfg::model(1 << 20)
        });
        let node = p.alloc_lines(1);
        let link = p.alloc_lines(1);
        p.store_at(node, 42, SiteId(1)); // node content, never pbarrier'd
        p.cas(link, 0, node.raw()).unwrap(); // publish the pointer
        let r = p.lint_report();
        assert_eq!(r.count(crate::LintKind::UnfencedPublish), 1);
        let d = r.of_kind(crate::LintKind::UnfencedPublish).next().unwrap();
        assert_eq!(d.line, node.line());
        assert_eq!(d.site, 1, "attributed to the store that dirtied the node");
    }

    #[test]
    fn lint_clean_publish_after_pbarrier() {
        let p = PmemPool::new(PoolCfg {
            lint: true,
            ..PoolCfg::model(1 << 20)
        });
        let node = p.alloc_lines(1);
        let link = p.alloc_lines(1);
        p.store_at(node, 42, SiteId(1));
        p.pbarrier(node, 1, SiteId(1)); // flush + fence before publishing
        p.cas(link, 0, node.raw()).unwrap();
        p.pwb(link, SiteId(2));
        p.psync();
        let r = p.lint_report();
        assert!(
            r.count(crate::LintKind::UnfencedPublish) == 0
                && r.count(crate::LintKind::RedundantPwb) == 0,
            "{:?}",
            r.diags
        );
    }

    #[test]
    fn lint_crash_records_losses_permanently() {
        let p = PmemPool::new(PoolCfg {
            lint: true,
            ..PoolCfg::model(1 << 20)
        });
        let a = p.alloc_lines(1);
        p.store_at(a, 5, SiteId(6));
        p.crash(&mut PessimistAdversary);
        let r = p.lint_report();
        assert_eq!(r.count(crate::LintKind::UnflushedDirty), 1);
        assert_eq!(
            r.of_kind(crate::LintKind::UnflushedDirty)
                .next()
                .unwrap()
                .site,
            6
        );
        // post-crash the views agree; a fresh cycle reports nothing new
        p.store(a, 9);
        p.pwb(a, SiteId(0));
        p.psync();
        assert_eq!(p.lint_report().diags.len(), 1);
    }

    #[test]
    fn site_names_register_and_render() {
        let p = model_pool();
        p.register_site_names(&[(SiteId(2), "new-node"), (SiteId(3), "result")]);
        assert_eq!(p.site_name(SiteId(2)), Some("new-node"));
        assert_eq!(p.site_name(SiteId(0)), None);
        p.set_lint_enabled(true);
        let a = p.alloc_lines(1);
        p.store(a, 1);
        p.pwb(a, SiteId(2));
        p.pwb(a, SiteId(2));
        let text = p.lint_report_text();
        assert!(text.contains("redundant-pwb"), "{text}");
        assert!(text.contains("site 2 (new-node)"), "{text}");
    }

    #[test]
    fn snapshot_restore_roundtrips_words_and_cursor() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.store(a, 11);
        p.pwb(a, SiteId(0));
        p.psync();
        let snap = p.snapshot();
        assert!(snap.approx_bytes() > 0);

        // Diverge: new allocation, new volatile + persisted state.
        let b = p.alloc_lines(1);
        p.store(a, 99);
        p.store(b, 7);
        p.pwb(b, SiteId(0));
        p.psync();

        p.restore(&snap);
        assert_eq!(p.load(a), 11, "volatile image rewound");
        assert_eq!(p.persisted_load(a), 11, "persisted image rewound");
        // The post-snapshot allocation is rolled back and its memory is
        // zeroed: re-allocating hands out the same (clean) address.
        let b2 = p.alloc_lines(1);
        assert_eq!(b2.word(), b.word());
        assert_eq!(p.load(b2), 0);
        assert_eq!(p.persisted_load(b2), 0);
    }

    #[test]
    fn restore_rewinds_lint_line_state_for_dirty_flags() {
        // The lint's line-state machine feeds the `dirty` annotation of
        // traced events; a replay from a checkpoint must reproduce the
        // original timeline's annotations exactly.
        let p = PmemPool::new(PoolCfg {
            trace: true,
            ..PoolCfg::model(1 << 20)
        });
        let a = p.alloc_lines(1);
        p.store(a, 1); // line dirty at snapshot time
        let snap = p.snapshot();
        p.pwb(a, SiteId(0));
        p.psync(); // line clean on the diverged timeline
        p.restore(&snap);
        p.pwb(a, SiteId(0));
        let t = p.trace_snapshot();
        let ev = t.events.last().unwrap();
        assert_eq!(ev.seq, snap.trace_seq, "sequence counter rewound");
        assert!(ev.dirty, "restored lint state remembers the dirty line");
    }

    #[test]
    fn restore_rewinds_pending_pwbs() {
        // A pwb pending (not yet psync'd) at snapshot time must be pending
        // again after restore: a later crash resolves it exactly as the
        // original timeline would have.
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.store(a, 5);
        p.pwb(a, SiteId(0)); // pending, never synced
        let snap = p.snapshot();
        p.psync(); // diverge: commit it
        p.restore(&snap);
        struct PickPending;
        impl CrashAdversary for PickPending {
            fn choose(&mut self, _: usize, has_pending: bool) -> crate::CrashChoice {
                assert!(has_pending, "pending snapshot must be restored");
                crate::CrashChoice::Pending
            }
        }
        p.crash(&mut PickPending);
        assert_eq!(p.load(a), 5);
    }

    #[test]
    fn restore_disarms_crash_and_rewinds_trace_seq() {
        let p = PmemPool::new(PoolCfg {
            trace: true,
            ..PoolCfg::model(1 << 20)
        });
        let a = p.alloc_lines(1);
        p.store(a, 1);
        let snap = p.snapshot();
        let seq_before = p.trace_snapshot().events.last().unwrap().seq;
        p.store(a, 2);
        p.crash_ctl().arm_after(1000);
        p.restore(&snap);
        assert!(!p.crash_ctl().armed(), "restore disarms injection");
        assert_eq!(p.trace_event_total(), 0, "restore clears the trace");
        p.store(a, 3);
        let e = p.trace_snapshot().events[0];
        assert_eq!(
            e.seq,
            seq_before + 1,
            "replay re-issues the original sequence numbers"
        );
    }

    #[test]
    fn restore_preserves_site_mask_from_snapshot() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.set_site_enabled(SiteId(4), false);
        let snap = p.snapshot();
        p.set_site_enabled(SiteId(4), true);
        p.set_psync_enabled(false);
        p.restore(&snap);
        p.pwb(a, SiteId(4));
        assert_eq!(p.stats().pwb_at(SiteId(4)), 0, "mask restored (site off)");
        p.store(a, 1);
        p.pwb(a, SiteId(0));
        p.psync();
        assert_eq!(p.stats().psync, 1, "psync enable restored");
    }

    #[test]
    fn incremental_restore_matches_full_copy() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        let b = p.alloc_lines(1);
        p.store(a, 1);
        p.pwb(a, SiteId(0));
        p.psync();
        p.store(b, 2); // dirty at capture: a hot line
        let snap = p.snapshot();
        // The first restore takes the full-copy path and arms footprint
        // tracking (EP_FOOT).
        p.restore(&snap);
        assert_ne!(p.epoch.load(Ordering::SeqCst) & EP_FOOT, 0);
        // Mutate broadly: overwrite, allocate fresh lines, persist them,
        // and resolve a crash — every footprint source at once.
        p.store(a, 9);
        let c = p.alloc_lines(1);
        p.store(c, 7);
        p.pwb(c, SiteId(1));
        p.psync();
        p.crash(&mut crate::PessimistAdversary);
        assert_eq!(p.load(c), 7, "flushed-and-synced line survives the crash");
        // The second restore of the same snapshot takes the incremental
        // path; the pool must still equal the snapshot exactly.
        p.restore(&snap);
        assert_eq!(p.load(a), 1);
        assert_eq!(p.load(b), 2);
        assert_eq!(p.persisted_load(a), 1);
        assert_eq!(
            p.persisted_load(b),
            0,
            "b was dirty and unflushed at capture"
        );
        assert_eq!(p.load(c), 0, "post-capture allocation rewound to zero");
        assert_eq!(p.persisted_load(c), 0);
        assert_eq!(p.alloc_lines(1), c, "allocation cursor rewound");
        // A crash right after the restore resolves to the capture state.
        p.crash(&mut crate::PessimistAdversary);
        assert_eq!(p.load(a), 1, "a was persisted at capture");
        assert_eq!(p.load(b), 0, "pessimist drops b's unflushed store");
    }

    #[test]
    fn fused_epoch_tracks_arm_and_observers() {
        // White-box: the fast paths only work if every control action
        // maintains its epoch bit.
        let p = model_pool();
        assert_eq!(p.epoch.load(Ordering::SeqCst), EP_SHADOW);
        p.crash_ctl().arm_after(5);
        assert_eq!(p.epoch.load(Ordering::SeqCst), EP_SHADOW | EP_CRASH);
        p.crash_ctl().disarm();
        p.set_trace_enabled(true);
        p.set_lint_enabled(true);
        assert_eq!(
            p.epoch.load(Ordering::SeqCst),
            EP_SHADOW | EP_TRACE | EP_LINT
        );
        p.set_trace_enabled(false);
        p.set_lint_enabled(false);
        assert_eq!(p.epoch.load(Ordering::SeqCst), EP_SHADOW);
    }

    #[test]
    fn fired_countdown_clears_epoch_bit() {
        // Auto-disarm on firing must clear EP_CRASH, or every later event
        // would keep taking the slow path.
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.crash_ctl().arm_after(0);
        assert!(crate::crash::run_crashable(|| p.store(a, 1)).is_none());
        assert_eq!(p.epoch.load(Ordering::SeqCst) & EP_CRASH, 0);
    }

    #[test]
    fn concurrent_allocation_is_disjoint() {
        let p = std::sync::Arc::new(model_pool());
        let mut handles = vec![];
        for _ in 0..4 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|_| p.alloc_lines(1).word())
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400, "allocations overlapped");
    }
}
