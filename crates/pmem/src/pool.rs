//! The persistent-memory pool: allocation, word primitives, persistence
//! instructions, and simulated crashes.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::addr::{PAddr, WORDS_PER_LINE};
use crate::crash::CrashCtl;
use crate::lint::{FlushLint, LintReport};
use crate::persist::{self, Backend, SiteId, SiteMask, MAX_SITES};
use crate::shadow::{CrashAdversary, ShadowMem};
use crate::stats::{Stats, StatsSnapshot};
use crate::trace::{trace_tid, EventKind, Trace, TraceSnapshot, NO_SITE};

/// Number of root-directory cells (each on its own cache line).
pub const NUM_ROOTS: usize = 16;

/// Pool construction parameters.
///
/// Two presets cover the common cases — [`PoolCfg::model`] for crash-model
/// tests (shadow memory on, persistence instructions free) and
/// [`PoolCfg::perf`] for timed runs (real cache-line flushes, no shadow) —
/// and struct-update syntax layers the observers on top:
///
/// ```
/// use pmem::{PmemPool, PoolCfg, PessimistAdversary, SiteId};
/// let pool = PmemPool::new(PoolCfg {
///     trace: true, // record every instrumented event
///     lint: true,  // flag misplaced persistence instructions
///     ..PoolCfg::model(8 << 20)
/// });
/// let a = pool.alloc_lines(1);
/// pool.store(a, 5);
/// pool.pwb(a, SiteId(0));
/// pool.psync();
/// pool.crash(&mut PessimistAdversary); // Model mode: crashes resolvable
/// assert_eq!(pool.load(a), 5, "flushed-and-synced store survives");
/// assert!(pool.lint_report().is_clean());
/// ```
#[derive(Clone, Debug)]
pub struct PoolCfg {
    /// Pool capacity in bytes (rounded up to whole cache lines).
    pub capacity: usize,
    /// Persistence-instruction behaviour (see [`Backend`]).
    pub backend: Backend,
    /// Enable the shadow-memory crash model (Model mode). Doubles memory
    /// use and adds bookkeeping to `pwb`/`psync`; meant for tests, not for
    /// performance runs.
    pub shadow: bool,
    /// Number of per-thread recovery slots (`CP_q`/`RD_q` lines) to reserve.
    pub max_threads: usize,
    /// Start with the persistence-event trace enabled (see [`crate::trace`]).
    /// Can be toggled later with [`PmemPool::set_trace_enabled`].
    pub trace: bool,
    /// Start with the flush lint enabled (see [`crate::lint`]). Can be
    /// toggled later with [`PmemPool::set_lint_enabled`].
    pub lint: bool,
    /// Per-thread event-ring capacity for the trace (oldest events are
    /// dropped beyond this; see [`TraceSnapshot::dropped`]).
    pub trace_capacity: usize,
}

impl Default for PoolCfg {
    fn default() -> Self {
        PoolCfg {
            capacity: 64 << 20,
            backend: Backend::Clflush,
            shadow: false,
            max_threads: crate::thread::MAX_THREADS,
            trace: false,
            lint: false,
            trace_capacity: 4096,
        }
    }
}

impl PoolCfg {
    /// Small shadowed pool with no-op persistence backend: the standard
    /// configuration for crash-model tests.
    pub fn model(capacity: usize) -> Self {
        PoolCfg {
            capacity,
            backend: Backend::Noop,
            shadow: true,
            ..Default::default()
        }
    }

    /// Performance configuration with real cache-line flushes.
    pub fn perf(capacity: usize) -> Self {
        PoolCfg {
            capacity,
            backend: Backend::Clflush,
            shadow: false,
            ..Default::default()
        }
    }
}

/// Allocates a zero-initialized `AtomicU64` slice without touching every
/// page up front (the OS maps zero pages lazily), so multi-GiB pools are
/// cheap until used.
pub(crate) fn alloc_zeroed_atomics(n: usize) -> Box<[AtomicU64]> {
    use std::alloc::{alloc_zeroed, Layout};
    let layout = Layout::array::<AtomicU64>(n).expect("pool too large");
    // SAFETY: AtomicU64 is a transparent wrapper over u64 with no drop glue;
    // the all-zero bit pattern is a valid AtomicU64. The Box takes ownership
    // of the allocation with the exact layout it was allocated with.
    unsafe {
        let ptr = alloc_zeroed(layout) as *mut AtomicU64;
        assert!(!ptr.is_null(), "pool allocation failed ({n} words)");
        Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, n))
    }
}

/// A simulated persistent main memory (see crate docs).
///
/// All methods take `&self`; a pool is shared across threads behind an
/// `Arc`. Word reads/writes/CAS are the paper's base-object primitives;
/// [`PmemPool::pwb`], [`PmemPool::pfence`] and [`PmemPool::psync`] are the
/// persistence instructions.
pub struct PmemPool {
    words: Box<[AtomicU64]>,
    next: AtomicUsize,
    backend: Backend,
    shadow: Option<ShadowMem>,
    stats: Stats,
    mask: SiteMask,
    crash_ctl: CrashCtl,
    recovery_base: usize, // first word of the per-thread recovery table
    max_threads: usize,
    trace: Trace,
    lint: FlushLint,
    /// Cached `trace.enabled() || lint.enabled()`: primitives check this one
    /// relaxed flag and only branch into the cold observation path when some
    /// observer is actually on.
    obs_on: AtomicBool,
    site_names: Mutex<[Option<&'static str>; MAX_SITES]>,
}

impl PmemPool {
    /// Creates a pool per `cfg`. Layout: line 0 reserved (null), then
    /// [`NUM_ROOTS`] root lines, then `cfg.max_threads` recovery lines,
    /// then the allocatable heap.
    pub fn new(cfg: PoolCfg) -> Self {
        let nwords = (cfg.capacity / 8)
            .next_multiple_of(WORDS_PER_LINE)
            .max((1 + NUM_ROOTS + cfg.max_threads + 16) * WORDS_PER_LINE);
        let words = alloc_zeroed_atomics(nwords);
        let recovery_base = (1 + NUM_ROOTS) * WORDS_PER_LINE;
        let heap_base = recovery_base + cfg.max_threads * WORDS_PER_LINE;
        PmemPool {
            words,
            next: AtomicUsize::new(heap_base),
            backend: cfg.backend,
            shadow: if cfg.shadow {
                Some(ShadowMem::new(nwords))
            } else {
                None
            },
            stats: Stats::new(),
            mask: SiteMask::all_on(),
            crash_ctl: CrashCtl::new(),
            recovery_base,
            max_threads: cfg.max_threads,
            trace: Trace::new(cfg.trace_capacity, cfg.trace),
            lint: FlushLint::new(cfg.lint),
            obs_on: AtomicBool::new(cfg.trace || cfg.lint),
            site_names: Mutex::new([None; MAX_SITES]),
        }
    }

    /// Address of root cell `i` (data-structure entry points). Each root
    /// occupies its own cache line.
    pub fn root(&self, i: usize) -> PAddr {
        assert!(i < NUM_ROOTS, "root index out of range");
        PAddr(((1 + i) * WORDS_PER_LINE) as u64)
    }

    /// Address of thread `tid`'s recovery line (`CP_q` at word 0, `RD_q` at
    /// word 1; the rest of the line is padding against false sharing).
    pub fn recovery_line(&self, tid: usize) -> PAddr {
        assert!(
            tid < self.max_threads,
            "tid {tid} >= max_threads {}",
            self.max_threads
        );
        PAddr((self.recovery_base + tid * WORDS_PER_LINE) as u64)
    }

    /// Number of recovery slots reserved at construction.
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Line-aligned bump allocation of `nlines` cache lines; the memory is
    /// zeroed. Returns `None` when the pool is exhausted.
    ///
    /// Memory is never recycled — the arena stands in for the garbage
    /// collector the paper assumes (see crate docs), which also rules out
    /// ABA from address reuse. The bump pointer lives outside pmem but is
    /// monotone, which is equivalent to persisting the watermark on every
    /// allocation.
    pub fn try_alloc_lines(&self, nlines: usize) -> Option<PAddr> {
        let need = nlines * WORDS_PER_LINE;
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            if cur + need > self.words.len() {
                return None;
            }
            match self.next.compare_exchange_weak(
                cur,
                cur + need,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(PAddr(cur as u64)),
                Err(c) => cur = c,
            }
        }
    }

    /// Like [`Self::try_alloc_lines`] but panics on exhaustion with an
    /// actionable message.
    pub fn alloc_lines(&self, nlines: usize) -> PAddr {
        self.try_alloc_lines(nlines).unwrap_or_else(|| {
            panic!(
                "pmem pool exhausted ({} words): increase PoolCfg.capacity or shorten the run",
                self.words.len()
            )
        })
    }

    /// Cache lines still available for allocation.
    pub fn remaining_lines(&self) -> usize {
        (self.words.len() - self.next.load(Ordering::Relaxed).min(self.words.len()))
            / WORDS_PER_LINE
    }

    // ------------------------------------------------------------------
    // Word primitives (read / write / CAS)
    // ------------------------------------------------------------------

    /// Atomic read of a word (acquire).
    #[inline]
    pub fn load(&self, a: PAddr) -> u64 {
        self.crash_ctl.tick();
        let v = self.words[a.word()].load(Ordering::Acquire);
        if self.observing() {
            self.observe_load(a);
        }
        v
    }

    /// Atomic write of a word (release). Under TSO (x86) writes become
    /// visible in program order, matching the paper's model.
    #[inline]
    pub fn store(&self, a: PAddr, v: u64) {
        self.store_raw(a, v, NO_SITE);
    }

    /// [`Self::store`] attributed to a call site, so trace events and lint
    /// findings about the written line name the code that dirtied it.
    ///
    /// ```
    /// use pmem::{EventKind, PmemPool, PoolCfg, SiteId};
    /// let pool = PmemPool::new(PoolCfg { trace: true, ..PoolCfg::model(1 << 20) });
    /// pool.register_site_names(&[(SiteId(3), "result-field")]);
    /// let a = pool.alloc_lines(1);
    /// pool.store_at(a, 9, SiteId(3));
    /// let e = pool.trace_snapshot().events[0];
    /// assert_eq!((e.kind, e.site), (EventKind::Store, 3));
    /// assert_eq!(pool.site_name(SiteId(3)), Some("result-field"));
    /// ```
    #[inline]
    pub fn store_at(&self, a: PAddr, v: u64, site: SiteId) {
        self.store_raw(a, v, site.0);
    }

    #[inline]
    fn store_raw(&self, a: PAddr, v: u64, site: u8) {
        self.crash_ctl.tick();
        self.words[a.word()].store(v, Ordering::Release);
        if self.observing() {
            self.observe_write(a, EventKind::Store, site);
        }
    }

    /// Atomic compare-and-swap. Returns `Ok(old)` on success and `Err(seen)`
    /// on failure. On x86 this compiles to `lock cmpxchg`, which serializes
    /// outstanding stores — the very effect behind the paper's finding that
    /// `psync` cost is negligible in CAS-heavy code (Section 5).
    #[inline]
    pub fn cas(&self, a: PAddr, old: u64, new: u64) -> Result<u64, u64> {
        self.cas_raw(a, old, new, NO_SITE)
    }

    /// [`Self::cas`] attributed to a call site (see [`Self::store_at`]).
    /// Failed CASes are recorded too ([`EventKind::CasFail`]) — they tick
    /// the crash countdown and appear in the trace, but write nothing.
    ///
    /// ```
    /// use pmem::{EventKind, PmemPool, PoolCfg, SiteId};
    /// let pool = PmemPool::new(PoolCfg { trace: true, ..PoolCfg::model(1 << 20) });
    /// let a = pool.alloc_lines(1);
    /// assert_eq!(pool.cas_at(a, 0, 7, SiteId(5)), Ok(0));
    /// assert_eq!(pool.cas_at(a, 0, 9, SiteId(5)), Err(7));
    /// let kinds: Vec<_> = pool.trace_snapshot().events.iter().map(|e| e.kind).collect();
    /// assert_eq!(kinds, [EventKind::Cas, EventKind::CasFail]);
    /// ```
    #[inline]
    pub fn cas_at(&self, a: PAddr, old: u64, new: u64, site: SiteId) -> Result<u64, u64> {
        self.cas_raw(a, old, new, site.0)
    }

    #[inline]
    fn cas_raw(&self, a: PAddr, old: u64, new: u64, site: u8) -> Result<u64, u64> {
        self.crash_ctl.tick();
        let r = self.words[a.word()].compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst);
        if self.observing() {
            self.observe_cas(a, new, r.is_ok(), site);
        }
        r
    }

    // ------------------------------------------------------------------
    // Persistence instructions
    // ------------------------------------------------------------------

    /// `pwb`: initiates write-back of the cache line containing `a`,
    /// attributed to call site `site`. A disabled site is a no-op that is
    /// not counted — the site's code line has been "removed" in the paper's
    /// categorization methodology.
    #[inline]
    pub fn pwb(&self, a: PAddr, site: SiteId) {
        if !self.mask.site_enabled(site) {
            return;
        }
        self.crash_ctl.tick();
        self.stats.count_pwb(site);
        match self.backend {
            Backend::Clflush => {
                let line_base = a.line() * WORDS_PER_LINE;
                persist::hw_flush(self.words[line_base..].as_ptr() as *const u8);
            }
            Backend::Delay { pwb_ns, .. } => persist::busy_wait_ns(pwb_ns),
            Backend::Noop => {}
        }
        if let Some(sh) = &self.shadow {
            sh.pwb(&self.words, a.line());
        }
        if self.observing() {
            self.observe_pwb(a, site);
        }
    }

    /// `pwb` over a `nwords`-long object: one flush per covered line.
    #[inline]
    pub fn pwb_range(&self, a: PAddr, nwords: usize, site: SiteId) {
        let first = a.line();
        let last = PAddr(a.raw() + nwords.max(1) as u64 - 1).line();
        for line in first..=last {
            self.pwb(PAddr((line * WORDS_PER_LINE) as u64), site);
        }
    }

    /// `pfence`: orders preceding `pwb`s before subsequent ones. Like the
    /// paper's testbed (whose machine lacks a distinct `pfence`), it is
    /// implemented exactly as `psync`.
    #[inline]
    pub fn pfence(&self) {
        if !self.mask.psync_enabled() {
            return;
        }
        self.crash_ctl.tick();
        self.stats.count_pfence();
        self.fence_backend();
        if self.observing() {
            self.observe_fence(EventKind::Pfence);
        }
    }

    /// `psync`: waits until all preceding `pwb`s have reached persistent
    /// memory.
    #[inline]
    pub fn psync(&self) {
        if !self.mask.psync_enabled() {
            return;
        }
        self.crash_ctl.tick();
        self.stats.count_psync();
        self.fence_backend();
        if self.observing() {
            self.observe_fence(EventKind::Psync);
        }
    }

    #[inline]
    fn fence_backend(&self) {
        match self.backend {
            Backend::Clflush => persist::hw_sfence(),
            Backend::Delay { psync_ns, .. } => persist::busy_wait_ns(psync_ns),
            Backend::Noop => {}
        }
        if let Some(sh) = &self.shadow {
            sh.psync();
        }
    }

    /// `pbarrier(x)`: flush an `nwords` object and fence — the paper's
    /// shorthand for "these pwbs are ordered before whatever follows"
    /// (Algorithm 1 lines 3 and 19).
    #[inline]
    pub fn pbarrier(&self, a: PAddr, nwords: usize, site: SiteId) {
        self.pwb_range(a, nwords, site);
        self.pfence();
    }

    // ------------------------------------------------------------------
    // Instrumentation control
    // ------------------------------------------------------------------

    /// Enables/disables one `pwb` call site.
    pub fn set_site_enabled(&self, site: SiteId, on: bool) {
        self.mask.set_site(site, on);
    }

    /// Replaces the whole site mask (bit *i* = site *i* enabled).
    pub fn set_sites_mask(&self, mask: u64) {
        self.mask.set_mask(mask);
    }

    /// Current site mask.
    pub fn sites_mask(&self) -> u64 {
        self.mask.mask()
    }

    /// Enables/disables `psync`/`pfence` (the paper's "no psyncs" variants,
    /// Figures 3c/4c).
    pub fn set_psync_enabled(&self, on: bool) {
        self.mask.set_psync(on);
    }

    /// Snapshot of the persistence-instruction counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Zeroes the persistence-instruction counters.
    pub fn stats_reset(&self) {
        self.stats.reset();
    }

    /// Crash-injection controls (see [`CrashCtl`]).
    pub fn crash_ctl(&self) -> &CrashCtl {
        &self.crash_ctl
    }

    // ------------------------------------------------------------------
    // Observation: persistence-event trace + flush lint
    // ------------------------------------------------------------------

    /// Is any observer (trace or lint) on? One relaxed load on the hot path.
    #[inline]
    fn observing(&self) -> bool {
        self.obs_on.load(Ordering::Relaxed)
    }

    fn refresh_obs(&self) {
        self.obs_on.store(
            self.trace.enabled() || self.lint.enabled(),
            Ordering::SeqCst,
        );
    }

    /// Enables/disables the persistence-event trace (see [`crate::trace`]).
    pub fn set_trace_enabled(&self, on: bool) {
        self.trace.set_enabled(on);
        self.refresh_obs();
    }

    /// Is the trace currently recording?
    pub fn trace_enabled(&self) -> bool {
        self.trace.enabled()
    }

    /// Copies out the retained trace window, merged across threads in
    /// global sequence order.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.trace.snapshot()
    }

    /// Discards all retained trace events and resets the drop counter.
    pub fn trace_clear(&self) {
        self.trace.clear();
    }

    /// Enables/disables the flush lint (see [`crate::lint`]).
    pub fn set_lint_enabled(&self, on: bool) {
        self.lint.set_enabled(on);
        self.refresh_obs();
    }

    /// Is the lint currently recording findings?
    pub fn lint_enabled(&self) -> bool {
        self.lint.enabled()
    }

    /// Copies out the lint's findings and per-site flush counters,
    /// including one ephemeral [`crate::LintKind::UnflushedDirty`] entry per
    /// line that is dirty right now.
    pub fn lint_report(&self) -> LintReport {
        self.lint.report()
    }

    /// Forgets all lint findings, counters and tracked line state.
    pub fn lint_clear(&self) {
        self.lint.clear();
    }

    /// Registers human-readable names for call sites, used by
    /// [`Self::site_name`] and by report rendering. Algorithm crates call
    /// this from their constructors with their `sites` table; later
    /// registrations overwrite earlier ones per site.
    pub fn register_site_names(&self, names: &[(SiteId, &'static str)]) {
        let mut tbl = self
            .site_names
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for (site, name) in names {
            tbl[site.idx()] = Some(name);
        }
    }

    /// The registered name of `site`, if any.
    pub fn site_name(&self, site: SiteId) -> Option<&'static str> {
        self.site_names
            .lock()
            .unwrap_or_else(PoisonError::into_inner)[site.idx()]
    }

    /// Renders the current lint report with registered site names.
    pub fn lint_report_text(&self) -> String {
        self.lint_report().render(|s| {
            if s as usize >= MAX_SITES {
                None
            } else {
                self.site_name(SiteId(s))
            }
        })
    }

    #[cold]
    fn observe_load(&self, a: PAddr) {
        if self.trace.enabled() {
            let seq = self.trace.next_seq();
            let dirty = self.lint.line_dirty(a.line());
            self.trace
                .record(seq, EventKind::Load, NO_SITE, a.raw(), dirty);
        }
    }

    #[cold]
    fn observe_write(&self, a: PAddr, kind: EventKind, site: u8) {
        let seq = self.trace.next_seq();
        let dirty = self.lint.on_write(a.line(), site, trace_tid(), seq);
        if self.trace.enabled() {
            self.trace.record(seq, kind, site, a.raw(), dirty);
        }
    }

    #[cold]
    fn observe_cas(&self, a: PAddr, new: u64, success: bool, site: u8) {
        let tid = trace_tid();
        let seq = self.trace.next_seq();
        let dirty = if success {
            self.lint.on_write(a.line(), site, tid, seq)
        } else {
            self.lint.line_dirty(a.line())
        };
        if self.trace.enabled() {
            let kind = if success {
                EventKind::Cas
            } else {
                EventKind::CasFail
            };
            self.trace.record(seq, kind, site, a.raw(), dirty);
        }
        if success {
            if let Some(target_line) = self.publish_target(new) {
                self.lint.on_publish(target_line, tid, seq);
            }
        }
    }

    /// Decodes a CAS'd value as a published pool pointer, if it looks like
    /// one: untagged, nonzero, line-aligned, inside the allocated heap. A
    /// heuristic — a plain integer can alias a line address — but the lint
    /// only flags targets it has independent evidence are unpersisted.
    fn publish_target(&self, new: u64) -> Option<usize> {
        let w = crate::addr::untagged(new) as usize;
        let heap_base = self.recovery_base + self.max_threads * WORDS_PER_LINE;
        if w == 0 || !w.is_multiple_of(WORDS_PER_LINE) || w < heap_base {
            return None;
        }
        if w >= self.next.load(Ordering::Relaxed) {
            return None;
        }
        Some(w / WORDS_PER_LINE)
    }

    #[cold]
    fn observe_pwb(&self, a: PAddr, site: SiteId) {
        let tid = trace_tid();
        let seq = self.trace.next_seq();
        let was_dirty = self.lint.on_pwb(a.line(), site, tid, seq);
        if self.trace.enabled() {
            self.trace
                .record(seq, EventKind::Pwb, site.0, a.raw(), was_dirty);
        }
    }

    #[cold]
    fn observe_fence(&self, kind: EventKind) {
        let seq = self.trace.next_seq();
        self.lint.on_fence();
        if self.trace.enabled() {
            self.trace.record(seq, kind, NO_SITE, 0, false);
        }
    }

    // ------------------------------------------------------------------
    // Crash model
    // ------------------------------------------------------------------

    /// Resolves a simulated system-wide crash (Model mode only): every cache
    /// line's surviving content is decided by `adversary`, volatile state is
    /// re-initialized from it, and crash injection is disarmed.
    ///
    /// Requires quiescence: all worker threads must have stopped (e.g.
    /// unwound via an injected [`crate::CrashPoint`]) before this is called.
    ///
    /// # Panics
    /// If the pool was built without `shadow` (there is no crash model to
    /// consult in Perf mode).
    pub fn crash(&self, adversary: &mut dyn CrashAdversary) {
        let sh = self
            .shadow
            .as_ref()
            .expect("PmemPool::crash requires PoolCfg.shadow = true (Model mode)");
        self.crash_ctl.disarm();
        // Only lines up to the allocation watermark can differ between the
        // volatile and persisted views.
        let nlines = self.next.load(Ordering::Relaxed).div_ceil(WORDS_PER_LINE);
        sh.crash(&self.words, adversary, nlines);
        // Lines still dirty at the crash are exactly the losses the
        // adversary could pick; record them as permanent findings and reset
        // the lint's view (volatile == persisted after resolution).
        self.lint.on_crash(self.trace.next_seq());
    }

    /// Reads the *persisted* image of a word (Model mode test introspection).
    pub fn persisted_load(&self, a: PAddr) -> u64 {
        self.shadow
            .as_ref()
            .expect("persisted_load requires Model mode")
            .persisted_load(a.word())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::PessimistAdversary;

    fn model_pool() -> PmemPool {
        PmemPool::new(PoolCfg::model(1 << 20))
    }

    #[test]
    fn layout_reserves_null_roots_recovery() {
        let p = model_pool();
        assert!(p.root(0).word() >= WORDS_PER_LINE); // line 0 reserved
        assert_eq!(p.root(1).word() - p.root(0).word(), WORDS_PER_LINE);
        let r0 = p.recovery_line(0);
        assert!(r0.word() > p.root(NUM_ROOTS - 1).word());
        let heap = p.alloc_lines(1);
        assert!(heap.word() > p.recovery_line(p.max_threads() - 1).word());
    }

    #[test]
    #[should_panic(expected = "root index")]
    fn root_bounds_checked() {
        model_pool().root(NUM_ROOTS);
    }

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        let b = p.alloc_lines(2);
        let c = p.alloc_lines(1);
        assert_eq!(a.word() % WORDS_PER_LINE, 0);
        assert_eq!(b.word(), a.word() + WORDS_PER_LINE);
        assert_eq!(c.word(), b.word() + 2 * WORDS_PER_LINE);
    }

    #[test]
    fn alloc_exhaustion_returns_none() {
        let p = PmemPool::new(PoolCfg::model(0)); // minimum-size pool
                                                  // eat everything
        while p.try_alloc_lines(1).is_some() {}
        assert!(p.try_alloc_lines(1).is_none());
        assert_eq!(p.remaining_lines(), 0);
    }

    #[test]
    fn load_store_cas_roundtrip() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        assert_eq!(p.load(a), 0); // zero-initialized
        p.store(a, 17);
        assert_eq!(p.load(a), 17);
        assert_eq!(p.cas(a, 17, 23), Ok(17));
        assert_eq!(p.load(a), 23);
        assert_eq!(p.cas(a, 17, 99), Err(23));
        assert_eq!(p.load(a), 23);
    }

    #[test]
    fn stats_count_instructions() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.pwb(a, SiteId(2));
        p.pwb(a, SiteId(2));
        p.psync();
        p.pfence();
        let s = p.stats();
        assert_eq!(s.pwb_at(SiteId(2)), 2);
        assert_eq!(s.psync, 1);
        assert_eq!(s.pfence, 1);
    }

    #[test]
    fn disabled_site_neither_flushes_nor_counts() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.store(a, 5);
        p.set_site_enabled(SiteId(1), false);
        p.pwb(a, SiteId(1));
        p.psync();
        assert_eq!(p.stats().pwb_at(SiteId(1)), 0);
        // not flushed => lost by a pessimist crash
        p.crash(&mut PessimistAdversary);
        assert_eq!(p.load(a), 0);
    }

    #[test]
    fn disabled_psync_not_counted_and_not_committed() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.store(a, 5);
        p.pwb(a, SiteId(0));
        p.set_psync_enabled(false);
        p.psync();
        assert_eq!(p.stats().psync, 0);
        p.crash(&mut PessimistAdversary);
        assert_eq!(p.load(a), 0, "psync was disabled, pwb never committed");
    }

    #[test]
    fn pwb_psync_makes_word_durable() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.store(a, 5);
        p.pwb(a, SiteId(0));
        p.psync();
        p.crash(&mut PessimistAdversary);
        assert_eq!(p.load(a), 5);
        assert_eq!(p.persisted_load(a), 5);
    }

    #[test]
    fn pwb_range_covers_multi_line_objects() {
        let p = model_pool();
        let a = p.alloc_lines(2); // 16-word object
        for i in 0..16 {
            p.store(a.add(i), i + 1);
        }
        p.pwb_range(a, 16, SiteId(0));
        p.psync();
        p.crash(&mut PessimistAdversary);
        for i in 0..16 {
            assert_eq!(p.load(a.add(i)), i + 1);
        }
        assert_eq!(p.stats().pwb_at(SiteId(0)), 2); // two lines, two pwbs
    }

    #[test]
    fn pbarrier_is_pwb_plus_fence() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.store(a, 9);
        p.pbarrier(a, 1, SiteId(3));
        let s = p.stats();
        assert_eq!(s.pwb_at(SiteId(3)), 1);
        assert_eq!(s.pfence, 1);
        p.crash(&mut PessimistAdversary);
        assert_eq!(p.load(a), 9);
    }

    #[test]
    fn crash_injection_stops_mid_sequence() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.crash_ctl().arm_after(2); // two events survive, third crashes
        let done = crate::crash::run_crashable(|| {
            p.store(a, 1); // event 0
            p.pwb(a, SiteId(0)); // event 1
            p.psync(); // event 2 -> crash before completing
            true
        });
        assert_eq!(done, None);
        p.crash(&mut PessimistAdversary);
        // The pwb was issued but never synced; pessimist drops it.
        assert_eq!(p.load(a), 0);
    }

    #[test]
    fn perf_mode_pool_smoke() {
        let p = PmemPool::new(PoolCfg::perf(1 << 20));
        let a = p.alloc_lines(1);
        p.store(a, 7);
        p.pwb(a, SiteId(0)); // real clflush on x86-64
        p.psync(); // real sfence
        assert_eq!(p.load(a), 7);
        assert_eq!(p.stats().pwb_total(), 1);
    }

    #[test]
    fn delay_backend_injects_latency() {
        let p = PmemPool::new(PoolCfg {
            capacity: 1 << 20,
            backend: Backend::Delay {
                pwb_ns: 200_000,
                psync_ns: 0,
            },
            shadow: false,
            ..Default::default()
        });
        let a = p.alloc_lines(1);
        let t = std::time::Instant::now();
        p.pwb(a, SiteId(0));
        assert!(t.elapsed().as_nanos() >= 200_000);
    }

    #[test]
    fn trace_records_pool_events_in_order() {
        let p = PmemPool::new(PoolCfg {
            trace: true,
            ..PoolCfg::model(1 << 20)
        });
        let a = p.alloc_lines(1);
        p.store_at(a, 7, SiteId(4));
        p.pwb(a, SiteId(4));
        p.psync();
        p.load(a);
        let snap = p.trace_snapshot();
        let kinds: Vec<crate::EventKind> = snap.events.iter().map(|e| e.kind).collect();
        use crate::EventKind::*;
        assert_eq!(kinds, vec![Store, Pwb, Psync, Load]);
        assert_eq!(snap.events[0].site, 4);
        assert!(snap.events[0].dirty, "store dirties its line");
        assert!(snap.events[1].dirty, "pwb found the line dirty");
        assert!(!snap.events[3].dirty, "after psync the line is clean");
        assert_eq!(snap.events[0].line, a.line());
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn trace_disabled_records_nothing() {
        let p = model_pool();
        let a = p.alloc_lines(1);
        p.store(a, 1);
        p.pwb(a, SiteId(0));
        assert!(p.trace_snapshot().events.is_empty());
        p.set_trace_enabled(true);
        p.store(a, 2);
        assert_eq!(p.trace_snapshot().events.len(), 1);
    }

    #[test]
    fn lint_flags_seeded_redundant_pwb_at_its_site() {
        let p = PmemPool::new(PoolCfg {
            lint: true,
            ..PoolCfg::model(1 << 20)
        });
        let a = p.alloc_lines(1);
        p.store(a, 1);
        p.pwb(a, SiteId(2)); // useful
        p.pwb(a, SiteId(9)); // redundant: nothing stored in between
        p.psync();
        let r = p.lint_report();
        assert_eq!(r.count(crate::LintKind::RedundantPwb), 1);
        let d = r.of_kind(crate::LintKind::RedundantPwb).next().unwrap();
        assert_eq!(d.site, 9, "flagged at the redundant flush's site");
        assert_eq!(d.line, a.line());
        assert_eq!(r.pwb_dirty[2], 1);
        assert_eq!(r.pwb_redundant[9], 1);
    }

    #[test]
    fn lint_flags_seeded_missing_pwb_at_store_site() {
        let p = PmemPool::new(PoolCfg {
            lint: true,
            ..PoolCfg::model(1 << 20)
        });
        let a = p.alloc_lines(2);
        let b = a.add(WORDS_PER_LINE as u64);
        p.store_at(a, 1, SiteId(3));
        p.store_at(b, 2, SiteId(7)); // never flushed
        p.pwb(a, SiteId(3));
        p.psync();
        let r = p.lint_report();
        assert_eq!(r.count(crate::LintKind::UnflushedDirty), 1);
        let d = r.of_kind(crate::LintKind::UnflushedDirty).next().unwrap();
        assert_eq!(
            d.site, 7,
            "attributed to the store that dirtied the lost line"
        );
        assert_eq!(d.line, b.line());
        // ... and a pessimist crash indeed loses exactly that line
        p.crash(&mut PessimistAdversary);
        assert_eq!(p.load(a), 1);
        assert_eq!(p.load(b), 0);
    }

    #[test]
    fn lint_flags_publish_of_unflushed_node() {
        let p = PmemPool::new(PoolCfg {
            lint: true,
            ..PoolCfg::model(1 << 20)
        });
        let node = p.alloc_lines(1);
        let link = p.alloc_lines(1);
        p.store_at(node, 42, SiteId(1)); // node content, never pbarrier'd
        p.cas(link, 0, node.raw()).unwrap(); // publish the pointer
        let r = p.lint_report();
        assert_eq!(r.count(crate::LintKind::UnfencedPublish), 1);
        let d = r.of_kind(crate::LintKind::UnfencedPublish).next().unwrap();
        assert_eq!(d.line, node.line());
        assert_eq!(d.site, 1, "attributed to the store that dirtied the node");
    }

    #[test]
    fn lint_clean_publish_after_pbarrier() {
        let p = PmemPool::new(PoolCfg {
            lint: true,
            ..PoolCfg::model(1 << 20)
        });
        let node = p.alloc_lines(1);
        let link = p.alloc_lines(1);
        p.store_at(node, 42, SiteId(1));
        p.pbarrier(node, 1, SiteId(1)); // flush + fence before publishing
        p.cas(link, 0, node.raw()).unwrap();
        p.pwb(link, SiteId(2));
        p.psync();
        let r = p.lint_report();
        assert!(
            r.count(crate::LintKind::UnfencedPublish) == 0
                && r.count(crate::LintKind::RedundantPwb) == 0,
            "{:?}",
            r.diags
        );
    }

    #[test]
    fn lint_crash_records_losses_permanently() {
        let p = PmemPool::new(PoolCfg {
            lint: true,
            ..PoolCfg::model(1 << 20)
        });
        let a = p.alloc_lines(1);
        p.store_at(a, 5, SiteId(6));
        p.crash(&mut PessimistAdversary);
        let r = p.lint_report();
        assert_eq!(r.count(crate::LintKind::UnflushedDirty), 1);
        assert_eq!(
            r.of_kind(crate::LintKind::UnflushedDirty)
                .next()
                .unwrap()
                .site,
            6
        );
        // post-crash the views agree; a fresh cycle reports nothing new
        p.store(a, 9);
        p.pwb(a, SiteId(0));
        p.psync();
        assert_eq!(p.lint_report().diags.len(), 1);
    }

    #[test]
    fn site_names_register_and_render() {
        let p = model_pool();
        p.register_site_names(&[(SiteId(2), "new-node"), (SiteId(3), "result")]);
        assert_eq!(p.site_name(SiteId(2)), Some("new-node"));
        assert_eq!(p.site_name(SiteId(0)), None);
        p.set_lint_enabled(true);
        let a = p.alloc_lines(1);
        p.store(a, 1);
        p.pwb(a, SiteId(2));
        p.pwb(a, SiteId(2));
        let text = p.lint_report_text();
        assert!(text.contains("redundant-pwb"), "{text}");
        assert!(text.contains("site 2 (new-node)"), "{text}");
    }

    #[test]
    fn concurrent_allocation_is_disjoint() {
        let p = std::sync::Arc::new(model_pool());
        let mut handles = vec![];
        for _ in 0..4 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|_| p.alloc_lines(1).word())
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400, "allocations overlapped");
    }
}
