//! # pmem — a simulated byte-addressable persistent main memory
//!
//! This crate is the hardware substrate for the PPoPP '22 paper
//! *Detectable Recovery of Lock-Free Data Structures* (Attiya, Ben-Baruch,
//! Fatourou, Hendler, Kosmas). The paper's algorithms run on Intel Optane
//! DCPMM with explicit epoch persistency: volatile caches, persistent main
//! memory, and three persistence instructions:
//!
//! * **`pwb(x)`** — *persistent write-back*: initiates the write-back of the
//!   cache line holding `x`. Write-backs of different lines may reorder.
//! * **`pfence`** — orders preceding `pwb`s before subsequent `pwb`s.
//! * **`psync`** — waits until all preceding `pwb`s have reached persistent
//!   memory.
//!
//! We do not have NVMM hardware, so [`PmemPool`] simulates it over DRAM with
//! two orthogonal facilities, selectable per pool via [`PoolCfg`]:
//!
//! 1. **Performance backend** ([`Backend`]): in [`Backend::Clflush`] mode a
//!    `pwb` issues a real `clflush` on the backing cache line and
//!    `psync`/`pfence` issue a real `sfence`. Flushing DRAM cache lines
//!    reproduces the *mechanism* behind the paper's persistence-cost
//!    analysis — a flush of a contended shared line causes coherence misses
//!    and is expensive, a flush of a thread-private line is cheap — which is
//!    exactly the low/medium/high categorization of Figures 3e–f, 4e–f, 5
//!    and 6. [`Backend::Delay`] injects calibrated latencies instead (for
//!    non-x86 hosts), and [`Backend::Noop`] turns persistence instructions
//!    into pure counters.
//! 2. **Crash model** (the `shadow` module, enabled with
//!    [`PoolCfg::shadow`]): every cache line keeps a *persisted* image and an
//!    optional *pwb-pending* snapshot. A simulated crash
//!    ([`PmemPool::crash`]) resolves each line — via a pluggable
//!    [`shadow::CrashAdversary`] — to its persisted, pending, or current
//!    volatile content, modeling loss of non-written-back lines as well as
//!    spontaneous cache evictions. Crash *injection* ([`crash::CrashCtl`])
//!    panics a thread at the N-th instrumented memory event so tests can
//!    crash an operation at every single step and exercise its recovery
//!    function.
//!
//! Persistence instructions are *instrumented per call site* ([`SiteId`]):
//! each `pwb` in an algorithm names the code line it came from, the pool
//! counts executions per site, and sites can be enabled or disabled at run
//! time. This is the instrument that regenerates the paper's
//! categorization experiments without rebuilding: the persistence-free
//! version is "all sites masked", Figure 3e enables one site at a time, and
//! Figures 3f/5/6 add or remove whole categories.
//!
//! ## Memory layout
//!
//! A pool is a flat array of 64-bit words grouped into 64-byte lines (8
//! words). [`PAddr`] is a word index; `PAddr::NULL` (word 0) is reserved.
//! Words 8..8+[`NUM_ROOTS`] form a root directory for data-structure entry
//! points, followed by a per-thread recovery table (one line per thread
//! holding the paper's `CP_q` and `RD_q` variables — see [`ThreadCtx`]).
//! All allocations are line-aligned. By default they are pure bump
//! allocations and memory is never recycled during a run, mirroring the
//! paper's reliance on a garbage collector (their §7 leaves recoverable
//! memory management to future work) and discharging ABA concerns by
//! construction. A pool built with [`PoolCfg::reclaim`] layers the
//! recoverable free-list allocator of the [`palloc`] module on top:
//! retired blocks park on per-thread limbo lists and are re-issued only
//! after an epoch quiescence, which preserves the no-reuse-inside-an-
//! operation-window property the ABA arguments actually need.
//!
//! ## The crash-inject → recover loop
//!
//! The idiom every crash test (and the `crashsweep` harness) is built on:
//! count the instrumented events of a workload once, then replay it once
//! per crash point, resolving the crash and checking the recovered state.
//! Here the "algorithm" is a two-word persist-before-publish protocol and
//! the invariant is that a published flag implies the payload survived:
//!
//! ```
//! use pmem::{PmemPool, PoolCfg, PessimistAdversary, SiteId, run_crashable};
//!
//! let publish = |pool: &PmemPool| {
//!     let data = pool.root(0);
//!     let flag = pool.root(1);
//!     pool.store_at(data, 42, SiteId(1));
//!     pool.pwb(data, SiteId(1));
//!     pool.pfence(); // order the payload before the flag...
//!     pool.store_at(flag, 1, SiteId(2));
//!     pool.pwb(flag, SiteId(2));
//!     pool.psync(); // ...and make the flag durable before returning
//! };
//!
//! // 1. Count the workload's instrumented events with the trace.
//! let pool = PmemPool::new(PoolCfg { trace: true, ..PoolCfg::model(1 << 20) });
//! publish(&pool);
//! let snap = pool.trace_snapshot();
//! let n = snap.events.len() as u64 + snap.dropped;
//!
//! // 2. Replay once per crash point k; event k panics with a CrashPoint.
//! for k in 0..n {
//!     let pool = PmemPool::new(PoolCfg::model(1 << 20));
//!     pool.crash_ctl().arm_after(k);
//!     assert!(run_crashable(|| publish(&pool)).is_none(), "crash point {k} must fire");
//!     // 3. Resolve the crash under maximal loss, then check recovery:
//!     //    the flag may only be durable if the payload is.
//!     pool.crash(&mut PessimistAdversary);
//!     if pool.load(pool.root(1)) == 1 {
//!         assert_eq!(pool.load(pool.root(0)), 42, "flag published but payload lost");
//!     }
//! }
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod arena;
pub mod crash;
mod epoch;
pub mod flushopt;
pub mod lint;
pub mod palloc;
pub mod persist;
pub mod pool;
pub mod sched;
pub mod shadow;
pub mod stats;
pub mod thread;
pub mod trace;

pub use addr::{is_tagged, tagged, untagged, PAddr, WORDS_PER_LINE};
pub use arena::{install_thread_arena, uninstall_thread_arena, SubArena, DEFAULT_CHUNK_LINES};
pub use crash::{run_crashable, CrashCtl, CrashPoint};
pub use lint::{Diagnostic, LintKind, LintReport};
pub use palloc::{MAX_CLASS, PALLOC_SITES};
pub use persist::{Backend, SiteId, MAX_SITES};
pub use pool::{
    exhaustion_message, FenceRegionGuard, PmemPool, PoolCfg, PoolSnapshot, EXHAUSTED_PREFIX,
    NUM_ROOTS,
};
pub use sched::{
    clear_spin_hook, clear_yield_hook, has_spin_hook, has_yield_hook, set_spin_hook,
    set_yield_hook, yield_spin,
};
pub use shadow::{
    CrashAdversary, CrashChoice, OptimistAdversary, PessimistAdversary, SeededAdversary,
};
pub use stats::StatsSnapshot;
pub use thread::{ThreadCtx, MAX_THREADS};
pub use trace::{Event, EventKind, TraceSnapshot, NO_SITE};
