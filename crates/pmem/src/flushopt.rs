//! `FlushOpt`: the per-thread flush-elision and coalescing layer.
//!
//! The lint's per-site attribution (PR 1) showed where the paper's
//! competitors burn their persistence budget: Capsules' Full-persist list
//! flushes-and-fences every node it *traverses* (~50 `pwb`/op, nearly all
//! of lines that are already durable), and several algorithms re-flush the
//! same line more than once between two fences. NVTraverse and FliT both
//! make the same observation — a flush of a line that has not been stored
//! to since it was last written back is a no-op the hardware still
//! charges for. This module makes that a no-op the *substrate* recognizes,
//! behind [`crate::PoolCfg::flushopt`], with three cooperating pieces:
//!
//! 1. **Per-line flush state** (`FlushOpt::pwb_decision`): one packed
//!    atomic word per pool cache line tracking *unknown → dirty → flushed
//!    → (effectively) clean*, alongside the lint's table but independent
//!    of it — the lint is an observer that must stay truthful about what
//!    actually executed, while this table *changes* what executes. A `pwb`
//!    of a line that is flushed-since-its-last-store elides entirely: one
//!    relaxed load, no crash tick, no trace event, no shadow mutation —
//!    only the [`crate::StatsSnapshot::pwb_elided_per_site`] counter.
//! 2. **A per-thread write-combining buffer** (FliT-style small fixed
//!    array, `BUF_CAP` entries): a `pwb` of a still-dirty line is not
//!    executed on the spot but parked, deduplicated by line, and drained
//!    at the next real `pfence`/`psync` — so N same-line flushes between
//!    two fences cost one executed `pwb`. Overflow falls back to immediate
//!    execution, so the buffer is a bounded optimization, never a queue
//!    that can grow.
//! 3. **Fence-coalescible regions** ([`crate::PmemPool::coalesce_fences`]):
//!    algorithms mark scopes (Capsules' traverse, Tracking's help-engine
//!    read phases) where a `pfence`/`psync` that has *nothing to commit* —
//!    no buffered `pwb`s anywhere and no executed-but-unfenced `pwb`s —
//!    may elide too, counted in
//!    [`crate::StatsSnapshot::psync_coalesced`].
//!
//! ## Why elision is sound under the shadow crash model
//!
//! See DESIGN.md ("Flush elision") for the full argument; the shape:
//!
//! * A line is *effectively clean* when a `pwb` covered its latest store
//!   and a fence has completed since: volatile and persisted images agree,
//!   so a further `pwb` + commit of it is the identity on every crash
//!   image the adversary can choose. Eliding it removes nothing.
//! * A line is *flushed* when a `pwb` covered its latest store but no
//!   fence has yet: the shadow model already holds the pending snapshot,
//!   and since no store intervened (a store flips the state back to
//!   dirty), a second `pwb` would snapshot identical bytes. Eliding it
//!   leaves the same pending set.
//! * *Deferring* a dirty line's `pwb` to the draining fence only shrinks
//!   the adversary's menu: between defer and drain the line simply stays
//!   dirty, so the adversary chooses between the old persisted image and
//!   the volatile one — both already choices of the un-elided execution
//!   (which merely adds the mid-point snapshot as a third option).
//!   Crucially the *lint* stays truthful: a deferred `pwb` reports
//!   `FlushLint::on_pwb` only when it actually drains, so a
//!   crash before the drain still flags the line as unflushed-dirty.
//! * A fence elides only when there is *globally* nothing to commit. The
//!   shadow model documents `psync` as committing every pending line
//!   process-wide (its deliberate strengthening over per-thread sfence),
//!   so "nothing pending anywhere" — zero executed-but-unfenced `pwb`s
//!   and an empty combining buffer — makes the fence the identity.
//!
//! The cross-check is live, not just argued: when the pool elides a `pwb`
//! whose line the *lint* believes is dirty, the lint records a
//! [`crate::LintKind::ElidedDirtyPwb`] violation (see
//! `FlushLint::on_elided_pwb`). Every flushopt-enabled
//! verification matrix runs with that tripwire armed.
//!
//! ## Determinism
//!
//! The sweep and explorer engines require the instrumented event stream to
//! be a pure function of (config, seed, schedule). Elision and deferral
//! decisions are pure functions of this table's state, which is itself
//! driven only by instrumented events — so the optimized stream is
//! deterministic too, and the whole table (line states, fence epoch,
//! unfenced count, buffered entries) exports into
//! [`crate::PoolSnapshot`] and re-imports on restore so checkpointed
//! replays decide identically to from-scratch ones. `crash()` resets
//! everything to *unknown* (post-crash, volatile and persisted images
//! agree, but recovery code must re-earn its elisions).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

// ---- packed per-line word -------------------------------------------------
// bits 0..2   status (0 = unknown, 1 = dirty, 2 = flushed, 3 = clean)
// bits 32..64 fence epoch recorded by the covering pwb (Flushed only)

const FO_UNKNOWN: u64 = 0;
const FO_DIRTY: u64 = 1;
const FO_FLUSHED: u64 = 2;
const FO_CLEAN: u64 = 3;

const FO_EPOCH_MASK: u64 = 0xffff_ffff;

fn pack(status: u64, epoch: u64) -> u64 {
    status | (epoch & FO_EPOCH_MASK) << 32
}

fn status_of(m: u64) -> u64 {
    m & 0x3
}

fn epoch_of(m: u64) -> u64 {
    m >> 32
}

/// The status a line word reads as under the current fence epoch: a
/// `Flushed` line whose recorded epoch the global counter has moved past
/// was committed by that fence — effectively clean (same scheme as the
/// lint's O(1) fences).
fn eff_status(m: u64, epoch: u64) -> u64 {
    let st = status_of(m);
    if st == FO_FLUSHED && epoch_of(m) != (epoch & FO_EPOCH_MASK) {
        FO_CLEAN
    } else {
        st
    }
}

/// Write-combining buffer capacity per thread slot. FliT uses a handful of
/// entries; between two fences the paper's algorithms touch at most a few
/// distinct dirty lines, so 8 keeps the dedup scan trivially cheap while
/// still catching every same-line repeat.
pub(crate) const BUF_CAP: usize = 8;

/// Thread slots for the combining buffers, mirroring the trace's ring
/// count. Slots are indexed by `trace_tid() % N_SLOTS`; a collision (more
/// live threads than slots) merely shares a buffer, which is sound — any
/// real fence drains every occupied slot — just less private.
const N_SLOTS: usize = 64;

/// One thread's combining buffer: a fixed array of deferred
/// `(line, site)` pairs in arrival order.
#[derive(Copy, Clone)]
struct SlotBuf {
    entries: [(usize, u8); BUF_CAP],
    len: usize,
}

impl SlotBuf {
    const EMPTY: SlotBuf = SlotBuf {
        entries: [(0, 0); BUF_CAP],
        len: 0,
    };
}

#[repr(align(64))]
struct FlushSlot {
    buf: Mutex<SlotBuf>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Poison-tolerant, like the lint: injected CrashPoint panics never
    // unwind while a flushopt lock is held, but a foreign panic must not
    // wedge the layer.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What `FlushOpt::pwb_decision` told the pool to do with a `pwb`.
pub(crate) enum FlushDecision {
    /// Run the real flush path; `pre` is the pre-read line word for the
    /// post-execution [`FlushOpt::note_real_pwb`] transition.
    Execute { pre: u64 },
    /// Line already flushed since its last store (or fully clean): skip
    /// everything. The caller cross-checks this against the lint.
    Elide,
    /// Line parked in the combining buffer; the draining fence will run it.
    Deferred,
    /// An identical deferred flush is already buffered: this one folds
    /// into it (counted as elided, but *not* lint-cross-checked — the line
    /// is genuinely dirty and the queued entry covers it).
    Coalesced,
}

thread_local! {
    /// Fence-coalescible region depth per (pool, thread): a tiny linear
    /// map keyed by the pool's flushopt id, because one thread can drive
    /// several pools (the test suite does constantly).
    static REGIONS: RefCell<Vec<(u64, u32)>> = const { RefCell::new(Vec::new()) };
}

static NEXT_FLUSHOPT_ID: AtomicU64 = AtomicU64::new(1);

/// The live elision layer owned by a pool (see module docs). Allocated
/// unconditionally (the tables are lazily zero-mapped, like the lint's);
/// consulted only when [`crate::epoch::EP_FLUSHOPT`] is set.
pub(crate) struct FlushOpt {
    /// Process-unique id keying the thread-local region-depth map.
    id: u64,
    /// Packed per-line state (see the bit layout above); index = cache
    /// line.
    meta: Box<[AtomicU64]>,
    /// Global fence counter; bumped by every *real* fence (the O(1)
    /// commit, same scheme as the lint's).
    fence_epoch: AtomicU64,
    /// Executed-but-unfenced `pwb`s: pending snapshots the next real
    /// fence must commit. A fence may only elide at zero.
    unfenced: AtomicU64,
    /// Deferred entries across all slots. Lets the fence's drain and the
    /// elidability check skip the slot scan entirely when nothing is
    /// buffered (the common case).
    deferred: AtomicUsize,
    /// Bit `i` set while `slots[i]` is non-empty; the drain scans only
    /// set bits.
    occupied: AtomicU64,
    slots: Box<[FlushSlot]>,
    /// Every line ever touched since the last reset, in first-touch order
    /// (cold path: pushed once per line), so export/reset iterate touched
    /// lines instead of the whole table.
    journal: Mutex<Vec<usize>>,
}

/// Exported flushopt state, carried by [`crate::PoolSnapshot`]. Statuses
/// are materialized under the capture-time fence epoch; import re-anchors
/// them to the importer's epoch.
#[derive(Clone, Debug)]
pub(crate) struct FlushOptSnap {
    /// `(line, effective status)` for every tracked line, ascending.
    lines: Vec<(usize, u64)>,
    /// Executed-but-unfenced `pwb` count at capture time.
    unfenced: u64,
    /// Deferred `(line, site)` entries in drain order.
    deferred: Vec<(usize, u8)>,
}

impl FlushOpt {
    pub(crate) fn new(nlines: usize) -> Self {
        FlushOpt {
            id: NEXT_FLUSHOPT_ID.fetch_add(1, Ordering::Relaxed),
            meta: crate::pool::alloc_zeroed_atomics(nlines),
            fence_epoch: AtomicU64::new(0),
            unfenced: AtomicU64::new(0),
            deferred: AtomicUsize::new(0),
            occupied: AtomicU64::new(0),
            slots: (0..N_SLOTS)
                .map(|_| FlushSlot {
                    buf: Mutex::new(SlotBuf::EMPTY),
                })
                .collect(),
            journal: Mutex::new(Vec::new()),
        }
    }

    /// First touch of `line`: adds it to the journal.
    fn journal_push(&self, line: usize) {
        lock(&self.journal).push(line);
    }

    /// A store (or successful CAS) wrote `line`: the line is dirty again
    /// and must not elide until re-flushed.
    #[inline]
    pub(crate) fn on_store(&self, line: usize) {
        let Some(m) = self.meta.get(line) else {
            return;
        };
        let mut cur = m.load(Ordering::Relaxed);
        loop {
            if status_of(cur) == FO_DIRTY {
                return;
            }
            match m.compare_exchange_weak(
                cur,
                pack(FO_DIRTY, 0),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(prev) => {
                    if status_of(prev) == FO_UNKNOWN {
                        self.journal_push(line);
                    }
                    return;
                }
                Err(v) => cur = v,
            }
        }
    }

    /// Decides the fate of a `pwb` of `line` issued by the current thread
    /// at `site`. Called on the slow path *before* the crash tick, so
    /// elided/deferred flushes are invisible to crash-point enumeration
    /// (exactly like masked sites).
    pub(crate) fn pwb_decision(&self, line: usize, site: u8) -> FlushDecision {
        let Some(m) = self.meta.get(line) else {
            return FlushDecision::Execute { pre: 0 };
        };
        let cur = m.load(Ordering::Relaxed);
        let epoch = self.fence_epoch.load(Ordering::Relaxed);
        match eff_status(cur, epoch) {
            // Flushed since its last store: a re-flush would snapshot the
            // identical bytes (flushed) or be the identity (clean).
            FO_FLUSHED | FO_CLEAN => FlushDecision::Elide,
            // Dirty or unknown: park it in the combining buffer.
            _ => {
                let slot = &self.slots[crate::trace::trace_tid() % N_SLOTS];
                let mut buf = lock(&slot.buf);
                if buf.entries[..buf.len].iter().any(|&(l, _)| l == line) {
                    return FlushDecision::Coalesced;
                }
                if buf.len == BUF_CAP {
                    // Full: execute this one for real, keep the buffer.
                    return FlushDecision::Execute { pre: cur };
                }
                let n = buf.len;
                buf.entries[n] = (line, site);
                buf.len = n + 1;
                // Bookkeeping happens under the slot lock so a concurrent
                // drain can never observe the entry without the counter
                // (which would transiently underflow `deferred`).
                if n == 0 {
                    self.occupied.fetch_or(
                        1 << (crate::trace::trace_tid() % N_SLOTS),
                        Ordering::Relaxed,
                    );
                }
                self.deferred.fetch_add(1, Ordering::Relaxed);
                FlushDecision::Deferred
            }
        }
    }

    /// Records the commit obligation of a real `pwb` *about to* execute.
    /// Called before the flush path runs so a concurrently-elided fence in
    /// another thread can never slip between the snapshot becoming pending
    /// and the obligation becoming visible. (If the execution then crashes
    /// or unwinds, the over-count merely blocks elision until the next
    /// real fence — conservative, never unsound.)
    pub(crate) fn obligate(&self) {
        self.unfenced.fetch_add(1, Ordering::Relaxed);
    }

    /// A real `pwb` of `line` just executed (immediately or from a drain);
    /// `pre` is the word `FlushOpt::pwb_decision` read. Transitions the
    /// line to `Flushed` at the current epoch. The CAS may lose to a
    /// racing store — then the line correctly stays dirty (the snapshot
    /// predates the new content).
    pub(crate) fn note_real_pwb(&self, line: usize, pre: u64) {
        let Some(m) = self.meta.get(line) else {
            return;
        };
        let epoch = self.fence_epoch.load(Ordering::Relaxed);
        if m.compare_exchange(
            pre,
            pack(FO_FLUSHED, epoch),
            Ordering::AcqRel,
            Ordering::Relaxed,
        )
        .is_ok()
            && status_of(pre) == FO_UNKNOWN
        {
            self.journal_push(line);
        }
    }

    /// The current packed word of `line` (the `pre` input of
    /// [`FlushOpt::note_real_pwb`] for a drained entry).
    pub(crate) fn line_word(&self, line: usize) -> u64 {
        self.meta.get(line).map_or(0, |m| m.load(Ordering::Relaxed))
    }

    /// May a `pfence`/`psync` issued inside a coalescible region elide?
    /// Only when there is globally nothing to commit: no deferred entries
    /// and no executed-but-unfenced `pwb`s.
    pub(crate) fn fence_elidable(&self) -> bool {
        self.in_region()
            && self.deferred.load(Ordering::Relaxed) == 0
            && self.unfenced.load(Ordering::Relaxed) == 0
    }

    /// Takes every deferred entry, across all slots, in (slot, arrival)
    /// order. The caller executes them as real `pwb`s *without holding any
    /// flushopt lock* (the execution path yields to the scheduler and may
    /// unwind on an injected crash).
    pub(crate) fn take_deferred(&self) -> Vec<(usize, u8)> {
        if self.deferred.load(Ordering::Relaxed) == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mask = self.occupied.swap(0, Ordering::Relaxed);
        for i in 0..N_SLOTS {
            if mask & (1 << i) == 0 {
                continue;
            }
            let mut buf = lock(&self.slots[i].buf);
            out.extend_from_slice(&buf.entries[..buf.len]);
            buf.len = 0;
        }
        self.deferred.fetch_sub(out.len(), Ordering::Relaxed);
        out
    }

    /// A real `pfence`/`psync` completed: every pending snapshot is
    /// committed. O(1) — bumping the epoch retires every recorded
    /// `Flushed` word at once.
    pub(crate) fn on_fence(&self) {
        self.fence_epoch.fetch_add(1, Ordering::AcqRel);
        self.unfenced.store(0, Ordering::Relaxed);
    }

    /// A simulated crash resolved: volatile and persisted images now
    /// agree, but every tracked state is discarded rather than promoted —
    /// recovery re-earns its elisions, and no pre-crash deferral survives.
    pub(crate) fn reset(&self) {
        let mut journal = lock(&self.journal);
        for &l in journal.iter() {
            self.meta[l].store(0, Ordering::Relaxed);
        }
        journal.clear();
        drop(journal);
        for s in self.slots.iter() {
            lock(&s.buf).len = 0;
        }
        self.occupied.store(0, Ordering::Relaxed);
        self.deferred.store(0, Ordering::Relaxed);
        self.unfenced.store(0, Ordering::Relaxed);
    }

    // ---- fence-coalescible regions ------------------------------------

    pub(crate) fn region_enter(&self) {
        REGIONS.with(|r| {
            let mut v = r.borrow_mut();
            match v.iter_mut().find(|(id, _)| *id == self.id) {
                Some((_, d)) => *d += 1,
                None => v.push((self.id, 1)),
            }
        });
    }

    pub(crate) fn region_exit(&self) {
        REGIONS.with(|r| {
            let mut v = r.borrow_mut();
            if let Some(i) = v.iter().position(|(id, _)| *id == self.id) {
                v[i].1 -= 1;
                if v[i].1 == 0 {
                    v.swap_remove(i);
                }
            }
        });
    }

    fn in_region(&self) -> bool {
        REGIONS.with(|r| r.borrow().iter().any(|&(id, d)| id == self.id && d > 0))
    }

    // ---- snapshot / restore -------------------------------------------

    /// Copies out the layer's state, materialized under the current fence
    /// epoch and sorted for determinism. Part of
    /// [`crate::PmemPool::snapshot`]: a replay from a restored checkpoint
    /// must make the same elide/defer/execute decisions the original
    /// timeline did.
    pub(crate) fn export_state(&self) -> FlushOptSnap {
        let epoch = self.fence_epoch.load(Ordering::Relaxed);
        let mut tracked: Vec<usize> = lock(&self.journal).clone();
        tracked.sort_unstable();
        let mut lines = Vec::with_capacity(tracked.len());
        for l in tracked {
            let st = eff_status(self.meta[l].load(Ordering::Relaxed), epoch);
            if st != FO_UNKNOWN {
                lines.push((l, st));
            }
        }
        FlushOptSnap {
            lines,
            unfenced: self.unfenced.load(Ordering::Relaxed),
            deferred: self.take_deferred_peek(),
        }
    }

    /// The deferred entries in drain order, without consuming them.
    fn take_deferred_peek(&self) -> Vec<(usize, u8)> {
        let mut out = Vec::new();
        if self.deferred.load(Ordering::Relaxed) == 0 {
            return out;
        }
        for s in self.slots.iter() {
            let buf = lock(&s.buf);
            out.extend_from_slice(&buf.entries[..buf.len]);
        }
        out
    }

    /// Replaces the layer's state with a captured snapshot. Flushed lines
    /// re-anchor to the *current* epoch (the next real fence commits
    /// them); deferred entries land in the calling thread's slot, which
    /// under the single-threaded replay engines is the thread that will
    /// drain them.
    pub(crate) fn import_state(&self, snap: &FlushOptSnap) {
        self.reset();
        let epoch = self.fence_epoch.load(Ordering::Relaxed);
        let mut journal = lock(&self.journal);
        for &(l, st) in &snap.lines {
            let word = match st {
                FO_DIRTY => pack(FO_DIRTY, 0),
                FO_FLUSHED => pack(FO_FLUSHED, epoch),
                _ => pack(FO_CLEAN, 0),
            };
            self.meta[l].store(word, Ordering::Relaxed);
            journal.push(l);
        }
        drop(journal);
        self.unfenced.store(snap.unfenced, Ordering::Relaxed);
        if !snap.deferred.is_empty() {
            let tid = crate::trace::trace_tid() % N_SLOTS;
            let mut buf = lock(&self.slots[tid].buf);
            for (i, &e) in snap.deferred.iter().take(BUF_CAP).enumerate() {
                buf.entries[i] = e;
            }
            buf.len = snap.deferred.len().min(BUF_CAP);
            let n = buf.len;
            drop(buf);
            self.occupied.fetch_or(1 << tid, Ordering::Relaxed);
            self.deferred.store(n, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fo() -> FlushOpt {
        FlushOpt::new(64)
    }

    fn decide(f: &FlushOpt, line: usize) -> FlushDecision {
        f.pwb_decision(line, 1)
    }

    /// Drains the buffer and executes every entry the way the pool does:
    /// obligate, run the flush, mark the line.
    fn drain_exec(f: &FlushOpt) {
        for (l, _) in f.take_deferred() {
            let pre = f.meta[l].load(Ordering::Relaxed);
            f.obligate();
            f.note_real_pwb(l, pre);
        }
    }

    #[test]
    fn unknown_line_defers_then_flush_elides() {
        let f = fo();
        // Unknown → parked in the buffer.
        assert!(matches!(decide(&f, 3), FlushDecision::Deferred));
        // Same line again → folds into the queued entry.
        assert!(matches!(decide(&f, 3), FlushDecision::Coalesced));
        // Drain executes it; after the real pwb + fence the line is clean.
        let d = f.take_deferred();
        assert_eq!(d, vec![(3, 1)]);
        let pre = f.meta[3].load(Ordering::Relaxed);
        f.note_real_pwb(3, pre);
        f.on_fence();
        assert!(matches!(decide(&f, 3), FlushDecision::Elide));
    }

    #[test]
    fn store_redirties_and_blocks_elision() {
        let f = fo();
        f.on_store(5);
        assert!(matches!(decide(&f, 5), FlushDecision::Deferred));
        drain_exec(&f);
        f.on_fence();
        assert!(matches!(decide(&f, 5), FlushDecision::Elide));
        f.on_store(5);
        assert!(
            matches!(decide(&f, 5), FlushDecision::Deferred),
            "a store must re-arm the flush"
        );
    }

    #[test]
    fn flushed_but_unfenced_elides_without_new_obligation() {
        let f = fo();
        f.on_store(2);
        let FlushDecision::Deferred = decide(&f, 2) else {
            panic!("expected deferral");
        };
        drain_exec(&f);
        // No fence yet: the line reads Flushed, re-flushes elide, and the
        // single obligation stays one.
        assert!(matches!(decide(&f, 2), FlushDecision::Elide));
        assert_eq!(f.unfenced.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn buffer_overflow_falls_back_to_execute() {
        let f = fo();
        for l in 0..BUF_CAP {
            assert!(matches!(decide(&f, l), FlushDecision::Deferred));
        }
        assert!(
            matches!(decide(&f, BUF_CAP), FlushDecision::Execute { .. }),
            "a full buffer must execute, not grow"
        );
        assert_eq!(f.take_deferred().len(), BUF_CAP);
    }

    #[test]
    fn fence_elidable_only_in_region_with_no_obligations() {
        let f = fo();
        assert!(!f.fence_elidable(), "outside a region: never");
        f.region_enter();
        assert!(f.fence_elidable());
        // A deferred pwb blocks elision...
        assert!(matches!(decide(&f, 1), FlushDecision::Deferred));
        assert!(!f.fence_elidable());
        drain_exec(&f);
        // ...and so does an executed-but-unfenced one.
        assert!(!f.fence_elidable());
        f.on_fence();
        assert!(f.fence_elidable());
        f.region_exit();
        assert!(!f.fence_elidable());
    }

    #[test]
    fn nested_regions_count() {
        let f = fo();
        f.region_enter();
        f.region_enter();
        f.region_exit();
        assert!(f.fence_elidable(), "still one level deep");
        f.region_exit();
        assert!(!f.fence_elidable());
    }

    #[test]
    fn regions_are_per_pool() {
        let a = fo();
        let b = fo();
        a.region_enter();
        assert!(a.fence_elidable());
        assert!(!b.fence_elidable(), "region on a must not leak to b");
        a.region_exit();
    }

    #[test]
    fn reset_forgets_everything() {
        let f = fo();
        f.on_store(4);
        assert!(matches!(decide(&f, 7), FlushDecision::Deferred));
        drain_exec(&f);
        f.reset();
        assert_eq!(f.unfenced.load(Ordering::Relaxed), 0);
        assert_eq!(f.deferred.load(Ordering::Relaxed), 0);
        // Both lines are unknown again → they defer, not elide.
        assert!(matches!(decide(&f, 4), FlushDecision::Deferred));
        assert!(matches!(decide(&f, 7), FlushDecision::Deferred));
    }

    #[test]
    fn export_import_round_trips_decisions() {
        let f = fo();
        f.on_store(2); // dirty
        f.on_store(3);
        assert!(matches!(decide(&f, 3), FlushDecision::Deferred));
        for (l, _) in f.take_deferred() {
            let pre = f.meta[l].load(Ordering::Relaxed);
            f.obligate();
            f.note_real_pwb(l, pre); // 3: flushed, unfenced
        }
        f.on_store(4);
        assert!(matches!(decide(&f, 4), FlushDecision::Deferred)); // buffered
        let snap = f.export_state();
        assert_eq!(snap.unfenced, 1);
        assert_eq!(snap.deferred, vec![(4, 1)]);

        let g = fo();
        g.import_state(&snap);
        // Same decisions on the importer: 2 dirty (defers), 3 flushed
        // (elides), 4 already buffered (coalesces).
        assert!(matches!(decide(&g, 2), FlushDecision::Deferred));
        assert!(matches!(decide(&g, 3), FlushDecision::Elide));
        assert!(matches!(decide(&g, 4), FlushDecision::Coalesced));
        assert!(!{
            g.region_enter();
            let e = g.fence_elidable();
            g.region_exit();
            e
        });
    }

    #[test]
    fn import_after_fence_keeps_clean_lines_clean() {
        let f = fo();
        f.on_store(9);
        assert!(matches!(decide(&f, 9), FlushDecision::Deferred));
        drain_exec(&f);
        f.on_fence(); // 9 is clean now
        let snap = f.export_state();
        let g = fo();
        // Bump g's epoch a few times first: clean must survive any epoch.
        g.on_fence();
        g.on_fence();
        g.import_state(&snap);
        assert!(matches!(decide(&g, 9), FlushDecision::Elide));
    }
}
