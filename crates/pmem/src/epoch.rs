//! The fused *instrumentation epoch*: one shared atomic word summarizing
//! every slow-path obligation of the pool's hot primitives.
//!
//! `load`/`store`/`cas`/`pwb`/`pfence`/`psync` used to pay several
//! independent flag loads per event (crash-injection armed? trace on? lint
//! on? shadow present?). All of those are rare, test-time conditions; the
//! performance runs the paper's Section 5 is about have none of them set.
//! Fusing them into one word means the common case costs exactly one
//! relaxed load and a predictable not-taken branch, and the cold function
//! handling the rest stays out of the inlined fast path entirely.
//!
//! Bit owners: [`crate::crash::CrashCtl`] maintains [`EP_CRASH`] from its
//! arm/disarm/auto-disarm transitions; [`crate::PmemPool`] maintains
//! [`EP_TRACE`]/[`EP_LINT`] from the observer toggles,
//! [`EP_SHADOW`] from construction plus the dormant-model toggle,
//! [`EP_SCHED`] from the schedule explorer's enable toggle, and
//! [`EP_FLUSHOPT`] from [`crate::PmemPool::set_flushopt_enabled`].
//!
//! Ordering: *setting* bits uses SeqCst (arming a crash or enabling an
//! observer is a rare control action that must not reorder with the
//! workload it governs), while the hot-path *read* is Relaxed — see the
//! fast-path comments in `pool.rs` for why that is sufficient.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Crash injection armed ([`crate::crash::CrashCtl`] countdown/broadcast).
pub(crate) const EP_CRASH: u64 = 1 << 0;
/// Persistence-event trace recording ([`crate::trace`]).
pub(crate) const EP_TRACE: u64 = 1 << 1;
/// Flush lint recording ([`crate::lint`]).
pub(crate) const EP_LINT: u64 = 1 << 2;
/// Shadow crash model awake (Model mode pools; set at construction,
/// temporarily cleared while the model is dormant between a resolved
/// crash and the next restore — see
/// [`crate::PmemPool::set_crash_model_dormant`]).
pub(crate) const EP_SHADOW: u64 = 1 << 3;
/// Replay-footprint tracking armed ([`crate::PmemPool::restore`] sets it,
/// permanently for the pool): mutating primitives record the cache lines
/// they touch so the next restore/crash can visit only those lines instead
/// of scanning the whole allocated prefix. Never set outside checkpointed
/// crash sweeps, so perf-mode pools keep their untouched fast paths.
pub(crate) const EP_FOOT: u64 = 1 << 4;
/// Some persistence instruction is masked off (site mask not all-ones, or
/// `psync` disabled) — the paper's "remove this code line" experiments.
/// Folding this into the epoch keeps the unmasked `pwb`/`pfence`/`psync`
/// fast paths free of the separate mask load; masked runs take the slow
/// path, which checks the mask *before* the crash tick so a disabled site
/// stays completely invisible to crash-point enumeration.
pub(crate) const EP_MASK: u64 = 1 << 5;
/// Cooperative-scheduler yield points armed ([`crate::sched`]): every
/// instrumented event first calls the calling thread's registered yield
/// hook, which the schedule explorer uses to serialize virtual threads
/// deterministically. Set by [`crate::PmemPool::set_sched_enabled`]; like
/// every other bit, costs nothing when clear.
pub(crate) const EP_SCHED: u64 = 1 << 6;
/// Flush-elision layer armed ([`crate::flushopt`], [`crate::PoolCfg::flushopt`]):
/// stores feed the per-line flush-state table and `pwb`/`pfence`/`psync`
/// consult it for elide/defer/coalesce decisions. Execution-affecting (not
/// a pure observer like trace/lint), which is why the data *and* persist
/// slow paths both carry it.
pub(crate) const EP_FLUSHOPT: u64 = 1 << 7;

/// The shared epoch word. An `Arc` because the pool and its [`CrashCtl`]
/// both write it ([`CrashCtl`] must clear [`EP_CRASH`] when a fired
/// countdown auto-disarms, without reaching back into the pool).
///
/// [`CrashCtl`]: crate::crash::CrashCtl
pub(crate) type Epoch = Arc<AtomicU64>;

/// A fresh epoch word with the given initial bits.
pub(crate) fn new_epoch(bits: u64) -> Epoch {
    Arc::new(AtomicU64::new(bits))
}
