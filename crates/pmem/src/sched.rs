//! Per-thread *yield hook* for deterministic cooperative scheduling.
//!
//! The schedule explorer (`bench::explore`) serializes N real OS threads
//! into one deterministic interleaving by parking every thread except one
//! and handing the "run token" around at well-defined yield points. The
//! yield points are exactly the pool's instrumented memory events —
//! `load`/`store`/`cas`/`pwb`/`pfence`/`psync` — the same event stream that
//! crash injection counts, so a schedule's event index *k* names both "the
//! k-th yield decision" and "the k-th possible crash point".
//!
//! Mechanically this module is just a thread-local `FnMut()` slot. A worker
//! thread registers its hook with [`set_yield_hook`] before touching the
//! pool; when the pool's scheduler epoch bit (`EP_SCHED`) is set, every
//! instrumented event invokes the hook *immediately before* the event executes (and,
//! for maskable persistence instructions, *after* the site-mask check, so
//! masked sites stay invisible to scheduling exactly as they are invisible
//! to crash-point enumeration). A thread with no registered hook — the main
//! thread during recovery, or any thread outside an exploration — falls
//! straight through.
//!
//! The hook is taken out of the slot while it runs: if the hook itself
//! triggers a pool event (it should not, but a scheduler bug must not
//! recurse into itself), the nested call sees an empty slot and returns.
//!
//! ## The spin channel
//!
//! A second, separate slot carries *spin yields* ([`set_spin_hook`] /
//! [`yield_spin`]). A blocking subject — Romulus's writer mutex, its
//! seqlock readers — busy-waits on state only another thread can change;
//! under the explorer's one-thread-at-a-time turn protocol such a wait can
//! never resolve unless the waiter explicitly offers the turn back. The
//! subject calls [`yield_spin`] from inside its wait loop to do exactly
//! that. A spin yield is deliberately **not** a pool event: it does not
//! tick the crash countdown and the explorer does not count it, because
//! the number of wait-loop iterations is a scheduling artifact, not a
//! point in the algorithm where a crash is meaningful or a schedule index
//! must be stable. Subjects that never block never call it; threads with
//! no spin hook (every thread outside an exploration) fall straight
//! through, so the call is free in production paths.
//!
//! Zero-cost when off: the only cost on the pool's fast paths is the one
//! fused epoch load they already perform; `EP_SCHED` rides along in the
//! slow-path masks.

use std::cell::RefCell;

thread_local! {
    /// This thread's yield hook, if it is participating in an exploration.
    static YIELD_HOOK: RefCell<Option<Box<dyn FnMut()>>> = const { RefCell::new(None) };
    /// This thread's spin hook — the turn-release channel for busy-wait
    /// loops in blocking subjects (see the module docs).
    static SPIN_HOOK: RefCell<Option<Box<dyn FnMut()>>> = const { RefCell::new(None) };
}

/// Registers `hook` as the calling thread's yield hook. It will be invoked
/// immediately before every instrumented pool event this thread executes
/// while the pool's scheduler bit is set (see
/// [`PmemPool::set_sched_enabled`](crate::PmemPool::set_sched_enabled)).
/// Replaces any previously registered hook.
///
/// The hook typically blocks (on a condvar) until a scheduler grants this
/// thread the right to execute its pending event — that is what makes the
/// interleaving deterministic. It must not touch the pool itself; a nested
/// pool event from inside the hook sees an empty slot and does not recurse.
pub fn set_yield_hook(hook: Box<dyn FnMut()>) {
    YIELD_HOOK.with(|h| *h.borrow_mut() = Some(hook));
}

/// Removes the calling thread's yield hook, if any. Safe to call when none
/// is registered. Worker threads call this after their scripted run so
/// later pool use (teardown asserts, panics unwinding into drops) cannot
/// block on a scheduler that has already moved on.
pub fn clear_yield_hook() {
    YIELD_HOOK.with(|h| *h.borrow_mut() = None);
}

/// Does the calling thread currently have a yield hook registered?
pub fn has_yield_hook() -> bool {
    YIELD_HOOK.with(|h| h.borrow().is_some())
}

/// Registers `hook` as the calling thread's *spin* hook, invoked by
/// [`yield_spin`] from the busy-wait loops of blocking subjects. Replaces
/// any previously registered spin hook. Explorer workers register it
/// alongside the yield hook; the two channels are independent so a spin
/// never perturbs event counting or crash-point indexing.
pub fn set_spin_hook(hook: Box<dyn FnMut()>) {
    SPIN_HOOK.with(|h| *h.borrow_mut() = Some(hook));
}

/// Removes the calling thread's spin hook, if any. Safe to call when none
/// is registered.
pub fn clear_spin_hook() {
    SPIN_HOOK.with(|h| *h.borrow_mut() = None);
}

/// Does the calling thread currently have a spin hook registered?
/// Blocking subjects use this to choose between their native blocking
/// acquire (no hook: real parallelism, the OS arbitrates) and a
/// `try`-acquire loop around [`yield_spin`] (hook: the explorer
/// arbitrates, and parking the OS thread would deadlock the turn).
pub fn has_spin_hook() -> bool {
    SPIN_HOOK.with(|h| h.borrow().is_some())
}

/// Offers the scheduler a chance to run someone else from inside a
/// busy-wait loop. Invokes the calling thread's spin hook if one is
/// registered; a no-op otherwise, so subjects may call it unconditionally
/// from their wait loops. Same re-entrancy discipline as the yield hook:
/// the hook is taken out of its slot for the duration of the call.
pub fn yield_spin() {
    let hook = SPIN_HOOK.with(|h| h.borrow_mut().take());
    if let Some(mut f) = hook {
        f();
        SPIN_HOOK.with(|h| {
            let mut slot = h.borrow_mut();
            if slot.is_none() {
                *slot = Some(f);
            }
        });
    }
}

/// Invokes the calling thread's yield hook, if one is registered. Called
/// from the pool's slow paths when [`EP_SCHED`](crate::epoch::EP_SCHED) is
/// set; a no-op for threads without a hook. The hook is removed from its
/// slot for the duration of the call (re-entrancy guard) and put back
/// afterwards; if the hook panics (e.g. a scheduler fuel-exhaustion abort)
/// the slot simply stays empty while the panic unwinds the thread.
pub(crate) fn yield_now() {
    let hook = YIELD_HOOK.with(|h| h.borrow_mut().take());
    if let Some(mut f) = hook {
        f();
        YIELD_HOOK.with(|h| {
            let mut slot = h.borrow_mut();
            // Keep a replacement the hook may have installed for itself.
            if slot.is_none() {
                *slot = Some(f);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn hook_fires_and_clears() {
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        set_yield_hook(Box::new(move || h.set(h.get() + 1)));
        assert!(has_yield_hook());
        yield_now();
        yield_now();
        assert_eq!(hits.get(), 2);
        clear_yield_hook();
        assert!(!has_yield_hook());
        yield_now(); // no hook: falls through
        assert_eq!(hits.get(), 2);
    }

    #[test]
    fn spin_channel_is_independent_of_the_yield_channel() {
        let yields = Rc::new(Cell::new(0u32));
        let spins = Rc::new(Cell::new(0u32));
        let (y, s) = (yields.clone(), spins.clone());
        set_yield_hook(Box::new(move || y.set(y.get() + 1)));
        set_spin_hook(Box::new(move || s.set(s.get() + 1)));
        assert!(has_spin_hook());
        yield_spin();
        yield_spin();
        assert_eq!((yields.get(), spins.get()), (0, 2));
        yield_now();
        assert_eq!((yields.get(), spins.get()), (1, 2));
        clear_spin_hook();
        assert!(!has_spin_hook());
        yield_spin(); // no hook: falls through
        assert_eq!(spins.get(), 2);
        clear_yield_hook();
    }

    #[test]
    fn hook_does_not_recurse() {
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        set_yield_hook(Box::new(move || {
            h.set(h.get() + 1);
            yield_now(); // nested: slot is empty, must not recurse
        }));
        yield_now();
        assert_eq!(hits.get(), 1);
        // The hook is restored after the call.
        yield_now();
        assert_eq!(hits.get(), 2);
        clear_yield_hook();
    }

    #[test]
    fn pool_events_reach_the_hook_only_when_armed() {
        use crate::{PmemPool, PoolCfg, SiteId};
        let pool = PmemPool::new(PoolCfg::model(1 << 16));
        let a = pool.alloc_lines(1);
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        set_yield_hook(Box::new(move || h.set(h.get() + 1)));

        // Scheduler bit clear: instrumented events bypass the hook.
        pool.store(a, 1);
        pool.load(a);
        assert_eq!(hits.get(), 0);

        pool.set_sched_enabled(true);
        pool.store(a, 2); // 1
        pool.load(a); // 2
        let _ = pool.cas(a, 2, 3); // 3
        pool.pwb(a, SiteId(0)); // 4
        pool.pfence(); // 5
        pool.psync(); // 6
        assert_eq!(hits.get(), 6);

        // Masked sites stay invisible to scheduling, exactly as they are
        // invisible to crash-point enumeration.
        pool.set_site_enabled(SiteId(0), false);
        pool.pwb(a, SiteId(0));
        assert_eq!(hits.get(), 6);
        pool.set_psync_enabled(false);
        pool.psync();
        assert_eq!(hits.get(), 6);

        pool.set_sched_enabled(false);
        pool.store(a, 4);
        assert_eq!(hits.get(), 6);
        clear_yield_hook();
    }
}
