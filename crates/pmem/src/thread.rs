//! Per-thread recovery context: the paper's `CP_q` and `RD_q` variables.
//!
//! Section 2 of the paper gives each thread *q* a non-volatile private
//! check-point variable `CP_q` (set to 0 by the system just before each
//! recoverable operation starts) and Section 3 adds a designated persistent
//! *recovery data* variable `RD_q` holding a reference to the descriptor of
//! q's last operation. Footnote 1 notes that system support is necessary
//! for detectable algorithms; [`ThreadCtx`] *is* that system support here:
//! it owns the thread's recovery line inside the pool and the harness calls
//! the matching `recover_*` function with the original arguments after a
//! crash.

use std::sync::Arc;

use crate::addr::PAddr;
use crate::persist::SiteId;
use crate::pool::PmemPool;

/// Hard cap on recovery slots a pool reserves by default.
pub const MAX_THREADS: usize = 128;

/// A thread's handle onto a [`PmemPool`]: identity plus its persistent
/// `CP_q`/`RD_q` recovery slots.
///
/// Cloneable and cheap; each worker thread builds one with its unique `tid`.
/// The same `tid` must be reused when recovering that thread after a crash
/// (the slots are addressed by `tid`).
#[derive(Clone)]
pub struct ThreadCtx {
    pool: Arc<PmemPool>,
    tid: usize,
    cp: PAddr,
    rd: PAddr,
}

impl ThreadCtx {
    /// Binds thread `tid` to `pool`.
    pub fn new(pool: Arc<PmemPool>, tid: usize) -> Self {
        let line = pool.recovery_line(tid);
        ThreadCtx {
            pool,
            tid,
            cp: line,
            rd: line.add(1),
        }
    }

    /// The owning pool.
    #[inline]
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    /// A clone of the pool handle.
    pub fn pool_arc(&self) -> Arc<PmemPool> {
        self.pool.clone()
    }

    /// This thread's identity (recovery-slot index).
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Address of `CP_q` (for direct pwb calls by algorithms).
    #[inline]
    pub fn cp_addr(&self) -> PAddr {
        self.cp
    }

    /// Address of `RD_q`.
    #[inline]
    pub fn rd_addr(&self) -> PAddr {
        self.rd
    }

    /// Reads `CP_q`.
    #[inline]
    pub fn cp(&self) -> u64 {
        self.pool.load(self.cp)
    }

    /// Writes `CP_q` (persistence is the caller's responsibility — the
    /// algorithms place their own `pwb(CP_q); psync` per the pseudocode).
    #[inline]
    pub fn set_cp(&self, v: u64) {
        self.pool.store(self.cp, v);
    }

    /// Reads `RD_q`.
    #[inline]
    pub fn rd(&self) -> u64 {
        self.pool.load(self.rd)
    }

    /// Writes `RD_q`.
    #[inline]
    pub fn set_rd(&self, v: u64) {
        self.pool.store(self.rd, v);
    }

    /// Address of the `i`-th spare word of this thread's recovery line
    /// (the six words after `CP_q` and `RD_q`, otherwise padding against
    /// false sharing). Algorithms that need a small per-operation
    /// announcement to be crash-atomic *with* `RD_q` store it here: a
    /// cache line resolves all-or-nothing at a crash, so the announcement
    /// and the recovery reference can never tear apart (used by the
    /// combining variants in the `tracking` crate).
    #[inline]
    pub fn aux_addr(&self, i: usize) -> PAddr {
        assert!(i < 6, "recovery line has six spare words");
        self.cp.add(2 + i as u64)
    }

    /// Allocates `nlines` zeroed cache lines under this thread's identity,
    /// recycling retired blocks when the pool was built with
    /// [`crate::PoolCfg::reclaim`] (see [`crate::palloc`]); identical to
    /// [`PmemPool::alloc_lines`] otherwise.
    #[inline]
    pub fn palloc(&self, nlines: usize) -> PAddr {
        self.pool.palloc_lines(self.tid, nlines)
    }

    /// Retires a block this thread has durably unlinked from its structure
    /// (no-op unless the pool was built with [`crate::PoolCfg::reclaim`]).
    #[inline]
    pub fn retire(&self, addr: PAddr, nlines: usize) {
        self.pool.pretire_lines(self.tid, addr, nlines)
    }

    /// The system's pre-invocation step: resets `CP_q` to 0 and persists the
    /// reset, so a crash before the operation's first check-point is
    /// distinguishable from one after it ("the system sets CP_q to 0 just
    /// before Op's execution starts", Section 2).
    pub fn begin_op(&self, cp_site: SiteId) {
        self.set_cp(0);
        self.pool.pwb(self.cp, cp_site);
        self.pool.psync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolCfg;
    use crate::shadow::PessimistAdversary;

    fn ctx(tid: usize) -> ThreadCtx {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(1 << 20)));
        ThreadCtx::new(pool, tid)
    }

    #[test]
    fn slots_start_zeroed() {
        let c = ctx(0);
        assert_eq!(c.cp(), 0);
        assert_eq!(c.rd(), 0);
    }

    #[test]
    fn distinct_threads_distinct_lines() {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(1 << 20)));
        let a = ThreadCtx::new(pool.clone(), 0);
        let b = ThreadCtx::new(pool, 1);
        assert_ne!(a.cp_addr().line(), b.cp_addr().line());
        a.set_cp(5);
        b.set_cp(7);
        assert_eq!(a.cp(), 5);
        assert_eq!(b.cp(), 7);
    }

    #[test]
    fn cp_rd_share_the_thread_line() {
        let c = ctx(3);
        assert_eq!(c.cp_addr().line(), c.rd_addr().line());
        assert_eq!(c.rd_addr(), c.cp_addr().add(1));
    }

    #[test]
    fn begin_op_persists_the_reset() {
        let c = ctx(0);
        c.set_cp(1);
        c.pool().pwb(c.cp_addr(), SiteId(0));
        c.pool().psync();
        c.begin_op(SiteId(0));
        c.pool().crash(&mut PessimistAdversary);
        assert_eq!(c.cp(), 0, "CP reset must survive the crash");
    }

    #[test]
    #[should_panic(expected = "max_threads")]
    fn tid_bounds_checked() {
        ctx(MAX_THREADS);
    }
}
