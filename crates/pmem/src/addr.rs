//! Word addresses into a [`crate::PmemPool`] and descriptor-pointer tagging.
//!
//! The paper's algorithms store *tagged* pointers to operation descriptors in
//! the `info` field of nodes ("tagging a node is like putting a soft lock on
//! it"). Tagging is implemented, as in the paper, by setting the least
//! significant bit of the stored value. Because a [`PAddr`] is a *word*
//! index (word 0 is reserved as null), every valid address has its LSB free
//! whenever descriptors are line-aligned — which the pool's allocator
//! guarantees — so `tagged`/`untagged` never corrupt an address.

/// Number of 64-bit words per simulated cache line (64 bytes).
pub const WORDS_PER_LINE: usize = 8;

/// A word address inside a [`crate::PmemPool`].
///
/// `PAddr(0)` is the null address; the pool never allocates word 0.
/// Addresses are plain indices, so they remain valid across simulated
/// crashes and can be stored *inside* persistent memory (as raw `u64`s).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PAddr(pub u64);

impl PAddr {
    /// The null address (word 0, reserved).
    pub const NULL: PAddr = PAddr(0);

    /// Is this the null address?
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Word index into the pool's backing array.
    #[inline]
    pub fn word(self) -> usize {
        self.0 as usize
    }

    /// Index of the cache line containing this word.
    #[inline]
    pub fn line(self) -> usize {
        self.0 as usize / WORDS_PER_LINE
    }

    /// Address `n` words past this one.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, n: u64) -> PAddr {
        PAddr(self.0 + n)
    }

    /// Raw value as stored in persistent cells.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs an address from a raw stored value, verbatim.
    ///
    /// Word addresses may be odd (a field inside a node), so no tag bit is
    /// cleared here — values that may carry a descriptor tag go through
    /// [`untagged`] explicitly (e.g. `Desc::from_raw` in the tracking
    /// crate).
    #[inline]
    pub fn from_raw(v: u64) -> PAddr {
        PAddr(v)
    }
}

/// Returns the tagged version of a stored descriptor pointer (LSB set).
///
/// Matches the paper's `getTagged`: the value is unchanged except for the
/// tag bit, so a tagged and an untagged pointer refer to the same
/// descriptor.
#[inline]
pub fn tagged(v: u64) -> u64 {
    v | 1
}

/// Returns the untagged version of a stored descriptor pointer (LSB clear).
///
/// Matches the paper's `getUntagged`.
#[inline]
pub fn untagged(v: u64) -> u64 {
    v & !1
}

/// Is the stored value tagged (paper's `isTagged`)? Null is never tagged.
#[inline]
pub fn is_tagged(v: u64) -> bool {
    v & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_word_zero() {
        assert!(PAddr::NULL.is_null());
        assert_eq!(PAddr::NULL.word(), 0);
        assert!(!PAddr(8).is_null());
    }

    #[test]
    fn line_math() {
        assert_eq!(PAddr(0).line(), 0);
        assert_eq!(PAddr(7).line(), 0);
        assert_eq!(PAddr(8).line(), 1);
        assert_eq!(PAddr(17).line(), 2);
    }

    #[test]
    fn add_offsets_words() {
        assert_eq!(PAddr(8).add(3), PAddr(11));
    }

    #[test]
    fn tag_roundtrip() {
        let a = PAddr(48).raw();
        assert!(!is_tagged(a));
        let t = tagged(a);
        assert!(is_tagged(t));
        assert_eq!(untagged(t), a);
        assert_eq!(PAddr::from_raw(untagged(t)), PAddr(48));
        // tagging is idempotent
        assert_eq!(tagged(t), t);
        assert_eq!(untagged(untagged(t)), a);
    }

    #[test]
    fn from_raw_preserves_odd_field_addresses() {
        // field addresses inside a node may be odd word indices; from_raw
        // must not disturb them
        assert_eq!(PAddr::from_raw(0xCA1).word(), 0xCA1);
        assert_eq!(PAddr::from_raw(tagged(PAddr(128).raw())).word(), 129);
    }
}
