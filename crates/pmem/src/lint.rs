//! `FlushLint`: a dynamic checker for persistence-instruction placement.
//!
//! The paper's methodology treats every `pwb` code line as a cost knob —
//! misplaced flushes are either wasted work (flushing a line that is
//! already clean) or missing durability (a store whose line is never
//! written back, which a crash under [`crate::PessimistAdversary`] loses).
//! The lint tracks, per cache line, the same three-way distinction the
//! shadow crash model resolves at crash time — *dirty* (stored since the
//! last covering `pwb`), *flushed* (written back, awaiting a fence) and
//! *clean* (committed by `pfence`/`psync`) — and flags:
//!
//! * **redundant `pwb`s**: a flush of a line the lint positively knows is
//!   clean (double flush, or re-flush after a fence with no intervening
//!   store). Lines the lint has never seen are *not* flagged — without a
//!   prior event there is no evidence the flush is wasted.
//! * **unflushed dirty lines**: lines still dirty when a report is taken or
//!   when a simulated crash resolves — exactly the writes a
//!   [`crate::PessimistAdversary`] crash would surface as lost — reported
//!   with the originating store's site, thread and sequence number.
//! * **fence-ordering violations**: a successful CAS that publishes a
//!   pointer to a line that was stored but not `pwb`'d-and-fenced before
//!   the CAS. Under explicit epoch persistency the published pointer can
//!   become durable while the pointee's content is lost; the paper's
//!   algorithms all `pbarrier` new nodes and descriptors before publishing
//!   them, and this check catches code that forgets to.
//!
//! ## Lock-free hot path
//!
//! The line-state machine lives in a direct-mapped table: one packed
//! atomic *meta* word per pool cache line (status, attributed store
//! site/thread, flush epoch) plus one atomic word for the attributed
//! store's sequence number. `nlines` is fixed at pool creation, the table
//! is lazily zero-mapped, and every transition is a CAS on the line's meta
//! word — `on_write`/`on_pwb` take no lock. Fences are O(1): instead of
//! draining a flushed-lines worklist, `on_fence` bumps a global *fence
//! epoch*, and a line whose stored status is `Flushed` reads as `Clean`
//! once the epoch has moved past the one recorded by its `pwb`. The only
//! lock left is a cold-path journal of first-touched lines (so reports,
//! exports and crash resolution iterate touched lines without scanning the
//! whole table) and the diagnostics list itself.
//!
//! With the `observer-heavy` feature the lint additionally self-validates
//! each transition's post-state (see `FlushLint`); the default build
//! records the exact same diagnostics without the per-event deep checks.
//!
//! The lint is event-driven and needs no shadow memory, so it works in
//! both Model and Perf pools; enable it via [`crate::PoolCfg::lint`] or
//! [`crate::PmemPool::set_lint_enabled`] and pull findings with
//! [`crate::PmemPool::lint_report`]:
//!
//! ```
//! use pmem::{LintKind, PmemPool, PoolCfg, SiteId};
//! let pool = PmemPool::new(PoolCfg { lint: true, ..PoolCfg::model(1 << 20) });
//! let a = pool.alloc_lines(1);
//! pool.store_at(a, 1, SiteId(4));
//! pool.pwb(a, SiteId(4)); // pays for new persistence: fine
//! pool.pwb(a, SiteId(9)); // re-flushes a line it knows is clean: flagged
//! pool.psync();
//! let report = pool.lint_report();
//! assert!(!report.is_clean());
//! assert_eq!(report.count(LintKind::RedundantPwb), 1);
//! assert_eq!(report.of_kind(LintKind::RedundantPwb).next().unwrap().site, 9);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::persist::{SiteId, MAX_SITES};
use crate::trace::NO_SITE;

/// The kind of a lint finding.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LintKind {
    /// A `pwb` of a line known to be clean: wasted flush traffic.
    RedundantPwb,
    /// A line still dirty at report/crash time: its stores are lost by a
    /// pessimist crash.
    UnflushedDirty,
    /// A successful CAS published a pointer to a line whose latest store
    /// was not flushed and fenced first.
    UnfencedPublish,
    /// The flush-elision layer ([`crate::flushopt`]) elided a `pwb` of a
    /// line this lint believes is **dirty**. The layer may only elide
    /// provably-redundant flushes, so the two per-line state machines
    /// disagree — either the elision was unsound or a tracking bug let the
    /// tables diverge. Every flushopt-enabled verification run treats this
    /// as a violation.
    ElidedDirtyPwb,
}

impl LintKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            LintKind::RedundantPwb => "redundant-pwb",
            LintKind::UnflushedDirty => "unflushed-dirty",
            LintKind::UnfencedPublish => "unfenced-publish",
            LintKind::ElidedDirtyPwb => "elided-dirty-pwb",
        }
    }
}

/// One lint finding.
#[derive(Copy, Clone, Debug)]
pub struct Diagnostic {
    /// What was found.
    pub kind: LintKind,
    /// The cache line concerned.
    pub line: usize,
    /// The attributed call site: the `pwb`'s site for
    /// [`LintKind::RedundantPwb`], the originating *store*'s site for
    /// [`LintKind::UnflushedDirty`] and [`LintKind::UnfencedPublish`]
    /// ([`NO_SITE`] when the store was issued without attribution).
    pub site: u8,
    /// Trace index of the thread that triggered the finding.
    pub tid: usize,
    /// Global event sequence number at detection time.
    pub seq: u64,
}

/// A pulled copy of the lint's findings and per-site flush counters.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Findings, ascending by [`Diagnostic::seq`]. Includes one
    /// [`LintKind::UnflushedDirty`] entry per line still dirty when the
    /// report was taken.
    pub diags: Vec<Diagnostic>,
    /// Per-site count of `pwb`s that wrote back a dirty line (useful work).
    pub pwb_dirty: [u64; MAX_SITES],
    /// Per-site count of redundant `pwb`s (line known clean).
    pub pwb_redundant: [u64; MAX_SITES],
    /// Per-site count of `pwb`s of lines the lint had no history for.
    pub pwb_unknown: [u64; MAX_SITES],
}

impl LintReport {
    /// No findings at all?
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of findings of `kind`.
    pub fn count(&self, kind: LintKind) -> usize {
        self.diags.iter().filter(|d| d.kind == kind).count()
    }

    /// Findings of `kind`.
    pub fn of_kind(&self, kind: LintKind) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(move |d| d.kind == kind)
    }

    /// Fraction of `pwb`s at `site` that flushed a dirty line, among those
    /// whose line state was known (1.0 when none were known — no evidence
    /// of waste).
    pub fn dirty_ratio(&self, site: SiteId) -> f64 {
        let i = site.0 as usize;
        let known = self.pwb_dirty[i] + self.pwb_redundant[i];
        if known == 0 {
            1.0
        } else {
            self.pwb_dirty[i] as f64 / known as f64
        }
    }

    /// Human-readable rendering; `name_of` maps sites to registered names
    /// (see [`crate::PmemPool::site_name`]).
    pub fn render(&self, name_of: impl Fn(u8) -> Option<&'static str>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.diags.is_empty() {
            out.push_str("flush-lint: clean\n");
            return out;
        }
        for d in &self.diags {
            let site = match (d.site, name_of(d.site)) {
                (NO_SITE, _) => "<unattributed>".to_string(),
                (id, Some(name)) => format!("site {id} ({name})"),
                (id, None) => format!("site {id}"),
            };
            let _ = writeln!(
                out,
                "flush-lint: {:<16} line {:<6} {} [tid {} seq {}]",
                d.kind.label(),
                d.line,
                site,
                d.tid,
                d.seq
            );
        }
        out
    }
}

/// Line states the lint distinguishes (status `0` in the packed meta word
/// = never seen).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Status {
    /// Stored since the last covering `pwb`; lost by a pessimist crash.
    Dirty,
    /// Written back; durable only after the next fence.
    Flushed,
    /// Written back and fenced; a further `pwb` without a store is wasted.
    Clean,
}

#[derive(Copy, Clone, Debug)]
pub(crate) struct LineState {
    status: Status,
    /// Fence seen since the covering `pwb`. Fully derived under the epoch
    /// scheme (`status == Clean`); kept so snapshots remain self-describing.
    #[cfg_attr(not(test), allow(dead_code))]
    fenced: bool,
    /// Originating store of the latest dirty epoch (first store since the
    /// line was last clean), for attribution.
    store_site: u8,
    store_tid: usize,
    store_seq: u64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Poison-tolerant: injected CrashPoint panics unwind through callers
    // while no lint lock is held, but a foreign panic must not wedge the
    // checker.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---- packed meta word ----------------------------------------------------
// bits 0..2   status (0 = untracked, 1 = Dirty, 2 = Flushed, 3 = Clean)
// bits 2..10  attributed store site
// bits 10..32 attributed store tid (saturating)
// bits 32..64 fence epoch recorded by the covering pwb (Flushed only)

const ST_UNTRACKED: u64 = 0;
const ST_DIRTY: u64 = 1;
const ST_FLUSHED: u64 = 2;
const ST_CLEAN: u64 = 3;

const TID_BITS: u64 = 22;
const TID_MAX: u64 = (1 << TID_BITS) - 1;
const EPOCH_MASK: u64 = 0xffff_ffff;

fn pack_meta(status: u64, site: u8, tid: usize, epoch: u64) -> u64 {
    status | (site as u64) << 2 | (tid as u64).min(TID_MAX) << 10 | (epoch & EPOCH_MASK) << 32
}

fn meta_status(m: u64) -> u64 {
    m & 0x3
}

fn meta_site(m: u64) -> u8 {
    ((m >> 2) & 0xff) as u8
}

fn meta_tid(m: u64) -> usize {
    ((m >> 10) & TID_MAX) as usize
}

fn meta_epoch(m: u64) -> u64 {
    m >> 32
}

/// The status a meta word reads as under the current fence epoch: a
/// `Flushed` line whose recorded epoch the global counter has moved past
/// was committed by that fence — it is effectively `Clean`.
fn eff_status(m: u64, epoch: u64) -> u64 {
    let st = meta_status(m);
    if st == ST_FLUSHED && meta_epoch(m) != (epoch & EPOCH_MASK) {
        ST_CLEAN
    } else {
        st
    }
}

/// The live checker owned by a pool (see module docs).
pub(crate) struct FlushLint {
    enabled: AtomicBool,
    /// Packed per-line state (see the bit layout above); index = cache
    /// line. Lazily zero-mapped, so an untouched multi-GiB pool costs
    /// nothing.
    meta: Box<[AtomicU64]>,
    /// Per-line attributed store sequence number (word `line`).
    store_seq: Box<[AtomicU64]>,
    /// Global fence counter; bumped by `on_fence` (the O(1) replacement
    /// for the old flushed-lines worklist drain).
    fence_epoch: AtomicU64,
    /// Every line ever touched since the last reset, in first-touch order
    /// (cold path: pushed once per line). Reports, exports and crash
    /// resolution iterate this instead of scanning the table.
    journal: Mutex<Vec<usize>>,
    diags: Mutex<Vec<Diagnostic>>,
    pwb_dirty: [AtomicU64; MAX_SITES],
    pwb_redundant: [AtomicU64; MAX_SITES],
    pwb_unknown: [AtomicU64; MAX_SITES],
    /// Bumped by every *observable* mutation (line-state transition,
    /// diagnostic, counter). Pool restore compares generations to skip
    /// re-importing a table nothing touched (the common case for the sweep
    /// engine's dark replays, where neither the trace nor the lint drives
    /// the state machine).
    generation: AtomicU64,
}

impl FlushLint {
    pub(crate) fn new(enabled: bool, nlines: usize) -> Self {
        FlushLint {
            enabled: AtomicBool::new(enabled),
            meta: crate::pool::alloc_zeroed_atomics(nlines),
            store_seq: crate::pool::alloc_zeroed_atomics(nlines),
            fence_epoch: AtomicU64::new(0),
            journal: Mutex::new(Vec::new()),
            diags: Mutex::new(Vec::new()),
            pwb_dirty: std::array::from_fn(|_| AtomicU64::new(0)),
            pwb_redundant: std::array::from_fn(|_| AtomicU64::new(0)),
            pwb_unknown: std::array::from_fn(|_| AtomicU64::new(0)),
            generation: AtomicU64::new(0),
        }
    }

    /// Opaque mutation counter over the observable lint state (see the
    /// field docs); equal generations mean table, diagnostics and counters
    /// are all unchanged.
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    #[inline]
    fn touch(&self) {
        // Not a fetch_add: racing touches may collapse into one increment,
        // which is fine — generations are only compared across quiescent
        // points, and any epoch containing a touch strictly advances the
        // value. A plain load+store keeps the lock-prefixed RMW off the
        // store/pwb hot paths.
        let g = self.generation.load(Ordering::Relaxed);
        self.generation.store(g + 1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// `observer-heavy` deep check: the transition's post-state must read
    /// back as intended under the current fence epoch, and any tracked
    /// line must be journaled exactly once. Costs a journal scan per event
    /// — the price of the heavy tier; compiled out by default.
    #[cfg(feature = "observer-heavy")]
    fn deep_check(&self, line: usize, want_status: u64) {
        let m = self.meta[line].load(Ordering::SeqCst);
        let eff = eff_status(m, self.fence_epoch.load(Ordering::SeqCst));
        // A racing writer may legitimately have moved the line onward (CAS
        // publication is linearizable, not sticky), so only same-state
        // self-reads are asserted: the transition we just CASed in must be
        // *a* reachable state, and a tracked line must be journaled.
        assert!(
            eff != ST_UNTRACKED,
            "observer-heavy: line {line} lost its tracking after a transition to {want_status}"
        );
        let journaled = lock(&self.journal).iter().filter(|&&l| l == line).count();
        assert_eq!(
            journaled, 1,
            "observer-heavy: line {line} journaled {journaled} times (want exactly 1)"
        );
    }

    #[cfg(not(feature = "observer-heavy"))]
    #[inline]
    fn deep_check(&self, _line: usize, _want_status: u64) {}

    /// Current dirty state of `line` (for trace events).
    #[inline]
    pub(crate) fn line_dirty(&self, line: usize) -> bool {
        match self.meta.get(line) {
            // No eff_status: the fence epoch only turns Flushed into Clean,
            // it never makes a line dirty — the raw status check saves the
            // epoch load on this per-load hot path.
            Some(m) => meta_status(m.load(Ordering::Relaxed)) == ST_DIRTY,
            None => false,
        }
    }

    /// First touch of `line`: adds it to the journal (runs at most once
    /// per line between resets — the CAS that tracked the line arbitrates).
    fn journal_push(&self, line: usize) {
        lock(&self.journal).push(line);
    }

    /// A store (or successful CAS) wrote `line`. Returns the dirty state
    /// after the event (always `true`).
    #[inline]
    pub(crate) fn on_write(&self, line: usize, site: u8, tid: usize, seq: u64) -> bool {
        let Some(m) = self.meta.get(line) else {
            return true;
        };
        let mut cur = m.load(Ordering::Relaxed);
        loop {
            // Raw status check first: Dirty is the common steady state and
            // needs no fence-epoch load (the epoch only affects Flushed).
            if meta_status(cur) == ST_DIRTY {
                // Same dirty epoch: the first store keeps the attribution,
                // and the table is bit-identical — nothing to publish.
                return true;
            }
            // A fresh dirty epoch: this store is the one a lost line would
            // be attributed to.
            let new = pack_meta(ST_DIRTY, site, tid, 0);
            match m.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(prev) => {
                    self.store_seq[line].store(seq, Ordering::Relaxed);
                    if meta_status(prev) == ST_UNTRACKED {
                        self.journal_push(line);
                    }
                    self.touch();
                    self.deep_check(line, ST_DIRTY);
                    return true;
                }
                Err(v) => cur = v,
            }
        }
    }

    /// A `pwb` of `line` was issued at `site`. Returns whether the line was
    /// dirty before the flush (a `false` marks the flush as redundant or of
    /// unknown use).
    pub(crate) fn on_pwb(&self, line: usize, site: SiteId, seq: u64) -> bool {
        let Some(m) = self.meta.get(line) else {
            return false;
        };
        let count = self.enabled();
        let mut cur = m.load(Ordering::Relaxed);
        loop {
            let epoch = self.fence_epoch.load(Ordering::Relaxed);
            match eff_status(cur, epoch) {
                ST_DIRTY => {
                    // Keep the store attribution; record the fence epoch so
                    // the next fence commits the line.
                    let new = pack_meta(ST_FLUSHED, meta_site(cur), meta_tid(cur), epoch);
                    match m.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                        Ok(_) => {
                            if count {
                                self.pwb_dirty[site.idx()].fetch_add(1, Ordering::Relaxed);
                            }
                            self.touch();
                            self.deep_check(line, ST_FLUSHED);
                            return true;
                        }
                        Err(v) => cur = v,
                    }
                }
                ST_UNTRACKED => {
                    // Never seen: can't prove the flush wasted; start
                    // tracking.
                    // Off the hot path (a line is untracked at most once
                    // per crash interval), so resolving the thread id here
                    // keeps the common flush free of thread-local lookups.
                    let new = pack_meta(ST_FLUSHED, NO_SITE, crate::trace::trace_tid(), epoch);
                    match m.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                        Ok(_) => {
                            self.store_seq[line].store(seq, Ordering::Relaxed);
                            self.journal_push(line);
                            if count {
                                self.pwb_unknown[site.idx()].fetch_add(1, Ordering::Relaxed);
                            }
                            self.touch();
                            self.deep_check(line, ST_FLUSHED);
                            return false;
                        }
                        Err(v) => cur = v,
                    }
                }
                _ => {
                    // Flushed (double flush) or Clean (re-flush after a
                    // fence): the line's content is already on its way to
                    // persistence. No table change.
                    if count {
                        self.pwb_redundant[site.idx()].fetch_add(1, Ordering::Relaxed);
                        lock(&self.diags).push(Diagnostic {
                            kind: LintKind::RedundantPwb,
                            line,
                            site: site.0,
                            tid: crate::trace::trace_tid(),
                            seq,
                        });
                        self.touch();
                    }
                    return false;
                }
            }
        }
    }

    /// The flush-elision layer elided a `pwb` of `line` issued at `site`:
    /// cross-check the claim. The layer promises it only elides flushes of
    /// lines already flushed since their last store; if *this* table holds
    /// the line dirty, the promise broke and the elision may have lost a
    /// write-back the algorithm needed. The line state is left untouched —
    /// nothing executed — so a later crash still reports the dirty line as
    /// [`LintKind::UnflushedDirty`] too.
    pub(crate) fn on_elided_pwb(&self, line: usize, site: SiteId) {
        if !self.enabled() {
            return;
        }
        let Some(m) = self.meta.get(line) else {
            return;
        };
        let cur = m.load(Ordering::Relaxed);
        if eff_status(cur, self.fence_epoch.load(Ordering::Relaxed)) == ST_DIRTY {
            lock(&self.diags).push(Diagnostic {
                kind: LintKind::ElidedDirtyPwb,
                line,
                site: site.0,
                tid: crate::trace::trace_tid(),
                seq: self.store_seq[line].load(Ordering::Relaxed),
            });
            self.touch();
        }
    }

    /// A `pfence`/`psync` completed: every flushed line is now committed.
    /// O(1) — bumping the fence epoch retires every recorded `Flushed`
    /// epoch at once (see [`eff_status`]).
    pub(crate) fn on_fence(&self) {
        self.fence_epoch.fetch_add(1, Ordering::AcqRel);
        self.touch();
    }

    /// A successful CAS stored `new` into some word; if `new` decodes to a
    /// pool pointer whose target line is not flushed-and-fenced, the CAS
    /// published unpersisted content. `target_line` is the decoded line
    /// (the pool validates the pointer shape before calling).
    pub(crate) fn on_publish(&self, target_line: usize, tid: usize, seq: u64) {
        if !self.enabled() {
            return;
        }
        let Some(m) = self.meta.get(target_line) else {
            return;
        };
        let cur = m.load(Ordering::Relaxed);
        let eff = eff_status(cur, self.fence_epoch.load(Ordering::Relaxed));
        if eff == ST_DIRTY || eff == ST_FLUSHED {
            lock(&self.diags).push(Diagnostic {
                kind: LintKind::UnfencedPublish,
                line: target_line,
                site: meta_site(cur),
                tid,
                seq,
            });
            self.touch();
        }
    }

    /// A simulated crash resolved: every line still dirty is recorded as a
    /// permanent finding (the losses the adversary could surface), and all
    /// tracked state resets — post-crash, volatile and persisted views
    /// agree everywhere.
    pub(crate) fn on_crash(&self, seq: u64) {
        self.touch();
        let epoch = self.fence_epoch.load(Ordering::Relaxed);
        let mut journal = lock(&self.journal);
        if self.enabled() {
            let mut dirty: Vec<usize> = journal
                .iter()
                .copied()
                .filter(|&l| eff_status(self.meta[l].load(Ordering::Relaxed), epoch) == ST_DIRTY)
                .collect();
            dirty.sort_unstable();
            let mut diags = lock(&self.diags);
            for line in dirty {
                let m = self.meta[line].load(Ordering::Relaxed);
                diags.push(Diagnostic {
                    kind: LintKind::UnflushedDirty,
                    line,
                    site: meta_site(m),
                    tid: meta_tid(m),
                    seq,
                });
            }
        }
        for &l in journal.iter() {
            self.meta[l].store(0, Ordering::Relaxed);
            self.store_seq[l].store(0, Ordering::Relaxed);
        }
        journal.clear();
    }

    /// Builds a report: recorded findings plus one ephemeral
    /// [`LintKind::UnflushedDirty`] entry per currently-dirty line.
    pub(crate) fn report(&self) -> LintReport {
        let mut diags = lock(&self.diags).clone();
        if self.enabled() {
            let epoch = self.fence_epoch.load(Ordering::Relaxed);
            let mut dirty: Vec<usize> = lock(&self.journal)
                .iter()
                .copied()
                .filter(|&l| eff_status(self.meta[l].load(Ordering::Relaxed), epoch) == ST_DIRTY)
                .collect();
            dirty.sort_unstable();
            for line in dirty {
                let m = self.meta[line].load(Ordering::Relaxed);
                diags.push(Diagnostic {
                    kind: LintKind::UnflushedDirty,
                    line,
                    site: meta_site(m),
                    tid: meta_tid(m),
                    seq: self.store_seq[line].load(Ordering::Relaxed),
                });
            }
        }
        LintReport {
            diags,
            pwb_dirty: std::array::from_fn(|i| self.pwb_dirty[i].load(Ordering::Relaxed)),
            pwb_redundant: std::array::from_fn(|i| self.pwb_redundant[i].load(Ordering::Relaxed)),
            pwb_unknown: std::array::from_fn(|i| self.pwb_unknown[i].load(Ordering::Relaxed)),
        }
    }

    /// Copies out the line-state machine, sorted for determinism. Statuses
    /// are materialized under the current fence epoch (a `Flushed` line an
    /// epoch has passed exports as `Clean`), so the flushed-awaiting-fence
    /// worklist of the returned pair is fully derived. Part of
    /// [`crate::PmemPool::snapshot`]: a replay from a restored checkpoint
    /// must compute the same per-event dirty annotations the original
    /// timeline did.
    pub(crate) fn export_state(&self) -> (Vec<(usize, LineState)>, Vec<usize>) {
        let epoch = self.fence_epoch.load(Ordering::Relaxed);
        let mut tracked: Vec<usize> = lock(&self.journal).clone();
        tracked.sort_unstable();
        let mut lines = Vec::with_capacity(tracked.len());
        let mut flushed = Vec::new();
        for l in tracked {
            let m = self.meta[l].load(Ordering::Relaxed);
            let status = match eff_status(m, epoch) {
                ST_DIRTY => Status::Dirty,
                ST_FLUSHED => Status::Flushed,
                ST_CLEAN => Status::Clean,
                _ => continue, // reset raced the journal copy; skip
            };
            if status == Status::Flushed {
                flushed.push(l);
            }
            lines.push((
                l,
                LineState {
                    status,
                    fenced: status == Status::Clean,
                    store_site: meta_site(m),
                    store_tid: meta_tid(m),
                    store_seq: self.store_seq[l].load(Ordering::Relaxed),
                },
            ));
        }
        (lines, flushed)
    }

    /// Replaces the line-state machine with state captured by
    /// [`FlushLint::export_state`] (findings and counters are left to the
    /// caller — [`crate::PmemPool::restore`] clears them first). The
    /// `_flushed` worklist is derived state under the epoch scheme and is
    /// accepted only for signature stability.
    pub(crate) fn import_state(&self, lines: &[(usize, LineState)], _flushed: &[usize]) {
        self.touch();
        let epoch = self.fence_epoch.load(Ordering::Relaxed);
        let mut journal = lock(&self.journal);
        for &l in journal.iter() {
            self.meta[l].store(0, Ordering::Relaxed);
            self.store_seq[l].store(0, Ordering::Relaxed);
        }
        journal.clear();
        for &(l, s) in lines {
            let (st, ep) = match s.status {
                Status::Dirty => (ST_DIRTY, 0),
                // Re-anchor to the *current* epoch: the next fence commits.
                Status::Flushed => (ST_FLUSHED, epoch),
                Status::Clean => (ST_CLEAN, 0),
            };
            self.meta[l].store(
                pack_meta(st, s.store_site, s.store_tid, ep),
                Ordering::Relaxed,
            );
            self.store_seq[l].store(s.store_seq, Ordering::Relaxed);
            journal.push(l);
        }
    }

    /// Forgets all findings, counters and line states.
    pub(crate) fn clear(&self) {
        self.touch();
        let mut journal = lock(&self.journal);
        for &l in journal.iter() {
            self.meta[l].store(0, Ordering::Relaxed);
            self.store_seq[l].store(0, Ordering::Relaxed);
        }
        journal.clear();
        drop(journal);
        lock(&self.diags).clear();
        for i in 0..MAX_SITES {
            self.pwb_dirty[i].store(0, Ordering::Relaxed);
            self.pwb_redundant[i].store(0, Ordering::Relaxed);
            self.pwb_unknown[i].store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint() -> FlushLint {
        FlushLint::new(true, 64)
    }

    #[test]
    fn store_pwb_fence_cycle_is_clean() {
        let l = lint();
        l.on_write(5, 2, 0, 0);
        assert!(l.line_dirty(5));
        assert!(l.on_pwb(5, SiteId(2), 1), "flush of a dirty line is useful");
        assert!(!l.line_dirty(5));
        l.on_fence();
        let r = l.report();
        assert!(r.is_clean(), "{:?}", r.diags);
        assert_eq!(r.pwb_dirty[2], 1);
        assert_eq!(r.dirty_ratio(SiteId(2)), 1.0);
    }

    #[test]
    fn double_flush_is_redundant() {
        let l = lint();
        l.on_write(5, NO_SITE, 0, 0);
        l.on_pwb(5, SiteId(4), 1);
        assert!(!l.on_pwb(5, SiteId(4), 2), "second flush covers nothing");
        let r = l.report();
        assert_eq!(r.count(LintKind::RedundantPwb), 1);
        let d = r.of_kind(LintKind::RedundantPwb).next().unwrap();
        assert_eq!((d.line, d.site), (5, 4));
        assert_eq!(r.pwb_redundant[4], 1);
    }

    #[test]
    fn reflush_after_fence_is_redundant() {
        let l = lint();
        l.on_write(7, NO_SITE, 0, 0);
        l.on_pwb(7, SiteId(1), 1);
        l.on_fence();
        l.on_pwb(7, SiteId(9), 2);
        let r = l.report();
        assert_eq!(r.count(LintKind::RedundantPwb), 1);
        assert_eq!(r.of_kind(LintKind::RedundantPwb).next().unwrap().site, 9);
    }

    #[test]
    fn unknown_line_flush_not_flagged() {
        let l = lint();
        l.on_pwb(3, SiteId(0), 0);
        let r = l.report();
        assert!(r.is_clean());
        assert_eq!(r.pwb_unknown[0], 1);
        // ... but a second flush of it now is
        l.on_pwb(3, SiteId(0), 1);
        assert_eq!(l.report().count(LintKind::RedundantPwb), 1);
    }

    #[test]
    fn store_after_flush_redirties() {
        let l = lint();
        l.on_write(2, NO_SITE, 0, 0);
        l.on_pwb(2, SiteId(0), 1);
        l.on_write(2, NO_SITE, 0, 2);
        assert!(
            l.on_pwb(2, SiteId(0), 3),
            "line was re-dirtied, flush useful"
        );
        assert!(l.report().is_clean());
    }

    #[test]
    fn dirty_line_reported_with_originating_store() {
        let l = lint();
        l.on_write(11, 7, 3, 42);
        l.on_write(11, 8, 4, 43); // same dirty epoch: first store wins
        let r = l.report();
        assert_eq!(r.count(LintKind::UnflushedDirty), 1);
        let d = r.of_kind(LintKind::UnflushedDirty).next().unwrap();
        assert_eq!((d.line, d.site, d.tid, d.seq), (11, 7, 3, 42));
    }

    #[test]
    fn crash_makes_dirty_findings_permanent_and_resets() {
        let l = lint();
        l.on_write(11, 7, 0, 0);
        l.on_crash(99);
        assert_eq!(l.report().count(LintKind::UnflushedDirty), 1);
        assert!(!l.line_dirty(11), "crash resets line state");
        // second report does not double-count
        assert_eq!(l.report().count(LintKind::UnflushedDirty), 1);
    }

    #[test]
    fn publish_of_dirty_line_flags() {
        let l = lint();
        l.on_write(20, 3, 0, 0);
        l.on_publish(20, 1, 5);
        let r = l.report();
        assert_eq!(r.count(LintKind::UnfencedPublish), 1);
        let d = r.of_kind(LintKind::UnfencedPublish).next().unwrap();
        assert_eq!((d.line, d.site, d.tid), (20, 3, 1));
    }

    #[test]
    fn publish_of_flushed_unfenced_line_flags() {
        let l = lint();
        l.on_write(20, 3, 0, 0);
        l.on_pwb(20, SiteId(3), 1);
        l.on_publish(20, 0, 2); // pwb'd but no fence yet
        assert_eq!(l.report().count(LintKind::UnfencedPublish), 1);
    }

    #[test]
    fn elided_pwb_of_dirty_line_trips() {
        // The flush-elision layer's soundness tripwire: if the layer ever
        // claims it elided a flush of a line *this* table still holds
        // dirty, the elision dropped a write-back the algorithm needed.
        let l = lint();
        l.on_write(13, 6, 2, 7);
        l.on_elided_pwb(13, SiteId(9));
        let r = l.report();
        assert_eq!(r.count(LintKind::ElidedDirtyPwb), 1);
        let d = r.of_kind(LintKind::ElidedDirtyPwb).next().unwrap();
        assert_eq!((d.line, d.site, d.seq), (13, 9, 7));
        // Nothing executed, so the line stays dirty: a later crash still
        // reports the loss itself.
        assert!(l.line_dirty(13));
        l.on_crash(99);
        assert_eq!(l.report().count(LintKind::UnflushedDirty), 1);
    }

    #[test]
    fn elided_pwb_of_clean_line_is_silent() {
        let l = lint();
        l.on_write(13, 6, 0, 0);
        l.on_pwb(13, SiteId(6), 1);
        l.on_fence();
        l.on_elided_pwb(13, SiteId(9)); // genuinely redundant: fine
        l.on_elided_pwb(13, SiteId(9));
        assert!(l.report().is_clean());
        // Flushed-but-unfenced also passes: the flush is in flight, a
        // repeat pwb would add nothing.
        l.on_write(14, 2, 0, 2);
        l.on_pwb(14, SiteId(2), 3);
        l.on_elided_pwb(14, SiteId(9));
        assert_eq!(l.report().count(LintKind::ElidedDirtyPwb), 0);
    }

    #[test]
    fn publish_of_fenced_line_is_clean() {
        let l = lint();
        l.on_write(20, 3, 0, 0);
        l.on_pwb(20, SiteId(3), 1);
        l.on_fence();
        l.on_publish(20, 0, 2);
        assert!(l.report().is_clean());
    }

    #[test]
    fn disabled_lint_tracks_state_but_records_nothing() {
        let l = FlushLint::new(false, 64);
        l.on_write(5, NO_SITE, 0, 0);
        l.on_pwb(5, SiteId(0), 1);
        l.on_pwb(5, SiteId(0), 2); // would be redundant
        assert!(!l.line_dirty(5));
        let r = l.report();
        assert!(r.is_clean());
        assert_eq!(r.pwb_redundant[0], 0);
    }

    #[test]
    fn clear_forgets_everything() {
        let l = lint();
        l.on_write(5, NO_SITE, 0, 0);
        l.on_pwb(5, SiteId(0), 1);
        l.on_pwb(5, SiteId(0), 2);
        l.clear();
        let r = l.report();
        assert!(r.is_clean());
        assert_eq!(r.pwb_dirty[0], 0);
        assert_eq!(r.pwb_redundant[0], 0);
    }

    #[test]
    fn export_import_round_trips_effective_state() {
        let l = lint();
        l.on_write(2, 1, 0, 10); // dirty
        l.on_write(3, 2, 0, 11);
        l.on_pwb(3, SiteId(2), 12); // flushed, unfenced
        l.on_write(4, 3, 0, 13);
        l.on_pwb(4, SiteId(3), 14);
        l.on_fence(); // line 4 clean; line 3 was flushed before the same
                      // fence, so it commits too
        l.on_write(3, 2, 0, 15); // re-dirty 3
        let (lines, flushed) = l.export_state();
        let other = lint();
        other.import_state(&lines, &flushed);
        assert!(other.line_dirty(2));
        assert!(other.line_dirty(3));
        assert!(!other.line_dirty(4));
        let (lines2, flushed2) = other.export_state();
        assert_eq!(lines.len(), lines2.len());
        assert_eq!(flushed, flushed2);
        for ((l1, s1), (l2, s2)) in lines.iter().zip(lines2.iter()) {
            assert_eq!(l1, l2);
            assert_eq!(s1.status, s2.status);
            assert_eq!(s1.fenced, s2.fenced);
            assert_eq!(s1.store_site, s2.store_site);
            assert_eq!(s1.store_seq, s2.store_seq);
        }
    }

    #[test]
    fn fence_commits_only_flushes_recorded_before_it() {
        // A pwb after a fence must wait for the *next* fence.
        let l = lint();
        l.on_write(6, 1, 0, 0);
        l.on_fence(); // no flush recorded: line stays dirty
        assert!(l.line_dirty(6));
        l.on_pwb(6, SiteId(1), 1);
        // Flushed but not fenced: publishing it must still flag.
        l.on_publish(6, 0, 2);
        assert_eq!(l.report().count(LintKind::UnfencedPublish), 1);
        l.on_fence();
        l.on_publish(6, 0, 3);
        assert_eq!(l.report().count(LintKind::UnfencedPublish), 1, "fenced now");
    }
}
