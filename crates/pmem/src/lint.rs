//! `FlushLint`: a dynamic checker for persistence-instruction placement.
//!
//! The paper's methodology treats every `pwb` code line as a cost knob —
//! misplaced flushes are either wasted work (flushing a line that is
//! already clean) or missing durability (a store whose line is never
//! written back, which a crash under [`crate::PessimistAdversary`] loses).
//! The lint tracks, per cache line, the same three-way distinction the
//! shadow crash model resolves at crash time — *dirty* (stored since the
//! last covering `pwb`), *flushed* (written back, awaiting a fence) and
//! *clean* (committed by `pfence`/`psync`) — and flags:
//!
//! * **redundant `pwb`s**: a flush of a line the lint positively knows is
//!   clean (double flush, or re-flush after a fence with no intervening
//!   store). Lines the lint has never seen are *not* flagged — without a
//!   prior event there is no evidence the flush is wasted.
//! * **unflushed dirty lines**: lines still dirty when a report is taken or
//!   when a simulated crash resolves — exactly the writes a
//!   [`crate::PessimistAdversary`] crash would surface as lost — reported
//!   with the originating store's site, thread and sequence number.
//! * **fence-ordering violations**: a successful CAS that publishes a
//!   pointer to a line that was stored but not `pwb`'d-and-fenced before
//!   the CAS. Under explicit epoch persistency the published pointer can
//!   become durable while the pointee's content is lost; the paper's
//!   algorithms all `pbarrier` new nodes and descriptors before publishing
//!   them, and this check catches code that forgets to.
//!
//! The lint is event-driven and needs no shadow memory, so it works in
//! both Model and Perf pools; enable it via [`crate::PoolCfg::lint`] or
//! [`crate::PmemPool::set_lint_enabled`] and pull findings with
//! [`crate::PmemPool::lint_report`]:
//!
//! ```
//! use pmem::{LintKind, PmemPool, PoolCfg, SiteId};
//! let pool = PmemPool::new(PoolCfg { lint: true, ..PoolCfg::model(1 << 20) });
//! let a = pool.alloc_lines(1);
//! pool.store_at(a, 1, SiteId(4));
//! pool.pwb(a, SiteId(4)); // pays for new persistence: fine
//! pool.pwb(a, SiteId(9)); // re-flushes a line it knows is clean: flagged
//! pool.psync();
//! let report = pool.lint_report();
//! assert!(!report.is_clean());
//! assert_eq!(report.count(LintKind::RedundantPwb), 1);
//! assert_eq!(report.of_kind(LintKind::RedundantPwb).next().unwrap().site, 9);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::persist::{SiteId, MAX_SITES};
use crate::trace::NO_SITE;

/// The kind of a lint finding.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LintKind {
    /// A `pwb` of a line known to be clean: wasted flush traffic.
    RedundantPwb,
    /// A line still dirty at report/crash time: its stores are lost by a
    /// pessimist crash.
    UnflushedDirty,
    /// A successful CAS published a pointer to a line whose latest store
    /// was not flushed and fenced first.
    UnfencedPublish,
}

impl LintKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            LintKind::RedundantPwb => "redundant-pwb",
            LintKind::UnflushedDirty => "unflushed-dirty",
            LintKind::UnfencedPublish => "unfenced-publish",
        }
    }
}

/// One lint finding.
#[derive(Copy, Clone, Debug)]
pub struct Diagnostic {
    /// What was found.
    pub kind: LintKind,
    /// The cache line concerned.
    pub line: usize,
    /// The attributed call site: the `pwb`'s site for
    /// [`LintKind::RedundantPwb`], the originating *store*'s site for
    /// [`LintKind::UnflushedDirty`] and [`LintKind::UnfencedPublish`]
    /// ([`NO_SITE`] when the store was issued without attribution).
    pub site: u8,
    /// Trace index of the thread that triggered the finding.
    pub tid: usize,
    /// Global event sequence number at detection time.
    pub seq: u64,
}

/// A pulled copy of the lint's findings and per-site flush counters.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Findings, ascending by [`Diagnostic::seq`]. Includes one
    /// [`LintKind::UnflushedDirty`] entry per line still dirty when the
    /// report was taken.
    pub diags: Vec<Diagnostic>,
    /// Per-site count of `pwb`s that wrote back a dirty line (useful work).
    pub pwb_dirty: [u64; MAX_SITES],
    /// Per-site count of redundant `pwb`s (line known clean).
    pub pwb_redundant: [u64; MAX_SITES],
    /// Per-site count of `pwb`s of lines the lint had no history for.
    pub pwb_unknown: [u64; MAX_SITES],
}

impl LintReport {
    /// No findings at all?
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of findings of `kind`.
    pub fn count(&self, kind: LintKind) -> usize {
        self.diags.iter().filter(|d| d.kind == kind).count()
    }

    /// Findings of `kind`.
    pub fn of_kind(&self, kind: LintKind) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(move |d| d.kind == kind)
    }

    /// Fraction of `pwb`s at `site` that flushed a dirty line, among those
    /// whose line state was known (1.0 when none were known — no evidence
    /// of waste).
    pub fn dirty_ratio(&self, site: SiteId) -> f64 {
        let i = site.0 as usize;
        let known = self.pwb_dirty[i] + self.pwb_redundant[i];
        if known == 0 {
            1.0
        } else {
            self.pwb_dirty[i] as f64 / known as f64
        }
    }

    /// Human-readable rendering; `name_of` maps sites to registered names
    /// (see [`crate::PmemPool::site_name`]).
    pub fn render(&self, name_of: impl Fn(u8) -> Option<&'static str>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.diags.is_empty() {
            out.push_str("flush-lint: clean\n");
            return out;
        }
        for d in &self.diags {
            let site = match (d.site, name_of(d.site)) {
                (NO_SITE, _) => "<unattributed>".to_string(),
                (id, Some(name)) => format!("site {id} ({name})"),
                (id, None) => format!("site {id}"),
            };
            let _ = writeln!(
                out,
                "flush-lint: {:<16} line {:<6} {} [tid {} seq {}]",
                d.kind.label(),
                d.line,
                site,
                d.tid,
                d.seq
            );
        }
        out
    }
}

/// Line states the lint distinguishes (absence from the map = unknown).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Status {
    /// Stored since the last covering `pwb`; lost by a pessimist crash.
    Dirty,
    /// Written back; durable only after the next fence.
    Flushed,
    /// Written back and fenced; a further `pwb` without a store is wasted.
    Clean,
}

#[derive(Copy, Clone, Debug)]
pub(crate) struct LineState {
    status: Status,
    /// Fence seen since the covering `pwb` (meaningful when `Flushed`).
    fenced: bool,
    /// Originating store of the latest dirty epoch (first store since the
    /// line was last clean), for attribution.
    store_site: u8,
    store_tid: usize,
    store_seq: u64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Poison-tolerant: injected CrashPoint panics unwind through callers
    // while no lint lock is held, but a foreign panic must not wedge the
    // checker.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Soft cap on tracked lines; beyond it, `Clean` entries are evicted (they
/// only serve redundant-flush detection, the cheapest information to lose).
const MAX_TRACKED_LINES: usize = 1 << 20;

/// The live checker owned by a pool (see module docs).
pub(crate) struct FlushLint {
    enabled: AtomicBool,
    lines: Mutex<HashMap<usize, LineState>>,
    /// Lines currently in `Flushed` state (drained by fences), so a fence
    /// costs O(flushes since the last fence), not O(all tracked lines).
    flushed: Mutex<Vec<usize>>,
    diags: Mutex<Vec<Diagnostic>>,
    pwb_dirty: [AtomicU64; MAX_SITES],
    pwb_redundant: [AtomicU64; MAX_SITES],
    pwb_unknown: [AtomicU64; MAX_SITES],
    /// Bumped by every mutation of the line-state machine. Pool restore
    /// compares generations to skip re-importing a table nothing touched
    /// (the common case for the sweep engine's dark replays, where neither
    /// the trace nor the lint drives the state machine).
    generation: AtomicU64,
}

impl FlushLint {
    pub(crate) fn new(enabled: bool) -> Self {
        FlushLint {
            enabled: AtomicBool::new(enabled),
            lines: Mutex::new(HashMap::new()),
            flushed: Mutex::new(Vec::new()),
            diags: Mutex::new(Vec::new()),
            pwb_dirty: std::array::from_fn(|_| AtomicU64::new(0)),
            pwb_redundant: std::array::from_fn(|_| AtomicU64::new(0)),
            pwb_unknown: std::array::from_fn(|_| AtomicU64::new(0)),
            generation: AtomicU64::new(0),
        }
    }

    /// Opaque mutation counter over the line-state machine (see the field
    /// docs); equal generations mean the table is bit-identical.
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    #[inline]
    fn touch(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// Current dirty state of `line` (for trace events).
    pub(crate) fn line_dirty(&self, line: usize) -> bool {
        matches!(lock(&self.lines).get(&line), Some(s) if s.status == Status::Dirty)
    }

    /// A store (or successful CAS) wrote `line`. Returns the dirty state
    /// after the event (always `true`).
    pub(crate) fn on_write(&self, line: usize, site: u8, tid: usize, seq: u64) -> bool {
        self.touch();
        let mut lines = lock(&self.lines);
        if lines.len() >= MAX_TRACKED_LINES {
            lines.retain(|_, s| s.status != Status::Clean);
        }
        let e = lines.entry(line).or_insert(LineState {
            status: Status::Clean,
            fenced: true,
            store_site: site,
            store_tid: tid,
            store_seq: seq,
        });
        if e.status != Status::Dirty {
            // a fresh dirty epoch: this store is the one a lost line would
            // be attributed to
            e.store_site = site;
            e.store_tid = tid;
            e.store_seq = seq;
        }
        e.status = Status::Dirty;
        e.fenced = false;
        true
    }

    /// A `pwb` of `line` was issued at `site`. Returns whether the line was
    /// dirty before the flush (a `false` marks the flush as redundant or of
    /// unknown use).
    pub(crate) fn on_pwb(&self, line: usize, site: SiteId, tid: usize, seq: u64) -> bool {
        self.touch();
        let count = self.enabled();
        let mut lines = lock(&self.lines);
        match lines.get_mut(&line) {
            Some(e) if e.status == Status::Dirty => {
                e.status = Status::Flushed;
                e.fenced = false;
                drop(lines);
                lock(&self.flushed).push(line);
                if count {
                    self.pwb_dirty[site.idx()].fetch_add(1, Ordering::Relaxed);
                }
                true
            }
            Some(e) => {
                // Flushed (double flush) or Clean (re-flush after a fence):
                // the line's content is already on its way to persistence.
                debug_assert!(matches!(e.status, Status::Flushed | Status::Clean));
                drop(lines);
                if count {
                    self.pwb_redundant[site.idx()].fetch_add(1, Ordering::Relaxed);
                    lock(&self.diags).push(Diagnostic {
                        kind: LintKind::RedundantPwb,
                        line,
                        site: site.0,
                        tid,
                        seq,
                    });
                }
                false
            }
            None => {
                // Never seen: can't prove the flush wasted; start tracking.
                lines.insert(
                    line,
                    LineState {
                        status: Status::Flushed,
                        fenced: false,
                        store_site: NO_SITE,
                        store_tid: tid,
                        store_seq: seq,
                    },
                );
                drop(lines);
                lock(&self.flushed).push(line);
                if count {
                    self.pwb_unknown[site.idx()].fetch_add(1, Ordering::Relaxed);
                }
                false
            }
        }
    }

    /// A `pfence`/`psync` completed: every flushed line is now committed.
    pub(crate) fn on_fence(&self) {
        self.touch();
        let pending: Vec<usize> = std::mem::take(&mut *lock(&self.flushed));
        if pending.is_empty() {
            return;
        }
        let mut lines = lock(&self.lines);
        for line in pending {
            if let Some(e) = lines.get_mut(&line) {
                if e.status == Status::Flushed {
                    e.status = Status::Clean;
                    e.fenced = true;
                }
            }
        }
    }

    /// A successful CAS stored `new` into some word; if `new` decodes to a
    /// pool pointer whose target line is not flushed-and-fenced, the CAS
    /// published unpersisted content. `target_line` is the decoded line
    /// (the pool validates the pointer shape before calling).
    pub(crate) fn on_publish(&self, target_line: usize, tid: usize, seq: u64) {
        self.touch();
        if !self.enabled() {
            return;
        }
        let lines = lock(&self.lines);
        let Some(e) = lines.get(&target_line) else {
            return;
        };
        let at_risk = e.status == Status::Dirty || (e.status == Status::Flushed && !e.fenced);
        if at_risk {
            let site = e.store_site;
            drop(lines);
            lock(&self.diags).push(Diagnostic {
                kind: LintKind::UnfencedPublish,
                line: target_line,
                site,
                tid,
                seq,
            });
        }
    }

    /// A simulated crash resolved: every line still dirty is recorded as a
    /// permanent finding (the losses the adversary could surface), and all
    /// tracked state resets — post-crash, volatile and persisted views
    /// agree everywhere.
    pub(crate) fn on_crash(&self, seq: u64) {
        self.touch();
        let mut lines = lock(&self.lines);
        if self.enabled() {
            let mut diags = lock(&self.diags);
            let mut dirty: Vec<(&usize, &LineState)> = lines
                .iter()
                .filter(|(_, s)| s.status == Status::Dirty)
                .collect();
            dirty.sort_by_key(|(line, _)| **line);
            for (line, s) in dirty {
                diags.push(Diagnostic {
                    kind: LintKind::UnflushedDirty,
                    line: *line,
                    site: s.store_site,
                    tid: s.store_tid,
                    seq,
                });
            }
        }
        lines.clear();
        lock(&self.flushed).clear();
    }

    /// Builds a report: recorded findings plus one ephemeral
    /// [`LintKind::UnflushedDirty`] entry per currently-dirty line.
    pub(crate) fn report(&self) -> LintReport {
        let mut diags = lock(&self.diags).clone();
        if self.enabled() {
            let lines = lock(&self.lines);
            let mut dirty: Vec<(&usize, &LineState)> = lines
                .iter()
                .filter(|(_, s)| s.status == Status::Dirty)
                .collect();
            dirty.sort_by_key(|(line, _)| **line);
            for (line, s) in dirty {
                diags.push(Diagnostic {
                    kind: LintKind::UnflushedDirty,
                    line: *line,
                    site: s.store_site,
                    tid: s.store_tid,
                    seq: s.store_seq,
                });
            }
        }
        LintReport {
            diags,
            pwb_dirty: std::array::from_fn(|i| self.pwb_dirty[i].load(Ordering::Relaxed)),
            pwb_redundant: std::array::from_fn(|i| self.pwb_redundant[i].load(Ordering::Relaxed)),
            pwb_unknown: std::array::from_fn(|i| self.pwb_unknown[i].load(Ordering::Relaxed)),
        }
    }

    /// Copies out the line-state machine (tracked lines plus the
    /// flushed-awaiting-fence worklist), sorted for determinism. Part of
    /// [`crate::PmemPool::snapshot`]: a replay from a restored checkpoint
    /// must compute the same per-event dirty annotations the original
    /// timeline did.
    pub(crate) fn export_state(&self) -> (Vec<(usize, LineState)>, Vec<usize>) {
        let mut lines: Vec<(usize, LineState)> =
            lock(&self.lines).iter().map(|(&l, &s)| (l, s)).collect();
        lines.sort_unstable_by_key(|&(l, _)| l);
        (lines, lock(&self.flushed).clone())
    }

    /// Replaces the line-state machine with state captured by
    /// [`FlushLint::export_state`] (findings and counters are left to the
    /// caller — [`crate::PmemPool::restore`] clears them first).
    pub(crate) fn import_state(&self, lines: &[(usize, LineState)], flushed: &[usize]) {
        self.touch();
        let mut tbl = lock(&self.lines);
        tbl.clear();
        for &(l, s) in lines {
            tbl.insert(l, s);
        }
        drop(tbl);
        *lock(&self.flushed) = flushed.to_vec();
    }

    /// Forgets all findings, counters and line states.
    pub(crate) fn clear(&self) {
        self.touch();
        lock(&self.lines).clear();
        lock(&self.flushed).clear();
        lock(&self.diags).clear();
        for i in 0..MAX_SITES {
            self.pwb_dirty[i].store(0, Ordering::Relaxed);
            self.pwb_redundant[i].store(0, Ordering::Relaxed);
            self.pwb_unknown[i].store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint() -> FlushLint {
        FlushLint::new(true)
    }

    #[test]
    fn store_pwb_fence_cycle_is_clean() {
        let l = lint();
        l.on_write(5, 2, 0, 0);
        assert!(l.line_dirty(5));
        assert!(
            l.on_pwb(5, SiteId(2), 0, 1),
            "flush of a dirty line is useful"
        );
        assert!(!l.line_dirty(5));
        l.on_fence();
        let r = l.report();
        assert!(r.is_clean(), "{:?}", r.diags);
        assert_eq!(r.pwb_dirty[2], 1);
        assert_eq!(r.dirty_ratio(SiteId(2)), 1.0);
    }

    #[test]
    fn double_flush_is_redundant() {
        let l = lint();
        l.on_write(5, NO_SITE, 0, 0);
        l.on_pwb(5, SiteId(4), 0, 1);
        assert!(!l.on_pwb(5, SiteId(4), 0, 2), "second flush covers nothing");
        let r = l.report();
        assert_eq!(r.count(LintKind::RedundantPwb), 1);
        let d = r.of_kind(LintKind::RedundantPwb).next().unwrap();
        assert_eq!((d.line, d.site), (5, 4));
        assert_eq!(r.pwb_redundant[4], 1);
    }

    #[test]
    fn reflush_after_fence_is_redundant() {
        let l = lint();
        l.on_write(7, NO_SITE, 0, 0);
        l.on_pwb(7, SiteId(1), 0, 1);
        l.on_fence();
        l.on_pwb(7, SiteId(9), 0, 2);
        let r = l.report();
        assert_eq!(r.count(LintKind::RedundantPwb), 1);
        assert_eq!(r.of_kind(LintKind::RedundantPwb).next().unwrap().site, 9);
    }

    #[test]
    fn unknown_line_flush_not_flagged() {
        let l = lint();
        l.on_pwb(3, SiteId(0), 0, 0);
        let r = l.report();
        assert!(r.is_clean());
        assert_eq!(r.pwb_unknown[0], 1);
        // ... but a second flush of it now is
        l.on_pwb(3, SiteId(0), 0, 1);
        assert_eq!(l.report().count(LintKind::RedundantPwb), 1);
    }

    #[test]
    fn store_after_flush_redirties() {
        let l = lint();
        l.on_write(2, NO_SITE, 0, 0);
        l.on_pwb(2, SiteId(0), 0, 1);
        l.on_write(2, NO_SITE, 0, 2);
        assert!(
            l.on_pwb(2, SiteId(0), 0, 3),
            "line was re-dirtied, flush useful"
        );
        assert!(l.report().is_clean());
    }

    #[test]
    fn dirty_line_reported_with_originating_store() {
        let l = lint();
        l.on_write(11, 7, 3, 42);
        l.on_write(11, 8, 4, 43); // same dirty epoch: first store wins
        let r = l.report();
        assert_eq!(r.count(LintKind::UnflushedDirty), 1);
        let d = r.of_kind(LintKind::UnflushedDirty).next().unwrap();
        assert_eq!((d.line, d.site, d.tid, d.seq), (11, 7, 3, 42));
    }

    #[test]
    fn crash_makes_dirty_findings_permanent_and_resets() {
        let l = lint();
        l.on_write(11, 7, 0, 0);
        l.on_crash(99);
        assert_eq!(l.report().count(LintKind::UnflushedDirty), 1);
        assert!(!l.line_dirty(11), "crash resets line state");
        // second report does not double-count
        assert_eq!(l.report().count(LintKind::UnflushedDirty), 1);
    }

    #[test]
    fn publish_of_dirty_line_flags() {
        let l = lint();
        l.on_write(20, 3, 0, 0);
        l.on_publish(20, 1, 5);
        let r = l.report();
        assert_eq!(r.count(LintKind::UnfencedPublish), 1);
        let d = r.of_kind(LintKind::UnfencedPublish).next().unwrap();
        assert_eq!((d.line, d.site, d.tid), (20, 3, 1));
    }

    #[test]
    fn publish_of_flushed_unfenced_line_flags() {
        let l = lint();
        l.on_write(20, 3, 0, 0);
        l.on_pwb(20, SiteId(3), 0, 1);
        l.on_publish(20, 0, 2); // pwb'd but no fence yet
        assert_eq!(l.report().count(LintKind::UnfencedPublish), 1);
    }

    #[test]
    fn publish_of_fenced_line_is_clean() {
        let l = lint();
        l.on_write(20, 3, 0, 0);
        l.on_pwb(20, SiteId(3), 0, 1);
        l.on_fence();
        l.on_publish(20, 0, 2);
        assert!(l.report().is_clean());
    }

    #[test]
    fn disabled_lint_tracks_state_but_records_nothing() {
        let l = FlushLint::new(false);
        l.on_write(5, NO_SITE, 0, 0);
        l.on_pwb(5, SiteId(0), 0, 1);
        l.on_pwb(5, SiteId(0), 0, 2); // would be redundant
        assert!(!l.line_dirty(5));
        let r = l.report();
        assert!(r.is_clean());
        assert_eq!(r.pwb_redundant[0], 0);
    }

    #[test]
    fn clear_forgets_everything() {
        let l = lint();
        l.on_write(5, NO_SITE, 0, 0);
        l.on_pwb(5, SiteId(0), 0, 1);
        l.on_pwb(5, SiteId(0), 0, 2);
        l.clear();
        let r = l.report();
        assert!(r.is_clean());
        assert_eq!(r.pwb_dirty[0], 0);
        assert_eq!(r.pwb_redundant[0], 0);
    }
}
