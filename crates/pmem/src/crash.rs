//! Crash injection: stop a thread at a precise instrumented memory event.
//!
//! The paper's system model has *system-wide crash failures* that may strike
//! at any point of an operation; detectable recovery means the operation's
//! recovery function must return a correct response no matter where the
//! crash fell. Real hardware can only sample crash points; this simulator
//! enumerates them. Every instrumented pool access (`load`, `store`, `cas`,
//! `pwb`, `pfence`, `psync`) calls [`CrashCtl::tick`]; when a countdown
//! armed with [`CrashCtl::arm_after`] reaches zero — or a broadcast crash is
//! raised with [`CrashCtl::raise`] — the tick panics with a [`CrashPoint`]
//! payload, which [`run_crashable`] converts back into `None`. Tests sweep
//! the countdown over every step of an operation, call
//! [`crate::PmemPool::crash`] to resolve volatile state, and then run the
//! operation's recovery function.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

/// Panic payload distinguishing an injected crash from a genuine bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint;

/// Crash-injection control block shared by all threads of a pool.
pub struct CrashCtl {
    /// Remaining instrumented events before the injected crash; negative
    /// means "no countdown armed".
    countdown: AtomicI64,
    /// When set, *every* tick on *every* thread crashes (system-wide crash).
    broadcast: AtomicBool,
    /// Master switch; kept false in performance runs so `tick` costs one
    /// predictable branch on a read-only flag.
    enabled: AtomicBool,
}

impl CrashCtl {
    pub(crate) fn new() -> Self {
        CrashCtl {
            countdown: AtomicI64::new(-1),
            broadcast: AtomicBool::new(false),
            enabled: AtomicBool::new(false),
        }
    }

    /// Arms a crash after `n` further instrumented events (0 = the very next
    /// event crashes).
    pub fn arm_after(&self, n: u64) {
        self.countdown.store(n as i64, Ordering::SeqCst);
        self.broadcast.store(false, Ordering::SeqCst);
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Raises a system-wide crash: every thread panics with [`CrashPoint`]
    /// at its next instrumented event.
    pub fn raise(&self) {
        self.broadcast.store(true, Ordering::SeqCst);
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Disarms crash injection (normal operation).
    pub fn disarm(&self) {
        self.enabled.store(false, Ordering::SeqCst);
        self.broadcast.store(false, Ordering::SeqCst);
        self.countdown.store(-1, Ordering::SeqCst);
    }

    /// Has a broadcast crash been raised?
    pub fn raised(&self) -> bool {
        self.enabled.load(Ordering::SeqCst) && self.broadcast.load(Ordering::SeqCst)
    }

    /// Called by the pool on every instrumented event. Panics with
    /// [`CrashPoint`] when an armed crash fires.
    #[inline]
    pub fn tick(&self) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.tick_slow();
    }

    #[cold]
    fn tick_slow(&self) {
        if self.broadcast.load(Ordering::SeqCst) {
            std::panic::panic_any(CrashPoint);
        }
        let prev = self.countdown.fetch_sub(1, Ordering::SeqCst);
        if prev == 0 {
            std::panic::panic_any(CrashPoint);
        }
        // prev < 0: countdown already exhausted by another thread or never
        // armed; fall through (disarm is the caller's job after the crash).
    }
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// injected [`CrashPoint`] panics but delegates everything else to the
/// previous hook — so crash sweeps don't spam the log while genuine test
/// failures still print normally. Thread-safe.
fn install_quiet_hook() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashPoint>().is_none() {
                default(info);
            }
        }));
    });
}

/// Runs `f`, converting an injected [`CrashPoint`] panic into `None`.
///
/// Any other panic is propagated — a genuine bug must still fail the test.
/// Safe to call concurrently from many threads.
pub fn run_crashable<R>(f: impl FnOnce() -> R) -> Option<R> {
    // The closures used in crash tests capture `&PmemPool` etc.; unwinding
    // is safe because the pool's internal locks are parking_lot guards that
    // release on unwind and its data is atomics (no torn invariants beyond
    // what the crash model deliberately examines).
    install_quiet_hook();
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Some(v),
        Err(payload) => {
            if payload.downcast_ref::<CrashPoint>().is_some() {
                None
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_ticks_are_free() {
        let c = CrashCtl::new();
        for _ in 0..1000 {
            c.tick();
        }
    }

    #[test]
    fn countdown_fires_exactly_at_n() {
        let c = CrashCtl::new();
        c.arm_after(3);
        let r = run_crashable(|| {
            let mut steps = 0;
            loop {
                c.tick();
                steps += 1;
                if steps > 10 {
                    return steps;
                }
            }
        });
        assert_eq!(r, None);
        // exactly 3 ticks survived before the 4th crashed
        c.disarm();
    }

    #[test]
    fn countdown_zero_crashes_immediately() {
        let c = CrashCtl::new();
        c.arm_after(0);
        assert_eq!(run_crashable(|| c.tick()), None);
        c.disarm();
    }

    #[test]
    fn broadcast_crashes_all_ticks() {
        let c = CrashCtl::new();
        c.raise();
        assert!(c.raised());
        assert_eq!(run_crashable(|| c.tick()), None);
        assert_eq!(run_crashable(|| c.tick()), None);
        c.disarm();
        assert!(!c.raised());
        c.tick(); // no panic after disarm
    }

    #[test]
    fn other_panics_propagate() {
        let r = std::panic::catch_unwind(|| run_crashable(|| panic!("real bug")));
        assert!(r.is_err());
    }

    #[test]
    fn run_crashable_passes_value() {
        assert_eq!(run_crashable(|| 42), Some(42));
    }
}
