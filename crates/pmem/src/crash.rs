//! Crash injection: stop a thread at a precise instrumented memory event.
//!
//! The paper's system model has *system-wide crash failures* that may strike
//! at any point of an operation; detectable recovery means the operation's
//! recovery function must return a correct response no matter where the
//! crash fell. Real hardware can only sample crash points; this simulator
//! enumerates them. Every instrumented pool access (`load`, `store`, `cas`,
//! `pwb`, `pfence`, `psync`) calls [`CrashCtl::tick`]; when a countdown
//! armed with [`CrashCtl::arm_after`] reaches zero — or a broadcast crash is
//! raised with [`CrashCtl::raise`] — the tick panics with a [`CrashPoint`]
//! payload, which [`run_crashable`] converts back into `None`. Tests sweep
//! the countdown over every step of an operation, call
//! [`crate::PmemPool::crash`] to resolve volatile state, and then run the
//! operation's recovery function.

use crate::epoch::{Epoch, EP_CRASH};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

/// Panic payload distinguishing an injected crash from a genuine bug.
///
/// Only [`CrashCtl`] itself raises this payload. [`run_crashable`] converts
/// a `CrashPoint` unwind into `None` **only** when an armed control block
/// actually fired on the unwinding thread; a counterfeit
/// `panic_any(CrashPoint)` from application code propagates like any other
/// panic, so an assertion failure can never masquerade as an injected
/// crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint;

thread_local! {
    /// Set by [`CrashCtl::tick`] immediately before it unwinds with a
    /// [`CrashPoint`]; consumed by [`run_crashable`] to certify that a
    /// caught `CrashPoint` payload really came from an armed control block
    /// on this thread (and not from a counterfeit `panic_any`).
    static INJECTED: Cell<bool> = const { Cell::new(false) };
}

/// Is the in-flight `CrashPoint` unwind (if any) a genuine injected crash?
fn injection_pending() -> bool {
    INJECTED.with(Cell::get)
}

/// Clears and returns the injected-crash marker for this thread.
fn take_injection() -> bool {
    INJECTED.with(|c| c.replace(false))
}

/// Crash-injection control block shared by all threads of a pool.
pub struct CrashCtl {
    /// Remaining instrumented events before the injected crash; negative
    /// means "no countdown armed".
    countdown: AtomicI64,
    /// When set, *every* tick on *every* thread crashes (system-wide crash).
    broadcast: AtomicBool,
    /// Master switch; kept false in performance runs so `tick` costs one
    /// predictable branch on a read-only flag.
    enabled: AtomicBool,
    /// The owning pool's fused instrumentation-epoch word; this block keeps
    /// [`EP_CRASH`] in sync with `enabled` so the pool's hot primitives can
    /// fold the "crash armed?" question into their single epoch load.
    epoch: Epoch,
}

impl CrashCtl {
    /// A standalone control block with a private epoch word (used by tests
    /// that tick by hand; pools share theirs via [`CrashCtl::with_epoch`]).
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        Self::with_epoch(crate::epoch::new_epoch(0))
    }

    /// A control block publishing its armed-state into `epoch`'s
    /// [`EP_CRASH`] bit.
    pub(crate) fn with_epoch(epoch: Epoch) -> Self {
        CrashCtl {
            countdown: AtomicI64::new(-1),
            broadcast: AtomicBool::new(false),
            enabled: AtomicBool::new(false),
            epoch,
        }
    }

    /// Flips the master switch and mirrors it into the shared epoch word.
    ///
    /// SeqCst on both: arming/disarming is a rare control action bracketing
    /// a crashable section, and it must be totally ordered with the
    /// countdown/broadcast stores around it so no tick can observe an armed
    /// switch with a stale countdown (or vice versa).
    fn set_armed(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
        if on {
            self.epoch.fetch_or(EP_CRASH, Ordering::SeqCst);
        } else {
            self.epoch.fetch_and(!EP_CRASH, Ordering::SeqCst);
        }
    }

    /// Arms a crash after `n` further instrumented events (0 = the very next
    /// event crashes).
    pub fn arm_after(&self, n: u64) {
        self.countdown.store(n as i64, Ordering::SeqCst);
        self.broadcast.store(false, Ordering::SeqCst);
        self.set_armed(true);
    }

    /// Raises a system-wide crash: every thread panics with [`CrashPoint`]
    /// at its next instrumented event.
    ///
    /// Unlike a countdown armed with [`CrashCtl::arm_after`] — which
    /// auto-disarms once it fires — a broadcast stays raised until
    /// [`CrashCtl::disarm`] is called: every subsequent [`run_crashable`]
    /// section keeps crashing at its first instrumented event. This is what
    /// lets a harness stop *many* worker threads at once and know that none
    /// of them slipped past the crash.
    ///
    /// ```
    /// use pmem::{PmemPool, PoolCfg, run_crashable};
    /// let pool = PmemPool::new(PoolCfg::model(1 << 20));
    /// let a = pool.alloc_lines(1);
    /// pool.crash_ctl().raise();
    /// // a broadcast keeps firing across consecutive crashable sections...
    /// assert!(run_crashable(|| pool.store(a, 1)).is_none());
    /// assert!(run_crashable(|| pool.store(a, 2)).is_none());
    /// // ...until explicitly disarmed:
    /// pool.crash_ctl().disarm();
    /// assert!(run_crashable(|| pool.store(a, 3)).is_some());
    /// ```
    pub fn raise(&self) {
        self.broadcast.store(true, Ordering::SeqCst);
        self.set_armed(true);
    }

    /// Disarms crash injection (normal operation).
    pub fn disarm(&self) {
        self.set_armed(false);
        self.broadcast.store(false, Ordering::SeqCst);
        self.countdown.store(-1, Ordering::SeqCst);
    }

    /// Remaining countdown events (negative when no countdown is armed).
    ///
    /// Harness introspection: arming a sentinel countdown far beyond the
    /// section's length and reading back the remainder afterwards counts
    /// the section's instrumented events *without* tracing — the sweep
    /// engine's multi-crash tier sizes its second-crash enumeration over a
    /// recovery run this way.
    pub fn remaining(&self) -> i64 {
        self.countdown.load(Ordering::SeqCst)
    }

    /// Has a broadcast crash been raised?
    pub fn raised(&self) -> bool {
        self.enabled.load(Ordering::SeqCst) && self.broadcast.load(Ordering::SeqCst)
    }

    /// Is crash injection currently armed (countdown or broadcast)? After a
    /// countdown crash fires the control block disarms itself, so this
    /// returns `false` until the next [`CrashCtl::arm_after`]/
    /// [`CrashCtl::raise`].
    pub fn armed(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Called by the pool on every instrumented event. Panics with
    /// [`CrashPoint`] when an armed crash fires.
    ///
    /// Ordering: the disarmed check is a **Relaxed** load. Arming is a
    /// harness-level protocol, not a synchronization primitive — every
    /// harness arms *before* starting the crashable section, and the
    /// arm/section hand-off always happens on one thread or across a
    /// spawn/join edge that already synchronizes. A hypothetical stale
    /// "disarmed" view could only delay where a countdown starts, never
    /// corrupt one that threads are actively draining; once the switch is
    /// observed armed, all countdown arithmetic below is SeqCst so that
    /// racing threads agree on exactly one firing decrement.
    #[inline]
    pub fn tick(&self) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.tick_slow();
    }

    #[cold]
    fn tick_slow(&self) {
        // SeqCst throughout the armed path: `broadcast`, the countdown
        // `fetch_sub`, and the auto-disarm stores must form one total order
        // so that concurrent tickers see exactly one countdown reach zero
        // (and none keep decrementing a block another thread already
        // disarmed into the far-negative range).
        if self.broadcast.load(Ordering::SeqCst) {
            INJECTED.with(|c| c.set(true));
            std::panic::panic_any(CrashPoint);
        }
        let prev = self.countdown.fetch_sub(1, Ordering::SeqCst);
        if prev == 0 {
            // Auto-disarm before unwinding: once the crash has fired, every
            // later tick — the unwind path itself, other threads draining,
            // and whatever runs next on this pool — must take the cheap
            // fast path again instead of decrementing forever.
            self.set_armed(false);
            INJECTED.with(|c| c.set(true));
            std::panic::panic_any(CrashPoint);
        }
        if prev < 0 {
            // Countdown already exhausted (the firing thread disarmed, or a
            // racing thread drained it first) or never armed: stop paying
            // the slow path on every subsequent event.
            self.set_armed(false);
        }
    }
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// genuinely injected [`CrashPoint`] panics but delegates everything else
/// to the previous hook — so crash sweeps don't spam the log while genuine
/// test failures (including counterfeit `CrashPoint` payloads raised by
/// application code) still print normally. Thread-safe.
fn install_quiet_hook() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashPoint>().is_none() || !injection_pending() {
                default(info);
            }
        }));
    });
}

/// Runs `f`, converting an injected [`CrashPoint`] panic into `None`.
///
/// Any other panic is propagated with its **original payload** — a genuine
/// bug must still fail the test with its own message. That includes panics
/// whose payload merely *looks* like a crash: a `panic_any(CrashPoint)`
/// raised by application code (rather than by an armed [`CrashCtl`] on
/// this thread) is rethrown, not swallowed. Safe to call concurrently from
/// many threads.
///
/// ```
/// use pmem::{PmemPool, PoolCfg, PessimistAdversary, SiteId, run_crashable};
/// let pool = PmemPool::new(PoolCfg::model(1 << 20));
/// let a = pool.alloc_lines(1);
/// pool.crash_ctl().arm_after(2); // survive 2 events, crash on the 3rd
/// let done = run_crashable(|| {
///     pool.store(a, 7);     // event 0
///     pool.pwb(a, SiteId(0)); // event 1
///     pool.psync();         // event 2 — crashes here
/// });
/// assert!(done.is_none(), "the injected crash interrupted the closure");
/// pool.crash(&mut PessimistAdversary); // resolve what survived
/// assert_eq!(pool.load(a), 0, "the un-synced store was lost");
/// ```
pub fn run_crashable<R>(f: impl FnOnce() -> R) -> Option<R> {
    // The closures used in crash tests capture `&PmemPool` etc.; unwinding
    // is safe because the pool's internal locks are taken with
    // poison-tolerant guards that stay usable after an unwind and its data
    // is atomics (no torn invariants beyond what the crash model
    // deliberately examines).
    install_quiet_hook();
    take_injection(); // defensive: stale marker must not launder a panic
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Some(v),
        Err(payload) => {
            if payload.downcast_ref::<CrashPoint>().is_some() && take_injection() {
                None
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_ticks_are_free() {
        let c = CrashCtl::new();
        for _ in 0..1000 {
            c.tick();
        }
    }

    #[test]
    fn countdown_fires_exactly_at_n() {
        let c = CrashCtl::new();
        c.arm_after(3);
        let r = run_crashable(|| {
            let mut steps = 0;
            loop {
                c.tick();
                steps += 1;
                if steps > 10 {
                    return steps;
                }
            }
        });
        assert_eq!(r, None);
        // exactly 3 ticks survived before the 4th crashed
        c.disarm();
    }

    #[test]
    fn countdown_zero_crashes_immediately() {
        let c = CrashCtl::new();
        c.arm_after(0);
        assert_eq!(run_crashable(|| c.tick()), None);
        c.disarm();
    }

    #[test]
    fn broadcast_crashes_all_ticks() {
        let c = CrashCtl::new();
        c.raise();
        assert!(c.raised());
        assert_eq!(run_crashable(|| c.tick()), None);
        assert_eq!(run_crashable(|| c.tick()), None);
        c.disarm();
        assert!(!c.raised());
        c.tick(); // no panic after disarm
    }

    #[test]
    fn fired_countdown_auto_disarms() {
        // Regression: the control block used to stay enabled (hot) after the
        // crash fired, sending every later tick through the slow path and
        // decrementing the countdown forever. A fired sweep must leave the
        // block disarmed so subsequent ticks take the fast path.
        let c = CrashCtl::new();
        c.arm_after(2);
        assert!(c.armed());
        let r = run_crashable(|| loop {
            c.tick();
        });
        assert_eq!(r, None);
        assert!(!c.armed(), "firing must auto-disarm");
        // No explicit disarm(): ticks must be free (and must not panic).
        for _ in 0..10_000 {
            c.tick();
        }
        assert_eq!(
            c.countdown.load(Ordering::SeqCst),
            -1,
            "fast path must not decrement"
        );
    }

    #[test]
    fn exhausted_countdown_disarms_racing_threads() {
        // Several threads tick concurrently; exactly one fires, the rest see
        // a negative countdown and must switch the block off rather than
        // keep draining it.
        let c = std::sync::Arc::new(CrashCtl::new());
        c.arm_after(40);
        let mut handles = vec![];
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                run_crashable(|| {
                    for _ in 0..10_000 {
                        c.tick();
                    }
                })
                .is_none()
            }));
        }
        let fired = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&f| f)
            .count();
        assert_eq!(fired, 1, "exactly one thread takes the injected crash");
        assert!(!c.armed());
        c.tick(); // fast path, no panic
    }

    #[test]
    fn rearm_after_fired_sweep_works() {
        let c = CrashCtl::new();
        c.arm_after(0);
        assert_eq!(run_crashable(|| c.tick()), None);
        assert!(!c.armed());
        c.arm_after(1);
        assert!(c.armed());
        c.tick(); // survives one event
        assert_eq!(run_crashable(|| c.tick()), None);
        assert!(!c.armed());
    }

    #[test]
    fn other_panics_propagate() {
        let r = std::panic::catch_unwind(|| run_crashable(|| panic!("real bug")));
        assert!(r.is_err());
    }

    #[test]
    fn non_crash_panic_keeps_original_payload() {
        // A genuine assertion failure must escape run_crashable with its
        // own payload intact, not be rewritten or swallowed.
        let r = std::panic::catch_unwind(|| {
            run_crashable(|| -> u32 { panic!("torn invariant at node {}", 7) })
        });
        let payload = r.expect_err("must propagate");
        // rustc may const-fold the formatted message into &str.
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .expect("message payload preserved");
        assert_eq!(msg, "torn invariant at node 7");
    }

    #[test]
    fn counterfeit_crashpoint_payload_propagates() {
        // A panic whose payload merely *looks* like an injected crash — no
        // armed CrashCtl fired on this thread — is a genuine bug and must
        // not be converted into None.
        let r = std::panic::catch_unwind(|| run_crashable(|| std::panic::panic_any(CrashPoint)));
        let payload = r.expect_err("counterfeit CrashPoint must propagate");
        assert!(payload.downcast_ref::<CrashPoint>().is_some());
    }

    #[test]
    fn genuine_crash_still_converts_after_counterfeit() {
        // The counterfeit path must not poison the thread-local marker.
        let _ = std::panic::catch_unwind(|| run_crashable(|| std::panic::panic_any(CrashPoint)));
        let c = CrashCtl::new();
        c.arm_after(0);
        assert_eq!(run_crashable(|| c.tick()), None);
    }

    #[test]
    fn broadcast_persists_across_sequential_run_crashable() {
        // Countdowns auto-disarm when they fire; a broadcast must NOT — it
        // models a system-wide power loss that every thread observes, so
        // consecutive crashable sections keep crashing until disarm().
        let c = CrashCtl::new();
        c.raise();
        for round in 0..3 {
            assert_eq!(
                run_crashable(|| c.tick()),
                None,
                "round {round}: broadcast must still be raised"
            );
            assert!(c.armed(), "round {round}: broadcast never auto-disarms");
            assert!(c.raised(), "round {round}");
        }
        c.disarm();
        assert!(!c.armed());
        assert_eq!(run_crashable(|| c.tick()), Some(()));
    }

    #[test]
    fn arm_after_supersedes_raised_broadcast() {
        // Re-arming a countdown while a broadcast is raised switches modes:
        // the broadcast flag is cleared, the countdown governs, and firing
        // auto-disarms as usual.
        let c = CrashCtl::new();
        c.raise();
        c.arm_after(1);
        assert!(!c.raised(), "arm_after clears the broadcast");
        c.tick(); // one event survives
        assert_eq!(run_crashable(|| c.tick()), None);
        assert!(!c.armed(), "fired countdown auto-disarms even after raise");
    }

    #[test]
    fn run_crashable_passes_value() {
        assert_eq!(run_crashable(|| 42), Some(42));
    }
}
