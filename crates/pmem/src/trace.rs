//! Persistence-event tracing: a per-thread bounded ring of instrumented
//! pool events.
//!
//! Every instrumented primitive of [`crate::PmemPool`] — `load`, `store`,
//! `cas`, `pwb`, `pfence`, `psync` — can be recorded as an [`Event`]
//! carrying the event kind, the originating thread, the affected word and
//! cache line, the attributed [`SiteId`] (where the caller supplied one),
//! and the line's dirty state as tracked by the [`crate::lint`] module's
//! line-state machine. Recording is off by default and costs a single
//! relaxed flag load per primitive when disabled; when enabled, each thread
//! appends to its own bounded single-writer ring (oldest events are
//! dropped, with a drop counter), so tracing a long run keeps a window of
//! recent history rather than growing without bound.
//!
//! ## Lock-free record path
//!
//! A ring is written by exactly one thread (its claimant) and read by
//! snapshotters, so the record path takes no lock: the writer publishes a
//! cell with plain release stores and bumps its private head counter.
//! Each cell leads with a *marker* word holding `idx + 1` of the entry it
//! carries, written **before** the entry's payload; a snapshot accepts a
//! cell only if the marker matches the expected index both before and
//! after reading the payload. Because payload stores are `Release` and
//! payload reads `Acquire`, a reader that observed any in-progress payload
//! word is guaranteed to observe the already-written new marker on the
//! re-check — torn cells are discarded (they count as dropped), and on a
//! quiescent pool every retained cell is exact.
//!
//! The trace is the raw material for two consumers:
//!
//! * **debugging** recovery protocols: after a failing crash sweep, the
//!   last events before the injected [`crate::CrashPoint`] show exactly
//!   which stores were still unflushed and which `pwb`s had not been
//!   fenced;
//! * **cost attribution** (`bench::figures::fig_attribution`): events per
//!   site × dirty ratio × redundancy, the table behind the paper's
//!   low/medium/high `pwb` categorization.
//!
//! The retained window plus the drop counter also gives an exact total
//! event count — [`TraceSnapshot::total`] — which is what the `crashsweep`
//! harness uses to enumerate every crash point of a workload:
//!
//! ```
//! use pmem::{EventKind, PmemPool, PoolCfg, SiteId};
//! let pool = PmemPool::new(PoolCfg {
//!     trace: true,
//!     trace_capacity: 2, // keep a 2-event window per thread...
//!     ..PoolCfg::model(1 << 20)
//! });
//! let a = pool.alloc_lines(1);
//! pool.store(a, 1);
//! pool.pwb(a, SiteId(0));
//! pool.psync();
//! let snap = pool.trace_snapshot();
//! assert_eq!(snap.events.len(), 2); // ...the oldest event was dropped,
//! assert_eq!(snap.dropped, 1);
//! assert_eq!(snap.total(), 3); // but the exact total is still known
//! assert_eq!(snap.events.last().unwrap().kind, EventKind::Psync);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::persist::SiteId;

/// Sentinel "no call site" value used for events whose primitive carries no
/// [`SiteId`] (plain `load`/`store`/`cas` and fences).
pub const NO_SITE: u8 = u8::MAX;

/// Number of per-thread rings a trace multiplexes over. Threads claim a
/// ring by CAS on first record (linear probe from `tid % N_RINGS`);
/// [`Trace::clear`] — which only runs at quiescent points — releases every
/// claim, so a long-lived pool serving many short-lived threads (the
/// explore engine spawns fresh workers per schedule) cannot exhaust the
/// slots.
const N_RINGS: usize = 64;

/// Words per ring cell: marker (`idx + 1`), seq, packed
/// addr/kind/site/dirty/tid ([`pack_cell`]). The fourth word is padding
/// that keeps the cell stride a power of two (cheap index→offset math) —
/// and it keeps one event's three live words from straddling cache lines.
const CELL_WORDS: usize = 4;

/// Sentinel owner: ring unclaimed.
const FREE: usize = usize::MAX;

/// Allocator for [`Trace::id`]. Starts at 1 so `trace_id == 0` marks an
/// empty [`RingCache`]; a `u64` counter never wraps in practice, so an id
/// is never reused across trace instances.
static TRACE_IDS: AtomicU64 = AtomicU64::new(1);

/// Per-thread memo of the ring this thread writes in one trace instance.
/// Turns the steady-state record path into raw stores: no owner probe, no
/// `OnceLock` deref, no bounds checks. Validity is one compare (checked in
/// [`Trace::record`]): ids are never reused and [`Trace::clear`] re-keys
/// the instance, so `trace_id` matching a live `&self` proves both that
/// the pointers are into that instance's rings and that no quiescent
/// clear has released ring claims since the memo was taken.
#[derive(Copy, Clone)]
struct RingCache {
    trace_id: u64,
    buf: *const AtomicU64,
    head: *const AtomicU64,
    mask: usize,
    /// The owning thread's [`trace_tid`], memoized so a cache hit needs no
    /// thread-local lookup at all.
    tid: usize,
}

thread_local! {
    static RING_CACHE: std::cell::Cell<RingCache> = const {
        std::cell::Cell::new(RingCache {
            trace_id: 0,
            buf: std::ptr::null(),
            head: std::ptr::null(),
            mask: 0,
            tid: 0,
        })
    };
}

/// Sequence numbers handed to one thread per refill of its [`SeqBlock`].
/// Small enough that cross-thread ordering skew stays within a handful of
/// events; large enough to amortize the global `fetch_add` (a full barrier
/// on x86) across a block.
const SEQ_BLOCK_LEN: u64 = 8;

/// Per-thread block of preallocated sequence numbers, keyed like
/// [`RingCache`] by the owning trace's current id. Turns the per-event
/// global `fetch_add` — the single most expensive instruction of the
/// observers-on hot path — into a thread-local cursor bump, refilled every
/// [`SEQ_BLOCK_LEN`] events.
///
/// Semantics: seqs stay globally unique and strictly monotone per thread.
/// Under genuinely parallel recording, *cross-thread* order becomes
/// approximate (a block-window skew); in every deterministic harness —
/// crash sweeps, the explore engine, checkpoint replays, all of which
/// drive events from one thread at a time with quiescent boundaries —
/// allocation degenerates to exactly the contiguous values a per-event
/// `fetch_add` would produce, which is what keeps checkpoint-vs-scratch
/// replay equality ([`Trace::seq_checkpoint`]) intact.
#[derive(Copy, Clone)]
struct SeqBlock {
    trace_id: u64,
    next: u64,
    end: u64,
}

thread_local! {
    static SEQ_BLOCK: std::cell::Cell<SeqBlock> = const {
        std::cell::Cell::new(SeqBlock {
            trace_id: 0,
            next: 0,
            end: 0,
        })
    };
}

/// Process-wide small integer identifying the calling thread in trace
/// events. Assigned on first use, stable for the thread's lifetime.
pub(crate) fn trace_tid() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static TID: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    TID.with(|t| {
        let v = t.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

/// The kind of instrumented event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Atomic word read.
    Load,
    /// Atomic word write.
    Store,
    /// Successful compare-and-swap (wrote the word).
    Cas,
    /// Failed compare-and-swap (no write happened).
    CasFail,
    /// Cache-line write-back.
    Pwb,
    /// Ordering fence.
    Pfence,
    /// Durability fence.
    Psync,
}

impl EventKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Load => "load",
            EventKind::Store => "store",
            EventKind::Cas => "cas",
            EventKind::CasFail => "cas-fail",
            EventKind::Pwb => "pwb",
            EventKind::Pfence => "pfence",
            EventKind::Psync => "psync",
        }
    }

    fn code(self) -> u64 {
        match self {
            EventKind::Load => 0,
            EventKind::Store => 1,
            EventKind::Cas => 2,
            EventKind::CasFail => 3,
            EventKind::Pwb => 4,
            EventKind::Pfence => 5,
            EventKind::Psync => 6,
        }
    }

    fn from_code(c: u64) -> EventKind {
        match c {
            0 => EventKind::Load,
            1 => EventKind::Store,
            2 => EventKind::Cas,
            3 => EventKind::CasFail,
            4 => EventKind::Pwb,
            5 => EventKind::Pfence,
            _ => EventKind::Psync,
        }
    }
}

/// One recorded pool event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number: unique across all threads of the pool and
    /// strictly increasing in each thread's record order. Seqs are issued
    /// from per-thread banks (`SEQ_BLOCK_LEN` at a time), so under true
    /// concurrency they are *not* contiguous per thread and cross-thread
    /// order is approximate; under the deterministic harnesses (one
    /// runnable thread at a time, checkpoints reclaim unissued seqs)
    /// allocation degenerates to the old contiguous global order.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Process-wide trace index of the thread that issued the event.
    pub tid: usize,
    /// Attributed call site, or [`NO_SITE`].
    pub site: u8,
    /// Raw word address ([`crate::PAddr::raw`]); 0 for fences.
    pub addr: u64,
    /// Cache line of `addr` (0 for fences).
    pub line: usize,
    /// Dirty state of the affected line. For `store`/`cas` this is the
    /// state *after* the event (always dirty); for `pwb` it is the state
    /// *before* the flush (`false` marks a redundant flush); for `load` the
    /// current state; `false` for fences.
    pub dirty: bool,
}

/// Bits of a cell's packed word holding the raw word address. 2^36 words
/// = 512 GiB of pool — far above any configurable pool ([`crate::PoolCfg`]
/// capacities are process-heap allocations).
const PACK_ADDR_BITS: u32 = 36;
/// Trace tids above this saturate in recorded events (the ring claim still
/// uses the real tid). 65535 concurrently attributable threads is far
/// beyond any in-tree harness; saturation only blurs *labels*, never
/// ordering or safety.
const PACK_TID_MAX: usize = (1 << 16) - 1;

/// Packed cell payload — one word instead of two so the record hot path
/// issues one fewer store per event: addr (36 bits) | kind (3) | site (8)
/// | dirty (1) | tid (16).
fn pack_cell(addr: u64, kind: EventKind, site: u8, dirty: bool, tid: usize) -> u64 {
    debug_assert!(addr < 1 << PACK_ADDR_BITS);
    addr | kind.code() << PACK_ADDR_BITS
        | (site as u64) << (PACK_ADDR_BITS + 3)
        | (dirty as u64) << (PACK_ADDR_BITS + 11)
        | (tid.min(PACK_TID_MAX) as u64) << (PACK_ADDR_BITS + 12)
}

fn unpack_cell(w: u64) -> (u64, EventKind, u8, bool, usize) {
    (
        w & ((1 << PACK_ADDR_BITS) - 1),
        EventKind::from_code(w >> PACK_ADDR_BITS & 0x7),
        (w >> (PACK_ADDR_BITS + 3) & 0xff) as u8,
        w >> (PACK_ADDR_BITS + 11) & 1 == 1,
        (w >> (PACK_ADDR_BITS + 12)) as usize,
    )
}

/// A point-in-time copy of the trace: every retained event, merged across
/// thread rings in global sequence order.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Retained events, ascending by [`Event::seq`].
    pub events: Vec<Event>,
    /// Events discarded because a thread ring was full (plus, on a
    /// snapshot racing active writers, cells torn by a concurrent
    /// overwrite).
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Exact number of events recorded since the last clear — retained plus
    /// dropped. This is the `N` a crash sweep enumerates over: arming a
    /// crash after `k ∈ [0, N)` events covers every instrumented step of
    /// the traced workload.
    pub fn total(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }

    /// Number of retained events of `kind`.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Retained events attributed to `site`.
    pub fn at_site(&self, site: SiteId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.site == site.0)
    }
}

/// One single-writer ring: claimed by a thread on first record, written
/// only by that thread, read by snapshotters.
struct Ring {
    /// Claiming thread's trace tid, or [`FREE`].
    owner: AtomicUsize,
    /// Entries ever pushed by the owner (monotone within a claim; reset
    /// only by a quiescent [`Trace::clear`]).
    head: AtomicU64,
    /// `ring_slots * CELL_WORDS` atomic words, allocated on first claim.
    buf: OnceLock<Box<[AtomicU64]>>,
}

impl Ring {
    fn buf(&self, ring_slots: usize) -> &[AtomicU64] {
        self.buf.get_or_init(|| {
            (0..ring_slots * CELL_WORDS)
                .map(|_| AtomicU64::new(0))
                .collect()
        })
    }
}

/// The live trace owned by a pool (see module docs).
pub(crate) struct Trace {
    enabled: AtomicBool,
    /// Retention window per ring (events kept).
    capacity: usize,
    /// Ring slot count: `capacity` rounded up to a power of two, so the
    /// record path maps an index to a slot with a mask instead of a
    /// division (an integer divide would dominate the whole record cost).
    ring_slots: usize,
    seq: AtomicU64,
    rings: Box<[Ring]>,
    /// Unique id keying per-thread [`RingCache`]s. Never reused — drawn
    /// from [`TRACE_IDS`] at construction and re-drawn by every quiescent
    /// [`Trace::clear`], which thereby invalidates every outstanding memo
    /// (clears release ring claims).
    id: AtomicU64,
}

impl Trace {
    pub(crate) fn new(capacity: usize, enabled: bool) -> Self {
        let capacity = capacity.max(1);
        Trace {
            enabled: AtomicBool::new(enabled),
            capacity,
            ring_slots: capacity.next_power_of_two(),
            seq: AtomicU64::new(0),
            rings: (0..N_RINGS)
                .map(|_| Ring {
                    owner: AtomicUsize::new(FREE),
                    head: AtomicU64::new(0),
                    buf: OnceLock::new(),
                })
                .collect(),
            id: AtomicU64::new(TRACE_IDS.fetch_add(1, Ordering::Relaxed)),
        }
    }

    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// Allocates the next global sequence number (also used by the lint for
    /// diagnostics, so diagnostics interleave correctly with events).
    /// Served from the calling thread's [`SeqBlock`]; see there for the
    /// ordering semantics.
    #[inline]
    pub(crate) fn next_seq(&self) -> u64 {
        let b = SEQ_BLOCK.get();
        if b.trace_id == self.id.load(Ordering::Relaxed) && b.next < b.end {
            SEQ_BLOCK.set(SeqBlock {
                next: b.next + 1,
                ..b
            });
            return b.next;
        }
        self.next_seq_refill()
    }

    /// Block-empty (or foreign-trace) path of [`Trace::next_seq`]: grabs
    /// [`SEQ_BLOCK_LEN`] fresh seqs from the global counter, returns the
    /// first and banks the rest.
    #[cold]
    fn next_seq_refill(&self) -> u64 {
        let s = self.seq.fetch_add(SEQ_BLOCK_LEN, Ordering::Relaxed);
        SEQ_BLOCK.set(SeqBlock {
            trace_id: self.id.load(Ordering::Relaxed),
            next: s + 1,
            end: s + SEQ_BLOCK_LEN,
        });
        s
    }

    /// Returns the calling thread's unissued banked seqs to the global
    /// counter (possible exactly when no other thread has drawn from the
    /// counter since — the single-threaded case) and invalidates the bank.
    /// Returns the counter's resulting value.
    ///
    /// Pool checkpointing calls this so that `trace_seq` in a snapshot is
    /// the *next seq the run would actually issue*: a restored replay
    /// (which rewinds the counter to that value and starts with an empty
    /// bank) then re-issues exactly the seqs the capture run went on to
    /// use — the equality the sweep engine's paranoia mode asserts.
    pub(crate) fn seq_checkpoint(&self) -> u64 {
        let b = SEQ_BLOCK.get();
        if b.trace_id == self.id.load(Ordering::Relaxed) && b.next < b.end {
            let _ = self
                .seq
                .compare_exchange(b.end, b.next, Ordering::AcqRel, Ordering::Relaxed);
            SEQ_BLOCK.set(SeqBlock {
                trace_id: 0,
                next: 0,
                end: 0,
            });
        }
        self.seq.load(Ordering::SeqCst)
    }

    /// The calling thread's ring index: the slot it already owns, else the
    /// first free slot from `tid % N_RINGS` claimed by CAS. With every
    /// in-tree harness a pool sees at most a handful of live threads
    /// between quiescent clears, so the probe hits on the first load.
    #[inline]
    fn ring_idx(&self, tid: usize) -> usize {
        let start = tid % N_RINGS;
        for i in 0..N_RINGS {
            let idx = (start + i) % N_RINGS;
            let owner = self.rings[idx].owner.load(Ordering::Relaxed);
            if owner == tid {
                return idx;
            }
            if owner == FREE
                && self.rings[idx]
                    .owner
                    .compare_exchange(FREE, tid, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return idx;
            }
        }
        // All slots taken by other live threads: share slot `start`. The
        // claimant discipline degrades (two writers may interleave cells),
        // but nothing is unsafe — markers stay self-describing and torn
        // cells are dropped. Unreachable with < 64 live threads.
        start
    }

    /// Appends an event to the calling thread's ring (bounded, lock-free).
    /// The issuing thread's [`trace_tid`] is resolved internally (memoized
    /// in the ring cache, so the steady state pays no thread-local lookup).
    #[inline]
    pub(crate) fn record(&self, seq: u64, kind: EventKind, site: u8, addr: u64, dirty: bool) {
        let cached = RING_CACHE.get();
        if cached.trace_id == self.id.load(Ordering::Relaxed) {
            let packed = pack_cell(addr, kind, site, dirty, cached.tid);
            // Fast path: the cache was filled under THIS trace instance's
            // current id (ids are never reused, and `self` is alive here,
            // so the pointers are into live rings) and no quiescent
            // clear() has re-keyed the instance since — the cached ring is
            // still this thread's.
            unsafe {
                let h = (*cached.head).load(Ordering::Relaxed);
                let cell = cached.buf.add((h as usize & cached.mask) * CELL_WORDS);
                // Marker first (relaxed), payload second (release): a
                // reader that observes any payload word of this entry is
                // guaranteed to observe the new marker on its post-read
                // check (module docs).
                (*cell).store(h + 1, Ordering::Relaxed);
                (*cell.add(1)).store(seq, Ordering::Release);
                (*cell.add(2)).store(packed, Ordering::Release);
                (*cached.head).store(h + 1, Ordering::Release);
            }
            return;
        }
        self.record_uncached(seq, kind, site, addr, dirty);
    }

    /// Cache-miss record: resolves the calling thread's tid and ring,
    /// refills the thread-local cache, and writes the cell through the safe
    /// indexed path.
    #[cold]
    fn record_uncached(&self, seq: u64, kind: EventKind, site: u8, addr: u64, dirty: bool) {
        let tid = trace_tid();
        let packed = pack_cell(addr, kind, site, dirty, tid);
        let id = self.id.load(Ordering::Relaxed);
        let ring = &self.rings[self.ring_idx(tid)];
        let buf = ring.buf(self.ring_slots);
        RING_CACHE.set(RingCache {
            trace_id: id,
            buf: buf.as_ptr(),
            head: &ring.head,
            mask: self.ring_slots - 1,
            tid,
        });
        let h = ring.head.load(Ordering::Relaxed);
        let cell = &buf[(h as usize & (self.ring_slots - 1)) * CELL_WORDS..][..CELL_WORDS];
        cell[0].store(h + 1, Ordering::Relaxed);
        cell[1].store(seq, Ordering::Release);
        cell[2].store(packed, Ordering::Release);
        ring.head.store(h + 1, Ordering::Release);
    }

    /// Exact number of events recorded since the last clear (retained plus
    /// dropped), without merging/sorting the rings — the cheap counterpart
    /// of `snapshot().total()` used by the sweep engine to mark operation
    /// boundaries.
    pub(crate) fn total(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| r.head.load(Ordering::Relaxed))
            .sum()
    }

    /// Rewinds the global sequence counter (pool snapshot/restore only —
    /// replaying from a restored checkpoint must re-issue the same sequence
    /// numbers the original run used past that point).
    pub(crate) fn set_seq(&self, v: u64) {
        self.seq.store(v, Ordering::SeqCst);
    }

    pub(crate) fn snapshot(&self) -> TraceSnapshot {
        let mut events: Vec<Event> = Vec::new();
        let mut dropped: u64 = 0;
        for ring in self.rings.iter() {
            let h = ring.head.load(Ordering::Acquire);
            if h == 0 {
                continue;
            }
            let buf = ring.buf(self.ring_slots);
            let cap = self.capacity as u64;
            let start = h.saturating_sub(cap);
            let mut retained = 0u64;
            for idx in start..h {
                let base = (idx as usize & (self.ring_slots - 1)) * CELL_WORDS;
                if buf[base].load(Ordering::Relaxed) != idx + 1 {
                    continue; // overwritten since `h` was read
                }
                let seq = buf[base + 1].load(Ordering::Acquire);
                let packed = buf[base + 2].load(Ordering::Acquire);
                if buf[base].load(Ordering::Relaxed) != idx + 1 {
                    continue; // torn by a concurrent overwrite
                }
                let (addr, kind, site, dirty, tid) = unpack_cell(packed);
                events.push(Event {
                    seq,
                    kind,
                    tid,
                    site,
                    addr,
                    line: (addr as usize) / crate::addr::WORDS_PER_LINE,
                    dirty,
                });
                retained += 1;
            }
            dropped += h - retained;
        }
        events.sort_by_key(|e| e.seq);
        TraceSnapshot { events, dropped }
    }

    /// Resets the trace. **Quiescent callers only** (pool restore / test
    /// setup): concurrent writers would race the owner release.
    pub(crate) fn clear(&self) {
        // Re-keying the instance invalidates every thread's RingCache memo
        // for it (they re-resolve — and possibly re-claim a different
        // slot — on next record).
        self.id
            .store(TRACE_IDS.fetch_add(1, Ordering::Relaxed), Ordering::Release);
        for ring in self.rings.iter() {
            if ring.head.load(Ordering::Relaxed) == 0 && ring.owner.load(Ordering::Relaxed) == FREE
            {
                continue;
            }
            ring.head.store(0, Ordering::Relaxed);
            // Release the claim so threads that died keep no slot pinned on
            // a long-lived pool. Stale cell contents need no scrub: a
            // reader only visits indices below the new head, and every one
            // of those cells is rewritten (marker included) first.
            ring.owner.store(FREE, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Trace::new(4, true);
        for i in 0..10u64 {
            let seq = t.next_seq();
            t.record(seq, EventKind::Store, NO_SITE, i * 8, true);
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 4, "ring keeps only the newest events");
        assert_eq!(snap.dropped, 6);
        // the newest four survive, in order
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn snapshot_merges_in_sequence_order() {
        let t = Trace::new(64, true);
        for kind in [EventKind::Load, EventKind::Pwb, EventKind::Psync] {
            let seq = t.next_seq();
            t.record(seq, kind, 3, 16, false);
        }
        let snap = t.snapshot();
        assert!(snap.events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(snap.count(EventKind::Pwb), 1);
        assert_eq!(snap.at_site(SiteId(3)).count(), 3);
    }

    #[test]
    fn clear_resets_events_and_drops() {
        let t = Trace::new(1, true);
        for _ in 0..3 {
            let seq = t.next_seq();
            t.record(seq, EventKind::Store, NO_SITE, 8, true);
        }
        t.clear();
        let snap = t.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn event_records_line_of_addr() {
        let t = Trace::new(8, true);
        let seq = t.next_seq();
        t.record(seq, EventKind::Pwb, 2, 17, true);
        let snap = t.snapshot();
        assert_eq!(snap.events[0].line, 17 / crate::addr::WORDS_PER_LINE);
        assert_eq!(snap.events[0].addr, 17);
    }

    /// Stress the lock-free record path: writer threads append concurrently
    /// while a snapshotter races them, then a quiescent snapshot must hold
    /// every event exactly once. Each event's `addr` encodes
    /// `writer << 32 | i`, so the checks need no assumption about which
    /// trace tid a writer drew.
    ///
    /// Ordering contract under `SeqBlock` banking: seqs are globally unique
    /// and *per-thread monotone* in record order, but a thread's seqs are
    /// NOT contiguous (banks interleave), and cross-thread order is only
    /// approximate — so the test asserts per-writer order and global seq
    /// uniqueness, never inter-writer interleaving.
    #[test]
    fn concurrent_records_keep_per_thread_order_and_lose_nothing() {
        use std::sync::Arc;
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 2_000;

        fn check_consistent(snap: &TraceSnapshot) {
            let mut last = [-1i64; WRITERS];
            for e in &snap.events {
                let w = (e.addr >> 32) as usize;
                let i = (e.addr & 0xFFFF_FFFF) as i64;
                assert!(
                    i > last[w],
                    "writer {w}: event {i} duplicated or out of order (last seen {})",
                    last[w]
                );
                last[w] = i;
            }
            assert!(
                snap.events.windows(2).all(|p| p[0].seq < p[1].seq),
                "duplicate or unsorted seq in snapshot"
            );
        }

        let t = Arc::new(Trace::new(PER_WRITER as usize, true));
        let stop = Arc::new(AtomicBool::new(false));
        let snapper = {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut snaps = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    check_consistent(&t.snapshot());
                    snaps += 1;
                }
                snaps
            })
        };
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        let seq = t.next_seq();
                        t.record(seq, EventKind::Store, NO_SITE, (w as u64) << 32 | i, false);
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let mid_run_snaps = snapper.join().unwrap();
        assert!(mid_run_snaps > 0, "snapshotter never ran against the storm");

        // Quiescent: nothing lost, nothing duplicated, per-writer order
        // exact. (capacity == PER_WRITER, so no ring ever wrapped.)
        let snap = t.snapshot();
        check_consistent(&snap);
        assert_eq!(snap.dropped, 0, "no ring wrapped, so nothing may drop");
        assert_eq!(snap.events.len(), WRITERS * PER_WRITER as usize);
        let mut next = [0u64; WRITERS];
        for e in &snap.events {
            let w = (e.addr >> 32) as usize;
            let i = e.addr & 0xFFFF_FFFF;
            assert_eq!(i, next[w], "writer {w}: lost event");
            next[w] += 1;
        }
    }

    #[test]
    fn record_reuses_ring_after_quiescent_clear() {
        let t = Trace::new(8, true);
        for _ in 0..3 {
            let seq = t.next_seq();
            t.record(seq, EventKind::Store, NO_SITE, 8, true);
        }
        t.clear();
        assert_eq!(t.total(), 0);
        let seq = t.next_seq();
        t.record(seq, EventKind::Pwb, 1, 24, false);
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 1, "stale pre-clear cells must not leak");
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events[0].kind, EventKind::Pwb);
        assert_eq!(snap.events[0].seq, seq);
    }
}
