//! Persistence-event tracing: a per-thread bounded ring of instrumented
//! pool events.
//!
//! Every instrumented primitive of [`crate::PmemPool`] — `load`, `store`,
//! `cas`, `pwb`, `pfence`, `psync` — can be recorded as an [`Event`]
//! carrying the event kind, the originating thread, the affected word and
//! cache line, the attributed [`SiteId`] (where the caller supplied one),
//! and the line's dirty state as tracked by the [`crate::lint`] module's
//! line-state machine. Recording is off by default and costs a single
//! relaxed flag load per primitive when disabled; when enabled, each thread
//! appends to its own bounded ring (oldest events are dropped, with a drop
//! counter), so tracing a long run keeps a window of recent history rather
//! than growing without bound.
//!
//! The trace is the raw material for two consumers:
//!
//! * **debugging** recovery protocols: after a failing crash sweep, the
//!   last events before the injected [`crate::CrashPoint`] show exactly
//!   which stores were still unflushed and which `pwb`s had not been
//!   fenced;
//! * **cost attribution** (`bench::figures::fig_attribution`): events per
//!   site × dirty ratio × redundancy, the table behind the paper's
//!   low/medium/high `pwb` categorization.
//!
//! The retained window plus the drop counter also gives an exact total
//! event count — [`TraceSnapshot::total`] — which is what the `crashsweep`
//! harness uses to enumerate every crash point of a workload:
//!
//! ```
//! use pmem::{EventKind, PmemPool, PoolCfg, SiteId};
//! let pool = PmemPool::new(PoolCfg {
//!     trace: true,
//!     trace_capacity: 2, // keep a 2-event window per thread...
//!     ..PoolCfg::model(1 << 20)
//! });
//! let a = pool.alloc_lines(1);
//! pool.store(a, 1);
//! pool.pwb(a, SiteId(0));
//! pool.psync();
//! let snap = pool.trace_snapshot();
//! assert_eq!(snap.events.len(), 2); // ...the oldest event was dropped,
//! assert_eq!(snap.dropped, 1);
//! assert_eq!(snap.total(), 3); // but the exact total is still known
//! assert_eq!(snap.events.last().unwrap().kind, EventKind::Psync);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::persist::SiteId;

/// Sentinel "no call site" value used for events whose primitive carries no
/// [`SiteId`] (plain `load`/`store`/`cas` and fences).
pub const NO_SITE: u8 = u8::MAX;

/// Number of per-thread rings a trace multiplexes over (threads hash into
/// rings by their process-wide trace index).
const N_RINGS: usize = 64;

/// Process-wide small integer identifying the calling thread in trace
/// events. Assigned on first use, stable for the thread's lifetime.
pub(crate) fn trace_tid() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static TID: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    TID.with(|t| {
        let v = t.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

/// The kind of instrumented event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Atomic word read.
    Load,
    /// Atomic word write.
    Store,
    /// Successful compare-and-swap (wrote the word).
    Cas,
    /// Failed compare-and-swap (no write happened).
    CasFail,
    /// Cache-line write-back.
    Pwb,
    /// Ordering fence.
    Pfence,
    /// Durability fence.
    Psync,
}

impl EventKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Load => "load",
            EventKind::Store => "store",
            EventKind::Cas => "cas",
            EventKind::CasFail => "cas-fail",
            EventKind::Pwb => "pwb",
            EventKind::Pfence => "pfence",
            EventKind::Psync => "psync",
        }
    }
}

/// One recorded pool event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (total order over all threads of the pool).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Process-wide trace index of the thread that issued the event.
    pub tid: usize,
    /// Attributed call site, or [`NO_SITE`].
    pub site: u8,
    /// Raw word address ([`crate::PAddr::raw`]); 0 for fences.
    pub addr: u64,
    /// Cache line of `addr` (0 for fences).
    pub line: usize,
    /// Dirty state of the affected line. For `store`/`cas` this is the
    /// state *after* the event (always dirty); for `pwb` it is the state
    /// *before* the flush (`false` marks a redundant flush); for `load` the
    /// current state; `false` for fences.
    pub dirty: bool,
}

/// A point-in-time copy of the trace: every retained event, merged across
/// thread rings in global sequence order.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Retained events, ascending by [`Event::seq`].
    pub events: Vec<Event>,
    /// Events discarded because a thread ring was full.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Exact number of events recorded since the last clear — retained plus
    /// dropped. This is the `N` a crash sweep enumerates over: arming a
    /// crash after `k ∈ [0, N)` events covers every instrumented step of
    /// the traced workload.
    pub fn total(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }

    /// Number of retained events of `kind`.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Retained events attributed to `site`.
    pub fn at_site(&self, site: SiteId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.site == site.0)
    }
}

struct Ring {
    events: VecDeque<Event>,
}

fn lock_ring(m: &Mutex<Ring>) -> MutexGuard<'_, Ring> {
    // Nothing panics while a ring is held; tolerate foreign poisoning so a
    // crash-injection unwind elsewhere never wedges the trace.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The live trace owned by a pool (see module docs).
pub(crate) struct Trace {
    enabled: AtomicBool,
    capacity: usize,
    seq: AtomicU64,
    rings: Box<[Mutex<Ring>]>,
    dropped: AtomicU64,
    /// Any event recorded since the last clear? Lets [`Trace::clear`] skip
    /// the ring sweep entirely for runs that recorded nothing — the common
    /// case for the sweep engine's dark (untraced) replays, which clear the
    /// trace on every pool restore.
    nonempty: AtomicBool,
}

impl Trace {
    pub(crate) fn new(capacity: usize, enabled: bool) -> Self {
        Trace {
            enabled: AtomicBool::new(enabled),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            rings: (0..N_RINGS)
                .map(|_| {
                    Mutex::new(Ring {
                        events: VecDeque::new(),
                    })
                })
                .collect(),
            dropped: AtomicU64::new(0),
            nonempty: AtomicBool::new(false),
        }
    }

    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// Allocates the next global sequence number (also used by the lint for
    /// diagnostics, so diagnostics interleave correctly with events).
    #[inline]
    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Appends an event to the calling thread's ring (bounded).
    pub(crate) fn record(&self, seq: u64, kind: EventKind, site: u8, addr: u64, dirty: bool) {
        self.nonempty.store(true, Ordering::Relaxed);
        let tid = trace_tid();
        let mut ring = lock_ring(&self.rings[tid % N_RINGS]);
        if ring.events.len() >= self.capacity {
            ring.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let line = (addr as usize) / crate::addr::WORDS_PER_LINE;
        ring.events.push_back(Event {
            seq,
            kind,
            tid,
            site,
            addr,
            line,
            dirty,
        });
    }

    /// Exact number of events recorded since the last clear (retained plus
    /// dropped), without merging/sorting the rings — the cheap counterpart
    /// of `snapshot().total()` used by the sweep engine to mark operation
    /// boundaries.
    pub(crate) fn total(&self) -> u64 {
        let mut n = self.dropped.load(Ordering::Relaxed);
        for ring in self.rings.iter() {
            n += lock_ring(ring).events.len() as u64;
        }
        n
    }

    /// Current value of the global sequence counter (the next seq that
    /// [`Trace::next_seq`] would hand out).
    pub(crate) fn seq(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Rewinds the global sequence counter (pool snapshot/restore only —
    /// replaying from a restored checkpoint must re-issue the same sequence
    /// numbers the original run used past that point).
    pub(crate) fn set_seq(&self, v: u64) {
        self.seq.store(v, Ordering::SeqCst);
    }

    pub(crate) fn snapshot(&self) -> TraceSnapshot {
        let mut events: Vec<Event> = Vec::new();
        for ring in self.rings.iter() {
            events.extend(lock_ring(ring).events.iter().copied());
        }
        events.sort_by_key(|e| e.seq);
        TraceSnapshot {
            events,
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn clear(&self) {
        // `swap` rather than `load`: quiescent callers (pool restore) see an
        // exact flag, and clearing it here means the next clear after a run
        // that recorded nothing is one relaxed atomic op, not 64 mutexes.
        if !self.nonempty.swap(false, Ordering::Relaxed) {
            return;
        }
        for ring in self.rings.iter() {
            lock_ring(ring).events.clear();
        }
        self.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Trace::new(4, true);
        for i in 0..10u64 {
            let seq = t.next_seq();
            t.record(seq, EventKind::Store, NO_SITE, i * 8, true);
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 4, "ring keeps only the newest events");
        assert_eq!(snap.dropped, 6);
        // the newest four survive, in order
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn snapshot_merges_in_sequence_order() {
        let t = Trace::new(64, true);
        for kind in [EventKind::Load, EventKind::Pwb, EventKind::Psync] {
            let seq = t.next_seq();
            t.record(seq, kind, 3, 16, false);
        }
        let snap = t.snapshot();
        assert!(snap.events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(snap.count(EventKind::Pwb), 1);
        assert_eq!(snap.at_site(SiteId(3)).count(), 3);
    }

    #[test]
    fn clear_resets_events_and_drops() {
        let t = Trace::new(1, true);
        for _ in 0..3 {
            let seq = t.next_seq();
            t.record(seq, EventKind::Store, NO_SITE, 8, true);
        }
        t.clear();
        let snap = t.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn event_records_line_of_addr() {
        let t = Trace::new(8, true);
        let seq = t.next_seq();
        t.record(seq, EventKind::Pwb, 2, 17, true);
        let snap = t.snapshot();
        assert_eq!(snap.events[0].line, 17 / crate::addr::WORDS_PER_LINE);
        assert_eq!(snap.events[0].addr, 17);
    }
}
