//! `palloc` — a recoverable free-list allocator layered on the bump arena.
//!
//! The paper leaves recoverable memory management to future work (§7) and
//! the base pool mirrors that: [`PmemPool::alloc_lines`] is a monotone bump
//! arena that never recycles, which caps every workload at arena size and
//! keeps allocation invisible to the crash-sweep engines. This module
//! closes both gaps. A pool built with [`crate::PoolCfg::reclaim`] reserves
//! one persistent *metadata line* per thread, and every allocator step goes
//! through the instrumented word primitives (`store`/`pwb`/`pfence`), so
//! the sweep and explore engines can place a crash inside an allocation or
//! a free exactly as they do inside a data-structure operation.
//!
//! ## Metadata layout
//!
//! Thread `q`'s metadata line (words, off the line base):
//!
//! | word | contents |
//! |------|----------|
//! | 0..4 | free-list heads for size classes 1–4 (lines per block)       |
//! | 4    | limbo-list head (retired, awaiting quiescence)               |
//! | 5    | *alloc cursor*: announcement of the in-flight allocation     |
//! | 6    | *free cursor*: announcement of the in-flight retire/move     |
//! | 7    | spare                                                        |
//!
//! A listed block links through its **last word** (`addr + 8·class − 1`),
//! deliberately leaving the rest of the block untouched: a retired block
//! can still have legitimate post-mortem readers — a crash right after an
//! operation completed recovers by re-reading the operation's (already
//! retired) descriptor's header and result words, and an idempotent help
//! replay may re-examine a removed node's info field. Only the link word
//! is sacrificed, and no recovery path reads a block's last word. Class
//! free-list links are plain addresses (the class is implied by the list);
//! the limbo list mixes classes, so its head and links pack
//! `addr | class << 48` into one word. Cursor announcements pack
//! `(addr, class, kind)` the same way, so publishing one is a single
//! atomic store.
//!
//! ## Why the protocols are crash-safe
//!
//! Every list is **single-owner**: only thread `q` (or, during quiescent
//! drains and recovery, the unique thread standing in for `q`) mutates
//! `q`'s heads. Every head update is made durable (`pwb`+`pfence`) before
//! the protocol's next step, so after a crash the persisted head is either
//! the value recorded in the announcement or its successor — recovery can
//! always tell whether a pop/push took effect by a single comparison, with
//! no ambiguity window.
//!
//! The announcement discipline gives the recovery pass
//! ([`PmemPool::recover_allocator`]) exactly one in-flight operation to
//! resolve per cursor: an announcement is cleared *and `psync`ed* before
//! the operation returns, so a nonzero cursor at recovery time implies the
//! crash struck mid-operation and the block named by it is referenced
//! nowhere else (an allocating caller never saw the address; a retired
//! block was already unlinked from its structure). Resolution is therefore
//! safe to redo idempotently:
//!
//! * **alloc** (`kind = ALLOC`, announcing the pre-pop head `a`): if the
//!   class head still equals `a` the pop never persisted — nothing to do.
//!   Otherwise the pop persisted but the address never escaped: push `a`
//!   back. Either way no block is lost and no block can be handed out
//!   twice. A crash after the cursor-clearing store but before its `psync`
//!   may resolve the cursor to 0 with the block already popped — that is
//!   the one *bounded* leak the allocator admits: at most one block (≤ 4
//!   lines) per crash, the analogue of the paper's bounded-leak argument
//!   for in-flight nodes.
//! * **retire** (`kind = RETIRE`): the block is at the limbo head iff the
//!   push persisted; otherwise redo the push (idempotent — the link word
//!   is rewritten from scratch).
//! * **move** (`kind = MOVE`, limbo → class list at a drain): the drain
//!   persists the limbo *pop* before overwriting the block's link word for
//!   the class-list *push* — overwriting first would cross-link the limbo
//!   tail into the class list and double-allocate it. Recovery: block at
//!   the class head ⇒ done; block still at the limbo head ⇒ the next
//!   drain redoes the whole move; otherwise the pop persisted and the
//!   push didn't — complete the push (the block is orphaned otherwise).
//!
//! ## Deferred reclamation and ABA
//!
//! [`PmemPool::pretire_lines`] never makes a block allocatable directly:
//! it parks it on the owner's limbo list. Only [`PmemPool::palloc_drain`]
//! — which callers must invoke **at quiescent points only** (no
//! data-structure operation in flight on any thread) — moves limbo blocks
//! to the free lists. Because no operation or helper window spans a
//! quiescence point, no thread can hold a stale pointer to a block when it
//! becomes reallocatable: the repo-wide "addresses are never reused inside
//! an operation's window" ABA argument survives reclamation intact. The
//! same argument covers post-mortem readers: a crashed thread's recovery
//! re-reads its last descriptor only if no later operation began, so the
//! descriptor may sit on a list but cannot yet have been re-issued and
//! zeroed. A debug-build ledger asserts the re-issue invariant: the pop
//! path checks that no address still in limbo is ever handed out.
//!
//! Recycled blocks are zeroed on allocation with *uninstrumented* stores
//! (fresh-zero semantics, identical to bump memory). Durability of the
//! zeros rides the caller's own pre-publication `pwb`+`pfence` of the new
//! object — a block whose zeroing was cut short by a crash is either
//! pushed back or bounded-leaked by recovery, never observed.

use std::sync::atomic::Ordering;
#[cfg(debug_assertions)]
use std::sync::PoisonError;

use crate::addr::{PAddr, WORDS_PER_LINE};
use crate::persist::SiteId;
use crate::pool::PmemPool;

/// Largest block size (in lines) served by the free lists; larger requests
/// fall through to the bump arena and are never recycled.
pub const MAX_CLASS: usize = 4;

/// Word offset of the limbo-list head in a thread's metadata line.
const W_LIMBO: usize = 4;
/// Word offset of the alloc cursor (in-flight allocation announcement).
const W_ALLOC_ANN: usize = 5;
/// Word offset of the free cursor (in-flight retire/move announcement).
const W_FREE_ANN: usize = 6;

/// `pwb` site: class free-list head updates.
pub const P_HEAD: SiteId = SiteId(56);
/// `pwb` site: limbo-list head updates.
pub const P_LIMBO: SiteId = SiteId(57);
/// `pwb` site: alloc/free cursor announcements.
pub const P_ANN: SiteId = SiteId(58);
/// `pwb` site: a listed block's link word.
pub const P_BLOCK: SiteId = SiteId(59);

/// All allocator sites with human-readable names. These occupy the high
/// end of the site space (56–59), clear of every algorithm crate's sites;
/// they must stay **enabled** whenever the pool was built with `reclaim` —
/// masking them removes the flushes the recovery argument above depends
/// on.
pub const PALLOC_SITES: [(SiteId, &str); 4] = [
    (P_HEAD, "palloc-head"),
    (P_LIMBO, "palloc-limbo"),
    (P_ANN, "palloc-cursor"),
    (P_BLOCK, "palloc-block"),
];

/// Announcement kinds (high byte of a packed cursor word).
const KIND_ALLOC: u64 = 1;
const KIND_RETIRE: u64 = 2;
const KIND_MOVE: u64 = 3;

const ADDR_MASK: u64 = (1 << 48) - 1;

fn pack_ann(addr: u64, class: usize, kind: u64) -> u64 {
    debug_assert!(addr != 0 && addr <= ADDR_MASK);
    addr | ((class as u64) << 48) | (kind << 56)
}

fn unpack_ann(w: u64) -> (u64, usize, u64) {
    (w & ADDR_MASK, ((w >> 48) & 0xff) as usize, w >> 56)
}

/// Limbo head/link encoding: address plus the class of the block it names.
fn pack_limbo(addr: u64, class: usize) -> u64 {
    debug_assert!(addr <= ADDR_MASK);
    addr | ((class as u64) << 48)
}

fn unpack_limbo(w: u64) -> (u64, usize) {
    (w & ADDR_MASK, (w >> 48) as usize)
}

/// Word index of a block's link word: its last word.
fn link_word(addr: u64, class: usize) -> usize {
    addr as usize + class * WORDS_PER_LINE - 1
}

impl PmemPool {
    /// Was this pool built with the free-list allocator
    /// ([`crate::PoolCfg::reclaim`])?
    pub fn reclaim_enabled(&self) -> bool {
        self.reclaim
    }

    fn meta_word(&self, tid: usize, off: usize) -> PAddr {
        debug_assert!(self.reclaim);
        assert!(
            tid < self.max_threads(),
            "palloc tid {tid} >= max_threads {}",
            self.max_threads()
        );
        PAddr((self.palloc_base + tid * WORDS_PER_LINE + off) as u64)
    }

    /// Allocates `nlines` zeroed cache lines for thread `tid`, recycling a
    /// retired block of the same size class when one is available.
    ///
    /// On a pool built without [`crate::PoolCfg::reclaim`] (or for
    /// `nlines > `[`MAX_CLASS`]) this is *exactly* [`Self::alloc_lines`]:
    /// no metadata is touched and no instrumented event is executed, so
    /// reclaim-off event counts are bit-identical to the pure bump arena.
    ///
    /// # Panics
    /// On pool exhaustion, with the same actionable message as
    /// [`Self::alloc_lines`].
    pub fn palloc_lines(&self, tid: usize, nlines: usize) -> PAddr {
        if !self.reclaim || nlines == 0 || nlines > MAX_CLASS {
            return self.alloc_lines(nlines);
        }
        let c = nlines;
        let head_a = self.meta_word(tid, c - 1);
        let head = self.raw_load(head_a.word());
        if head == 0 {
            return self.alloc_lines(nlines);
        }
        // Stop counting the block as free *before* the pop can take effect,
        // so `remaining_lines` stays a lower bound throughout. A crash that
        // aborts the pop is repaired by the post-recovery recount.
        let _ = self
            .free_lines
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                Some(v.saturating_sub(c))
            });
        // 1. Announce the pop (alloc cursor := pre-pop head).
        let ann_a = self.meta_word(tid, W_ALLOC_ANN);
        self.store_at(ann_a, pack_ann(head, c, KIND_ALLOC), P_ANN);
        self.pwb(ann_a, P_ANN);
        self.pfence();
        // 2. Pop: head := head.link, durable before the address escapes.
        let next = self.raw_load(link_word(head, c));
        self.store_at(head_a, next, P_HEAD);
        self.pwb(head_a, P_HEAD);
        self.pfence();
        #[cfg(debug_assertions)]
        {
            let retired = self
                .retired_debug
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            assert!(
                !retired.contains(&head),
                "retired address {head:#x} re-issued before a full epoch quiescence"
            );
        }
        // 3. Fresh-zero semantics (uninstrumented; see module docs).
        self.raw_zero_words(head as usize, c * WORDS_PER_LINE);
        // 4. Clear the cursor and sync before returning the address.
        self.store_at(ann_a, 0, P_ANN);
        self.pwb(ann_a, P_ANN);
        self.psync();
        PAddr(head)
    }

    /// Retires a `nlines`-line block that thread `tid` has just unlinked
    /// from its structure: parks it on `tid`'s limbo list, to become
    /// allocatable only after the next quiescent [`Self::palloc_drain`].
    ///
    /// The caller must guarantee the block's removal from the structure is
    /// durable *before* retiring it (otherwise a crash could leave it
    /// reachable from both the structure and a list), and that no recovery
    /// path reads the block's last word — the list link overwrites it
    /// immediately. No-op without [`crate::PoolCfg::reclaim`] or for
    /// blocks above [`MAX_CLASS`] — those keep the bump arena's
    /// leak-forever semantics.
    pub fn pretire_lines(&self, tid: usize, addr: PAddr, nlines: usize) {
        if !self.reclaim || nlines == 0 || nlines > MAX_CLASS {
            return;
        }
        let c = nlines;
        let a = addr.raw();
        debug_assert!(
            addr.word() >= self.heap_base && addr.word().is_multiple_of(WORDS_PER_LINE),
            "pretire_lines: {a:#x} is not a heap block"
        );
        // 1. Announce the retire (free cursor := block).
        let ann_a = self.meta_word(tid, W_FREE_ANN);
        self.store_at(ann_a, pack_ann(a, c, KIND_RETIRE), P_ANN);
        self.pwb(ann_a, P_ANN);
        self.pfence();
        // 2. Write the block's link word and make it durable before the
        //    block becomes reachable from the limbo head.
        let limbo_a = self.meta_word(tid, W_LIMBO);
        let h = self.raw_load(limbo_a.word());
        let link = PAddr(link_word(a, c) as u64);
        self.store_at(link, h, P_BLOCK);
        self.pwb(link, P_BLOCK);
        self.pfence();
        // 3. Push, durably.
        self.store_at(limbo_a, pack_limbo(a, c), P_LIMBO);
        self.pwb(limbo_a, P_LIMBO);
        self.pfence();
        // 4. Clear the cursor and sync before returning.
        self.store_at(ann_a, 0, P_ANN);
        self.pwb(ann_a, P_ANN);
        self.psync();
        #[cfg(debug_assertions)]
        self.retired_debug
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(a);
    }

    /// Drains thread `tid`'s limbo list onto its class free lists.
    ///
    /// **Quiescence contract:** callers may invoke this only when no
    /// data-structure operation is in flight on any thread — the drain is
    /// the epoch boundary after which retired addresses may be re-issued,
    /// and the ABA argument (module docs) rests on no operation window
    /// spanning it.
    pub fn palloc_drain(&self, tid: usize) {
        if !self.reclaim {
            return;
        }
        let limbo_a = self.meta_word(tid, W_LIMBO);
        let ann_a = self.meta_word(tid, W_FREE_ANN);
        loop {
            let hp = self.raw_load(limbo_a.word());
            if hp == 0 {
                return;
            }
            let (b, c) = unpack_limbo(hp);
            debug_assert!(
                (1..=MAX_CLASS).contains(&c),
                "limbo head {hp:#x} carries corrupt class {c}"
            );
            // 1. Announce the move.
            self.store_at(ann_a, pack_ann(b, c, KIND_MOVE), P_ANN);
            self.pwb(ann_a, P_ANN);
            self.pfence();
            // 2. Pop off limbo — and persist the pop — *before* the block's
            //    link word is overwritten for the class-list push. The
            //    reverse order would cross-link the limbo tail into the
            //    class list and double-allocate it.
            let link = PAddr(link_word(b, c) as u64);
            let next = self.raw_load(link.word());
            self.store_at(limbo_a, next, P_LIMBO);
            self.pwb(limbo_a, P_LIMBO);
            self.pfence();
            // 3. Relink onto the class list, durably.
            let head_a = self.meta_word(tid, c - 1);
            let h = self.raw_load(head_a.word());
            self.store_at(link, h, P_BLOCK);
            self.pwb(link, P_BLOCK);
            self.pfence();
            self.store_at(head_a, b, P_HEAD);
            self.pwb(head_a, P_HEAD);
            self.pfence();
            // 4. Clear the cursor.
            self.store_at(ann_a, 0, P_ANN);
            self.pwb(ann_a, P_ANN);
            self.psync();
            // Only now is the block genuinely allocatable.
            self.free_lines.fetch_add(c, Ordering::SeqCst);
            #[cfg(debug_assertions)]
            self.retired_debug
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&b);
        }
    }

    /// [`Self::palloc_drain`] for every thread with a nonempty limbo list.
    /// Idle threads are skipped with an uninstrumented peek, so quiescent
    /// boundaries in sweeps cost zero events for threads that freed
    /// nothing. Same quiescence contract as `palloc_drain`.
    pub fn palloc_drain_all(&self) {
        if !self.reclaim {
            return;
        }
        for tid in 0..self.max_threads() {
            if self.raw_load(self.palloc_base + tid * WORDS_PER_LINE + W_LIMBO) != 0 {
                self.palloc_drain(tid);
            }
        }
    }

    /// Post-crash allocator recovery: resolves every thread's in-flight
    /// alloc/free announcement (see module docs for the case analysis),
    /// then rebuilds the volatile accounting. Must run after
    /// [`Self::crash`] and before any structure recovery allocates.
    /// Idempotent; a no-op without [`crate::PoolCfg::reclaim`].
    pub fn recover_allocator(&self) {
        if !self.reclaim {
            return;
        }
        for tid in 0..self.max_threads() {
            let meta = self.palloc_base + tid * WORDS_PER_LINE;
            // Idle threads (no cursor set): zero instrumented events.
            let alloc_ann = self.raw_load(meta + W_ALLOC_ANN);
            let free_ann = self.raw_load(meta + W_FREE_ANN);
            debug_assert!(
                alloc_ann == 0 || free_ann == 0,
                "both cursors in flight for tid {tid}"
            );
            if alloc_ann != 0 {
                let (a, c, kind) = unpack_ann(alloc_ann);
                debug_assert_eq!(kind, KIND_ALLOC);
                let head_a = self.meta_word(tid, c - 1);
                if self.raw_load(head_a.word()) != a {
                    // The pop persisted but the address never escaped the
                    // allocator: push the block back.
                    let h = self.raw_load(head_a.word());
                    let link = PAddr(link_word(a, c) as u64);
                    self.store_at(link, h, P_BLOCK);
                    self.pwb(link, P_BLOCK);
                    self.pfence();
                    self.store_at(head_a, a, P_HEAD);
                    self.pwb(head_a, P_HEAD);
                    self.pfence();
                }
                let ann_a = self.meta_word(tid, W_ALLOC_ANN);
                self.store_at(ann_a, 0, P_ANN);
                self.pwb(ann_a, P_ANN);
                self.psync();
            }
            if free_ann != 0 {
                let (b, c, kind) = unpack_ann(free_ann);
                let limbo_a = self.meta_word(tid, W_LIMBO);
                let link = PAddr(link_word(b, c) as u64);
                match kind {
                    KIND_RETIRE => {
                        if unpack_limbo(self.raw_load(limbo_a.word())).0 != b {
                            // Push never persisted: redo it from scratch.
                            let h = self.raw_load(limbo_a.word());
                            self.store_at(link, h, P_BLOCK);
                            self.pwb(link, P_BLOCK);
                            self.pfence();
                            self.store_at(limbo_a, pack_limbo(b, c), P_LIMBO);
                            self.pwb(limbo_a, P_LIMBO);
                            self.pfence();
                        }
                    }
                    KIND_MOVE => {
                        let head_a = self.meta_word(tid, c - 1);
                        let at_class_head = self.raw_load(head_a.word()) == b;
                        let at_limbo_head = unpack_limbo(self.raw_load(limbo_a.word())).0 == b;
                        if !at_class_head && !at_limbo_head {
                            // Limbo pop persisted, class push didn't:
                            // complete the push (the block is orphaned
                            // otherwise).
                            let h = self.raw_load(head_a.word());
                            self.store_at(link, h, P_BLOCK);
                            self.pwb(link, P_BLOCK);
                            self.pfence();
                            self.store_at(head_a, b, P_HEAD);
                            self.pwb(head_a, P_HEAD);
                            self.pfence();
                        }
                        // At the limbo head: the move never took; the next
                        // drain redoes it. At the class head: fully done.
                    }
                    k => debug_assert!(false, "corrupt free cursor kind {k}"),
                }
                let ann_a = self.meta_word(tid, W_FREE_ANN);
                self.store_at(ann_a, 0, P_ANN);
                self.pwb(ann_a, P_ANN);
                self.psync();
            }
        }
        self.refresh_palloc_accounting();
    }

    /// Every block currently on a class free list, as `(addr, class)`
    /// pairs, gathered with uninstrumented reads (audit/test use).
    pub fn palloc_free_blocks(&self) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        if !self.reclaim {
            return out;
        }
        let bound = self.nwords() / WORDS_PER_LINE + 1;
        for tid in 0..self.max_threads() {
            let meta = self.palloc_base + tid * WORDS_PER_LINE;
            for c in 1..=MAX_CLASS {
                let mut b = self.raw_load(meta + c - 1);
                let mut steps = 0;
                while b != 0 && steps < bound {
                    out.push((b, c));
                    b = self.raw_load(link_word(b, c));
                    steps += 1;
                }
            }
        }
        out
    }

    /// Every block currently on a limbo list, as `(addr, class)` pairs,
    /// gathered with uninstrumented reads (audit/test use).
    pub fn palloc_limbo_blocks(&self) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        if !self.reclaim {
            return out;
        }
        let bound = self.nwords() / WORDS_PER_LINE + 1;
        for tid in 0..self.max_threads() {
            let meta = self.palloc_base + tid * WORDS_PER_LINE;
            let mut hp = self.raw_load(meta + W_LIMBO);
            let mut steps = 0;
            while hp != 0 && steps < bound {
                let (b, c) = unpack_limbo(hp);
                out.push((b, c));
                if !(1..=MAX_CLASS).contains(&c) {
                    break; // corrupt link; palloc_check reports it
                }
                hp = self.raw_load(link_word(b, c));
                steps += 1;
            }
        }
        out
    }

    /// Structural audit of the allocator's persistent state, for verdict
    /// phases: every free/limbo block is line-aligned, inside the allocated
    /// heap, carries a valid class, appears on exactly one list, and no two
    /// blocks overlap; all lists are acyclic and all cursors are resolved.
    /// Uninstrumented — safe to call from traced verdict phases.
    ///
    /// Returns `Err` with a description of the first violation found.
    pub fn palloc_check(&self) -> Result<(), String> {
        if !self.reclaim {
            return Ok(());
        }
        let wm = self.alloc_watermark() as u64;
        let bound = self.nwords() / WORDS_PER_LINE + 1;
        let mut blocks: Vec<(u64, usize, String)> = Vec::new();
        for tid in 0..self.max_threads() {
            let meta = self.palloc_base + tid * WORDS_PER_LINE;
            for c in 1..=MAX_CLASS {
                let list = format!("tid {tid} class-{c} free list");
                let mut b = self.raw_load(meta + c - 1);
                let mut steps = 0;
                while b != 0 {
                    if steps >= bound {
                        return Err(format!("cycle in {list}"));
                    }
                    check_block(self, &list, b, c, wm)?;
                    blocks.push((b, c, list.clone()));
                    b = self.raw_load(link_word(b, c));
                    steps += 1;
                }
            }
            let list = format!("tid {tid} limbo list");
            let mut hp = self.raw_load(meta + W_LIMBO);
            let mut steps = 0;
            while hp != 0 {
                if steps >= bound {
                    return Err(format!("cycle in {list}"));
                }
                let (b, c) = unpack_limbo(hp);
                check_block(self, &list, b, c, wm)?;
                blocks.push((b, c, list.clone()));
                hp = self.raw_load(link_word(b, c));
                steps += 1;
            }
            for (off, name) in [(W_ALLOC_ANN, "alloc"), (W_FREE_ANN, "free")] {
                let ann = self.raw_load(meta + off);
                if ann != 0 {
                    return Err(format!(
                        "tid {tid}: unresolved {name} cursor {ann:#x} (recover_allocator not run?)"
                    ));
                }
            }
        }
        blocks.sort_unstable_by_key(|&(b, _, _)| b);
        for pair in blocks.windows(2) {
            let (a, ca, ref la) = pair[0];
            let (b, _, ref lb) = pair[1];
            if a == b {
                return Err(format!("block {a:#x} on two lists: {la} and {lb}"));
            }
            if a + (ca * WORDS_PER_LINE) as u64 > b {
                return Err(format!(
                    "block {a:#x} (class {ca}, {la}) overlaps block {b:#x} ({lb})"
                ));
            }
        }
        Ok(())
    }

    /// Rebuilds the volatile allocator accounting (the `remaining_lines`
    /// free counter and, in debug builds, the retired-address ledger) from
    /// the persistent lists. Called at the quiescent points — `restore`,
    /// `crash` resolution, and the end of recovery — where the lists are
    /// the only source of truth.
    pub(crate) fn refresh_palloc_accounting(&self) {
        let bound = self.nwords() / WORDS_PER_LINE + 1;
        let mut free = 0usize;
        for tid in 0..self.max_threads() {
            let meta = self.palloc_base + tid * WORDS_PER_LINE;
            for c in 1..=MAX_CLASS {
                let mut b = self.raw_load(meta + c - 1);
                let mut steps = 0;
                while b != 0 && steps < bound {
                    free += c;
                    b = self.raw_load(link_word(b, c));
                    steps += 1;
                }
            }
        }
        self.free_lines.store(free, Ordering::SeqCst);
        #[cfg(debug_assertions)]
        {
            let mut retired = std::collections::HashSet::new();
            for tid in 0..self.max_threads() {
                let meta = self.palloc_base + tid * WORDS_PER_LINE;
                let mut hp = self.raw_load(meta + W_LIMBO);
                let mut steps = 0;
                while hp != 0 && steps < bound {
                    let (b, c) = unpack_limbo(hp);
                    retired.insert(b);
                    if !(1..=MAX_CLASS).contains(&c) {
                        break;
                    }
                    hp = self.raw_load(link_word(b, c));
                    steps += 1;
                }
            }
            *self
                .retired_debug
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = retired;
        }
    }
}

/// One block's structural validity (shared by the audit walks).
fn check_block(pool: &PmemPool, list: &str, b: u64, c: usize, wm: u64) -> Result<(), String> {
    if !(1..=MAX_CLASS).contains(&c) {
        return Err(format!("{list}: block {b:#x} carries invalid class {c}"));
    }
    if (b as usize) < pool.heap_base
        || b + (c * WORDS_PER_LINE) as u64 > wm
        || !b.is_multiple_of(WORDS_PER_LINE as u64)
    {
        return Err(format!("{list}: block {b:#x} (class {c}) outside the heap"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::run_crashable;
    use crate::pool::{PmemPool, PoolCfg};
    use crate::shadow::{PessimistAdversary, SeededAdversary};

    fn reclaim_pool(capacity: usize) -> PmemPool {
        PmemPool::new(PoolCfg {
            reclaim: true,
            ..PoolCfg::model(capacity)
        })
    }

    #[test]
    fn recycles_after_retire_and_drain() {
        let p = reclaim_pool(1 << 20);
        let a = p.palloc_lines(0, 1);
        p.store(a, 77);
        p.pretire_lines(0, a, 1);
        // Still in limbo: not allocatable yet.
        let b = p.palloc_lines(0, 1);
        assert_ne!(a, b, "limbo block re-issued before quiescence");
        p.palloc_drain(0);
        let c = p.palloc_lines(0, 1);
        assert_eq!(a, c, "drained block was not recycled");
        assert_eq!(p.load(c), 0, "recycled block must be zeroed");
    }

    #[test]
    fn retire_preserves_block_payload_words() {
        // Post-mortem readers (a completed op's recovery) may re-read a
        // retired descriptor's header/result; only the last word may go.
        let p = reclaim_pool(1 << 20);
        let a = p.palloc_lines(0, 3);
        for i in 0..23 {
            p.store(a.add(i), 1000 + i);
        }
        p.pretire_lines(0, a, 3);
        for i in 0..23 {
            assert_eq!(p.load(a.add(i)), 1000 + i, "word {i} clobbered by retire");
        }
    }

    #[test]
    fn classes_are_segregated() {
        let p = reclaim_pool(1 << 20);
        let a1 = p.palloc_lines(0, 1);
        let a3 = p.palloc_lines(0, 3);
        p.pretire_lines(0, a1, 1);
        p.pretire_lines(0, a3, 3);
        p.palloc_drain(0);
        assert_eq!(p.palloc_lines(0, 3), a3);
        assert_eq!(p.palloc_lines(0, 1), a1);
    }

    #[test]
    fn oversize_blocks_fall_back_to_bump() {
        let p = reclaim_pool(1 << 20);
        let a = p.palloc_lines(0, MAX_CLASS + 1);
        p.pretire_lines(0, a, MAX_CLASS + 1); // no-op: leaks, arena-style
        p.palloc_drain(0);
        assert!(p.palloc_limbo_blocks().is_empty());
        assert_ne!(p.palloc_lines(0, MAX_CLASS + 1), a);
    }

    #[test]
    fn reclaim_off_pool_is_pure_bump() {
        let p = PmemPool::new(PoolCfg {
            trace: true,
            ..PoolCfg::model(1 << 20)
        });
        let a = p.palloc_lines(0, 1);
        p.pretire_lines(0, a, 1);
        p.palloc_drain(0);
        p.recover_allocator();
        assert_eq!(
            p.trace_snapshot().total(),
            0,
            "reclaim-off allocator paths must execute zero instrumented events"
        );
        assert_ne!(p.palloc_lines(0, 1), a, "bump arena never recycles");
        assert!(p.palloc_check().is_ok());
    }

    #[test]
    fn remaining_lines_is_a_lower_bound_through_the_lifecycle() {
        let p = reclaim_pool(1 << 20);
        let before = p.remaining_lines();
        let a = p.palloc_lines(0, 2);
        assert_eq!(p.remaining_lines(), before - 2);
        p.pretire_lines(0, a, 2);
        // Limbo blocks are not allocatable: still excluded.
        assert_eq!(p.remaining_lines(), before - 2);
        p.palloc_drain(0);
        assert_eq!(p.remaining_lines(), before, "drained block counts again");
        let b = p.palloc_lines(0, 2);
        assert_eq!(b, a);
        assert_eq!(p.remaining_lines(), before - 2);
    }

    /// The tentpole's longevity criterion: with reclamation on, a churn
    /// loop runs ≥10× more allocations than the arena capacity allows at
    /// the same pool size.
    #[test]
    fn churn_runs_10x_past_arena_capacity() {
        let p = reclaim_pool(1 << 20);
        let arena_cap = p.remaining_lines();
        for _ in 0..10 * arena_cap {
            // Panics with the pool's exhaustion message if reclamation
            // ever fails to keep up.
            let a = p.palloc_lines(0, 1);
            p.pretire_lines(0, a, 1);
            p.palloc_drain(0);
        }
        assert!(
            p.remaining_lines() > 0,
            "churn loop exhausted the pool despite reclamation"
        );
        assert!(p.palloc_check().is_ok());
    }

    /// Satellite: crash at every instrumented event of one recycled
    /// allocation; after `recover_allocator` the heap-walk audit must show
    /// no double-allocate and at most a one-block bounded leak.
    #[test]
    fn alloc_crash_swept_at_every_event() {
        // Count the events of a recycled alloc once.
        let count = {
            let p = reclaim_pool(1 << 20);
            let a = p.palloc_lines(0, 1);
            p.pretire_lines(0, a, 1);
            p.palloc_drain(0);
            p.set_trace_enabled(true);
            let before = p.trace_event_total();
            p.palloc_lines(0, 1);
            p.trace_event_total() - before
        };
        assert!(count > 0, "recycled alloc must be instrumented");
        for seeded in [false, true] {
            for k in 0..count {
                let p = reclaim_pool(1 << 20);
                let a = p.palloc_lines(0, 1);
                p.pretire_lines(0, a, 1);
                p.palloc_drain(0);
                let free_before = p.palloc_free_blocks();
                assert_eq!(free_before, vec![(a.raw(), 1)]);
                p.crash_ctl().arm_after(k);
                assert!(
                    run_crashable(|| p.palloc_lines(0, 1)).is_none(),
                    "crash point {k} did not fire"
                );
                if seeded {
                    p.crash(&mut SeededAdversary::new(k ^ 0x5EED));
                } else {
                    p.crash(&mut PessimistAdversary);
                }
                p.recover_allocator();
                p.palloc_check().unwrap_or_else(|e| {
                    panic!("audit failed after alloc crash at {k} (seeded={seeded}): {e}")
                });
                let free = p.palloc_free_blocks();
                assert!(p.palloc_limbo_blocks().is_empty());
                // Either the block is back on the free list (pop undone or
                // pushed back) or it leaked — bounded to this one block.
                assert!(
                    free == vec![(a.raw(), 1)] || free.is_empty(),
                    "alloc crash at {k}: unexpected free set {free:?}"
                );
                // No double-allocate: two fresh allocations are disjoint
                // and at most one of them recycles the block.
                let x = p.palloc_lines(0, 1);
                let y = p.palloc_lines(0, 1);
                assert_ne!(x, y, "alloc crash at {k} double-allocated");
            }
        }
    }

    /// Satellite: crash at every instrumented event of one retire; the
    /// block must end up in limbo exactly once or leak (bounded), never
    /// reach a free list, and never be double-linked.
    #[test]
    fn retire_crash_swept_at_every_event() {
        let count = {
            let p = reclaim_pool(1 << 20);
            let a = p.palloc_lines(0, 1);
            p.set_trace_enabled(true);
            let before = p.trace_event_total();
            p.pretire_lines(0, a, 1);
            p.trace_event_total() - before
        };
        assert!(count > 0, "retire must be instrumented");
        for seeded in [false, true] {
            for k in 0..count {
                let p = reclaim_pool(1 << 20);
                let a = p.palloc_lines(0, 1);
                p.crash_ctl().arm_after(k);
                assert!(
                    run_crashable(|| p.pretire_lines(0, a, 1)).is_none(),
                    "crash point {k} did not fire"
                );
                if seeded {
                    p.crash(&mut SeededAdversary::new(k ^ 0xF00D));
                } else {
                    p.crash(&mut PessimistAdversary);
                }
                p.recover_allocator();
                p.palloc_check().unwrap_or_else(|e| {
                    panic!("audit failed after retire crash at {k} (seeded={seeded}): {e}")
                });
                assert!(p.palloc_free_blocks().is_empty());
                let limbo = p.palloc_limbo_blocks();
                assert!(
                    limbo == vec![(a.raw(), 1)] || limbo.is_empty(),
                    "retire crash at {k}: unexpected limbo set {limbo:?}"
                );
            }
        }
    }

    /// Crash at every instrumented event of a drain (the limbo → free-list
    /// move): the block must land on exactly one list — never both (the
    /// double-allocate hazard the move ordering exists to prevent).
    #[test]
    fn drain_crash_swept_at_every_event() {
        let count = {
            let p = reclaim_pool(1 << 20);
            let a = p.palloc_lines(0, 1);
            p.pretire_lines(0, a, 1);
            p.set_trace_enabled(true);
            let before = p.trace_event_total();
            p.palloc_drain(0);
            p.trace_event_total() - before
        };
        assert!(count > 0, "drain must be instrumented");
        for seeded in [false, true] {
            for k in 0..count {
                let p = reclaim_pool(1 << 20);
                let a = p.palloc_lines(0, 1);
                p.pretire_lines(0, a, 1);
                p.crash_ctl().arm_after(k);
                assert!(
                    run_crashable(|| p.palloc_drain(0)).is_none(),
                    "crash point {k} did not fire"
                );
                if seeded {
                    p.crash(&mut SeededAdversary::new(k ^ 0xD8A1));
                } else {
                    p.crash(&mut PessimistAdversary);
                }
                p.recover_allocator();
                p.palloc_check().unwrap_or_else(|e| {
                    panic!("audit failed after drain crash at {k} (seeded={seeded}): {e}")
                });
                let free = p.palloc_free_blocks();
                let limbo = p.palloc_limbo_blocks();
                assert!(
                    free.len() + limbo.len() <= 1,
                    "drain crash at {k}: block on multiple lists (free={free:?}, limbo={limbo:?})"
                );
                // Wherever it landed, a follow-up drain + alloc must
                // re-issue it exactly once.
                p.palloc_drain(0);
                if free.len() + limbo.len() == 1 {
                    assert_eq!(p.palloc_lines(0, 1), a);
                    assert_ne!(p.palloc_lines(0, 1), a, "double-allocate after drain crash");
                }
            }
        }
    }

    /// `recover_allocator` is idempotent: running it twice (a crash during
    /// recovery re-runs it from the top) leaves the same state.
    #[test]
    fn recover_allocator_is_idempotent() {
        let count = {
            let p = reclaim_pool(1 << 20);
            let a = p.palloc_lines(0, 1);
            p.pretire_lines(0, a, 1);
            p.palloc_drain(0);
            p.set_trace_enabled(true);
            let before = p.trace_event_total();
            p.palloc_lines(0, 1);
            p.trace_event_total() - before
        };
        for k in 0..count {
            let p = reclaim_pool(1 << 20);
            let a = p.palloc_lines(0, 1);
            p.pretire_lines(0, a, 1);
            p.palloc_drain(0);
            p.crash_ctl().arm_after(k);
            assert!(run_crashable(|| p.palloc_lines(0, 1)).is_none());
            p.crash(&mut PessimistAdversary);
            p.recover_allocator();
            let free_once = p.palloc_free_blocks();
            p.recover_allocator();
            assert_eq!(free_once, p.palloc_free_blocks());
            assert!(p.palloc_check().is_ok());
        }
    }
}
