//! Per-site persistence-instruction counters, sharded per thread.
//!
//! Figures 3b/4b (number of `psync`s) and 3d/4d (number of `pwb`s) of the
//! paper are pure instruction counts; Figures 3e/4e additionally need the
//! counts *per call site* so executed `pwb`s can be attributed to the
//! low/medium/high impact categories. Counters are plain relaxed atomics —
//! one increment per instruction — and can be snapshot/delta'd around a
//! timed benchmark window.
//!
//! Counting must not perturb what is being counted: with a single counter
//! array, every thread's `pwb` RMWs the *same* cache line, which is exactly
//! the contended-line effect the paper's flush-cost analysis warns about.
//! The live counters are therefore sharded into cache-line-aligned blocks
//! indexed by a cheap per-thread id, so concurrent threads increment
//! disjoint lines; `Stats::snapshot` sums the shards back into the same
//! [`StatsSnapshot`] shape the figure drivers always consumed.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::persist::{SiteId, MAX_SITES};
use crate::trace::trace_tid;

/// Number of *exclusively owned* counter shards. Thread id `i < N_SHARDS`
/// owns shard `i` outright — it is that shard's only writer, so increments
/// can be a relaxed load+store pair instead of a locked `fetch_add` (on
/// x86 that replaces a serializing `lock xadd` with two plain moves, the
/// difference between the counters being visible in the off-overhead
/// benchmark and not). Up to 16 threads covers the paper's evaluation
/// tops; later thread ids degrade gracefully to one shared overflow shard
/// that still uses atomic RMWs.
const N_SHARDS: usize = 16;

/// One shard's counters. `#[repr(align(64))]` plus a size that is a
/// multiple of 64 bytes (64 + 2 u64s rounds up to 576) guarantees no two
/// shards ever share a cache line.
#[repr(align(64))]
struct Shard {
    pwb_per_site: [AtomicU64; MAX_SITES],
    /// `pwb`s the flush-elision layer turned into no-ops, per site (an
    /// elided pwb is *not* counted in `pwb_per_site` — that array keeps
    /// meaning "executed").
    pwb_elided_per_site: [AtomicU64; MAX_SITES],
    psync: AtomicU64,
    pfence: AtomicU64,
    /// Fences elided inside a coalescible region ([`crate::flushopt`]).
    psync_coalesced: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            pwb_per_site: std::array::from_fn(|_| AtomicU64::new(0)),
            pwb_elided_per_site: std::array::from_fn(|_| AtomicU64::new(0)),
            psync: AtomicU64::new(0),
            pfence: AtomicU64::new(0),
            psync_coalesced: AtomicU64::new(0),
        }
    }
}

/// A single-writer relaxed increment: safe only on a shard with exactly
/// one writing thread (concurrent `Stats::snapshot` readers may miss the
/// in-flight increment, which a racing `fetch_add` would not fix either).
#[inline]
fn bump(c: &AtomicU64) {
    c.store(c.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
}

/// Live counters owned by a pool. `shards[i]` is written only by thread id
/// `i`; `overflow` is shared by every thread id `>= N_SHARDS`.
pub(crate) struct Stats {
    shards: Box<[Shard]>,
    overflow: Shard,
}

impl Stats {
    pub(crate) fn new() -> Self {
        Stats {
            shards: (0..N_SHARDS).map(|_| Shard::new()).collect(),
            overflow: Shard::new(),
        }
    }

    #[inline]
    pub(crate) fn count_pwb(&self, s: SiteId) {
        // `trace_tid()` hands out small dense per-thread ids (one TLS read).
        match self.shards.get(trace_tid()) {
            Some(sh) => bump(&sh.pwb_per_site[s.idx()]),
            None => {
                self.overflow.pwb_per_site[s.idx()].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    #[inline]
    pub(crate) fn count_pwb_elided(&self, s: SiteId) {
        match self.shards.get(trace_tid()) {
            Some(sh) => bump(&sh.pwb_elided_per_site[s.idx()]),
            None => {
                self.overflow.pwb_elided_per_site[s.idx()].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    #[inline]
    pub(crate) fn count_psync_coalesced(&self) {
        match self.shards.get(trace_tid()) {
            Some(sh) => bump(&sh.psync_coalesced),
            None => {
                self.overflow
                    .psync_coalesced
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    #[inline]
    pub(crate) fn count_psync(&self) {
        match self.shards.get(trace_tid()) {
            Some(sh) => bump(&sh.psync),
            None => {
                self.overflow.psync.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    #[inline]
    pub(crate) fn count_pfence(&self) {
        match self.shards.get(trace_tid()) {
            Some(sh) => bump(&sh.pfence),
            None => {
                self.overflow.pfence.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot {
            pwb_per_site: [0; MAX_SITES],
            pwb_elided_per_site: [0; MAX_SITES],
            psync: 0,
            pfence: 0,
            psync_coalesced: 0,
        };
        for sh in self.shards.iter().chain(std::iter::once(&self.overflow)) {
            for (i, c) in sh.pwb_per_site.iter().enumerate() {
                snap.pwb_per_site[i] += c.load(Ordering::Relaxed);
            }
            for (i, c) in sh.pwb_elided_per_site.iter().enumerate() {
                snap.pwb_elided_per_site[i] += c.load(Ordering::Relaxed);
            }
            snap.psync += sh.psync.load(Ordering::Relaxed);
            snap.pfence += sh.pfence.load(Ordering::Relaxed);
            snap.psync_coalesced += sh.psync_coalesced.load(Ordering::Relaxed);
        }
        snap
    }

    pub(crate) fn reset(&self) {
        for sh in self.shards.iter().chain(std::iter::once(&self.overflow)) {
            for c in &sh.pwb_per_site {
                c.store(0, Ordering::Relaxed);
            }
            for c in &sh.pwb_elided_per_site {
                c.store(0, Ordering::Relaxed);
            }
            sh.psync.store(0, Ordering::Relaxed);
            sh.pfence.store(0, Ordering::Relaxed);
            sh.psync_coalesced.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of a pool's persistence-instruction counters.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Executed `pwb`s per call site.
    pub pwb_per_site: [u64; MAX_SITES],
    /// `pwb`s elided by the flush-elision layer, per call site (issued by
    /// the algorithm but proven redundant — see [`crate::flushopt`]).
    pub pwb_elided_per_site: [u64; MAX_SITES],
    /// Executed `psync`s.
    pub psync: u64,
    /// Executed `pfence`s.
    pub pfence: u64,
    /// `psync`/`pfence` calls elided inside fence-coalescible regions.
    pub psync_coalesced: u64,
}

impl StatsSnapshot {
    /// Total `pwb`s across all sites.
    pub fn pwb_total(&self) -> u64 {
        self.pwb_per_site.iter().sum()
    }

    /// Total elided `pwb`s across all sites.
    pub fn pwb_elided_total(&self) -> u64 {
        self.pwb_elided_per_site.iter().sum()
    }

    /// Counter deltas `self - earlier` (for bracketing a benchmark window).
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            pwb_per_site: std::array::from_fn(|i| {
                self.pwb_per_site[i].saturating_sub(earlier.pwb_per_site[i])
            }),
            pwb_elided_per_site: std::array::from_fn(|i| {
                self.pwb_elided_per_site[i].saturating_sub(earlier.pwb_elided_per_site[i])
            }),
            psync: self.psync.saturating_sub(earlier.psync),
            pfence: self.pfence.saturating_sub(earlier.pfence),
            psync_coalesced: self.psync_coalesced.saturating_sub(earlier.psync_coalesced),
        }
    }

    /// Executed `pwb`s for one site.
    pub fn pwb_at(&self, s: SiteId) -> u64 {
        self.pwb_per_site[s.idx()]
    }

    /// The sites that executed at least one `pwb`, with their counts, in
    /// site order — the rows of a per-site attribution table.
    pub fn site_rows(&self) -> Vec<(SiteId, u64)> {
        self.pwb_per_site
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (SiteId(i as u8), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_site() {
        let s = Stats::new();
        s.count_pwb(SiteId(0));
        s.count_pwb(SiteId(0));
        s.count_pwb(SiteId(5));
        s.count_psync();
        s.count_pfence();
        s.count_pfence();
        let snap = s.snapshot();
        assert_eq!(snap.pwb_at(SiteId(0)), 2);
        assert_eq!(snap.pwb_at(SiteId(5)), 1);
        assert_eq!(snap.pwb_at(SiteId(1)), 0);
        assert_eq!(snap.pwb_total(), 3);
        assert_eq!(snap.psync, 1);
        assert_eq!(snap.pfence, 2);
    }

    #[test]
    fn delta_subtracts() {
        let s = Stats::new();
        s.count_pwb(SiteId(2));
        let a = s.snapshot();
        s.count_pwb(SiteId(2));
        s.count_pwb(SiteId(3));
        s.count_psync();
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.pwb_at(SiteId(2)), 1);
        assert_eq!(d.pwb_at(SiteId(3)), 1);
        assert_eq!(d.psync, 1);
    }

    #[test]
    fn reset_zeroes() {
        let s = Stats::new();
        s.count_pwb(SiteId(1));
        s.count_psync();
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.pwb_total(), 0);
        assert_eq!(snap.psync, 0);
    }

    #[test]
    fn snapshot_sums_across_thread_shards() {
        // Increments from different OS threads land in different shards;
        // the snapshot must still report the global total.
        let s = std::sync::Arc::new(Stats::new());
        let mut handles = vec![];
        for _ in 0..4 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    s.count_pwb(SiteId(7));
                    s.count_psync();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.pwb_at(SiteId(7)), 400);
        assert_eq!(snap.psync, 400);
        assert_eq!(snap.pwb_total(), 400);
    }

    #[test]
    fn shards_never_share_cache_lines() {
        assert_eq!(std::mem::align_of::<Shard>(), 64);
        assert_eq!(std::mem::size_of::<Shard>() % 64, 0);
    }
}
