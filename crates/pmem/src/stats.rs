//! Per-site persistence-instruction counters.
//!
//! Figures 3b/4b (number of `psync`s) and 3d/4d (number of `pwb`s) of the
//! paper are pure instruction counts; Figures 3e/4e additionally need the
//! counts *per call site* so executed `pwb`s can be attributed to the
//! low/medium/high impact categories. Counters are plain relaxed atomics —
//! one increment per instruction — and can be snapshot/delta'd around a
//! timed benchmark window.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::persist::{SiteId, MAX_SITES};

/// Live counters owned by a pool.
pub(crate) struct Stats {
    pwb_per_site: [AtomicU64; MAX_SITES],
    psync: AtomicU64,
    pfence: AtomicU64,
}

impl Stats {
    pub(crate) fn new() -> Self {
        Stats {
            pwb_per_site: std::array::from_fn(|_| AtomicU64::new(0)),
            psync: AtomicU64::new(0),
            pfence: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn count_pwb(&self, s: SiteId) {
        self.pwb_per_site[s.idx()].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_psync(&self) {
        self.psync.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_pfence(&self) {
        self.pfence.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            pwb_per_site: std::array::from_fn(|i| self.pwb_per_site[i].load(Ordering::Relaxed)),
            psync: self.psync.load(Ordering::Relaxed),
            pfence: self.pfence.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        for c in &self.pwb_per_site {
            c.store(0, Ordering::Relaxed);
        }
        self.psync.store(0, Ordering::Relaxed);
        self.pfence.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a pool's persistence-instruction counters.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Executed `pwb`s per call site.
    pub pwb_per_site: [u64; MAX_SITES],
    /// Executed `psync`s.
    pub psync: u64,
    /// Executed `pfence`s.
    pub pfence: u64,
}

impl StatsSnapshot {
    /// Total `pwb`s across all sites.
    pub fn pwb_total(&self) -> u64 {
        self.pwb_per_site.iter().sum()
    }

    /// Counter deltas `self - earlier` (for bracketing a benchmark window).
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            pwb_per_site: std::array::from_fn(|i| {
                self.pwb_per_site[i].saturating_sub(earlier.pwb_per_site[i])
            }),
            psync: self.psync.saturating_sub(earlier.psync),
            pfence: self.pfence.saturating_sub(earlier.pfence),
        }
    }

    /// Executed `pwb`s for one site.
    pub fn pwb_at(&self, s: SiteId) -> u64 {
        self.pwb_per_site[s.idx()]
    }

    /// The sites that executed at least one `pwb`, with their counts, in
    /// site order — the rows of a per-site attribution table.
    pub fn site_rows(&self) -> Vec<(SiteId, u64)> {
        self.pwb_per_site
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (SiteId(i as u8), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_site() {
        let s = Stats::new();
        s.count_pwb(SiteId(0));
        s.count_pwb(SiteId(0));
        s.count_pwb(SiteId(5));
        s.count_psync();
        s.count_pfence();
        s.count_pfence();
        let snap = s.snapshot();
        assert_eq!(snap.pwb_at(SiteId(0)), 2);
        assert_eq!(snap.pwb_at(SiteId(5)), 1);
        assert_eq!(snap.pwb_at(SiteId(1)), 0);
        assert_eq!(snap.pwb_total(), 3);
        assert_eq!(snap.psync, 1);
        assert_eq!(snap.pfence, 2);
    }

    #[test]
    fn delta_subtracts() {
        let s = Stats::new();
        s.count_pwb(SiteId(2));
        let a = s.snapshot();
        s.count_pwb(SiteId(2));
        s.count_pwb(SiteId(3));
        s.count_psync();
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.pwb_at(SiteId(2)), 1);
        assert_eq!(d.pwb_at(SiteId(3)), 1);
        assert_eq!(d.psync, 1);
    }

    #[test]
    fn reset_zeroes() {
        let s = Stats::new();
        s.count_pwb(SiteId(1));
        s.count_psync();
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.pwb_total(), 0);
        assert_eq!(snap.psync, 0);
    }
}
