//! Per-thread bump sub-arenas: uncontended allocation for parallel runs.
//!
//! The pool's base allocator is a single bump cursor advanced by CAS
//! ([`PmemPool::try_alloc_lines`]). Under genuinely parallel load every
//! allocation — nodes *and* operation descriptors, several per attempt —
//! lands on that one cache line, so the cursor becomes the first scaling
//! bottleneck before any algorithmic cost shows up. A [`SubArena`] removes
//! it: each worker thread carves a private chunk of lines from the global
//! cursor (one CAS per chunk) and bump-allocates inside the chunk with
//! plain thread-local arithmetic. Allocation then contends on the global
//! cursor once every `chunk_lines` allocations instead of on every one.
//!
//! Installation is thread-local ([`install_thread_arena`]): while an arena
//! is installed, **every** allocation the thread performs against that
//! arena's pool — `alloc_lines`, `palloc_lines` bump fallbacks,
//! descriptor allocation inside the tracking algorithms — is served from
//! the private chunk, with no changes to algorithm code. Threads without
//! an installed arena (every existing harness and test) take the global
//! CAS path unchanged.
//!
//! ## Why per-thread cursors preserve the no-reuse/ABA argument
//!
//! The ABA-freedom of every CAS in this repository rests on one property
//! of the allocator: *a bump address is never issued twice* (see
//! [`PmemPool::try_alloc_lines`]). Sub-arenas keep that property by
//! construction — chunks are carved from the same monotone global cursor,
//! chunks never overlap, and a chunk's private cursor is itself monotone
//! — so partitioning the arena among threads changes *who* hands out an
//! address, never *how often*. The recoverable free-list classes
//! (`palloc`) stay per-thread as before and recycle only across epoch
//! quiescence; an arena only replaces the bump fallback underneath them.
//!
//! ## Lifecycle caveats
//!
//! An arena is a **volatile** accelerator: its cursor lives outside pmem.
//! Discard (uninstall and drop) any installed arena before
//! [`PmemPool::crash`] or [`PmemPool::restore`] — after either, lines the
//! arena still considers carved may be handed out again by a restored
//! global cursor. The parallel throughput harness, the only current user,
//! never crashes or restores while arenas are live.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use crate::addr::{PAddr, WORDS_PER_LINE};
use crate::pool::PmemPool;

/// Default chunk size, in cache lines, carved per global-cursor CAS.
pub const DEFAULT_CHUNK_LINES: usize = 4096;

/// A private bump allocator over a chunk of pool lines (see module docs).
///
/// Deliberately `!Sync` (interior `Cell`s): an arena belongs to exactly
/// one thread. Create it on the owning thread — or move it there — then
/// [`install_thread_arena`] it.
pub struct SubArena {
    pool: Arc<PmemPool>,
    chunk_lines: usize,
    /// Next free word inside the current chunk (0 = no chunk yet).
    next: Cell<usize>,
    /// First word past the current chunk.
    end: Cell<usize>,
    carved_lines: Cell<usize>,
    refills: Cell<u64>,
    waste_lines: Cell<usize>,
}

impl SubArena {
    /// Creates an arena over `pool` carving `chunk_lines` lines per refill
    /// (clamped to at least 1). No memory is carved until first use.
    pub fn new(pool: Arc<PmemPool>, chunk_lines: usize) -> SubArena {
        SubArena {
            pool,
            chunk_lines: chunk_lines.max(1),
            next: Cell::new(0),
            end: Cell::new(0),
            carved_lines: Cell::new(0),
            refills: Cell::new(0),
            waste_lines: Cell::new(0),
        }
    }

    /// The pool this arena carves from.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// Allocates `nlines` zeroed, line-aligned cache lines from the private
    /// chunk, refilling from the pool's global cursor when the chunk runs
    /// out. Returns `None` only when the pool itself is exhausted.
    pub fn try_alloc_lines(&self, nlines: usize) -> Option<PAddr> {
        let need = nlines * WORDS_PER_LINE;
        let cur = self.next.get();
        if cur == 0 || cur + need > self.end.get() {
            self.refill(nlines)?;
        }
        let at = self.next.get();
        self.next.set(at + need);
        Some(PAddr(at as u64))
    }

    /// Carves a fresh chunk big enough for `nlines` from the global cursor.
    fn refill(&self, nlines: usize) -> Option<()> {
        let lines = self.chunk_lines.max(nlines);
        // The tail of the old chunk is abandoned, not freed: handing it
        // back would require a free list, and the point of an arena is to
        // avoid one. Tracked so reports can show the (tiny) loss.
        let left = self.end.get().saturating_sub(self.next.get());
        self.waste_lines
            .set(self.waste_lines.get() + left / WORDS_PER_LINE);
        let base = match self.pool.try_alloc_lines_global(lines) {
            Some(a) => a,
            // Chunk no longer fits: fall back to exactly the request.
            None => self.pool.try_alloc_lines_global(nlines)?,
        };
        self.refills.set(self.refills.get() + 1);
        self.carved_lines.set(self.carved_lines.get() + lines);
        self.next.set(base.word());
        self.end.set(base.word() + lines * WORDS_PER_LINE);
        Some(())
    }

    /// Total lines carved from the global cursor so far.
    pub fn carved_lines(&self) -> usize {
        self.carved_lines.get()
    }

    /// Number of global-cursor CASes performed (one per chunk refill).
    pub fn refills(&self) -> u64 {
        self.refills.get()
    }

    /// Lines abandoned at chunk tails (never handed out, never reused).
    pub fn waste_lines(&self) -> usize {
        self.waste_lines.get()
    }
}

thread_local! {
    static TL_ARENA: RefCell<Option<SubArena>> = const { RefCell::new(None) };
}

/// Installs `arena` as the calling thread's allocation arena, replacing
/// (and returning) any previous one. While installed, the thread's
/// allocations against the arena's pool bypass the global bump cursor.
pub fn install_thread_arena(arena: SubArena) -> Option<SubArena> {
    TL_ARENA.with(|slot| slot.borrow_mut().replace(arena))
}

/// Removes and returns the calling thread's installed arena, if any —
/// typically to read its [`SubArena::refills`] statistics after a run.
pub fn uninstall_thread_arena() -> Option<SubArena> {
    TL_ARENA.with(|slot| slot.borrow_mut().take())
}

/// Allocation hook called by [`PmemPool::try_alloc_lines`]: `None` when the
/// calling thread has no arena installed for `pool` (caller takes the
/// global path), `Some(result)` when the arena handled the request.
pub(crate) fn thread_arena_alloc(pool: &PmemPool, nlines: usize) -> Option<Option<PAddr>> {
    TL_ARENA.with(|slot| {
        let guard = slot.borrow();
        let arena = guard.as_ref()?;
        if !std::ptr::eq(Arc::as_ptr(&arena.pool), pool) {
            return None;
        }
        Some(arena.try_alloc_lines(nlines))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolCfg;

    fn pool() -> Arc<PmemPool> {
        Arc::new(PmemPool::new(PoolCfg::model(4 << 20)))
    }

    #[test]
    fn arena_bumps_within_one_carved_chunk() {
        let p = pool();
        let before = p.remaining_lines();
        let a = SubArena::new(p.clone(), 16);
        let x = a.try_alloc_lines(1).unwrap();
        let y = a.try_alloc_lines(2).unwrap();
        assert_eq!(y.word(), x.word() + WORDS_PER_LINE);
        assert_eq!(a.refills(), 1, "both fits in the first chunk");
        assert_eq!(a.carved_lines(), 16);
        assert_eq!(before - p.remaining_lines(), 16, "one chunk carved");
    }

    #[test]
    fn arena_refills_and_serves_oversized_requests() {
        let p = pool();
        let a = SubArena::new(p.clone(), 4);
        for _ in 0..6 {
            a.try_alloc_lines(1).unwrap();
        }
        assert_eq!(a.refills(), 2);
        // A request bigger than the chunk gets a chunk of its own size.
        let big = a.try_alloc_lines(9).unwrap();
        assert!(!big.is_null());
        assert_eq!(a.refills(), 3);
        assert!(a.waste_lines() > 0, "abandoned tail of chunk two");
    }

    #[test]
    fn installed_arena_serves_pool_alloc_and_uninstalls() {
        let p = pool();
        install_thread_arena(SubArena::new(p.clone(), 8));
        let a = p.alloc_lines(1);
        let b = p.alloc_lines(1);
        assert_eq!(
            b.word(),
            a.word() + WORDS_PER_LINE,
            "private bump: adjacent"
        );
        let arena = uninstall_thread_arena().expect("was installed");
        assert_eq!(arena.refills(), 1);
        // After uninstall the global path serves again.
        let c = p.alloc_lines(1);
        assert!(c.word() >= arena.end.get(), "global cursor past the chunk");
        assert!(uninstall_thread_arena().is_none());
    }

    #[test]
    fn arena_for_another_pool_is_ignored() {
        let p1 = pool();
        let p2 = pool();
        install_thread_arena(SubArena::new(p1.clone(), 8));
        let before = p2.remaining_lines();
        let _ = p2.alloc_lines(1);
        assert_eq!(
            before - p2.remaining_lines(),
            1,
            "p2 must not be served from p1's arena"
        );
        let arena = uninstall_thread_arena().unwrap();
        assert_eq!(arena.refills(), 0);
    }

    #[test]
    fn distinct_thread_arenas_never_overlap() {
        let p = pool();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                install_thread_arena(SubArena::new(p.clone(), 8));
                let mine: Vec<usize> = (0..64).map(|_| p.alloc_lines(1).word()).collect();
                uninstall_thread_arena();
                mine
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "an address was issued twice");
    }
}
