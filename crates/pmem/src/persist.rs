//! Persistence-instruction call sites and performance backends.
//!
//! Every `pwb` in an algorithm is identified by a [`SiteId`] naming the code
//! line it corresponds to (e.g. "flush of `RD_q`", "flush of a node's `info`
//! field after the tagging CAS"). The pool counts executions per site and
//! exposes a runtime *site mask*, so the paper's experiments — the
//! persistence-free version, single-site impact measurements, and
//! category add/remove sweeps (Figures 3e–f, 4e–f, 5, 6) — are all driven
//! by masks on one binary, exactly as the paper's methodology prescribes.

use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum number of distinct `pwb` call sites per pool.
pub const MAX_SITES: usize = 64;

/// Identifier of a `pwb` call site within one algorithm.
///
/// Algorithm crates define their own site constants (with names) in the
/// range `0..MAX_SITES`; the pool treats sites as opaque counters.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SiteId(pub u8);

impl SiteId {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

/// How persistence instructions behave at run time.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Backend {
    /// `pwb` = a real cache-line write-back of the backing DRAM line
    /// (`clwb` where the host supports it — Optane's own instruction —
    /// falling back to `clflushopt`/`clflush`), `psync`/`pfence` = real
    /// `sfence`. Default on x86-64; reproduces the coherence/write-back
    /// cost structure of flushes that the paper's analysis is about.
    Clflush,
    /// Inject fixed busy-wait latencies (nanoseconds) instead of real
    /// flushes. Portable fallback and a knob for sensitivity studies.
    Delay {
        /// Busy-wait per `pwb`.
        pwb_ns: u64,
        /// Busy-wait per `psync`.
        psync_ns: u64,
    },
    /// Count persistence instructions but execute nothing. Used for pure
    /// instruction-count experiments (Figures 3b/3d) where the counting
    /// itself must not perturb the run.
    Noop,
}

/// Runtime enable/disable mask over `pwb` sites plus a global `psync` switch.
///
/// "Removing a code line containing a persistence instruction" (the paper's
/// phrasing) corresponds to clearing the site's bit.
pub(crate) struct SiteMask {
    bits: AtomicU64,
    psync_on: AtomicU64, // 0 or 1; u64 keeps everything lock-free & simple
}

impl SiteMask {
    pub(crate) fn all_on() -> Self {
        SiteMask {
            bits: AtomicU64::new(u64::MAX),
            psync_on: AtomicU64::new(1),
        }
    }

    #[inline]
    pub(crate) fn site_enabled(&self, s: SiteId) -> bool {
        self.bits.load(Ordering::Relaxed) & (1u64 << s.idx()) != 0
    }

    #[inline]
    pub(crate) fn psync_enabled(&self) -> bool {
        self.psync_on.load(Ordering::Relaxed) != 0
    }

    pub(crate) fn set_site(&self, s: SiteId, on: bool) {
        if on {
            self.bits.fetch_or(1u64 << s.idx(), Ordering::Relaxed);
        } else {
            self.bits.fetch_and(!(1u64 << s.idx()), Ordering::Relaxed);
        }
    }

    pub(crate) fn set_mask(&self, mask: u64) {
        self.bits.store(mask, Ordering::Relaxed);
    }

    pub(crate) fn mask(&self) -> u64 {
        self.bits.load(Ordering::Relaxed)
    }

    pub(crate) fn set_psync(&self, on: bool) {
        self.psync_on.store(on as u64, Ordering::Relaxed);
    }
}

/// Which write-back instruction the host supports (best first).
#[cfg(target_arch = "x86_64")]
#[derive(Copy, Clone, PartialEq, Eq)]
enum FlushInsn {
    /// `clwb`: write back, keep the line valid — Optane's instruction, and
    /// the one that makes thread-private flushes cheap (the crux of the
    /// paper's L/M/H categorization).
    Clwb,
    /// `clflushopt`: write back and invalidate, weakly ordered.
    ClflushOpt,
    /// `clflush`: write back and invalidate, strongly ordered (SSE2).
    Clflush,
}

#[cfg(target_arch = "x86_64")]
fn flush_insn() -> FlushInsn {
    use std::sync::atomic::AtomicU8;
    static KIND: AtomicU8 = AtomicU8::new(u8::MAX);
    match KIND.load(Ordering::Relaxed) {
        0 => FlushInsn::Clwb,
        1 => FlushInsn::ClflushOpt,
        2 => FlushInsn::Clflush,
        _ => {
            // CPUID.(EAX=7, ECX=0): EBX bit 24 = CLWB, bit 23 = CLFLUSHOPT.
            let ebx = core::arch::x86_64::__cpuid_count(7, 0).ebx;
            let k = if ebx & (1 << 24) != 0 {
                FlushInsn::Clwb
            } else if ebx & (1 << 23) != 0 {
                FlushInsn::ClflushOpt
            } else {
                FlushInsn::Clflush
            };
            KIND.store(k as u8, Ordering::Relaxed);
            k
        }
    }
}

/// Issues a cache-line write-back of the line containing `ptr` (Perf
/// backend), using the best instruction the host offers: `clwb` (Optane's
/// `pwb`; keeps the line valid, so flushing a thread-private line is
/// cheap), falling back to `clflushopt`/`clflush` (which additionally
/// invalidate — strictly more expensive, same direction).
#[inline]
pub(crate) fn hw_flush(ptr: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: the selected instruction is supported (runtime-detected) and
    // `ptr` is a valid address inside the pool allocation; cache-line
    // write-backs have no other preconditions.
    unsafe {
        match flush_insn() {
            FlushInsn::Clwb => {
                std::arch::asm!("clwb [{0}]", in(reg) ptr, options(nostack, preserves_flags));
            }
            FlushInsn::ClflushOpt => {
                std::arch::asm!("clflushopt [{0}]", in(reg) ptr, options(nostack, preserves_flags));
            }
            FlushInsn::Clflush => core::arch::x86_64::_mm_clflush(ptr),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
        std::sync::atomic::fence(Ordering::SeqCst);
    }
}

/// Issues a store fence (Perf backend `psync`/`pfence`).
#[inline]
pub(crate) fn hw_sfence() {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_sfence();
    }
    #[cfg(not(target_arch = "x86_64"))]
    std::sync::atomic::fence(Ordering::SeqCst);
}

/// Busy-waits approximately `ns` nanoseconds (Delay backend).
#[inline]
pub(crate) fn busy_wait_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = std::time::Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_default_all_on() {
        let m = SiteMask::all_on();
        for i in 0..MAX_SITES as u8 {
            assert!(m.site_enabled(SiteId(i)));
        }
        assert!(m.psync_enabled());
    }

    #[test]
    fn mask_individual_toggle() {
        let m = SiteMask::all_on();
        m.set_site(SiteId(3), false);
        assert!(!m.site_enabled(SiteId(3)));
        assert!(m.site_enabled(SiteId(2)));
        assert!(m.site_enabled(SiteId(4)));
        m.set_site(SiteId(3), true);
        assert!(m.site_enabled(SiteId(3)));
    }

    #[test]
    fn mask_bulk_set() {
        let m = SiteMask::all_on();
        m.set_mask(0);
        for i in 0..MAX_SITES as u8 {
            assert!(!m.site_enabled(SiteId(i)));
        }
        m.set_mask(0b101);
        assert!(m.site_enabled(SiteId(0)));
        assert!(!m.site_enabled(SiteId(1)));
        assert!(m.site_enabled(SiteId(2)));
    }

    #[test]
    fn psync_toggle() {
        let m = SiteMask::all_on();
        m.set_psync(false);
        assert!(!m.psync_enabled());
        m.set_psync(true);
        assert!(m.psync_enabled());
    }

    #[test]
    fn busy_wait_returns() {
        // smoke: must terminate and take at least roughly the requested time
        let t = std::time::Instant::now();
        busy_wait_ns(10_000);
        assert!(t.elapsed().as_nanos() >= 10_000);
    }
}
