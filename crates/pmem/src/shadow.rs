//! Shadow memory: the crash *model* (Model mode).
//!
//! Under the paper's explicit epoch persistency model, a write reaches
//! persistent memory when (a) its cache line is explicitly written back with
//! `pwb` and a later `psync` completes, or (b) the line happens to be
//! evicted. A write that did neither is lost by a crash. The shadow keeps,
//! for every cache line,
//!
//! * the **persisted** image — the content guaranteed durable (committed by
//!   `psync`),
//! * an optional **pending** snapshot — taken at `pwb` time, durable *iff*
//!   the write-back completed before the crash,
//! * while the pool's own word array plays the role of the **volatile**
//!   (cache) view.
//!
//! A simulated crash asks a [`CrashAdversary`] to resolve each line to one
//! of the three images ([`CrashChoice`]); choosing `Volatile` models a
//! spontaneous eviction, `Pending` a completed-but-unsynced write-back, and
//! `Persisted` the maximal loss. Per-location write-backs preserve program
//! order (the three images of a line are temporally ordered), while
//! different lines resolve independently (write-backs of different lines may
//! reorder) — matching Section 2 of the paper.
//!
//! One deliberate simplification: `psync` commits *all* pending snapshots,
//! not just the calling thread's. This only ever makes *more* data durable,
//! never creates a state unreachable on real hardware (the same snapshots
//! could have been evicted), so it cannot mask a false positive in crash
//! tests; it merely under-approximates maximal adversarial loss across
//! concurrently crashing threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::addr::WORDS_PER_LINE;

/// Locks ignoring poisoning: nothing panics while the pending map is held
/// (crash injection ticks happen before shadow calls), and even if a foreign
/// panic poisoned it the map stays internally consistent.
fn lock_pending(m: &Mutex<HashMap<usize, LineSnap>>) -> MutexGuard<'_, HashMap<usize, LineSnap>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How a crash resolves one cache line.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CrashChoice {
    /// The line keeps only its persisted image: every un-synced write to it
    /// is lost (maximal loss).
    Persisted,
    /// The pending `pwb` snapshot made it to memory, writes after the `pwb`
    /// are lost. Falls back to `Persisted` if the line has no pending
    /// snapshot.
    Pending,
    /// The line was evicted at crash time: the full volatile content
    /// survives (minimal loss).
    Volatile,
}

/// Decides, per cache line, what a crash leaves in persistent memory.
pub trait CrashAdversary {
    /// Chooses the surviving image for `line` (which differs between its
    /// volatile and persisted views, and/or has a pending snapshot).
    fn choose(&mut self, line: usize, has_pending: bool) -> CrashChoice;
}

/// Maximal-loss adversary: every un-synced write is dropped.
pub struct PessimistAdversary;

impl CrashAdversary for PessimistAdversary {
    fn choose(&mut self, _line: usize, _has_pending: bool) -> CrashChoice {
        CrashChoice::Persisted
    }
}

/// Minimal-loss adversary: every line behaves as if evicted (all writes
/// survive). Useful to isolate thread-crash handling from memory loss.
pub struct OptimistAdversary;

impl CrashAdversary for OptimistAdversary {
    fn choose(&mut self, _line: usize, _has_pending: bool) -> CrashChoice {
        CrashChoice::Volatile
    }
}

/// Deterministic pseudo-random adversary (xorshift64*), for randomized crash
/// sweeps that must be reproducible from a seed.
pub struct SeededAdversary {
    state: u64,
}

impl SeededAdversary {
    /// Creates an adversary from a non-zero seed (0 is mapped to a fixed
    /// constant).
    pub fn new(seed: u64) -> Self {
        SeededAdversary {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64* — small, deterministic, dependency-free
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl CrashAdversary for SeededAdversary {
    fn choose(&mut self, _line: usize, has_pending: bool) -> CrashChoice {
        match self.next() % if has_pending { 3 } else { 2 } {
            0 => CrashChoice::Persisted,
            1 => CrashChoice::Volatile,
            _ => CrashChoice::Pending,
        }
    }
}

pub(crate) type LineSnap = [u64; WORDS_PER_LINE];

/// The shadow images backing Model mode (see module docs).
pub(crate) struct ShadowMem {
    persisted: Box<[AtomicU64]>,
    pending: Mutex<HashMap<usize, LineSnap>>,
}

impl ShadowMem {
    pub(crate) fn new(nwords: usize) -> Self {
        ShadowMem {
            persisted: crate::pool::alloc_zeroed_atomics(nwords),
            pending: Mutex::new(HashMap::new()),
        }
    }

    /// Records a `pwb` of `line`: snapshots the current volatile content.
    ///
    /// The snapshot is read *while holding* the pending lock, never before.
    /// `psync` drains the map under the same lock, so every committed
    /// snapshot reflects the line at insert time and per-word persisted
    /// images only move forward. If the snapshot were read first, a thread
    /// descheduled between the read and the insert could publish an
    /// arbitrarily old image, and the next `psync` would commit it —
    /// rolling the persisted image *backward* past durably-committed
    /// updates, something no real write-back can do.
    pub(crate) fn pwb(&self, volatile: &[AtomicU64], line: usize) {
        let base = line * WORDS_PER_LINE;
        let mut pend = lock_pending(&self.pending);
        let snap: LineSnap = std::array::from_fn(|i| volatile[base + i].load(Ordering::Acquire));
        pend.insert(line, snap);
    }

    /// Commits every pending snapshot to the persisted image (`psync`).
    pub(crate) fn psync(&self) {
        let mut pend = lock_pending(&self.pending);
        for (line, snap) in pend.drain() {
            let base = line * WORDS_PER_LINE;
            for (i, w) in snap.iter().enumerate() {
                self.persisted[base + i].store(*w, Ordering::Release);
            }
        }
    }

    /// Reads the persisted image of a word (test introspection).
    pub(crate) fn persisted_load(&self, word: usize) -> u64 {
        self.persisted[word].load(Ordering::Acquire)
    }

    /// Copies out the shadow state covering the first `nwords` words: the
    /// persisted image plus every pending `pwb` snapshot. Requires
    /// quiescence (pool snapshot/restore only).
    pub(crate) fn export(&self, nwords: usize) -> (Vec<u64>, Vec<(usize, LineSnap)>) {
        let persisted = (0..nwords)
            .map(|i| self.persisted[i].load(Ordering::Acquire))
            .collect();
        let mut pending: Vec<(usize, LineSnap)> = lock_pending(&self.pending)
            .iter()
            .map(|(&line, &snap)| (line, snap))
            .collect();
        pending.sort_unstable_by_key(|&(line, _)| line);
        (persisted, pending)
    }

    /// Restores state exported by [`ShadowMem::export`]: writes back the
    /// persisted prefix, zeroes the persisted image up to `zero_to` words
    /// (space the restored-from pool had not yet allocated but the current
    /// one dirtied), and replaces the pending map. Requires quiescence.
    pub(crate) fn import(&self, persisted: &[u64], pending: &[(usize, LineSnap)], zero_to: usize) {
        for (i, w) in persisted.iter().enumerate() {
            self.persisted[i].store(*w, Ordering::Release);
        }
        for i in persisted.len()..zero_to {
            self.persisted[i].store(0, Ordering::Release);
        }
        let mut pend = lock_pending(&self.pending);
        pend.clear();
        for &(line, snap) in pending {
            pend.insert(line, snap);
        }
    }

    /// Resolves a crash: rewrites both the volatile and persisted views of
    /// every line per the adversary's choices. Requires quiescence (no
    /// concurrent pool operations) — callers crash/join all worker threads
    /// first. `nlines` bounds the scan to the allocated prefix of the pool
    /// (untouched lines are identical in both views by construction).
    pub(crate) fn crash(
        &self,
        volatile: &[AtomicU64],
        adversary: &mut dyn CrashAdversary,
        nlines: usize,
    ) {
        let mut pend = lock_pending(&self.pending);
        for line in 0..nlines {
            self.resolve_line(volatile, adversary, line, &mut pend);
        }
    }

    /// [`ShadowMem::crash`] over an explicit ascending line list instead of
    /// the whole allocated prefix. The caller (pool footprint tracking)
    /// guarantees the list covers every line whose views can differ and
    /// every pending snapshot; lines are visited in the same ascending
    /// order as the full scan and clean lines consume no adversary choice,
    /// so a seeded adversary resolves both scans identically.
    pub(crate) fn crash_bounded(
        &self,
        volatile: &[AtomicU64],
        adversary: &mut dyn CrashAdversary,
        lines: &[usize],
    ) {
        let mut pend = lock_pending(&self.pending);
        for &line in lines {
            self.resolve_line(volatile, adversary, line, &mut pend);
        }
        debug_assert!(pend.is_empty(), "crash_bounded missed a pending line");
    }

    /// One line of crash resolution (shared by the full and bounded scans):
    /// skip if both views agree and nothing is pending, otherwise let the
    /// adversary pick the surviving image and write it to both views.
    fn resolve_line(
        &self,
        volatile: &[AtomicU64],
        adversary: &mut dyn CrashAdversary,
        line: usize,
        pend: &mut HashMap<usize, LineSnap>,
    ) {
        let base = line * WORDS_PER_LINE;
        let pending = pend.remove(&line);
        let differs = (0..WORDS_PER_LINE).any(|i| {
            volatile[base + i].load(Ordering::Acquire)
                != self.persisted[base + i].load(Ordering::Acquire)
        });
        if !differs && pending.is_none() {
            return;
        }
        let choice = adversary.choose(line, pending.is_some());
        let image: LineSnap = match (choice, pending) {
            (CrashChoice::Volatile, _) => {
                std::array::from_fn(|i| volatile[base + i].load(Ordering::Acquire))
            }
            (CrashChoice::Pending, Some(snap)) => snap,
            // Pending without a snapshot degrades to the persisted image
            _ => std::array::from_fn(|i| self.persisted[base + i].load(Ordering::Acquire)),
        };
        for (i, w) in image.iter().enumerate() {
            volatile[base + i].store(*w, Ordering::Release);
            self.persisted[base + i].store(*w, Ordering::Release);
        }
    }

    /// Lines that currently hold a pending `pwb` snapshot, ascending.
    pub(crate) fn pending_lines(&self) -> Vec<usize> {
        let mut lines: Vec<usize> = lock_pending(&self.pending).keys().copied().collect();
        lines.sort_unstable();
        lines
    }

    /// Incremental counterpart of [`ShadowMem::import`]: rewrites the
    /// persisted image of just `lines` (from `persisted`, zero past its
    /// end) and replaces the pending map. Correct only when every other
    /// line's persisted image already equals the snapshot's — the pool's
    /// footprint tracking establishes exactly that.
    pub(crate) fn import_lines(
        &self,
        lines: &[usize],
        persisted: &[u64],
        pending: &[(usize, LineSnap)],
    ) {
        for &line in lines {
            let base = line * WORDS_PER_LINE;
            for i in 0..WORDS_PER_LINE {
                let w = base + i;
                let v = persisted.get(w).copied().unwrap_or(0);
                self.persisted[w].store(v, Ordering::Release);
            }
        }
        let mut pend = lock_pending(&self.pending);
        pend.clear();
        for &(line, snap) in pending {
            pend.insert(line, snap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(nwords: usize) -> (Box<[AtomicU64]>, ShadowMem) {
        (
            crate::pool::alloc_zeroed_atomics(nwords),
            ShadowMem::new(nwords),
        )
    }

    #[test]
    fn unflushed_write_lost_under_pessimist() {
        let (vol, sh) = mk(16);
        vol[3].store(7, Ordering::Release);
        sh.crash(&vol, &mut PessimistAdversary, vol.len() / WORDS_PER_LINE);
        assert_eq!(vol[3].load(Ordering::Acquire), 0);
        assert_eq!(sh.persisted_load(3), 0);
    }

    #[test]
    fn pwb_plus_psync_survives_any_adversary() {
        let (vol, sh) = mk(16);
        vol[3].store(7, Ordering::Release);
        sh.pwb(&vol, 0);
        sh.psync();
        sh.crash(&vol, &mut PessimistAdversary, vol.len() / WORDS_PER_LINE);
        assert_eq!(vol[3].load(Ordering::Acquire), 7);
    }

    #[test]
    fn pwb_without_psync_may_or_may_not_survive() {
        // Pending choice keeps it; Persisted choice drops it.
        let (vol, sh) = mk(16);
        vol[3].store(7, Ordering::Release);
        sh.pwb(&vol, 0);
        struct PickPending;
        impl CrashAdversary for PickPending {
            fn choose(&mut self, _: usize, has_pending: bool) -> CrashChoice {
                assert!(has_pending);
                CrashChoice::Pending
            }
        }
        sh.crash(&vol, &mut PickPending, vol.len() / WORDS_PER_LINE);
        assert_eq!(vol[3].load(Ordering::Acquire), 7);

        let (vol2, sh2) = mk(16);
        vol2[3].store(7, Ordering::Release);
        sh2.pwb(&vol2, 0);
        sh2.crash(&vol2, &mut PessimistAdversary, vol2.len() / WORDS_PER_LINE);
        assert_eq!(vol2[3].load(Ordering::Acquire), 0);
    }

    #[test]
    fn write_after_pwb_not_covered_by_pending() {
        let (vol, sh) = mk(16);
        vol[3].store(7, Ordering::Release);
        sh.pwb(&vol, 0);
        vol[3].store(9, Ordering::Release); // dirties the line again
        struct PickPending;
        impl CrashAdversary for PickPending {
            fn choose(&mut self, _: usize, _: bool) -> CrashChoice {
                CrashChoice::Pending
            }
        }
        sh.crash(&vol, &mut PickPending, vol.len() / WORDS_PER_LINE);
        assert_eq!(vol[3].load(Ordering::Acquire), 7); // 9 was never written back
    }

    #[test]
    fn eviction_choice_keeps_everything() {
        let (vol, sh) = mk(16);
        vol[1].store(5, Ordering::Release);
        vol[9].store(6, Ordering::Release);
        sh.crash(&vol, &mut OptimistAdversary, vol.len() / WORDS_PER_LINE);
        assert_eq!(vol[1].load(Ordering::Acquire), 5);
        assert_eq!(vol[9].load(Ordering::Acquire), 6);
        assert_eq!(sh.persisted_load(9), 6);
    }

    #[test]
    fn lines_resolve_independently() {
        let (vol, sh) = mk(16);
        vol[1].store(5, Ordering::Release); // line 0
        vol[9].store(6, Ordering::Release); // line 1
        struct Split;
        impl CrashAdversary for Split {
            fn choose(&mut self, line: usize, _: bool) -> CrashChoice {
                if line == 0 {
                    CrashChoice::Persisted
                } else {
                    CrashChoice::Volatile
                }
            }
        }
        sh.crash(&vol, &mut Split, vol.len() / WORDS_PER_LINE);
        assert_eq!(vol[1].load(Ordering::Acquire), 0);
        assert_eq!(vol[9].load(Ordering::Acquire), 6);
    }

    #[test]
    fn psync_only_commits_snapshot_content() {
        let (vol, sh) = mk(16);
        vol[2].store(1, Ordering::Release);
        sh.pwb(&vol, 0);
        vol[2].store(2, Ordering::Release);
        sh.psync(); // commits the snapshot (1), not the later write (2)
        assert_eq!(sh.persisted_load(2), 1);
        sh.crash(&vol, &mut PessimistAdversary, vol.len() / WORDS_PER_LINE);
        assert_eq!(vol[2].load(Ordering::Acquire), 1);
    }

    #[test]
    fn seeded_adversary_is_deterministic() {
        let mut a = SeededAdversary::new(42);
        let mut b = SeededAdversary::new(42);
        for line in 0..100 {
            assert_eq!(a.choose(line, line % 2 == 0), b.choose(line, line % 2 == 0));
        }
    }

    #[test]
    fn clean_lines_untouched() {
        let (vol, sh) = mk(16);
        struct MustNotBeAsked;
        impl CrashAdversary for MustNotBeAsked {
            fn choose(&mut self, _: usize, _: bool) -> CrashChoice {
                panic!("adversary consulted for a clean line");
            }
        }
        sh.crash(&vol, &mut MustNotBeAsked, vol.len() / WORDS_PER_LINE);
    }
}
