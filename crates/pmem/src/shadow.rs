//! Shadow memory: the crash *model* (Model mode).
//!
//! Under the paper's explicit epoch persistency model, a write reaches
//! persistent memory when (a) its cache line is explicitly written back with
//! `pwb` and a later `psync` completes, or (b) the line happens to be
//! evicted. A write that did neither is lost by a crash. The shadow keeps,
//! for every cache line,
//!
//! * the **persisted** image — the content guaranteed durable (committed by
//!   `psync`),
//! * an optional **pending** snapshot — taken at `pwb` time, durable *iff*
//!   the write-back completed before the crash,
//! * while the pool's own word array plays the role of the **volatile**
//!   (cache) view.
//!
//! A simulated crash asks a [`CrashAdversary`] to resolve each line to one
//! of the three images ([`CrashChoice`]); choosing `Volatile` models a
//! spontaneous eviction, `Pending` a completed-but-unsynced write-back, and
//! `Persisted` the maximal loss. Per-location write-backs preserve program
//! order (the three images of a line are temporally ordered), while
//! different lines resolve independently (write-backs of different lines may
//! reorder) — matching Section 2 of the paper.
//!
//! One deliberate simplification: `psync` commits *all* pending snapshots,
//! not just the calling thread's. This only ever makes *more* data durable,
//! never creates a state unreachable on real hardware (the same snapshots
//! could have been evicted), so it cannot mask a false positive in crash
//! tests; it merely under-approximates maximal adversarial loss across
//! concurrently crashing threads.
//!
//! ## Lock-free pending table
//!
//! The pending set used to be a global `Mutex<HashMap>`, which made every
//! `pwb` a lock acquisition. It is now a fixed-geometry per-line table
//! (`nwords` is known at pool creation): one snapshot buffer line, one
//! state word and one intrusive stack link per cache line. `pwb` touches
//! only its own line's words; `psync` steals the queued-lines stack with a
//! single swap and commits line by line. Durability law 4
//! (`persisted_image_never_regresses_under_concurrency`) is preserved by a
//! per-line `WRITING` bit that serializes *both* snapshot capture and
//! persisted-image commits for that line: a snapshot is always read from
//! the live volatile view inside the critical section (never captured
//! early and published late), and commits of a line cannot interleave, so
//! each per-word persisted image only ever moves forward in snapshot time.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::addr::WORDS_PER_LINE;

/// How a crash resolves one cache line.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CrashChoice {
    /// The line keeps only its persisted image: every un-synced write to it
    /// is lost (maximal loss).
    Persisted,
    /// The pending `pwb` snapshot made it to memory, writes after the `pwb`
    /// are lost. Falls back to `Persisted` if the line has no pending
    /// snapshot.
    Pending,
    /// The line was evicted at crash time: the full volatile content
    /// survives (minimal loss).
    Volatile,
}

/// Decides, per cache line, what a crash leaves in persistent memory.
pub trait CrashAdversary {
    /// Chooses the surviving image for `line` (which differs between its
    /// volatile and persisted views, and/or has a pending snapshot).
    fn choose(&mut self, line: usize, has_pending: bool) -> CrashChoice;
}

/// Maximal-loss adversary: every un-synced write is dropped.
pub struct PessimistAdversary;

impl CrashAdversary for PessimistAdversary {
    fn choose(&mut self, _line: usize, _has_pending: bool) -> CrashChoice {
        CrashChoice::Persisted
    }
}

/// Minimal-loss adversary: every line behaves as if evicted (all writes
/// survive). Useful to isolate thread-crash handling from memory loss.
pub struct OptimistAdversary;

impl CrashAdversary for OptimistAdversary {
    fn choose(&mut self, _line: usize, _has_pending: bool) -> CrashChoice {
        CrashChoice::Volatile
    }
}

/// Deterministic pseudo-random adversary (xorshift64*), for randomized crash
/// sweeps that must be reproducible from a seed.
pub struct SeededAdversary {
    state: u64,
}

impl SeededAdversary {
    /// Creates an adversary from a non-zero seed (0 is mapped to a fixed
    /// constant).
    pub fn new(seed: u64) -> Self {
        SeededAdversary {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64* — small, deterministic, dependency-free
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl CrashAdversary for SeededAdversary {
    fn choose(&mut self, _line: usize, has_pending: bool) -> CrashChoice {
        match self.next() % if has_pending { 3 } else { 2 } {
            0 => CrashChoice::Persisted,
            1 => CrashChoice::Volatile,
            _ => CrashChoice::Pending,
        }
    }
}

pub(crate) type LineSnap = [u64; WORDS_PER_LINE];

// Per-line pending state word bits.
/// The line's snapshot buffer or persisted image is being written; acts as
/// a per-line spinlock (critical sections are a handful of word copies).
const ST_WRITING: u64 = 1;
/// The snapshot buffer holds a pending `pwb` awaiting the next `psync`.
const ST_QUEUED: u64 = 2;
/// Stack-link terminator.
const NIL: u64 = u64::MAX;

/// The shadow images backing Model mode (see module docs).
pub(crate) struct ShadowMem {
    persisted: Box<[AtomicU64]>,
    /// Per-line pending snapshot buffers, same geometry as `persisted`.
    /// Valid for line `l` iff its state word has [`ST_QUEUED`] set.
    pend_buf: Box<[AtomicU64]>,
    /// Per-line [`ST_WRITING`]/[`ST_QUEUED`] word.
    pend_state: Box<[AtomicU64]>,
    /// Per-line intrusive link of the queued-lines stack ([`NIL`]-ended).
    pend_next: Box<[AtomicU64]>,
    /// Treiber stack of lines with a pending snapshot. Pushed on the
    /// not-queued → queued transition only, so a line is on at most one
    /// (stolen or live) list and pop-all is a single swap — no ABA.
    pend_head: AtomicU64,
    /// Number of [`ShadowMem::psync`] calls between steal and commit
    /// completion. A fence must not return while another fence still holds
    /// stolen-but-uncommitted snapshots (see `psync`).
    sync_active: AtomicU64,
}

impl ShadowMem {
    pub(crate) fn new(nwords: usize) -> Self {
        let nlines = nwords.div_ceil(WORDS_PER_LINE);
        ShadowMem {
            persisted: crate::pool::alloc_zeroed_atomics(nwords),
            pend_buf: crate::pool::alloc_zeroed_atomics(nlines * WORDS_PER_LINE),
            pend_state: crate::pool::alloc_zeroed_atomics(nlines),
            pend_next: crate::pool::alloc_zeroed_atomics(nlines),
            pend_head: AtomicU64::new(NIL),
            sync_active: AtomicU64::new(0),
        }
    }

    /// Acquires `line`'s [`ST_WRITING`] bit; returns the pre-acquire state.
    fn lock_line(&self, line: usize) -> u64 {
        loop {
            let s = self.pend_state[line].load(Ordering::Relaxed);
            if s & ST_WRITING == 0
                && self.pend_state[line]
                    .compare_exchange_weak(s, s | ST_WRITING, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return s;
            }
            std::hint::spin_loop();
        }
    }

    /// Pushes `line` onto the queued-lines stack. Caller guarantees the
    /// line is not already on a list (it just made the not-queued → queued
    /// transition).
    fn push_pending(&self, line: usize) {
        let mut head = self.pend_head.load(Ordering::Relaxed);
        loop {
            self.pend_next[line].store(head, Ordering::Relaxed);
            match self.pend_head.compare_exchange_weak(
                head,
                line as u64,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Records a `pwb` of `line`: snapshots the current volatile content.
    ///
    /// The snapshot is read *while holding* the line's [`ST_WRITING`] bit,
    /// never before. `psync` commits under the same bit, so every committed
    /// snapshot reflects the line at capture time and per-word persisted
    /// images only move forward. If the snapshot were read first, a thread
    /// descheduled between the read and the publish could publish an
    /// arbitrarily old image, and the next `psync` would commit it —
    /// rolling the persisted image *backward* past durably-committed
    /// updates, something no real write-back can do.
    pub(crate) fn pwb(&self, volatile: &[AtomicU64], line: usize) {
        let base = line * WORDS_PER_LINE;
        let s = self.lock_line(line);
        for i in 0..WORDS_PER_LINE {
            self.pend_buf[base + i].store(
                volatile[base + i].load(Ordering::Acquire),
                Ordering::Relaxed,
            );
        }
        // Publishes the snapshot and releases the lock in one store.
        self.pend_state[line].store(ST_QUEUED, Ordering::Release);
        if s & ST_QUEUED == 0 {
            self.push_pending(line);
        }
    }

    /// Commits every pending snapshot to the persisted image (`psync`).
    ///
    /// Steals the whole queued stack with one swap; a `pwb` racing with the
    /// steal either made the stack in time or stays queued for the next
    /// fence — either is a legal write-back schedule.
    ///
    /// The closing drain loop is load-bearing for the durability contract
    /// ("when *my* `psync` returns, *my* earlier `pwb`s are durable"): a
    /// snapshot this caller queued may sit on a stack a *concurrent* fence
    /// stole first, in which case this fence's own swap comes back empty.
    /// Returning at that point would acknowledge durability while the
    /// other fence is still mid-commit — the law-4 regression the
    /// `pending_table_storm` test pins. So a fence waits until no fence
    /// (started before or during the wait) still holds stolen snapshots;
    /// the global mutex this table replaced gave the same guarantee by
    /// serializing fences outright.
    pub(crate) fn psync(&self) {
        self.sync_active.fetch_add(1, Ordering::AcqRel);
        let mut cur = self.pend_head.swap(NIL, Ordering::Acquire);
        while cur != NIL {
            let line = cur as usize;
            self.lock_line(line);
            // Read the link *before* releasing the line: once the state
            // word clears, a concurrent `pwb` may re-queue the line and
            // repoint the link at the new live stack.
            let next = self.pend_next[line].load(Ordering::Relaxed);
            let base = line * WORDS_PER_LINE;
            for i in 0..WORDS_PER_LINE {
                self.persisted[base + i].store(
                    self.pend_buf[base + i].load(Ordering::Relaxed),
                    Ordering::Release,
                );
            }
            // Consumes the snapshot and releases the lock.
            self.pend_state[line].store(0, Ordering::Release);
            cur = next;
        }
        self.sync_active.fetch_sub(1, Ordering::AcqRel);
        while self.sync_active.load(Ordering::Acquire) != 0 {
            std::hint::spin_loop();
        }
    }

    /// Reads the persisted image of a word (test introspection).
    pub(crate) fn persisted_load(&self, word: usize) -> u64 {
        self.persisted[word].load(Ordering::Acquire)
    }

    /// Walks the queued-lines stack at quiescence: yields each line that
    /// still holds a pending snapshot, unsorted. At quiescence every
    /// psync's stolen list has drained, so queued ⇔ on this stack.
    fn queued_lines_unsorted(&self) -> Vec<usize> {
        let mut lines = Vec::new();
        let mut cur = self.pend_head.load(Ordering::Acquire);
        while cur != NIL {
            let line = cur as usize;
            if self.pend_state[line].load(Ordering::Acquire) & ST_QUEUED != 0 {
                lines.push(line);
            }
            cur = self.pend_next[line].load(Ordering::Acquire);
        }
        lines
    }

    /// Drops every pending snapshot (quiescence only).
    fn clear_pending(&self) {
        let mut cur = self.pend_head.swap(NIL, Ordering::Acquire);
        while cur != NIL {
            let line = cur as usize;
            let next = self.pend_next[line].load(Ordering::Relaxed);
            self.pend_state[line].store(0, Ordering::Relaxed);
            cur = next;
        }
    }

    /// Installs `pending` as the entire pending set (quiescence only; the
    /// caller cleared the old set first).
    fn set_pending(&self, pending: &[(usize, LineSnap)]) {
        for &(line, snap) in pending {
            let base = line * WORDS_PER_LINE;
            for (i, w) in snap.iter().enumerate() {
                self.pend_buf[base + i].store(*w, Ordering::Relaxed);
            }
            self.pend_state[line].store(ST_QUEUED, Ordering::Release);
            self.push_pending(line);
        }
    }

    /// Copies out the shadow state covering the first `nwords` words: the
    /// persisted image plus every pending `pwb` snapshot. Requires
    /// quiescence (pool snapshot/restore only).
    pub(crate) fn export(&self, nwords: usize) -> (Vec<u64>, Vec<(usize, LineSnap)>) {
        let persisted = (0..nwords)
            .map(|i| self.persisted[i].load(Ordering::Acquire))
            .collect();
        let mut pending: Vec<(usize, LineSnap)> = self
            .queued_lines_unsorted()
            .into_iter()
            .map(|line| {
                let base = line * WORDS_PER_LINE;
                let snap: LineSnap =
                    std::array::from_fn(|i| self.pend_buf[base + i].load(Ordering::Relaxed));
                (line, snap)
            })
            .collect();
        pending.sort_unstable_by_key(|&(line, _)| line);
        (persisted, pending)
    }

    /// Restores state exported by [`ShadowMem::export`]: writes back the
    /// persisted prefix, zeroes the persisted image up to `zero_to` words
    /// (space the restored-from pool had not yet allocated but the current
    /// one dirtied), and replaces the pending set. Requires quiescence.
    pub(crate) fn import(&self, persisted: &[u64], pending: &[(usize, LineSnap)], zero_to: usize) {
        for (i, w) in persisted.iter().enumerate() {
            self.persisted[i].store(*w, Ordering::Release);
        }
        for i in persisted.len()..zero_to {
            self.persisted[i].store(0, Ordering::Release);
        }
        self.clear_pending();
        self.set_pending(pending);
    }

    /// Resolves a crash: rewrites both the volatile and persisted views of
    /// every line per the adversary's choices. Requires quiescence (no
    /// concurrent pool operations) — callers crash/join all worker threads
    /// first. `nlines` bounds the scan to the allocated prefix of the pool
    /// (untouched lines are identical in both views by construction).
    pub(crate) fn crash(
        &self,
        volatile: &[AtomicU64],
        adversary: &mut dyn CrashAdversary,
        nlines: usize,
    ) {
        for line in 0..nlines {
            self.resolve_line(volatile, adversary, line);
        }
        self.pend_head.store(NIL, Ordering::Release);
    }

    /// [`ShadowMem::crash`] over an explicit ascending line list instead of
    /// the whole allocated prefix. The caller (pool footprint tracking)
    /// guarantees the list covers every line whose views can differ and
    /// every pending snapshot; lines are visited in the same ascending
    /// order as the full scan and clean lines consume no adversary choice,
    /// so a seeded adversary resolves both scans identically.
    pub(crate) fn crash_bounded(
        &self,
        volatile: &[AtomicU64],
        adversary: &mut dyn CrashAdversary,
        lines: &[usize],
    ) {
        for &line in lines {
            self.resolve_line(volatile, adversary, line);
        }
        debug_assert!(
            self.queued_lines_unsorted().is_empty(),
            "crash_bounded missed a pending line"
        );
        self.pend_head.store(NIL, Ordering::Release);
    }

    /// Consumes `line`'s pending snapshot if it has one (quiescence only;
    /// the crash scans reset the stack head once, afterwards).
    fn take_pending(&self, line: usize) -> Option<LineSnap> {
        if self.pend_state[line].load(Ordering::Acquire) & ST_QUEUED == 0 {
            return None;
        }
        let base = line * WORDS_PER_LINE;
        let snap: LineSnap =
            std::array::from_fn(|i| self.pend_buf[base + i].load(Ordering::Relaxed));
        self.pend_state[line].store(0, Ordering::Relaxed);
        Some(snap)
    }

    /// One line of crash resolution (shared by the full and bounded scans):
    /// skip if both views agree and nothing is pending, otherwise let the
    /// adversary pick the surviving image and write it to both views.
    fn resolve_line(
        &self,
        volatile: &[AtomicU64],
        adversary: &mut dyn CrashAdversary,
        line: usize,
    ) {
        let base = line * WORDS_PER_LINE;
        let pending = self.take_pending(line);
        let differs = (0..WORDS_PER_LINE).any(|i| {
            volatile[base + i].load(Ordering::Acquire)
                != self.persisted[base + i].load(Ordering::Acquire)
        });
        if !differs && pending.is_none() {
            return;
        }
        let choice = adversary.choose(line, pending.is_some());
        let image: LineSnap = match (choice, pending) {
            (CrashChoice::Volatile, _) => {
                std::array::from_fn(|i| volatile[base + i].load(Ordering::Acquire))
            }
            (CrashChoice::Pending, Some(snap)) => snap,
            // Pending without a snapshot degrades to the persisted image
            _ => std::array::from_fn(|i| self.persisted[base + i].load(Ordering::Acquire)),
        };
        for (i, w) in image.iter().enumerate() {
            volatile[base + i].store(*w, Ordering::Release);
            self.persisted[base + i].store(*w, Ordering::Release);
        }
    }

    /// Lines that currently hold a pending `pwb` snapshot, ascending.
    pub(crate) fn pending_lines(&self) -> Vec<usize> {
        let mut lines = self.queued_lines_unsorted();
        lines.sort_unstable();
        lines
    }

    /// Incremental counterpart of [`ShadowMem::import`]: rewrites the
    /// persisted image of just `lines` (from `persisted`, zero past its
    /// end) and replaces the pending set. Correct only when every other
    /// line's persisted image already equals the snapshot's — the pool's
    /// footprint tracking establishes exactly that.
    pub(crate) fn import_lines(
        &self,
        lines: &[usize],
        persisted: &[u64],
        pending: &[(usize, LineSnap)],
    ) {
        for &line in lines {
            let base = line * WORDS_PER_LINE;
            for i in 0..WORDS_PER_LINE {
                let w = base + i;
                let v = persisted.get(w).copied().unwrap_or(0);
                self.persisted[w].store(v, Ordering::Release);
            }
        }
        self.clear_pending();
        self.set_pending(pending);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(nwords: usize) -> (Box<[AtomicU64]>, ShadowMem) {
        (
            crate::pool::alloc_zeroed_atomics(nwords),
            ShadowMem::new(nwords),
        )
    }

    #[test]
    fn unflushed_write_lost_under_pessimist() {
        let (vol, sh) = mk(16);
        vol[3].store(7, Ordering::Release);
        sh.crash(&vol, &mut PessimistAdversary, vol.len() / WORDS_PER_LINE);
        assert_eq!(vol[3].load(Ordering::Acquire), 0);
        assert_eq!(sh.persisted_load(3), 0);
    }

    #[test]
    fn pwb_plus_psync_survives_any_adversary() {
        let (vol, sh) = mk(16);
        vol[3].store(7, Ordering::Release);
        sh.pwb(&vol, 0);
        sh.psync();
        sh.crash(&vol, &mut PessimistAdversary, vol.len() / WORDS_PER_LINE);
        assert_eq!(vol[3].load(Ordering::Acquire), 7);
    }

    #[test]
    fn pwb_without_psync_may_or_may_not_survive() {
        // Pending choice keeps it; Persisted choice drops it.
        let (vol, sh) = mk(16);
        vol[3].store(7, Ordering::Release);
        sh.pwb(&vol, 0);
        struct PickPending;
        impl CrashAdversary for PickPending {
            fn choose(&mut self, _: usize, has_pending: bool) -> CrashChoice {
                assert!(has_pending);
                CrashChoice::Pending
            }
        }
        sh.crash(&vol, &mut PickPending, vol.len() / WORDS_PER_LINE);
        assert_eq!(vol[3].load(Ordering::Acquire), 7);

        let (vol2, sh2) = mk(16);
        vol2[3].store(7, Ordering::Release);
        sh2.pwb(&vol2, 0);
        sh2.crash(&vol2, &mut PessimistAdversary, vol2.len() / WORDS_PER_LINE);
        assert_eq!(vol2[3].load(Ordering::Acquire), 0);
    }

    #[test]
    fn write_after_pwb_not_covered_by_pending() {
        let (vol, sh) = mk(16);
        vol[3].store(7, Ordering::Release);
        sh.pwb(&vol, 0);
        vol[3].store(9, Ordering::Release); // dirties the line again
        struct PickPending;
        impl CrashAdversary for PickPending {
            fn choose(&mut self, _: usize, _: bool) -> CrashChoice {
                CrashChoice::Pending
            }
        }
        sh.crash(&vol, &mut PickPending, vol.len() / WORDS_PER_LINE);
        assert_eq!(vol[3].load(Ordering::Acquire), 7); // 9 was never written back
    }

    #[test]
    fn eviction_choice_keeps_everything() {
        let (vol, sh) = mk(16);
        vol[1].store(5, Ordering::Release);
        vol[9].store(6, Ordering::Release);
        sh.crash(&vol, &mut OptimistAdversary, vol.len() / WORDS_PER_LINE);
        assert_eq!(vol[1].load(Ordering::Acquire), 5);
        assert_eq!(vol[9].load(Ordering::Acquire), 6);
        assert_eq!(sh.persisted_load(9), 6);
    }

    #[test]
    fn lines_resolve_independently() {
        let (vol, sh) = mk(16);
        vol[1].store(5, Ordering::Release); // line 0
        vol[9].store(6, Ordering::Release); // line 1
        struct Split;
        impl CrashAdversary for Split {
            fn choose(&mut self, line: usize, _: bool) -> CrashChoice {
                if line == 0 {
                    CrashChoice::Persisted
                } else {
                    CrashChoice::Volatile
                }
            }
        }
        sh.crash(&vol, &mut Split, vol.len() / WORDS_PER_LINE);
        assert_eq!(vol[1].load(Ordering::Acquire), 0);
        assert_eq!(vol[9].load(Ordering::Acquire), 6);
    }

    #[test]
    fn psync_only_commits_snapshot_content() {
        let (vol, sh) = mk(16);
        vol[2].store(1, Ordering::Release);
        sh.pwb(&vol, 0);
        vol[2].store(2, Ordering::Release);
        sh.psync(); // commits the snapshot (1), not the later write (2)
        assert_eq!(sh.persisted_load(2), 1);
        sh.crash(&vol, &mut PessimistAdversary, vol.len() / WORDS_PER_LINE);
        assert_eq!(vol[2].load(Ordering::Acquire), 1);
    }

    /// Races the lock-free pending table directly: writers storm `pwb` +
    /// `psync` over several lines (so queued-stack steals race pushes)
    /// while asserting durability law 4, and the final fence must find
    /// every line — a line whose state says QUEUED but which fell off the
    /// stack would stay stale forever, because later `pwb`s only push on
    /// the not-queued → queued transition.
    #[test]
    fn pending_table_storm_preserves_law_4_and_loses_no_lines() {
        use std::sync::Arc;
        const LINES: usize = 8;
        const WRITERS: usize = 3;
        const ITERS: u64 = 4_000;

        let nwords = LINES * WORDS_PER_LINE;
        let vol = Arc::new(crate::pool::alloc_zeroed_atomics(nwords));
        let sh = Arc::new(ShadowMem::new(nwords));
        let ticket = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        // A dedicated fence hammer maximizes stack-steal vs push races.
        let syncer = {
            let sh = Arc::clone(&sh);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    sh.psync();
                }
            })
        };
        let writers: Vec<_> = (0..WRITERS)
            .map(|_| {
                let vol = Arc::clone(&vol);
                let sh = Arc::clone(&sh);
                let ticket = Arc::clone(&ticket);
                std::thread::spawn(move || {
                    for _ in 0..ITERS {
                        let v = ticket.fetch_add(1, Ordering::Relaxed) + 1;
                        let line = (v as usize) % LINES;
                        let word = line * WORDS_PER_LINE;
                        // CAS-max keeps each cell's history monotone, so
                        // law 4 has a well-defined floor to check against.
                        loop {
                            let cur = vol[word].load(Ordering::Acquire);
                            if cur >= v
                                || vol[word]
                                    .compare_exchange(cur, v, Ordering::AcqRel, Ordering::Acquire)
                                    .is_ok()
                            {
                                break;
                            }
                        }
                        sh.pwb(&vol, line);
                        sh.psync();
                        let persisted = sh.persisted_load(word);
                        assert!(
                            persisted >= v,
                            "law 4 violated: committed {v}, later read {persisted}"
                        );
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        syncer.join().unwrap();

        // Quiescent close: one pwb per line + one fence must commit the
        // final volatile image everywhere. A line lost off the queued
        // stack during the storm would fail exactly here.
        for line in 0..LINES {
            sh.pwb(&vol, line);
        }
        sh.psync();
        for w in 0..nwords {
            assert_eq!(
                sh.persisted_load(w),
                vol[w].load(Ordering::Acquire),
                "word {w}: pending line lost during the storm"
            );
        }
    }

    #[test]
    fn seeded_adversary_is_deterministic() {
        let mut a = SeededAdversary::new(42);
        let mut b = SeededAdversary::new(42);
        for line in 0..100 {
            assert_eq!(a.choose(line, line % 2 == 0), b.choose(line, line % 2 == 0));
        }
    }

    #[test]
    fn clean_lines_untouched() {
        let (vol, sh) = mk(16);
        struct MustNotBeAsked;
        impl CrashAdversary for MustNotBeAsked {
            fn choose(&mut self, _: usize, _: bool) -> CrashChoice {
                panic!("adversary consulted for a clean line");
            }
        }
        sh.crash(&vol, &mut MustNotBeAsked, vol.len() / WORDS_PER_LINE);
    }
}
