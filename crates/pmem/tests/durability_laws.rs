//! Property-based tests of the shadow crash model's durability laws.
//!
//! The laws being checked (for arbitrary interleavings of writes, `pwb`s,
//! `pfence`s, `psync`s and a final crash):
//!
//! 1. **Persistence**: a write whose line was `pwb`ed and then `psync`ed
//!    (with no later write to that word) survives *any* adversary.
//! 2. **Monotonicity**: under the pessimist adversary, every surviving word
//!    holds a value that was actually written (or the initial zero) — the
//!    crash can lose suffixes, never invent values.
//! 3. **Line granularity**: resolution never tears below the tracked
//!    granularity — a surviving value for word `w` was `w`'s value at some
//!    pwb/psync/crash boundary.

use pmem::{PessimistAdversary, PmemPool, PoolCfg, SeededAdversary, SiteId};
use proptest::prelude::*;

#[derive(Copy, Clone, Debug)]
enum Step {
    Write { word: u8, val: u8 },
    Pwb { word: u8 },
    Psync,
    Pfence,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..32, 1u8..255).prop_map(|(word, val)| Step::Write { word, val }),
        (0u8..32).prop_map(|word| Step::Pwb { word }),
        Just(Step::Psync),
        Just(Step::Pfence),
    ]
}

/// Replays `steps` on a model pool, returning (pool, base address, the
/// per-word set of values ever written, the per-word durable-for-sure
/// value).
fn replay(steps: &[Step]) -> (PmemPool, pmem::PAddr, Vec<Vec<u64>>, Vec<Option<u64>>) {
    let pool = PmemPool::new(PoolCfg::model(1 << 20));
    let base = pool.alloc_lines(4); // 32 words
    let mut written: Vec<Vec<u64>> = vec![vec![0]; 32];
    // word -> value covered by the latest pwb of its line, not yet synced
    let mut pending: Vec<Option<u64>> = vec![None; 32];
    let mut durable: Vec<Option<u64>> = vec![Some(0); 32];
    let mut current: Vec<u64> = vec![0; 32];
    for s in steps {
        match *s {
            Step::Write { word, val } => {
                let w = word as usize;
                pool.store(base.add(w as u64), val as u64);
                current[w] = val as u64;
                written[w].push(val as u64);
                // a write after the pwb is not covered by it
            }
            Step::Pwb { word } => {
                let w = word as usize;
                pool.pwb(base.add(w as u64), SiteId(0));
                // the pwb covers the whole line's current content
                let line = w / 8 * 8;
                for i in line..line + 8 {
                    pending[i] = Some(current[i]);
                }
            }
            Step::Psync | Step::Pfence => {
                if matches!(s, Step::Psync) {
                    pool.psync();
                } else {
                    pool.pfence();
                }
                for i in 0..32 {
                    if let Some(v) = pending[i].take() {
                        durable[i] = Some(v);
                    }
                }
            }
        }
    }
    (pool, base, written, durable)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn synced_writes_survive_the_pessimist(steps in prop::collection::vec(step_strategy(), 0..60)) {
        let (pool, base, _written, durable) = replay(&steps);
        pool.crash(&mut PessimistAdversary);
        for (w, d) in durable.iter().enumerate() {
            // The pessimist keeps exactly the durable image.
            prop_assert_eq!(
                pool.load(base.add(w as u64)),
                d.unwrap(),
                "word {} lost its synced value", w
            );
        }
    }

    #[test]
    fn crashes_never_invent_values(
        steps in prop::collection::vec(step_strategy(), 0..60),
        seed in any::<u64>(),
    ) {
        let (pool, base, written, _durable) = replay(&steps);
        pool.crash(&mut SeededAdversary::new(seed | 1));
        for (w, vals) in written.iter().enumerate() {
            let got = pool.load(base.add(w as u64));
            prop_assert!(
                vals.contains(&got),
                "word {} holds {} which was never written (history {:?})", w, got, vals
            );
        }
    }

    #[test]
    fn volatile_view_equals_persisted_view_after_crash(
        steps in prop::collection::vec(step_strategy(), 0..60),
        seed in any::<u64>(),
    ) {
        let (pool, base, _written, _durable) = replay(&steps);
        pool.crash(&mut SeededAdversary::new(seed | 1));
        for w in 0..32u64 {
            prop_assert_eq!(
                pool.load(base.add(w)),
                pool.persisted_load(base.add(w)),
                "post-crash volatile and persisted views diverge at word {}", w
            );
        }
    }

    #[test]
    fn double_crash_is_idempotent_under_pessimist(
        steps in prop::collection::vec(step_strategy(), 0..60),
    ) {
        let (pool, base, _w, _d) = replay(&steps);
        pool.crash(&mut PessimistAdversary);
        let first: Vec<u64> = (0..32).map(|w| pool.load(base.add(w))).collect();
        pool.crash(&mut PessimistAdversary);
        let second: Vec<u64> = (0..32).map(|w| pool.load(base.add(w))).collect();
        prop_assert_eq!(first, second, "a second crash changed settled state");
    }
}
