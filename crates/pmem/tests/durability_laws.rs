//! Randomized tests of the shadow crash model's durability laws.
//!
//! The laws being checked (for arbitrary interleavings of writes, `pwb`s,
//! `pfence`s, `psync`s and a final crash):
//!
//! 1. **Persistence**: a write whose line was `pwb`ed and then `psync`ed
//!    (with no later write to that word) survives *any* adversary.
//! 2. **Monotonicity**: under the pessimist adversary, every surviving word
//!    holds a value that was actually written (or the initial zero) — the
//!    crash can lose suffixes, never invent values.
//! 3. **Line granularity**: resolution never tears below the tracked
//!    granularity — a surviving value for word `w` was `w`'s value at some
//!    pwb/psync/crash boundary.
//! 4. **Forward-only persistence**: under concurrency, a word's persisted
//!    image never moves backward past a durably-committed value — once a
//!    thread's `pwb`+`psync` has returned, no later `psync` (draining
//!    another thread's snapshot) may regress the image below what that
//!    thread persisted.
//!
//! Sequences are drawn from a seeded xorshift64* generator (the workspace
//! builds offline, so no proptest): every case is reproducible from the
//! printed seed.

use pmem::{PAddr, PessimistAdversary, PmemPool, PoolCfg, SeededAdversary, SiteId};

#[derive(Copy, Clone, Debug)]
enum Step {
    Write { word: u8, val: u8 },
    Pwb { word: u8 },
    Psync,
    Pfence,
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// Draws a random step sequence of length `0..60` (mirrors the old
/// proptest strategy: writes twice as likely as the other steps).
fn gen_steps(rng: &mut Rng) -> Vec<Step> {
    let len = (rng.next() % 60) as usize;
    (0..len)
        .map(|_| {
            let r = rng.next();
            match r % 4 {
                0 | 1 => Step::Write {
                    word: (r >> 8) as u8 % 32,
                    val: ((r >> 16) as u8).max(1),
                },
                2 => Step::Pwb {
                    word: (r >> 8) as u8 % 32,
                },
                _ => {
                    if r & 0x100 == 0 {
                        Step::Psync
                    } else {
                        Step::Pfence
                    }
                }
            }
        })
        .collect()
}

/// Replays `steps` on a model pool, returning (pool, base address, the
/// per-word set of values ever written, the per-word durable-for-sure
/// value).
fn replay(steps: &[Step]) -> (PmemPool, PAddr, Vec<Vec<u64>>, Vec<Option<u64>>) {
    let pool = PmemPool::new(PoolCfg::model(1 << 20));
    let base = pool.alloc_lines(4); // 32 words
    let mut written: Vec<Vec<u64>> = vec![vec![0]; 32];
    // word -> value covered by the latest pwb of its line, not yet synced
    let mut pending: Vec<Option<u64>> = vec![None; 32];
    let mut durable: Vec<Option<u64>> = vec![Some(0); 32];
    let mut current: Vec<u64> = vec![0; 32];
    for s in steps {
        match *s {
            Step::Write { word, val } => {
                let w = word as usize;
                pool.store(base.add(w as u64), val as u64);
                current[w] = val as u64;
                written[w].push(val as u64);
                // a write after the pwb is not covered by it
            }
            Step::Pwb { word } => {
                let w = word as usize;
                pool.pwb(base.add(w as u64), SiteId(0));
                // the pwb covers the whole line's current content
                let line = w / 8 * 8;
                for i in line..line + 8 {
                    pending[i] = Some(current[i]);
                }
            }
            Step::Psync | Step::Pfence => {
                if matches!(s, Step::Psync) {
                    pool.psync();
                } else {
                    pool.pfence();
                }
                for i in 0..32 {
                    if let Some(v) = pending[i].take() {
                        durable[i] = Some(v);
                    }
                }
            }
        }
    }
    (pool, base, written, durable)
}

const CASES: u64 = 64;

#[test]
fn synced_writes_survive_the_pessimist() {
    let mut rng = Rng(0xD00B_1E01);
    for case in 0..CASES {
        let seed = rng.0;
        let steps = gen_steps(&mut rng);
        let (pool, base, _written, durable) = replay(&steps);
        pool.crash(&mut PessimistAdversary);
        for (w, d) in durable.iter().enumerate() {
            // The pessimist keeps exactly the durable image.
            assert_eq!(
                pool.load(base.add(w as u64)),
                d.unwrap(),
                "case {case} (seed {seed:#x}): word {w} lost its synced value"
            );
        }
    }
}

#[test]
fn crashes_never_invent_values() {
    let mut rng = Rng(0xD00B_1E02);
    for case in 0..CASES {
        let seed = rng.0;
        let steps = gen_steps(&mut rng);
        let (pool, base, written, _durable) = replay(&steps);
        pool.crash(&mut SeededAdversary::new(rng.next() | 1));
        for (w, vals) in written.iter().enumerate() {
            let got = pool.load(base.add(w as u64));
            assert!(
                vals.contains(&got),
                "case {case} (seed {seed:#x}): word {w} holds {got} which was never written \
                 (history {vals:?})"
            );
        }
    }
}

#[test]
fn volatile_view_equals_persisted_view_after_crash() {
    let mut rng = Rng(0xD00B_1E03);
    for case in 0..CASES {
        let seed = rng.0;
        let steps = gen_steps(&mut rng);
        let (pool, base, _written, _durable) = replay(&steps);
        pool.crash(&mut SeededAdversary::new(rng.next() | 1));
        for w in 0..32u64 {
            assert_eq!(
                pool.load(base.add(w)),
                pool.persisted_load(base.add(w)),
                "case {case} (seed {seed:#x}): post-crash volatile and persisted views diverge \
                 at word {w}"
            );
        }
    }
}

#[test]
fn double_crash_is_idempotent_under_pessimist() {
    let mut rng = Rng(0xD00B_1E04);
    for case in 0..CASES {
        let seed = rng.0;
        let steps = gen_steps(&mut rng);
        let (pool, base, _w, _d) = replay(&steps);
        pool.crash(&mut PessimistAdversary);
        let first: Vec<u64> = (0..32).map(|w| pool.load(base.add(w))).collect();
        pool.crash(&mut PessimistAdversary);
        let second: Vec<u64> = (0..32).map(|w| pool.load(base.add(w))).collect();
        assert_eq!(
            first, second,
            "case {case} (seed {seed:#x}): a second crash changed settled state"
        );
    }
}

/// Law 4: the persisted image of a word never regresses behind a value a
/// thread has durably committed.
///
/// Four threads race to raise one cell (CAS-max, so the volatile cell is
/// monotone), each raise followed by `pwb` + `psync`. The moment a
/// thread's `psync` returns, its value is durable: the snapshot it
/// inserted covered the cell at (or past) that value, and any snapshot
/// that replaces it in the pending map was taken later under the same
/// lock, hence covers a same-or-newer cell. The persisted image must
/// therefore read at-or-past the thread's value — forever.
///
/// This is a regression test for a real bug: `ShadowMem::pwb` used to read
/// the line snapshot *before* taking the pending lock, so a descheduled
/// thread could publish an arbitrarily stale snapshot which the next
/// `psync` then committed, rolling the persisted image backward past
/// thousands of completed, durably-acknowledged operations. (The failure
/// is a thread-timing race, so this test is probabilistic — it cannot
/// catch every regression on every run — but the storm tests in the
/// `integration-tests` crate hit the same law from above.)
#[test]
fn persisted_image_never_regresses_under_concurrency() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const THREADS: usize = 4;
    const ITERS: u64 = 8_000;

    let pool = Arc::new(PmemPool::new(PoolCfg::model(1 << 20)));
    let cell = pool.alloc_lines(1);
    let ticket = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let ticket = Arc::clone(&ticket);
            std::thread::spawn(move || {
                for _ in 0..ITERS {
                    let v = ticket.fetch_add(1, Ordering::Relaxed) + 1;
                    // CAS-max: never lower the cell, so its history is monotone.
                    loop {
                        let cur = pool.load(cell);
                        if cur >= v || pool.cas(cell, cur, v).is_ok() {
                            break;
                        }
                    }
                    pool.pwb(cell, SiteId(0));
                    pool.psync();
                    let persisted = pool.persisted_load(cell);
                    assert!(
                        persisted >= v,
                        "persisted image regressed: committed {v} but later read {persisted}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
