//! The OneFile-style TM and its sorted-list set (see crate docs).

use std::sync::Arc;

use pmem::{PAddr, PmemPool, ThreadCtx, WORDS_PER_LINE};

use crate::sites::{F_ANNOUNCE, F_CURTX, F_LOG, F_RD, F_WORD};

// ---- packings ----------------------------------------------------------

/// Data words: value in the low 40 bits, committing sequence above.
const VAL_BITS: u64 = 40;
const VAL_MASK: u64 = (1 << VAL_BITS) - 1;

#[inline]
fn word_pack(val: u64, seq: u64) -> u64 {
    debug_assert!(val <= VAL_MASK, "value overflows the 40-bit word payload");
    val | seq << VAL_BITS
}

#[inline]
fn word_val(w: u64) -> u64 {
    w & VAL_MASK
}

#[inline]
fn word_seq(w: u64) -> u64 {
    w >> VAL_BITS
}

// curTx: log address (word index) in the low 40 bits, sequence above.
#[inline]
fn curtx_pack(log: PAddr, seq: u64) -> u64 {
    assert!(seq < 1 << 24, "transaction sequence space exhausted");
    log.raw() | seq << VAL_BITS
}

// Announce: op(2) | key(20) | opseq(42).
const A_NONE: u64 = 0;
const A_INSERT: u64 = 1;
const A_DELETE: u64 = 2;
const KEY_BITS: u64 = 20;

/// Largest usable key (the announce word packs op|key|opseq).
pub const KEY_LIMIT: u64 = (1 << KEY_BITS) - 1;

#[inline]
fn ann_pack(op: u64, key: u64, opseq: u64) -> u64 {
    op | key << 2 | opseq << (2 + KEY_BITS)
}

#[inline]
fn ann_unpack(a: u64) -> (u64, u64, u64) {
    (a & 0b11, (a >> 2) & KEY_LIMIT, a >> (2 + KEY_BITS))
}

// Region layout (word offsets into the sequence-stamped data region).
const ALLOC_NEXT: u64 = 0;
const FREE_HEAD: u64 = 1;
const LIST_HEAD: u64 = 2;
const OPRES_BASE: u64 = 8;
// nodes: {key, next}
const NK: u64 = 0;
const NN: u64 = 1;

/// Sentinel keys of the region list.
const KEY_MIN: u64 = 0;
const KEY_MAX_NODE: u64 = VAL_MASK; // tail sentinel key (fits the payload)

/// The OneFile-style detectably recoverable sorted-list set.
#[derive(Clone)]
pub struct OneFileList {
    pool: Arc<PmemPool>,
    /// `curTx` commit word (log address | sequence).
    curtx: PAddr,
    /// Base of the sequence-stamped data region.
    words: PAddr,
    ann_base: PAddr,
    threads: usize,
    size_words: usize,
}

/// Read-through-writeset view used while building a combined transaction.
struct TxView<'a> {
    list: &'a OneFileList,
    writes: Vec<(u64, u64)>,
}

impl TxView<'_> {
    fn read(&self, off: u64) -> u64 {
        for (o, v) in self.writes.iter().rev() {
            if *o == off {
                return *v;
            }
        }
        self.list.committed(off)
    }

    fn write(&mut self, off: u64, v: u64) {
        debug_assert!((off as usize) < self.list.size_words);
        self.writes.push((off, v));
    }

    fn alloc_node(&mut self) -> u64 {
        let fh = self.read(FREE_HEAD);
        if fh != 0 {
            let next = self.read(fh + NN);
            self.write(FREE_HEAD, next);
            fh
        } else {
            let n = self.read(ALLOC_NEXT);
            assert!(
                (n + 2) as usize <= self.list.size_words,
                "OneFile region exhausted"
            );
            self.write(ALLOC_NEXT, n + 2);
            n
        }
    }

    fn free_node(&mut self, off: u64) {
        let fh = self.read(FREE_HEAD);
        self.write(off + NN, fh);
        self.write(FREE_HEAD, off);
    }

    fn search(&self, key: u64) -> (u64, u64) {
        let mut pred = self.read(LIST_HEAD);
        let mut curr = self.read(pred + NN);
        while self.read(curr + NK) < key {
            pred = curr;
            curr = self.read(curr + NN);
        }
        (pred, curr)
    }

    /// Applies one announced set operation, returning its response.
    fn apply_op(&mut self, op: u64, key: u64) -> bool {
        let (pred, curr) = self.search(key);
        match op {
            A_INSERT => {
                if self.read(curr + NK) == key {
                    false
                } else {
                    let n = self.alloc_node();
                    self.write(n + NK, key);
                    self.write(n + NN, curr);
                    self.write(pred + NN, n);
                    true
                }
            }
            A_DELETE => {
                if self.read(curr + NK) != key {
                    false
                } else {
                    let next = self.read(curr + NN);
                    self.write(pred + NN, next);
                    self.free_node(curr);
                    true
                }
            }
            _ => unreachable!("invalid announced op"),
        }
    }
}

impl OneFileList {
    /// Creates a set for up to `threads` threads and roughly `max_keys`
    /// live keys, rooted in root cell `root_idx` (or re-attaches).
    pub fn new(pool: Arc<PmemPool>, root_idx: usize, threads: usize, max_keys: usize) -> Self {
        pool.register_site_names(&crate::sites::SITES);
        assert!(threads <= pool.max_threads());
        let root = pool.root(root_idx);
        let existing = pool.load(root);
        if existing != 0 {
            let sb = PAddr::from_raw(existing);
            let threads = pool.load(sb.add(3)) as usize;
            let size_words = pool.load(sb.add(4)) as usize;
            return OneFileList {
                pool: pool.clone(),
                curtx: sb,
                words: PAddr::from_raw(pool.load(sb.add(1))),
                ann_base: PAddr::from_raw(pool.load(sb.add(2))),
                threads,
                size_words,
            };
        }
        let heap_base = OPRES_BASE + threads as u64;
        let size_words = (heap_base as usize + 2 * (max_keys + 8)).next_multiple_of(8);
        let sb = pool.alloc_lines(1); // w0 = curTx, w1 words, w2 ann, w3 threads, w4 size
        let words = pool.alloc_lines(size_words / WORDS_PER_LINE);
        let ann_base = pool.alloc_lines(threads);
        let list = OneFileList {
            pool: pool.clone(),
            curtx: sb,
            words,
            ann_base,
            threads,
            size_words,
        };
        // Initialize the region directly (seq 0 = "initial"): allocator
        // watermark, head and tail sentinels.
        let head = heap_base;
        let tail = heap_base + 2;
        let init = [
            (ALLOC_NEXT, heap_base + 4),
            (head + NK, KEY_MIN),
            (head + NN, tail),
            (tail + NK, KEY_MAX_NODE),
            (tail + NN, 0),
            (LIST_HEAD, head),
        ];
        for (off, v) in init {
            pool.store(words.add(off), word_pack(v, 0));
        }
        pool.pwb_range(words, size_words, F_LOG);
        pool.store(sb.add(1), words.raw());
        pool.store(sb.add(2), ann_base.raw());
        pool.store(sb.add(3), threads as u64);
        pool.store(sb.add(4), size_words as u64);
        pool.pwb(sb, F_CURTX);
        pool.pfence();
        pool.store(root, sb.raw());
        pool.pbarrier(root, 1, F_CURTX);
        list
    }

    /// The owning pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    #[inline]
    fn committed(&self, off: u64) -> u64 {
        word_val(self.pool.load(self.words.add(off)))
    }

    fn ann(&self, tid: usize) -> PAddr {
        self.ann_base.add((tid * WORDS_PER_LINE) as u64)
    }

    /// Makes `curtx_val` durable and applies its redo log (idempotent;
    /// cooperative). The flush-before-apply order guarantees no data word
    /// ever carries a sequence newer than the *persisted* `curTx`.
    fn settle(&self, curtx_val: u64) {
        let pool = &*self.pool;
        let s = curtx_val >> VAL_BITS;
        pool.pwb(self.curtx, F_CURTX);
        pool.psync();
        if s == 0 {
            return;
        }
        let log = PAddr::from_raw(curtx_val & VAL_MASK);
        let hdr = pool.load(log);
        debug_assert_eq!(
            hdr & 0xFF_FFFF,
            s,
            "log header names a different transaction"
        );
        let n = hdr >> 32;
        for i in 0..n {
            let off = pool.load(log.add(1 + 2 * i));
            let val = pool.load(log.add(2 + 2 * i));
            let w = self.words.add(off);
            loop {
                let c = pool.load(w);
                if word_seq(c) >= s {
                    break; // already applied (or overwritten by a later tx)
                }
                if pool.cas(w, c, word_pack(val, s)).is_ok() {
                    pool.pwb(w, F_WORD);
                    break;
                }
            }
        }
        pool.pfence();
    }

    /// Inserts `key`; returns `false` if present.
    pub fn insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        ctx.begin_op(F_RD);
        self.update_started(ctx, A_INSERT, key)
    }

    /// Deletes `key`; returns `false` if absent.
    pub fn delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        ctx.begin_op(F_RD);
        self.update_started(ctx, A_DELETE, key)
    }

    /// Insert without the system's `CP_q := 0` pre-step.
    pub fn insert_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.update_started(ctx, A_INSERT, key)
    }

    /// Delete without the system's `CP_q := 0` pre-step.
    pub fn delete_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.update_started(ctx, A_DELETE, key)
    }

    fn update_started(&self, ctx: &ThreadCtx, op: u64, key: u64) -> bool {
        assert!(
            key > 0 && key <= KEY_LIMIT,
            "key outside announce packing range"
        );
        let pool = &*self.pool;
        let tid = ctx.tid();
        assert!(tid < self.threads);
        // RD_q is the operation-sequence source, persisted before the
        // announcement can become visible (same protocol as `redo`).
        let opseq = ctx.rd() + 1;
        ctx.set_rd(opseq);
        pool.pbarrier(ctx.rd_addr(), 1, F_RD);
        ctx.set_cp(1);
        pool.pwb(ctx.cp_addr(), F_RD);
        pool.psync();
        pool.store(self.ann(tid), ann_pack(op, key, opseq));
        pool.pwb(self.ann(tid), F_ANNOUNCE);
        pool.pfence();
        self.combine_until_applied(tid, opseq)
    }

    /// The combining loop: commit (or help commit) transactions until some
    /// committed one has applied this thread's announcement.
    fn combine_until_applied(&self, tid: usize, opseq: u64) -> bool {
        let pool = &*self.pool;
        loop {
            let cur = pool.load(self.curtx);
            self.settle(cur);
            let res = self.committed(OPRES_BASE + tid as u64);
            if res >> 1 == opseq {
                return res & 1 == 1;
            }
            // Build the combined transaction s+1 against the settled state.
            let s = cur >> VAL_BITS;
            let mut view = TxView {
                list: self,
                writes: Vec::with_capacity(16),
            };
            for t in 0..self.threads {
                let (op, key, aseq) = ann_unpack(pool.load(self.ann(t)));
                if op == A_NONE || aseq <= view.read(OPRES_BASE + t as u64) >> 1 {
                    continue;
                }
                let r = view.apply_op(op, key);
                view.write(OPRES_BASE + t as u64, aseq << 1 | r as u64);
            }
            if view.writes.is_empty() {
                continue; // raced: someone else applied everything
            }
            // Deduplicate to final values: application CASes each word to
            // `(value, s+1)` at most once (the seq check makes re-application
            // a no-op), so a log must carry exactly one entry per offset —
            // the last write wins (e.g. FREE_HEAD written by two deletes of
            // the same combined transaction).
            let mut seen = std::collections::HashMap::new();
            for (i, (off, _)) in view.writes.iter().enumerate() {
                seen.insert(*off, i); // last index per offset
            }
            let mut final_writes: Vec<(u64, u64)> = view
                .writes
                .iter()
                .enumerate()
                .filter(|(i, (off, _))| seen[off] == *i)
                .map(|(_, w)| *w)
                .collect();
            final_writes.sort_unstable_by_key(|(off, _)| *off);
            // Write the immutable redo log and publish it with one CAS.
            let n = final_writes.len() as u64;
            let log = pool.alloc_lines(((1 + 2 * n) as usize).div_ceil(WORDS_PER_LINE));
            pool.store(log, (s + 1) | n << 32);
            for (i, (off, val)) in final_writes.iter().enumerate() {
                pool.store(log.add(1 + 2 * i as u64), *off);
                pool.store(log.add(2 + 2 * i as u64), *val);
            }
            pool.pwb_range(log, (1 + 2 * n) as usize, F_LOG);
            pool.pfence();
            let _ = pool.cas(self.curtx, cur, curtx_pack(log, s + 1));
            // Win or lose, the next iteration settles whoever committed.
        }
    }

    /// Is `key` present? Reads the committed state optimistically,
    /// validating against `curTx` (which is made durable first, so the
    /// answer never depends on a transaction a crash could undo).
    pub fn find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        let _ = ctx;
        let pool = &*self.pool;
        'retry: loop {
            let cur = pool.load(self.curtx);
            self.settle(cur);
            let mut steps = self.size_words / 2 + 2;
            let mut curr = self.committed(self.committed(LIST_HEAD) + NN);
            loop {
                if curr == 0 {
                    continue 'retry; // torn traversal (node recycled mid-read)
                }
                let k = self.committed(curr + NK);
                if k >= key {
                    if pool.load(self.curtx) != cur {
                        continue 'retry;
                    }
                    return k == key;
                }
                curr = self.committed(curr + NN);
                steps -= 1;
                if steps == 0 {
                    continue 'retry;
                }
            }
        }
    }

    /// `Insert.Recover`.
    pub fn recover_insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        match self.recover_update(ctx) {
            Some(r) => r,
            None => self.insert(ctx, key),
        }
    }

    /// `Delete.Recover`.
    pub fn recover_delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        match self.recover_update(ctx) {
            Some(r) => r,
            None => self.delete(ctx, key),
        }
    }

    /// `Find.Recover` (read-only: re-execute).
    pub fn recover_find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.find(ctx, key)
    }

    fn recover_update(&self, ctx: &ThreadCtx) -> Option<bool> {
        let pool = &*self.pool;
        if ctx.cp() == 0 {
            return None;
        }
        let tid = ctx.tid();
        let opseq = ctx.rd();
        self.settle(pool.load(self.curtx));
        let res = self.committed(OPRES_BASE + tid as u64);
        if opseq != 0 && res >> 1 == opseq {
            return Some(res & 1 == 1);
        }
        let (op, _key, aseq) = ann_unpack(pool.load(self.ann(tid)));
        if op != A_NONE && aseq == opseq {
            // The announcement survived: combining will finish it.
            return Some(self.combine_until_applied(tid, opseq));
        }
        None
    }

    /// Live keys in order (quiescent only).
    pub fn keys(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut curr = self.committed(self.committed(LIST_HEAD) + NN);
        loop {
            let k = self.committed(curr + NK);
            if k == KEY_MAX_NODE {
                return out;
            }
            out.push(k);
            curr = self.committed(curr + NN);
        }
    }

    /// Checks sortedness (quiescent); returns the key count.
    pub fn check_invariants(&self) -> usize {
        let ks = self.keys();
        assert!(
            ks.windows(2).all(|w| w[0] < w[1]),
            "keys must be strictly sorted"
        );
        ks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PessimistAdversary, PoolCfg, SiteId};
    use std::collections::BTreeSet;

    fn setup() -> (Arc<PmemPool>, OneFileList, ThreadCtx) {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(64 << 20)));
        let l = OneFileList::new(pool.clone(), 7, 8, 256);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        (pool, l, ctx)
    }

    #[test]
    fn basics() {
        let (_p, l, ctx) = setup();
        assert!(!l.find(&ctx, 10));
        assert!(l.insert(&ctx, 10));
        assert!(l.find(&ctx, 10));
        assert!(!l.insert(&ctx, 10));
        assert!(l.delete(&ctx, 10));
        assert!(!l.find(&ctx, 10));
        assert!(!l.delete(&ctx, 10));
        assert_eq!(l.check_invariants(), 0);
    }

    #[test]
    fn matches_reference_model_sequentially() {
        let (_p, l, ctx) = setup();
        let mut model = BTreeSet::new();
        let mut rng = 0x0F1CEu64;
        for _ in 0..1500 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (rng >> 33) % 60 + 1;
            match (rng >> 20) % 3 {
                0 => assert_eq!(l.insert(&ctx, key), model.insert(key), "insert {key}"),
                1 => assert_eq!(l.delete(&ctx, key), model.remove(&key), "delete {key}"),
                _ => assert_eq!(l.find(&ctx, key), model.contains(&key), "find {key}"),
            }
        }
        assert_eq!(l.keys(), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn node_recycling_reuses_freed_slots() {
        let (_p, l, ctx) = setup();
        for round in 0..5 {
            for k in 1..=50u64 {
                assert!(l.insert(&ctx, k), "round {round}");
            }
            for k in 1..=50u64 {
                assert!(l.delete(&ctx, k), "round {round}");
            }
        }
        assert_eq!(l.check_invariants(), 0);
        let used = l.committed(ALLOC_NEXT);
        assert!(
            used < OPRES_BASE + 8 + 4 + 2 * 60,
            "free list not recycling: {used}"
        );
    }

    #[test]
    fn concurrent_mixed_ops_preserve_invariants() {
        let (p, l, _ctx) = setup();
        let mut handles = vec![];
        for t in 0..4usize {
            let l = l.clone();
            let ctx = ThreadCtx::new(p.clone(), t);
            handles.push(std::thread::spawn(move || {
                let mut rng = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                for _ in 0..300 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let key = rng % 40 + 1;
                    match (rng >> 32) % 3 {
                        0 => {
                            l.insert(&ctx, key);
                        }
                        1 => {
                            l.delete(&ctx, key);
                        }
                        _ => {
                            l.find(&ctx, key);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        l.check_invariants();
    }

    #[test]
    fn concurrent_inserts_same_key_exactly_one_wins() {
        let (p, l, _ctx) = setup();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(4));
        let mut handles = vec![];
        for t in 0..4usize {
            let l = l.clone();
            let ctx = ThreadCtx::new(p.clone(), t);
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                l.insert(&ctx, 77)
            }));
        }
        let wins: usize = handles
            .into_iter()
            .map(|h| h.join().unwrap() as usize)
            .sum();
        assert_eq!(wins, 1);
        assert_eq!(l.keys(), vec![77]);
    }

    #[test]
    fn crash_swept_insert_recovers_detectably() {
        for crash_at in 0..4000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(64 << 20)));
            let l = OneFileList::new(pool.clone(), 7, 4, 64);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            ctx.begin_op(SiteId(0));
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| l.insert_started(&ctx, 5));
            pool.crash(&mut PessimistAdversary);
            match pre {
                Some(r) => {
                    assert!(r);
                    assert_eq!(l.keys(), vec![5]);
                    return;
                }
                None => {
                    assert!(l.recover_insert(&ctx, 5), "crash_at={crash_at}");
                    assert_eq!(l.keys(), vec![5], "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn crash_swept_delete_recovers_detectably() {
        for crash_at in 0..4000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(64 << 20)));
            let l = OneFileList::new(pool.clone(), 7, 4, 64);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            assert!(l.insert(&ctx, 5));
            ctx.begin_op(SiteId(0));
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| l.delete_started(&ctx, 5));
            pool.crash(&mut PessimistAdversary);
            match pre {
                Some(r) => {
                    assert!(r);
                    assert!(l.keys().is_empty());
                    return;
                }
                None => {
                    assert!(l.recover_delete(&ctx, 5), "crash_at={crash_at}");
                    assert!(l.keys().is_empty(), "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn combined_tx_with_duplicate_offsets_applies_final_values() {
        // Regression: two deletes aggregated into one combined transaction
        // both write FREE_HEAD; application CASes each word once, so the
        // log must be deduplicated to final values or the committed state
        // corrupts (previously livelocking readers on a broken chain).
        let (p, l, ctx0) = setup();
        for k in [10u64, 20, 30, 40] {
            assert!(l.insert(&ctx0, k));
        }
        // Hand-plant announces for threads 1 and 2 (the system half of the
        // protocol is irrelevant here; only the combiner's aggregation is
        // under test).
        p.store(l.ann(1), ann_pack(A_DELETE, 20, 1));
        p.pwb(l.ann(1), crate::sites::F_ANNOUNCE);
        p.store(l.ann(2), ann_pack(A_DELETE, 30, 1));
        p.pwb(l.ann(2), crate::sites::F_ANNOUNCE);
        p.pfence();
        // Thread 0's delete combines all three into one transaction.
        assert!(l.delete(&ctx0, 40));
        assert_eq!(l.keys(), vec![10], "all three deletes applied exactly once");
        l.check_invariants();
        // The helped threads' results are recorded too.
        assert_eq!(l.committed(OPRES_BASE + 1), 1 << 1 | 1);
        assert_eq!(l.committed(OPRES_BASE + 2), 1 << 1 | 1);
        // And the free list survived the double write: reinsert everything.
        for k in [20u64, 30, 40] {
            assert!(l.insert(&ctx0, k));
        }
        assert_eq!(l.keys(), vec![10, 20, 30, 40]);
    }

    #[test]
    fn recovery_of_completed_op_returns_recorded_result() {
        let (_p, l, ctx) = setup();
        assert!(l.insert(&ctx, 9));
        assert!(l.recover_insert(&ctx, 9));
        assert_eq!(l.keys(), vec![9]);
    }

    #[test]
    fn transactions_commit_atomically_across_crashes() {
        // Crash at every point of an insert; after recovery (of the
        // structure only — before the op's own recovery runs) the region
        // must never show a half-applied transaction: either the key is
        // fully linked or fully absent.
        for crash_at in 0..2000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(64 << 20)));
            let l = OneFileList::new(pool.clone(), 7, 4, 64);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            assert!(l.insert(&ctx, 10));
            ctx.begin_op(SiteId(0));
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| l.insert_started(&ctx, 5));
            pool.crash(&mut PessimistAdversary);
            // settle whatever the persisted curTx names
            l.settle(pool.load(l.curtx));
            let ks = l.keys();
            assert!(
                ks == vec![10] || ks == vec![5, 10],
                "crash_at={crash_at}: torn region state {ks:?}"
            );
            l.check_invariants();
            if pre.is_some() {
                return;
            }
        }
        panic!("sweep did not terminate");
    }
}
