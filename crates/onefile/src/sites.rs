//! `pwb` call sites of the OneFile baseline.

use pmem::SiteId;

/// `pwb` of a thread's announce word (thread-private line).
pub const F_ANNOUNCE: SiteId = SiteId(0);
/// `pwb`s of a freshly written redo log before publication (not yet shared).
pub const F_LOG: SiteId = SiteId(1);
/// `pwb` of a data word after its apply CAS (shared).
pub const F_WORD: SiteId = SiteId(2);
/// `pwb` of the `curTx` commit word (shared, contended).
pub const F_CURTX: SiteId = SiteId(3);
/// `pwb` of the per-thread `CP_q`/`RD_q` detectability words.
pub const F_RD: SiteId = SiteId(4);

/// All OneFile sites with human-readable names.
pub const SITES: [(SiteId, &str); 5] = [
    (F_ANNOUNCE, "announce"),
    (F_LOG, "redo-log"),
    (F_WORD, "data-word"),
    (F_CURTX, "curtx"),
    (F_RD, "rd"),
];

/// Human-readable name of a OneFile site (or `"?"`).
pub fn site_name(s: SiteId) -> &'static str {
    SITES
        .iter()
        .find(|(id, _)| *id == s)
        .map(|(_, n)| *n)
        .unwrap_or("?")
}
