//! # onefile — a OneFile-style wait-free persistent transactional memory
//!
//! The paper's evaluation also measured **OneFile** (Ramalhete, Correia,
//! Felber, Cohen — DSN '19), the wait-free persistent TM, though its
//! figures show only RedoOpt "since RedoOpt constantly outperformed
//! OneFile". This crate rebuilds OneFile's architecture from scratch so the
//! claim can be checked rather than assumed:
//!
//! * **One shared data copy.** Unlike the CX/Redo universal constructions
//!   (see the `redo` crate), there is no object cloning: the set lives in a
//!   single region of **sequence-stamped words** (`value | seq << 40`).
//! * **Per-transaction redo logs.** A committing thread aggregates every
//!   announced operation into one combined transaction, simulates it
//!   against the committed state, and writes the resulting
//!   `(offset, value)` redo log into a freshly allocated, immutable log
//!   object. A single CAS on the `curTx` word (packing the log's address
//!   and the new sequence number) commits it.
//! * **Cooperative application.** Everyone — committer, helpers, readers —
//!   applies the published log: each word is CASed to `(value, seq)` only
//!   while its stamp is older than `seq`, so application is idempotent and
//!   a straggler can never regress a newer write.
//! * **Wait-freedom by announcement.** An operation returns as soon as
//!   *some* committed transaction has applied its announce-sequence; every
//!   combiner applies everyone's pending announcements (the function-
//!   shipping of real OneFile, specialized to set operations).
//! * **Durability & detectability.** The log is flushed before the `curTx`
//!   CAS, applied words are flushed before `curTx` itself is flushed, and
//!   each thread's response is a logged write to its persistent result
//!   slot — committed atomically with its operation. Recovery is the same
//!   `CP_q`/`RD_q` protocol used across this repository.
//!
//! The set on top is a sorted linked list with a free-list allocator inside
//! the region (node reuse is safe: all mutation goes through the committed
//! redo logs, and readers validate against `curTx`).

#![warn(missing_docs)]

pub mod sites;
pub mod tm;

pub use tm::OneFileList;
