//! The combining universal construction and its sorted-set state object.

use std::sync::Arc;

use pmem::{PAddr, PmemPool, ThreadCtx, WORDS_PER_LINE};

use crate::sites::{X_ANNOUNCE, X_RD, X_ROOT, X_STATE};

/// Announce-word op codes.
const A_NONE: u64 = 0;
const A_INSERT: u64 = 1;
const A_DELETE: u64 = 2;

const KEY_BITS: u64 = 20;
const SEQ_SHIFT: u64 = 2 + KEY_BITS;

/// Largest announcéable key (the announce word packs op|key|seq).
pub const KEY_LIMIT: u64 = (1 << KEY_BITS) - 1;

#[inline]
fn pack(op: u64, key: u64, seq: u64) -> u64 {
    debug_assert!(key <= KEY_LIMIT);
    op | key << 2 | seq << SEQ_SHIFT
}

#[inline]
fn unpack(a: u64) -> (u64, u64, u64) {
    (a & 0b11, (a >> 2) & KEY_LIMIT, a >> SEQ_SHIFT)
}

// State object layout: w0 = nkeys, then per-thread (applied_seq, result)
// pairs, then the sorted key array.
struct StateRef {
    base: PAddr,
    threads: usize,
}

impl StateRef {
    #[inline]
    fn nkeys(&self, pool: &PmemPool) -> u64 {
        pool.load(self.base)
    }

    #[inline]
    fn applied_seq(&self, pool: &PmemPool, tid: usize) -> u64 {
        pool.load(self.base.add(1 + 2 * tid as u64))
    }

    #[inline]
    fn result(&self, pool: &PmemPool, tid: usize) -> bool {
        pool.load(self.base.add(2 + 2 * tid as u64)) != 0
    }

    #[inline]
    fn key_at(&self, pool: &PmemPool, i: u64) -> u64 {
        pool.load(self.base.add(1 + 2 * self.threads as u64 + i))
    }

    /// Binary search: `Ok(pos)` if present, `Err(insert_pos)` otherwise.
    fn find_pos(&self, pool: &PmemPool, key: u64) -> Result<u64, u64> {
        let (mut lo, mut hi) = (0u64, self.nkeys(pool));
        while lo < hi {
            let mid = (lo + hi) / 2;
            let k = self.key_at(pool, mid);
            if k == key {
                return Ok(mid);
            } else if k < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Err(lo)
    }
}

/// The RedoOpt-style detectably recoverable set (see crate docs).
#[derive(Clone)]
pub struct RedoSet {
    pool: Arc<PmemPool>,
    /// Word holding the current state pointer (CASed by combiners).
    root_word: PAddr,
    ann_base: PAddr,
    threads: usize,
    cap: usize,
    state_words: usize,
}

impl RedoSet {
    /// Creates a set for up to `threads` threads and `cap` live keys,
    /// rooted in root cell `root_idx` (or re-attaches).
    pub fn new(pool: Arc<PmemPool>, root_idx: usize, threads: usize, cap: usize) -> Self {
        pool.register_site_names(&crate::sites::SITES);
        assert!(threads <= pool.max_threads());
        let root = pool.root(root_idx);
        let existing = pool.load(root);
        if existing != 0 {
            let sb = PAddr::from_raw(existing);
            let threads = pool.load(sb.add(2)) as usize;
            let cap = pool.load(sb.add(3)) as usize;
            let state_words = 1 + 2 * threads + cap;
            return RedoSet {
                pool: pool.clone(),
                root_word: sb,
                ann_base: PAddr::from_raw(pool.load(sb.add(1))),
                threads,
                cap,
                state_words,
            };
        }
        let sb = pool.alloc_lines(1);
        let ann_base = pool.alloc_lines(threads);
        let state_words = 1 + 2 * threads + cap;
        let init = pool.alloc_lines(state_words.div_ceil(WORDS_PER_LINE));
        // zero-initialized state: empty set, all seqs 0
        pool.pwb_range(init, state_words, X_STATE);
        pool.store(sb, init.raw());
        pool.store(sb.add(1), ann_base.raw());
        pool.store(sb.add(2), threads as u64);
        pool.store(sb.add(3), cap as u64);
        pool.pwb(sb, X_ROOT);
        pool.pfence();
        pool.store(root, sb.raw());
        pool.pbarrier(root, 1, X_ROOT);
        RedoSet {
            pool,
            root_word: sb,
            ann_base,
            threads,
            cap,
            state_words,
        }
    }

    /// The owning pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    fn ann(&self, tid: usize) -> PAddr {
        self.ann_base.add((tid * WORDS_PER_LINE) as u64)
    }

    fn cur_state(&self) -> StateRef {
        StateRef {
            base: PAddr::from_raw(self.pool.load(self.root_word)),
            threads: self.threads,
        }
    }

    /// Inserts `key`; returns `false` if already present.
    pub fn insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        ctx.begin_op(X_RD);
        self.update_started(ctx, A_INSERT, key)
    }

    /// Deletes `key`; returns `false` if absent.
    pub fn delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        ctx.begin_op(X_RD);
        self.update_started(ctx, A_DELETE, key)
    }

    /// Insert without the system's `CP_q := 0` pre-step.
    pub fn insert_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.update_started(ctx, A_INSERT, key)
    }

    /// Delete without the system's `CP_q := 0` pre-step.
    pub fn delete_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.update_started(ctx, A_DELETE, key)
    }

    fn update_started(&self, ctx: &ThreadCtx, op: u64, key: u64) -> bool {
        assert!(
            key > 0 && key <= KEY_LIMIT,
            "key outside announce packing range"
        );
        let pool = &*self.pool;
        let tid = ctx.tid();
        assert!(tid < self.threads);
        // Sequence numbers are drawn from RD_q, which is persisted before
        // the announcement can become visible: a post-crash RD_q = s with
        // CP_q = 1 uniquely names the in-flight operation.
        let seq = ctx.rd() + 1;
        ctx.set_rd(seq);
        pool.pbarrier(ctx.rd_addr(), 1, X_RD);
        ctx.set_cp(1);
        pool.pwb(ctx.cp_addr(), X_RD);
        pool.psync();
        // Announce, persist the announcement, then combine.
        pool.store(self.ann(tid), pack(op, key, seq));
        pool.pwb(self.ann(tid), X_ANNOUNCE);
        pool.pfence();
        self.combine_until_applied(tid, seq)
    }

    /// The combining loop: returns as soon as some committed state has this
    /// thread's operation `seq` applied.
    fn combine_until_applied(&self, tid: usize, seq: u64) -> bool {
        let pool = &*self.pool;
        loop {
            let st_raw = pool.load(self.root_word);
            let st = StateRef {
                base: PAddr::from_raw(st_raw),
                threads: self.threads,
            };
            if st.applied_seq(pool, tid) == seq {
                // Make sure the state we are answering from is durable
                // before the response escapes.
                pool.pwb(self.root_word, X_ROOT);
                pool.psync();
                return st.result(pool, tid);
            }
            // Become a combiner: clone, apply all pending announces, publish.
            let new = pool.alloc_lines(self.state_words.div_ceil(WORDS_PER_LINE));
            for w in 0..self.state_words as u64 {
                pool.store(new.add(w), pool.load(st.base.add(w)));
            }
            let new_ref = StateRef {
                base: new,
                threads: self.threads,
            };
            for t in 0..self.threads {
                let (op, key, aseq) = unpack(pool.load(self.ann(t)));
                if op == A_NONE || aseq <= new_ref.applied_seq(pool, t) {
                    continue;
                }
                let r = self.apply(&new_ref, op, key);
                pool.store(new.add(1 + 2 * t as u64), aseq);
                pool.store(new.add(2 + 2 * t as u64), r as u64);
            }
            pool.pwb_range(new, self.state_words, X_STATE);
            pool.pfence();
            if pool.cas(self.root_word, st_raw, new.raw()).is_ok() {
                pool.pwb(self.root_word, X_ROOT);
                pool.psync();
            }
        }
    }

    /// Applies one operation to a (private, under-construction) state.
    fn apply(&self, st: &StateRef, op: u64, key: u64) -> bool {
        let pool = &*self.pool;
        let n = st.nkeys(pool);
        let keys_base = st.base.add(1 + 2 * self.threads as u64);
        match (op, st.find_pos(pool, key)) {
            (A_INSERT, Err(pos)) => {
                assert!((n as usize) < self.cap, "RedoSet capacity exhausted");
                let mut i = n;
                while i > pos {
                    pool.store(keys_base.add(i), pool.load(keys_base.add(i - 1)));
                    i -= 1;
                }
                pool.store(keys_base.add(pos), key);
                pool.store(st.base, n + 1);
                true
            }
            (A_INSERT, Ok(_)) => false,
            (A_DELETE, Ok(pos)) => {
                for i in pos..n - 1 {
                    pool.store(keys_base.add(i), pool.load(keys_base.add(i + 1)));
                }
                pool.store(st.base, n - 1);
                true
            }
            (A_DELETE, Err(_)) => false,
            _ => unreachable!("invalid op"),
        }
    }

    /// Is `key` present? Reads the current committed state directly —
    /// states are immutable once published, so this is linearizable at the
    /// root-pointer read (the UC analogue of the paper's read-only
    /// optimization). The root pointer is flushed before the response
    /// escapes: a find must never answer from a state a crash could still
    /// roll back.
    pub fn find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        let _ = ctx;
        let pool = &*self.pool;
        let st = self.cur_state();
        let found = st.find_pos(pool, key).is_ok();
        pool.pwb(self.root_word, X_ROOT);
        pool.psync();
        found
    }

    /// `Insert.Recover`.
    pub fn recover_insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        match self.recover_update(ctx) {
            Some(r) => r,
            None => self.insert(ctx, key),
        }
    }

    /// `Delete.Recover`.
    pub fn recover_delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        match self.recover_update(ctx) {
            Some(r) => r,
            None => self.delete(ctx, key),
        }
    }

    /// `Find.Recover` (read-only: re-execute).
    pub fn recover_find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.find(ctx, key)
    }

    fn recover_update(&self, ctx: &ThreadCtx) -> Option<bool> {
        let pool = &*self.pool;
        if ctx.cp() == 0 {
            return None;
        }
        let tid = ctx.tid();
        let seq = ctx.rd();
        let st = self.cur_state();
        if seq != 0 && st.applied_seq(pool, tid) == seq {
            return Some(st.result(pool, tid));
        }
        let (op, _key, aseq) = unpack(pool.load(self.ann(tid)));
        if op != A_NONE && aseq == seq {
            // The announcement survived: let combining finish it.
            return Some(self.combine_until_applied(tid, seq));
        }
        None // never announced durably, never applied: re-invoke
    }

    /// Live keys in order (quiescent only).
    pub fn keys(&self) -> Vec<u64> {
        let pool = &*self.pool;
        let st = self.cur_state();
        (0..st.nkeys(pool)).map(|i| st.key_at(pool, i)).collect()
    }

    /// Checks sortedness (quiescent); returns the key count.
    pub fn check_invariants(&self) -> usize {
        let ks = self.keys();
        assert!(
            ks.windows(2).all(|w| w[0] < w[1]),
            "state keys must be strictly sorted"
        );
        ks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PessimistAdversary, PoolCfg};
    use std::collections::BTreeSet;

    fn setup() -> (Arc<PmemPool>, RedoSet, ThreadCtx) {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(64 << 20)));
        let set = RedoSet::new(pool.clone(), 6, 8, 256);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        (pool, set, ctx)
    }

    #[test]
    fn basics() {
        let (_p, set, ctx) = setup();
        assert!(!set.find(&ctx, 10));
        assert!(set.insert(&ctx, 10));
        assert!(set.find(&ctx, 10));
        assert!(!set.insert(&ctx, 10));
        assert!(set.delete(&ctx, 10));
        assert!(!set.find(&ctx, 10));
        assert!(!set.delete(&ctx, 10));
        assert_eq!(set.check_invariants(), 0);
    }

    #[test]
    fn matches_reference_model_sequentially() {
        let (_p, set, ctx) = setup();
        let mut model = BTreeSet::new();
        let mut rng = 0xABCDu64;
        for _ in 0..1500 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (rng >> 33) % 60 + 1;
            match (rng >> 20) % 3 {
                0 => assert_eq!(set.insert(&ctx, key), model.insert(key), "insert {key}"),
                1 => assert_eq!(set.delete(&ctx, key), model.remove(&key), "delete {key}"),
                _ => assert_eq!(set.find(&ctx, key), model.contains(&key), "find {key}"),
            }
        }
        assert_eq!(set.keys(), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn keys_stay_sorted_through_shifting() {
        let (_p, set, ctx) = setup();
        for k in [9u64, 3, 7, 1, 5] {
            assert!(set.insert(&ctx, k));
        }
        assert_eq!(set.keys(), vec![1, 3, 5, 7, 9]);
        assert!(set.delete(&ctx, 1)); // head shift
        assert!(set.delete(&ctx, 9)); // tail pop
        assert!(set.delete(&ctx, 5)); // middle shift
        assert_eq!(set.keys(), vec![3, 7]);
    }

    #[test]
    fn concurrent_mixed_ops_preserve_invariants() {
        let (p, set, _ctx) = setup();
        let mut handles = vec![];
        for t in 0..4usize {
            let set = set.clone();
            let ctx = ThreadCtx::new(p.clone(), t);
            handles.push(std::thread::spawn(move || {
                let mut rng = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                for _ in 0..200 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let key = rng % 40 + 1;
                    match (rng >> 32) % 3 {
                        0 => {
                            set.insert(&ctx, key);
                        }
                        1 => {
                            set.delete(&ctx, key);
                        }
                        _ => {
                            set.find(&ctx, key);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        set.check_invariants();
    }

    #[test]
    fn concurrent_inserts_same_key_exactly_one_wins() {
        let (p, set, _ctx) = setup();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(4));
        let mut handles = vec![];
        for t in 0..4usize {
            let set = set.clone();
            let ctx = ThreadCtx::new(p.clone(), t);
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                set.insert(&ctx, 77)
            }));
        }
        let wins: usize = handles
            .into_iter()
            .map(|h| h.join().unwrap() as usize)
            .sum();
        assert_eq!(wins, 1);
        assert_eq!(set.keys(), vec![77]);
    }

    #[test]
    fn crash_swept_insert_recovers_detectably() {
        for crash_at in 0..4000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(64 << 20)));
            let set = RedoSet::new(pool.clone(), 6, 4, 64);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            ctx.begin_op(X_RD);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| set.insert_started(&ctx, 5));
            pool.crash(&mut PessimistAdversary);
            match pre {
                Some(r) => {
                    assert!(r);
                    assert_eq!(set.keys(), vec![5]);
                    return;
                }
                None => {
                    assert!(set.recover_insert(&ctx, 5), "crash_at={crash_at}");
                    assert_eq!(set.keys(), vec![5], "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn recovery_of_completed_op_returns_recorded_result() {
        let (_p, set, ctx) = setup();
        assert!(set.insert(&ctx, 9));
        assert!(set.recover_insert(&ctx, 9));
        assert_eq!(set.keys(), vec![9]);
    }

    #[test]
    #[should_panic(expected = "packing range")]
    fn oversized_keys_rejected() {
        let (_p, set, ctx) = setup();
        set.insert(&ctx, KEY_LIMIT + 1);
    }
}
