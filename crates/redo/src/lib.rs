//! # redo — the RedoOpt-style persistent universal construction baseline
//!
//! Section 5 of the paper measures the Redo family of wait-free persistent
//! universal constructions (Correia–Felber–Ramalhete, EuroSys '20) and
//! presents **RedoOpt**, the variant that "constantly outperformed OneFile
//! and all other algorithms in \[16\]". This crate rebuilds that competitor's
//! architecture from scratch over the simulated NVMM of [`pmem`]:
//!
//! * Threads **announce** operations in a per-thread persistent announce
//!   word (op, key and sequence number packed into one CASable word).
//! * Any thread may act as **combiner**: it clones the current persistent
//!   state object, applies *all* pending announced operations to the clone
//!   (recording each thread's last applied sequence number and response
//!   inside the state object), flushes the clone with a single fence, and
//!   swings the root pointer with a CAS. Losing combiners' clones are
//!   discarded; every announced operation is applied exactly once because
//!   application is keyed by sequence number.
//! * **Detectability**: responses live inside the committed state object,
//!   so after a crash a thread compares its announce word's sequence
//!   number against the state's applied-sequence table — matching means
//!   the response is recorded; anything else means the operation never
//!   took effect and may be re-invoked.
//!
//! The combining loop gives the same helping-based progress as the CX/Redo
//! constructions: a thread returns as soon as *some* combiner has applied
//! its announcement, and every combiner applies everyone's pending work.
//!
//! The state object of the benchmarked set is a sorted key array (the
//! universal construction copies whole objects regardless of their shape,
//! which is exactly the cost profile that separates UCs from native
//! structures in the paper's Figures 3a/4a).

#![warn(missing_docs)]

pub mod sites;
pub mod uc;

pub use uc::RedoSet;
