//! `pwb` call sites of the RedoOpt-style universal construction.

use pmem::SiteId;

/// `pwb` of a thread's announce word (thread-private line: cheap).
pub const X_ANNOUNCE: SiteId = SiteId(0);
/// `pwb`s of a freshly built state object before publication (not yet
/// shared: cheap per line, but many lines — the UC's volume cost).
pub const X_STATE: SiteId = SiteId(1);
/// `pwb` of the root pointer after the publishing CAS (shared, contended).
pub const X_ROOT: SiteId = SiteId(2);
/// `pwb` of the per-thread `CP_q`/`RD_q` detectability words.
pub const X_RD: SiteId = SiteId(3);

/// All redo sites with human-readable names.
pub const SITES: [(SiteId, &str); 4] = [
    (X_ANNOUNCE, "announce"),
    (X_STATE, "state-copy"),
    (X_ROOT, "root"),
    (X_RD, "rd"),
];

/// Human-readable name of a redo site (or `"?"`).
pub fn site_name(s: SiteId) -> &'static str {
    SITES
        .iter()
        .find(|(id, _)| *id == s)
        .map(|(_, n)| *n)
        .unwrap_or("?")
}
