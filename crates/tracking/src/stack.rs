//! A detectably recoverable LIFO stack derived with Tracking — a
//! Treiber-style stack driven by the generic engine (recoverable stacks
//! are among the hand-crafted structures the paper's related work cites;
//! here the same generic transformation yields one).
//!
//! Representation: a `top` root cell pointing to a chain of
//! `⟨value, next, info⟩` nodes ending in a permanent **bottom sentinel**
//! (so `top` always names a taggable node).
//!
//! * **Push(v)**: AffectSet = `{top-node}` (stays reachable as the new
//!   node's successor ⇒ untag at cleanup), WriteSet = `{top: old → new}`,
//!   NewSet = `{new}`.
//! * **Pop**: AffectSet = `{top-node}` (leaves the structure ⇒ tagged
//!   forever), WriteSet = `{top: node → node.next}`, response =
//!   `node.value`. Popping the sentinel is the read-only empty case,
//!   validated by re-reading `top` (which can ABA only through node
//!   addresses not seen earlier in the same operation window — always
//!   fresh on the default bump pool, and on a `pmem::PoolCfg::reclaim`
//!   pool recycled only across an epoch quiescence that no window spans;
//!   popped nodes are retired to `pmem::palloc` limbo).
//!
//! ## Why `top` stores a *stamped* pointer
//!
//! The `top` cell does not hold a bare node address: it holds
//! `node | (desc << STAMP_SHIFT)` where `desc` is the address of the
//! descriptor whose WriteSet installed the value. The stamp closes a real
//! linearizability hole that a bare-pointer Treiber top has under the
//! generic help engine — the **stale-helper CAS**:
//!
//! 1. Helper H observes node `T` tagged by push-descriptor `d`
//!    (installing `X` over `T`) and enters `help(d)`'s update phase.
//! 2. H stalls (OS preemption). The owner completes `d`, cleanup untags
//!    `T`; later `X` is popped; later still the stack shrinks until `T`
//!    is top again — a *bare* `top` now holds exactly the value H's
//!    update CAS expects.
//! 3. H wakes and its `CAS(top, T, X)` succeeds, reinstalling the
//!    long-popped `X`. The reinstall self-heals (X is still tagged by
//!    its pop descriptor, so the next arriving operation re-helps that
//!    pop and removes it), **but** any legitimate update CAS racing the
//!    rogue one fails and is ignored as "already applied" — silently
//!    losing a concurrent completed push. (The rare
//!    `stack_survives_crash_storms_exactly_once` failures that prompted
//!    this audit turned out to have two further, independent causes:
//!    the help engine's update phase was not psynced before the result
//!    store, so a crash could keep an operation's result while reverting
//!    its `top` update — see the update-phase comment in `help.rs` — and
//!    the shadow crash model itself could commit a stale line snapshot
//!    taken by a long-descheduled thread, rolling `top`'s persisted image
//!    back past thousands of completed pops — see `ShadowMem::pwb`.)
//!
//! Note that the *tagging* phase cannot prevent this: H legitimately saw
//! the tag while it was in place; nothing re-validates between that
//! observation and H's update CAS, and no recheck can (TOCTOU). What
//! does close it is making `top`'s *value* unrepeatable: descriptors are
//! allocated from a bump path and never recycled, so each
//! `(node, installing-desc)` pair appears in `top` at most once in the
//! pool's entire history. By induction no update CAS can succeed twice
//! — a value can only recur in `top` via an earlier successful rogue
//! CAS, and there is no first one. The queue needs no stamp on its
//! `L.next` WriteSet fields (written exactly once, never reset), but its
//! `head` cell shares the hazard on reclaim pools; see DESIGN.md.
//!
//! Only the `top` cell is stamped. Node `next` fields still hold bare
//! node addresses, and readers mask with [`node_of`] before dereferencing.
//!
//! ## Why the gather re-reads `top` after the info load
//!
//! The stack gathers in the order *protected field first, stamp second*
//! (`top_word`, then the top node's `info`) — the reverse of the list and
//! BST, whose traversals read each node's `info` before the child/next
//! pointer it protects. The reversed order opens a window the tag cannot
//! see: if `top` moves between the two loads (a push buries the gathered
//! node and untags it to a fresh version), the info read returns the
//! *current* stamp, the tagging CAS succeeds on a node that is no longer
//! top, and the update CAS on `top` fails and is ignored as "already
//! applied" — recording a success that never took structural effect (a
//! lost push, or a duplicated pop leaving a reachable node tagged
//! forever). Both gathers therefore re-read `top_cell` after the info
//! load and retry on mismatch; past that point any movement of `top`
//! must first tag the gathered node, which the tagging CAS detects. The
//! queue and exchanger need no such re-read: their displaced nodes keep
//! their tag forever, so a stale gather always lands on a tagged node.

use std::sync::Arc;

use pmem::{is_tagged, PAddr, PmemPool, ThreadCtx};

use crate::descriptor::{AffectEntry, Desc, WriteEntry};
use crate::help::help;
use crate::result::{dec_val, enc_val, BOTTOM, FALSE};
use crate::sites::{S_CP, S_DESC, S_NEW, S_RD};

/// Descriptor op-type tag for pushes.
pub const OP_PUSH: u8 = 12;
/// Descriptor op-type tag for pops.
pub const OP_POP: u8 = 13;

// Node layout (one cache line): w0 value, w1 next, w2 info, w3 is_sentinel.
const N_VALUE: u64 = 0;
const N_NEXT: u64 = 1;
const N_INFO: u64 = 2;
const N_SENTINEL: u64 = 3;

/// Largest pushable value (room for the result encoding).
pub const VALUE_MAX: u64 = u64::MAX - 4;

/// Bit position of the installing-descriptor stamp inside the `top` word
/// (see module docs). Node and descriptor addresses are word indices and
/// must each fit below this shift, which holds for pools up to 32 GiB.
pub const STAMP_SHIFT: u32 = 32;

const ADDR_MASK: u64 = (1 << STAMP_SHIFT) - 1;

/// Extracts the node address from a stamped `top` word.
#[inline]
pub fn node_of(top_word: u64) -> PAddr {
    PAddr::from_raw(top_word & ADDR_MASK)
}

/// Builds the stamped `top` word installing `node` on behalf of `desc`.
#[inline]
fn stamped(node: PAddr, desc: Desc) -> u64 {
    let d = desc.addr().raw();
    debug_assert!(
        node.raw() <= ADDR_MASK && d <= ADDR_MASK,
        "pool too large for top stamps"
    );
    node.raw() | (d << STAMP_SHIFT)
}

/// The detectably recoverable LIFO stack.
#[derive(Clone)]
pub struct RecoverableStack {
    pool: Arc<PmemPool>,
    top_cell: PAddr,
}

impl RecoverableStack {
    /// Creates a stack rooted in root cell `root_idx`, or re-attaches.
    pub fn new(pool: Arc<PmemPool>, root_idx: usize) -> Self {
        let top_cell = pool.root(root_idx);
        if pool.load(top_cell) == 0 {
            let bottom = pool.alloc_lines(1);
            pool.store(bottom.add(N_SENTINEL), 1);
            pool.pwb(bottom, S_NEW);
            pool.pfence();
            pool.store(top_cell, bottom.raw());
            pool.pbarrier(top_cell, 1, S_NEW);
        }
        RecoverableStack { pool, top_cell }
    }

    /// The owning pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    fn prologue(&self, ctx: &ThreadCtx) {
        let pool = &*self.pool;
        ctx.set_rd(0);
        pool.pbarrier(ctx.rd_addr(), 1, S_RD);
        ctx.set_cp(1);
        pool.pwb(ctx.cp_addr(), S_CP);
        pool.psync();
    }

    /// Pushes `value`.
    pub fn push(&self, ctx: &ThreadCtx, value: u64) {
        ctx.begin_op(S_CP);
        self.push_started(ctx, value)
    }

    /// [`Self::push`] without the system's `CP_q := 0` pre-step.
    pub fn push_started(&self, ctx: &ThreadCtx, value: u64) {
        assert!(value <= VALUE_MAX, "value too large to encode");
        let pool = &*self.pool;
        let new = ctx.palloc(1);
        pool.store(new.add(N_VALUE), value);
        self.prologue(ctx);
        loop {
            // Gather: the current (stamped) top word and the top node's
            // info version stamp.
            let top_word = pool.load(self.top_cell);
            let top = node_of(top_word);
            let info = pool.load(top.add(N_INFO));
            if is_tagged(info) {
                help(pool, Desc::from_raw(info));
                continue;
            }
            // Validate that `top` is still the top *after* the info read.
            // `top_word` was read before `info`: if `top` moved between the
            // two loads (a push buried this node and untagged it to a fresh
            // version), the gathered info is current and the tagging CAS
            // would succeed — yet the update CAS on `top` would fail against
            // the moved word and be ignored, recording a success for a node
            // that was never installed. The re-read closes the window: once
            // `top_cell` still holds `top_word` here, any later movement
            // must first tag this node, which the tagging CAS detects.
            if pool.load(self.top_cell) != top_word {
                continue;
            }
            let desc = Desc::alloc(pool);
            pool.store(new.add(N_NEXT), top.raw());
            pool.store(new.add(N_INFO), desc.tagged());
            desc.init(
                pool,
                OP_PUSH,
                enc_val(value),
                &[AffectEntry {
                    info_addr: top.add(N_INFO),
                    observed: info,
                    untag_on_cleanup: true, // stays in the stack below `new`
                }],
                &[WriteEntry {
                    field: self.top_cell,
                    old: top_word,
                    new: stamped(new, desc),
                }],
                &[new.add(N_INFO)],
            );
            pool.pwb(new, S_NEW);
            pool.pwb_range(desc.addr(), crate::descriptor::D_WORDS, S_DESC);
            pool.pfence();
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            help(pool, desc);
            if desc.result(pool) != BOTTOM {
                return;
            }
        }
    }

    /// `Push.Recover`.
    pub fn recover_push(&self, ctx: &ThreadCtx, value: u64) {
        let pool = &*self.pool;
        let rd = ctx.rd();
        if ctx.cp() == 0 || rd == 0 {
            return self.push(ctx, value);
        }
        let desc = Desc::from_raw(rd);
        help(pool, desc);
        if desc.result(pool) == BOTTOM {
            self.push(ctx, value)
        }
    }

    /// Pops the most recent value, or `None` when empty.
    pub fn pop(&self, ctx: &ThreadCtx) -> Option<u64> {
        ctx.begin_op(S_CP);
        self.pop_started(ctx)
    }

    /// [`Self::pop`] without the system's `CP_q := 0` pre-step.
    pub fn pop_started(&self, ctx: &ThreadCtx) -> Option<u64> {
        let pool = &*self.pool;
        self.prologue(ctx);
        loop {
            let top_word = pool.load(self.top_cell);
            let top = node_of(top_word);
            let info = pool.load(top.add(N_INFO));
            if is_tagged(info) {
                help(pool, Desc::from_raw(info));
                continue;
            }
            // Same stale-gather window as in `push_started`: without this
            // re-read, a pop whose `top_word` predates the info read could
            // tag a buried node, have its update CAS fail silently, and
            // report that node's value popped — a duplicate, with the node
            // left reachable and tagged forever (a help livelock for every
            // later traversal).
            if pool.load(self.top_cell) != top_word {
                continue;
            }
            let desc = Desc::alloc(pool);
            if pool.load(top.add(N_SENTINEL)) == 1 {
                // Read-only empty outcome, validated against the stamped
                // top word and the info version stamp still being in place
                // (top may have moved).
                if pool.load(self.top_cell) != top_word || pool.load(top.add(N_INFO)) != info {
                    continue;
                }
                desc.init(
                    pool,
                    OP_POP,
                    FALSE,
                    &[AffectEntry {
                        info_addr: top.add(N_INFO),
                        observed: info,
                        untag_on_cleanup: true,
                    }],
                    &[],
                    &[],
                );
                desc.set_result(pool, FALSE);
                desc.pbarrier(pool, S_DESC);
                ctx.set_rd(desc.raw());
                pool.pwb(ctx.rd_addr(), S_RD);
                pool.psync();
                return None;
            }
            let value = pool.load(top.add(N_VALUE)); // immutable once published
            let next = pool.load(top.add(N_NEXT));
            desc.init(
                pool,
                OP_POP,
                enc_val(value),
                &[AffectEntry {
                    info_addr: top.add(N_INFO),
                    observed: info,
                    untag_on_cleanup: false, // leaves the stack
                }],
                &[WriteEntry {
                    field: self.top_cell,
                    old: top_word,
                    new: stamped(PAddr::from_raw(next), desc),
                }],
                &[],
            );
            desc.pbarrier(pool, S_DESC);
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            help(pool, desc);
            let r = desc.result(pool);
            if r != BOTTOM {
                if r != FALSE {
                    // top durably moved past the popped node (help fenced
                    // the WriteSet CAS): retire it. Its tag and payload
                    // words stay intact for late helpers.
                    ctx.retire(top, 1);
                }
                return if r == FALSE { None } else { Some(dec_val(r)) };
            }
        }
    }

    /// `Pop.Recover`.
    pub fn recover_pop(&self, ctx: &ThreadCtx) -> Option<u64> {
        let pool = &*self.pool;
        let rd = ctx.rd();
        if ctx.cp() == 0 || rd == 0 {
            return self.pop(ctx);
        }
        let desc = Desc::from_raw(rd);
        help(pool, desc);
        let r = desc.result(pool);
        if r == BOTTOM {
            self.pop(ctx)
        } else if r == FALSE {
            None
        } else {
            Some(dec_val(r))
        }
    }

    /// Values from top to bottom (quiescent only).
    pub fn values(&self) -> Vec<u64> {
        let pool = &*self.pool;
        let mut out = Vec::new();
        let mut nd = node_of(pool.load(self.top_cell));
        while pool.load(nd.add(N_SENTINEL)) != 1 {
            out.push(pool.load(nd.add(N_VALUE)));
            nd = PAddr::from_raw(pool.load(nd.add(N_NEXT)));
        }
        out
    }

    /// Number of stacked values (quiescent only).
    pub fn len(&self) -> usize {
        self.values().len()
    }

    /// Is the stack empty (quiescent only)?
    pub fn is_empty(&self) -> bool {
        let top = node_of(self.pool.load(self.top_cell));
        self.pool.load(top.add(N_SENTINEL)) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PmemPool, PoolCfg};

    fn setup() -> (Arc<PmemPool>, RecoverableStack, ThreadCtx) {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
        let s = RecoverableStack::new(pool.clone(), 6);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        (pool, s, ctx)
    }

    #[test]
    fn lifo_order() {
        let (_p, s, ctx) = setup();
        assert!(s.is_empty());
        assert_eq!(s.pop(&ctx), None);
        for v in [1u64, 2, 3] {
            s.push(&ctx, v);
        }
        assert_eq!(s.values(), vec![3, 2, 1]);
        assert_eq!(s.pop(&ctx), Some(3));
        s.push(&ctx, 9);
        assert_eq!(s.pop(&ctx), Some(9));
        assert_eq!(s.pop(&ctx), Some(2));
        assert_eq!(s.pop(&ctx), Some(1));
        assert_eq!(s.pop(&ctx), None);
        assert!(s.is_empty());
    }

    #[test]
    fn empty_refill_cycles() {
        let (_p, s, ctx) = setup();
        for round in 0..5u64 {
            for v in 0..10 {
                s.push(&ctx, round * 100 + v);
            }
            for v in (0..10).rev() {
                assert_eq!(s.pop(&ctx), Some(round * 100 + v));
            }
            assert_eq!(s.pop(&ctx), None, "round {round}");
        }
    }

    #[test]
    fn concurrent_push_pop_loses_nothing() {
        let (p, s, _ctx) = setup();
        let mut handles = vec![];
        for t in 0..2u64 {
            let s = s.clone();
            let ctx = ThreadCtx::new(p.clone(), t as usize);
            handles.push(std::thread::spawn(move || {
                for i in 0..300u64 {
                    s.push(&ctx, t * 1000 + i);
                }
                Vec::new()
            }));
        }
        for t in 2..4u64 {
            let s = s.clone();
            let ctx = ThreadCtx::new(p.clone(), t as usize);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while got.len() < 300 {
                    if let Some(v) = s.pop(&ctx) {
                        got.push(v);
                    }
                }
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut want: Vec<u64> = (0..300).chain(1000..1300).collect();
        want.sort_unstable();
        assert_eq!(all, want, "every pushed value popped exactly once");
        assert!(s.is_empty());
    }

    #[test]
    fn crash_swept_push_recovers_exactly_once() {
        for crash_at in 0..2000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
            let s = RecoverableStack::new(pool.clone(), 6);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            s.push(&ctx, 1);
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| s.push_started(&ctx, 2));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(()) => {
                    assert_eq!(s.values(), vec![2, 1]);
                    return;
                }
                None => {
                    s.recover_push(&ctx, 2);
                    assert_eq!(s.values(), vec![2, 1], "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn crash_swept_pop_recovers_exactly_once() {
        for crash_at in 0..2000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
            let s = RecoverableStack::new(pool.clone(), 6);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            s.push(&ctx, 7);
            s.push(&ctx, 8);
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| s.pop_started(&ctx));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(r) => {
                    assert_eq!(r, Some(8));
                    assert_eq!(s.values(), vec![7]);
                    return;
                }
                None => {
                    assert_eq!(s.recover_pop(&ctx), Some(8), "crash_at={crash_at}");
                    assert_eq!(s.values(), vec![7], "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn recovery_replays_completed_responses() {
        let (_p, s, ctx) = setup();
        s.push(&ctx, 42);
        assert_eq!(s.pop(&ctx), Some(42));
        assert_eq!(s.recover_pop(&ctx), Some(42), "replay, not re-pop");
        assert!(s.is_empty());
        assert_eq!(s.pop(&ctx), None);
        assert_eq!(s.recover_pop(&ctx), None);
    }
}
