//! The generic, idempotent `Help` engine — Algorithm 2 of the paper.
//!
//! `help(pool, desc)` drives an operation (its own, a conflicting
//! operation's, or a crashed operation's during recovery) through its
//! tagging, update, result and cleanup phases. It is safe to run any number
//! of times, concurrently, by any thread:
//!
//! * **Tagging** installs `tagged(desc)` into each AffectSet `info` field
//!   with a CAS expecting the gathered value. Seeing `tagged(desc)` already
//!   there means another helper got here first — fine, continue. Any other
//!   value means the node changed since the gather (info fields are version
//!   stamps that never revert), so the attempt **backtracks**: it untags, in
//!   reverse order, whatever this descriptor had tagged, and returns with
//!   `result` still ⊥.
//! * **Update** applies each WriteSet CAS. A failed CAS is ignored: it can
//!   only fail because another helper already applied it (the affected
//!   fields are protected by the tags), which is exactly the idempotence the
//!   recovery path relies on.
//! * **Result** stores the precomputed success response — every helper
//!   stores the same value, so the race is benign — and persists it *before*
//!   cleanup, so a recovering thread never unlocks nodes of an operation
//!   whose outcome is not yet durable.
//! * **Cleanup** untags AffectSet entries whose `untag_on_cleanup` flag is
//!   set (nodes removed from the structure keep their tag forever) and all
//!   NewSet nodes (born tagged, now live).
//!
//! Persistence placement follows the pseudocode exactly: a `pwb` after every
//! tagging/backtrack/update/cleanup CAS and the `result` store, and a
//! `psync` at the end of every phase.

use pmem::{PAddr, PmemPool};

use crate::descriptor::Desc;
use crate::sites::{S_BACKTRACK, S_CLEANUP, S_RESULT, S_TAG, S_UPDATE};

/// Runs Algorithm 2 for the operation described by `desc`.
///
/// On return, either the operation has taken effect (its `result` is set,
/// its updates applied, its cleanup done or duplicable by any later call),
/// or it did not take effect at all and `result` is still ⊥ (the caller —
/// owner or recovery — starts a new attempt).
pub fn help(pool: &PmemPool, desc: Desc) {
    let alen = desc.affect_len(pool);
    let tag = desc.tagged();
    let untag = desc.untagged();

    // ---- Tagging phase (lines 32–47) ----
    // Fence-coalescing region scoped to this phase only. A helper racing
    // behind another sees tag CASes fail with `seen == tag` on lines the
    // winner already flushed and fenced; its redundant `pwb`s (and, if all
    // of them elide, the phase psync) then become identities a
    // `pmem::PoolCfg::flushopt` pool may skip. The region deliberately ends
    // before the update phase: the update psync → result-store ordering is
    // load-bearing (see the comment below) and is kept outside any
    // coalescible scope so it can never even be *considered* for elision.
    let region = pool.flushopt_enabled().then(|| pool.coalesce_fences());
    for i in 0..alen {
        let entry = desc.affect(pool, i);
        let res = pool.cas(entry.info_addr, entry.observed, tag);
        pool.pwb(entry.info_addr, S_TAG);
        let seen = match res {
            Ok(_) => continue,
            Err(seen) => seen,
        };
        if seen == tag {
            continue; // another helper already tagged this node for us
        }
        // Tagging failure. If the result is already recorded, the operation
        // took effect and the "failure" is a trace of its (possibly
        // interrupted) cleanup — e.g. a crash persisted the untag of one
        // AffectSet entry but not of a NewSet node. Re-running the cleanup
        // phase is always safe (its CASes touch only this descriptor's own
        // tags) and is required for progress: a completed operation must
        // never leave a reachable node tagged forever. Note the read order:
        // cleanup untags happen-after the result write, so observing an
        // untag implies observing the result.
        if desc.result(pool) != crate::result::BOTTOM {
            cleanup(pool, desc, alen, tag, untag);
            return;
        }
        // ---- Backtrack phase (lines 38–44) ----
        // result is ⊥: the value is a genuinely foreign stamp (or our own
        // backtrack trace); no helper can ever complete this descriptor's
        // tagging (the stamp at the failed entry never reverts), so result
        // stays ⊥ and releasing our prefix is correct.
        for j in (0..i).rev() {
            let prev = desc.affect(pool, j);
            let _ = pool.cas(prev.info_addr, tag, untag);
            pool.pwb(prev.info_addr, S_BACKTRACK);
        }
        pool.psync();
        return;
    }
    pool.psync(); // line 47: tagging persisted before any update
    drop(region); // update/result fences run outside any coalescible scope

    // ---- Update phase (lines 48–51) ----
    let wlen = desc.write_len(pool);
    for j in 0..wlen {
        let w = desc.write(pool, j);
        let _ = pool.cas(w.field, w.old, w.new); // idempotent: failure means done
        pool.pwb(w.field, S_UPDATE);
    }
    // The psync below must come *before* the result store, not be merged
    // into the result phase's psync. Crash lines resolve independently: if
    // the result store were issued first, a crash in the window could keep
    // the result (volatile image) while reverting the updated field
    // (persisted image). Recovery would then trust a non-⊥ result for an
    // operation whose structural effect was undone — losing the value — or,
    // worse, resurrect a reachable node still tagged by this completed
    // descriptor whose update CAS can no longer match, wedging every later
    // traversal in a help loop. Syncing here guarantees: result ≠ ⊥ in any
    // crash resolution ⇒ every WriteSet field is durably at (or past) `new`.
    // Note every helper pwbs each field even when its CAS fails, so whichever
    // helper reaches the result store has itself persisted the updates.
    pool.psync();

    // ---- Result (lines 52–53) ----
    desc.set_result(pool, desc.success_result(pool));
    pool.pwb(desc.result_addr(), S_RESULT);
    pool.psync();

    // ---- Cleanup phase (lines 54–58) ----
    cleanup(pool, desc, alen, tag, untag);
}

/// The cleanup phase (Algorithm 2 lines 54–58): untags every AffectSet
/// entry still part of the structure and every NewSet node. Idempotent;
/// also invoked when a helper detects a completed operation whose cleanup
/// was interrupted by a crash.
fn cleanup(pool: &PmemPool, desc: Desc, alen: usize, tag: u64, untag: u64) {
    // Coalescible like the tagging phase: duplicate cleanup (a helper
    // re-untagging a completed operation's nodes) re-flushes clean lines.
    let _region = pool.flushopt_enabled().then(|| pool.coalesce_fences());
    for i in 0..alen {
        let entry = desc.affect(pool, i);
        if entry.untag_on_cleanup {
            let _ = pool.cas(entry.info_addr, tag, untag);
            pool.pwb(entry.info_addr, S_CLEANUP);
        }
    }
    let nlen = desc.new_len(pool);
    for i in 0..nlen {
        let info_addr: PAddr = desc.new_node(pool, i);
        let _ = pool.cas(info_addr, tag, untag);
        pool.pwb(info_addr, S_CLEANUP);
    }
    pool.psync();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{AffectEntry, WriteEntry};
    use crate::result::{enc_bool, BOTTOM, TRUE};
    use pmem::{PessimistAdversary, PmemPool, PoolCfg};

    /// A fake two-word "node": w0 = field, w2 = info (w1 spare).
    fn node(p: &PmemPool, field: u64) -> PAddr {
        let n = p.alloc_lines(1);
        p.store(n, field);
        n
    }

    fn pool() -> PmemPool {
        PmemPool::new(PoolCfg::model(1 << 20))
    }

    #[test]
    fn successful_help_applies_update_result_cleanup() {
        let p = pool();
        let nd = node(&p, 5);
        let info = nd.add(2);
        let d = Desc::alloc(&p);
        d.init(
            &p,
            1,
            enc_bool(true),
            &[AffectEntry {
                info_addr: info,
                observed: 0,
                untag_on_cleanup: true,
            }],
            &[WriteEntry {
                field: nd,
                old: 5,
                new: 9,
            }],
            &[],
        );
        help(&p, d);
        assert_eq!(p.load(nd), 9, "update applied");
        assert_eq!(d.result(&p), TRUE, "result recorded");
        assert_eq!(p.load(info), d.untagged(), "node untagged after cleanup");
    }

    #[test]
    fn help_is_idempotent() {
        let p = pool();
        let nd = node(&p, 5);
        let info = nd.add(2);
        let d = Desc::alloc(&p);
        d.init(
            &p,
            1,
            enc_bool(true),
            &[AffectEntry {
                info_addr: info,
                observed: 0,
                untag_on_cleanup: true,
            }],
            &[WriteEntry {
                field: nd,
                old: 5,
                new: 9,
            }],
            &[],
        );
        for _ in 0..3 {
            help(&p, d);
        }
        assert_eq!(p.load(nd), 9);
        assert_eq!(d.result(&p), TRUE);
        assert_eq!(p.load(info), d.untagged());
    }

    #[test]
    fn conflicting_tag_backtracks_without_effect() {
        let p = pool();
        let nd1 = node(&p, 1);
        let nd2 = node(&p, 2);
        // nd2 is already tagged by a different descriptor
        let other = Desc::alloc(&p);
        p.store(nd2.add(2), other.tagged());
        let d = Desc::alloc(&p);
        d.init(
            &p,
            1,
            enc_bool(true),
            &[
                AffectEntry {
                    info_addr: nd1.add(2),
                    observed: 0,
                    untag_on_cleanup: true,
                },
                AffectEntry {
                    info_addr: nd2.add(2),
                    observed: 0,
                    untag_on_cleanup: true,
                },
            ],
            &[WriteEntry {
                field: nd1,
                old: 1,
                new: 100,
            }],
            &[],
        );
        help(&p, d);
        assert_eq!(d.result(&p), BOTTOM, "attempt must not take effect");
        assert_eq!(p.load(nd1), 1, "no update applied");
        // nd1 was tagged then backtracked: its info is untagged(d), a fresh
        // version-stamp value
        assert_eq!(p.load(nd1.add(2)), d.untagged());
        assert_eq!(
            p.load(nd2.add(2)),
            other.tagged(),
            "other op's tag untouched"
        );
    }

    #[test]
    fn stale_observed_value_fails_tagging() {
        let p = pool();
        let nd = node(&p, 1);
        let d = Desc::alloc(&p);
        d.init(
            &p,
            1,
            enc_bool(true),
            &[AffectEntry {
                info_addr: nd.add(2),
                observed: 77,
                untag_on_cleanup: true,
            }],
            &[WriteEntry {
                field: nd,
                old: 1,
                new: 2,
            }],
            &[],
        );
        help(&p, d); // observed (77) != actual (0) -> backtrack immediately
        assert_eq!(d.result(&p), BOTTOM);
        assert_eq!(p.load(nd), 1);
        assert_eq!(p.load(nd.add(2)), 0, "info untouched (nothing was tagged)");
    }

    #[test]
    fn new_nodes_untagged_at_cleanup() {
        let p = pool();
        let nd = node(&p, 5);
        let d = Desc::alloc(&p);
        let newnd = node(&p, 0);
        p.store(newnd.add(2), d.tagged()); // born tagged
        d.init(
            &p,
            1,
            enc_bool(true),
            &[AffectEntry {
                info_addr: nd.add(2),
                observed: 0,
                untag_on_cleanup: true,
            }],
            &[WriteEntry {
                field: nd,
                old: 5,
                new: newnd.raw(),
            }],
            &[newnd.add(2)],
        );
        help(&p, d);
        assert_eq!(p.load(newnd.add(2)), d.untagged());
    }

    #[test]
    fn deleted_node_keeps_tag_forever() {
        let p = pool();
        let pred = node(&p, 10);
        let curr = node(&p, 20);
        let d = Desc::alloc(&p);
        d.init(
            &p,
            2,
            enc_bool(true),
            &[
                AffectEntry {
                    info_addr: pred.add(2),
                    observed: 0,
                    untag_on_cleanup: true,
                },
                AffectEntry {
                    info_addr: curr.add(2),
                    observed: 0,
                    untag_on_cleanup: false,
                },
            ],
            &[WriteEntry {
                field: pred,
                old: 10,
                new: 11,
            }],
            &[],
        );
        help(&p, d);
        assert_eq!(p.load(pred.add(2)), d.untagged());
        assert_eq!(p.load(curr.add(2)), d.tagged(), "removed node stays tagged");
    }

    #[test]
    fn crash_mid_help_then_rehelp_completes() {
        // Crash at every instrumented event of help(); after the pessimist
        // crash, a re-help must bring the operation to its final state.
        let p = pool();
        for crash_at in 0.. {
            let nd = node(&p, 5);
            let info = nd.add(2);
            // in the real algorithms affected nodes are already durable
            p.pwb(nd, pmem::SiteId(1));
            p.psync();
            let d = Desc::alloc(&p);
            d.init(
                &p,
                1,
                enc_bool(true),
                &[AffectEntry {
                    info_addr: info,
                    observed: 0,
                    untag_on_cleanup: true,
                }],
                &[WriteEntry {
                    field: nd,
                    old: 5,
                    new: 9,
                }],
                &[],
            );
            d.pbarrier(&p, pmem::SiteId(0)); // descriptor durable before help
            p.crash_ctl().arm_after(crash_at);
            let done = pmem::run_crashable(|| help(&p, d)).is_some();
            p.crash(&mut PessimistAdversary);
            // recovery: re-run help (idempotent)
            help(&p, d);
            assert_eq!(p.load(nd), 9, "crash_at={crash_at}");
            assert_eq!(d.result(&p), TRUE, "crash_at={crash_at}");
            assert_eq!(p.load(info), d.untagged(), "crash_at={crash_at}");
            if done {
                break; // the whole help() ran without crashing: sweep complete
            }
        }
    }

    #[test]
    fn result_implies_update_under_mixed_crash_resolutions() {
        // Regression for a lost-suffix / recovery-livelock bug: the update
        // phase must psync before the result store. The seeded adversary
        // resolves each unflushed line independently, so without that sync a
        // crash between the result store and the result psync could keep the
        // result (volatile image of its line) while reverting the WriteSet
        // field (persisted image of its line). Recovery then trusts a non-⊥
        // result for an operation whose effect was undone. Sweep every crash
        // point under several seeds and assert the detectability invariant:
        // a non-⊥ result implies the update is durably applied.
        use pmem::SeededAdversary;
        for seed in [1u64, 0x9E37_79B9, 104729, 0xDEAD_BEE5, 777] {
            let p = pool();
            for crash_at in 0.. {
                let nd = node(&p, 5);
                let info = nd.add(2);
                p.pwb(nd, pmem::SiteId(1));
                p.psync();
                let d = Desc::alloc(&p);
                d.init(
                    &p,
                    1,
                    enc_bool(true),
                    &[AffectEntry {
                        info_addr: info,
                        observed: 0,
                        untag_on_cleanup: true,
                    }],
                    &[WriteEntry {
                        field: nd,
                        old: 5,
                        new: 9,
                    }],
                    &[],
                );
                d.pbarrier(&p, pmem::SiteId(0));
                p.crash_ctl().arm_after(crash_at);
                let done = pmem::run_crashable(|| help(&p, d)).is_some();
                p.crash(&mut SeededAdversary::new(seed ^ crash_at));
                if d.result(&p) != BOTTOM {
                    assert_eq!(
                        p.load(nd),
                        9,
                        "seed={seed} crash_at={crash_at}: non-⊥ result with unapplied update"
                    );
                }
                // Re-help must always converge to the final state.
                help(&p, d);
                assert_eq!(p.load(nd), 9, "seed={seed} crash_at={crash_at}");
                assert_eq!(d.result(&p), TRUE, "seed={seed} crash_at={crash_at}");
                assert_eq!(
                    p.load(info),
                    d.untagged(),
                    "seed={seed} crash_at={crash_at}"
                );
                if done {
                    break;
                }
            }
        }
    }

    #[test]
    fn interrupted_cleanup_is_finished_by_later_helpers() {
        // Regression: an operation completed (result durable) but a crash
        // resurrected the tag of a NewSet node while the AffectSet entry's
        // untag survived. A later help() of the descriptor must finish the
        // cleanup rather than backtrack-and-return, or the reachable node
        // would stay tagged forever and every traversal would livelock.
        let p = pool();
        let nd = node(&p, 5);
        let d = Desc::alloc(&p);
        let newnd = node(&p, 0);
        p.store(newnd.add(2), d.tagged());
        d.init(
            &p,
            1,
            enc_bool(true),
            &[AffectEntry {
                info_addr: nd.add(2),
                observed: 0,
                untag_on_cleanup: true,
            }],
            &[WriteEntry {
                field: nd,
                old: 5,
                new: newnd.raw(),
            }],
            &[newnd.add(2)],
        );
        help(&p, d); // completes: both untagged
        assert_eq!(p.load(newnd.add(2)), d.untagged());
        // simulate the crash resurrecting the NewSet tag only
        p.store(newnd.add(2), d.tagged());
        help(&p, d);
        assert_eq!(
            p.load(newnd.add(2)),
            d.untagged(),
            "completed op's cleanup must be re-run, not backtracked"
        );
        assert_eq!(d.result(&p), TRUE);
        assert_eq!(p.load(nd), newnd.raw(), "update untouched");
    }

    #[test]
    fn competing_helpers_apply_update_once() {
        // Two descriptors fight over one node; exactly one takes effect.
        let p = pool();
        let nd = node(&p, 5);
        let info = nd.add(2);
        let d1 = Desc::alloc(&p);
        let d2 = Desc::alloc(&p);
        for (d, new) in [(d1, 100u64), (d2, 200u64)] {
            d.init(
                &p,
                1,
                enc_bool(true),
                &[AffectEntry {
                    info_addr: info,
                    observed: 0,
                    untag_on_cleanup: true,
                }],
                &[WriteEntry {
                    field: nd,
                    old: 5,
                    new,
                }],
                &[],
            );
        }
        help(&p, d1);
        help(&p, d2); // d2's observed value (0) is stale now -> backtracks
        assert_eq!(p.load(nd), 100);
        assert_eq!(d1.result(&p), TRUE);
        assert_eq!(d2.result(&p), BOTTOM);
    }
}
