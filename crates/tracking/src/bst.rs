//! The detectably recoverable leaf-oriented (external) binary search tree —
//! Section 6 of the paper (Algorithms 5–6, types of Figure 7), derived from
//! the Ellen–Fatourou–Ruppert–van Breugel lock-free BST.
//!
//! Every key resides in a leaf; internal nodes route searches (`k <
//! node.key` goes left). The tree is initialized with a root whose key is
//! ∞₂ and two leaf children ∞₁ < ∞₂, both larger than every user key, so a
//! search never falls off the tree.
//!
//! * **Insert** replaces the reached leaf `l` with a three-node subtree:
//!   a fresh internal node (key `max(k, l.key)`) whose children are a new
//!   leaf `k` and a *copy* of `l` — the same replace-with-copy trick as the
//!   list, which keeps child pointers ABA-free. AffectSet = `{p}`; NewSet =
//!   `{newInternal}` (leaves carry no `info` field and need no untagging).
//! * **Delete** unlinks leaf `l` and its parent `p` by CASing the proper
//!   child pointer of the grandparent `gp` from `p` to `l`'s sibling.
//!   AffectSet = `{gp, p}` in root-down order (the paper's assumption (b));
//!   `p` leaves the tree and keeps its tag forever.
//!
//! Unlinked nodes (the replaced leaf of an insert, the leaf/parent pair of
//! a delete) and the unpublished nodes of a lost attempt are retired to
//! `pmem::palloc` limbo by the operation's owner — ABA freedom is
//! preserved because retired addresses are re-issued only after an epoch
//! quiescence that no operation window spans, and helpers still read a
//! retired node's intact words until that drain. A no-op on the default
//! bump pool.
//!
//! Two deliberate deviations from the (abbreviated) pseudocode, both noted
//! in DESIGN.md:
//!
//! 1. Algorithm 6 stores a non-empty WriteSet even on the key-absent path
//!    and Algorithm 5 on the duplicate-key path. Since `Op.Recover` calls
//!    `Help` unconditionally, replaying such a descriptor would apply an
//!    update the operation never intended. We store `WriteSet = ∅` for
//!    read-only outcomes — exactly what the list pseudocode (Algorithm 4
//!    line 64) does.
//! 2. Algorithm 5 line 24 omits the new key leaf from its `pbarrier`; we
//!    flush all three new nodes before publication.

use std::sync::Arc;

use pmem::{is_tagged, PAddr, PmemPool, ThreadCtx};

use crate::descriptor::{AffectEntry, Desc, WriteEntry};
use crate::help::help;
use crate::result::{dec_bool, enc_bool, BOTTOM};
use crate::sites::{S_CP, S_DESC, S_NEW, S_RD};

/// First sentinel key: larger than every user key, smaller than [`INF2`].
pub const INF1: u64 = u64::MAX - 1;
/// Second sentinel key (the root's key).
pub const INF2: u64 = u64::MAX;

/// Descriptor op-type tag for BST inserts.
pub const OP_INSERT: u8 = 4;
/// Descriptor op-type tag for BST deletes.
pub const OP_DELETE: u8 = 5;
/// Descriptor op-type tag for BST finds.
pub const OP_FIND: u8 = 6;

// Node layout (one cache line): w0 key, w1 left, w2 right, w3 info, w4 kind.
const N_KEY: u64 = 0;
const N_LEFT: u64 = 1;
const N_RIGHT: u64 = 2;
const N_INFO: u64 = 3;
const N_KIND: u64 = 4;
const KIND_LEAF: u64 = 0;
const KIND_INTERNAL: u64 = 1;

/// The detectably recoverable external binary search tree.
#[derive(Clone)]
pub struct RecoverableBst {
    pool: Arc<PmemPool>,
    root: PAddr,
}

/// Result of `Search(k)` (Algorithm 5 lines 30–39): the reached leaf `l`,
/// its parent `p`, grandparent `gp` (null at depth 1), and the `info`
/// values gathered on first access.
struct SearchRes {
    gp: PAddr,
    p: PAddr,
    l: PAddr,
    gp_info: u64,
    p_info: u64,
}

impl RecoverableBst {
    /// Creates an empty tree rooted in root cell `root_idx`, or re-attaches
    /// to the tree already rooted there.
    pub fn new(pool: Arc<PmemPool>, root_idx: usize) -> Self {
        pool.register_site_names(&crate::sites::SITES);
        let root_cell = pool.root(root_idx);
        let existing = pool.load(root_cell);
        if existing != 0 {
            return RecoverableBst {
                pool,
                root: PAddr::from_raw(existing),
            };
        }
        let root = pool.alloc_lines(1);
        let leaf1 = Self::mk_leaf(&pool, INF1);
        let leaf2 = Self::mk_leaf(&pool, INF2);
        pool.store(root.add(N_KEY), INF2);
        pool.store(root.add(N_LEFT), leaf1.raw());
        pool.store(root.add(N_RIGHT), leaf2.raw());
        pool.store(root.add(N_INFO), 0);
        pool.store(root.add(N_KIND), KIND_INTERNAL);
        pool.pwb(root, S_NEW);
        pool.pwb(leaf1, S_NEW);
        pool.pwb(leaf2, S_NEW);
        pool.pfence();
        pool.store(root_cell, root.raw());
        pool.pbarrier(root_cell, 1, S_NEW);
        RecoverableBst { pool, root }
    }

    fn mk_leaf(pool: &PmemPool, key: u64) -> PAddr {
        let n = pool.alloc_lines(1);
        Self::init_leaf(pool, n, key);
        n
    }

    /// Leaf initialization, split from [`Self::mk_leaf`] so operation paths
    /// can allocate through [`ThreadCtx::palloc`] (recycling retired blocks
    /// on reclaim pools) while construction keeps the plain bump path.
    fn init_leaf(pool: &PmemPool, n: PAddr, key: u64) {
        pool.store(n.add(N_KEY), key);
        pool.store(n.add(N_KIND), KIND_LEAF);
    }

    /// The owning pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    fn assert_user_key(key: u64) {
        assert!(key < INF1, "user keys must be smaller than the sentinels");
        assert!(key > 0, "key 0 is reserved");
    }

    fn is_internal(&self, n: PAddr) -> bool {
        self.pool.load(n.add(N_KIND)) == KIND_INTERNAL
    }

    fn search(&self, key: u64) -> SearchRes {
        let pool = &*self.pool;
        let mut gp = PAddr::NULL;
        let mut p = PAddr::NULL;
        let mut gp_info = 0;
        let mut p_info = 0;
        let mut l = self.root;
        while self.is_internal(l) {
            gp = p;
            p = l;
            gp_info = p_info;
            p_info = pool.load(p.add(N_INFO));
            l = if key < pool.load(l.add(N_KEY)) {
                PAddr::from_raw(pool.load(p.add(N_LEFT)))
            } else {
                PAddr::from_raw(pool.load(p.add(N_RIGHT)))
            };
        }
        SearchRes {
            gp,
            p,
            l,
            gp_info,
            p_info,
        }
    }

    fn prologue(&self, ctx: &ThreadCtx) {
        let pool = &*self.pool;
        ctx.set_rd(0);
        pool.pbarrier(ctx.rd_addr(), 1, S_RD);
        ctx.set_cp(1);
        pool.pwb(ctx.cp_addr(), S_CP);
        pool.psync();
    }

    // ------------------------------------------------------------------
    // Insert (Algorithm 5)
    // ------------------------------------------------------------------

    /// Inserts `key`; returns `false` if already present.
    pub fn insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        ctx.begin_op(S_CP);
        self.insert_started(ctx, key)
    }

    /// [`Self::insert`] without the system's `CP_q := 0` pre-step.
    pub fn insert_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        Self::assert_user_key(key);
        let pool = &*self.pool;
        // Line 1: the key leaf is allocated once, reused across attempts.
        let new_leaf = ctx.palloc(1);
        Self::init_leaf(pool, new_leaf, key);
        self.prologue(ctx);
        loop {
            // Gather phase (lines 8–10)
            let s = self.search(key);
            // Helping phase (lines 11–13)
            if is_tagged(s.p_info) {
                help(pool, Desc::from_raw(s.p_info));
                continue;
            }
            let desc = Desc::alloc(pool);
            let l_key = pool.load(s.l.add(N_KEY));
            if l_key == key {
                // Duplicate: read-only outcome (lines 22–23, 27); WriteSet
                // and NewSet stay empty (see module docs, deviation 1).
                desc.init(
                    pool,
                    OP_INSERT,
                    enc_bool(false),
                    &[AffectEntry {
                        info_addr: s.p.add(N_INFO),
                        observed: s.p_info,
                        untag_on_cleanup: true,
                    }],
                    &[],
                    &[],
                );
                desc.set_result(pool, enc_bool(false));
                desc.pbarrier(pool, S_DESC);
                ctx.set_rd(desc.raw());
                pool.pwb(ctx.rd_addr(), S_RD);
                pool.psync();
                // The pre-allocated key leaf was never published: retire it
                // (no-op on a bump pool).
                ctx.retire(new_leaf, 1);
                return false;
            }
            // Lines 14–15: duplicate of l and the new internal node
            let new_sibling = ctx.palloc(1);
            Self::init_leaf(pool, new_sibling, l_key);
            let internal = ctx.palloc(1);
            let (left, right) = if key < l_key {
                (new_leaf, new_sibling)
            } else {
                (new_sibling, new_leaf)
            };
            pool.store(internal.add(N_KEY), key.max(l_key));
            pool.store(internal.add(N_LEFT), left.raw());
            pool.store(internal.add(N_RIGHT), right.raw());
            pool.store(internal.add(N_INFO), desc.tagged()); // line 21
            pool.store(internal.add(N_KIND), KIND_INTERNAL);
            // Lines 16–18: which child of p held l
            let side = if pool.load(s.p.add(N_LEFT)) == s.l.raw() {
                N_LEFT
            } else {
                N_RIGHT
            };
            // Lines 19–20
            desc.init(
                pool,
                OP_INSERT,
                enc_bool(true),
                &[AffectEntry {
                    info_addr: s.p.add(N_INFO),
                    observed: s.p_info,
                    untag_on_cleanup: true,
                }],
                &[WriteEntry {
                    field: s.p.add(side),
                    old: s.l.raw(),
                    new: internal.raw(),
                }],
                &[internal.add(N_INFO)],
            );
            // Line 24 (+ deviation 2: flush the key leaf as well)
            pool.pwb(new_leaf, S_NEW);
            pool.pwb(new_sibling, S_NEW);
            pool.pwb(internal, S_NEW);
            pool.pwb_range(desc.addr(), crate::descriptor::D_WORDS, S_DESC);
            pool.pfence();
            // Lines 25–26
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            // Lines 28–29
            help(pool, desc);
            let r = desc.result(pool);
            if r != BOTTOM {
                // Non-duplicate descriptors commit `true`: the WriteSet CAS
                // replaced the reached leaf with the new subtree, and its
                // durability was fenced by help's cleanup — l left the tree
                // for good. Leaves carry no info word, so late searchers
                // that still hold l's address only ever read it.
                ctx.retire(s.l, 1);
                return dec_bool(r);
            }
            // The attempt lost the tag race on p: its subtree nodes were
            // never published; the next attempt re-allocates them (the
            // reached leaf — and hence the sibling key — may have changed).
            ctx.retire(new_sibling, 1);
            ctx.retire(internal, 1);
        }
    }

    /// `Insert.Recover` (Algorithm 1 lines 27–31).
    pub fn recover_insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        match self.recover_update(ctx) {
            Some(r) => r,
            None => self.insert(ctx, key),
        }
    }

    // ------------------------------------------------------------------
    // Delete (Algorithm 6)
    // ------------------------------------------------------------------

    /// Deletes `key`; returns `false` if absent.
    pub fn delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        ctx.begin_op(S_CP);
        self.delete_started(ctx, key)
    }

    /// [`Self::delete`] without the system's `CP_q := 0` pre-step.
    pub fn delete_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        Self::assert_user_key(key);
        let pool = &*self.pool;
        self.prologue(ctx);
        loop {
            // Gather phase (lines 46–48)
            let s = self.search(key);
            // Helping phase (lines 49–53)
            if !s.gp.is_null() && is_tagged(s.gp_info) {
                help(pool, Desc::from_raw(s.gp_info));
                continue;
            }
            if is_tagged(s.p_info) {
                help(pool, Desc::from_raw(s.p_info));
                continue;
            }
            let desc = Desc::alloc(pool);
            if pool.load(s.l.add(N_KEY)) != key {
                // Absent: read-only outcome (lines 60–61, 65); WriteSet
                // stays empty (deviation 1).
                desc.init(
                    pool,
                    OP_DELETE,
                    enc_bool(false),
                    &[AffectEntry {
                        info_addr: s.p.add(N_INFO),
                        observed: s.p_info,
                        untag_on_cleanup: true,
                    }],
                    &[],
                    &[],
                );
                desc.set_result(pool, enc_bool(false));
                desc.pbarrier(pool, S_DESC);
                ctx.set_rd(desc.raw());
                pool.pwb(ctx.rd_addr(), S_RD);
                pool.psync();
                return false;
            }
            // A present user key is at depth >= 2 (depth-1 leaves are the
            // sentinels), so gp exists.
            assert!(!s.gp.is_null(), "present key must have a grandparent");
            // Lines 54–55: l's sibling
            let other = if pool.load(s.p.add(N_LEFT)) == s.l.raw() {
                pool.load(s.p.add(N_RIGHT))
            } else {
                pool.load(s.p.add(N_LEFT))
            };
            // Lines 56–58: which child of gp held p
            let side = if pool.load(s.gp.add(N_LEFT)) == s.p.raw() {
                N_LEFT
            } else {
                N_RIGHT
            };
            // Line 59; AffectSet in root-down order (assumption (b))
            desc.init(
                pool,
                OP_DELETE,
                enc_bool(true),
                &[
                    AffectEntry {
                        info_addr: s.gp.add(N_INFO),
                        observed: s.gp_info,
                        untag_on_cleanup: true,
                    },
                    AffectEntry {
                        info_addr: s.p.add(N_INFO),
                        observed: s.p_info,
                        untag_on_cleanup: false, // p leaves the tree
                    },
                ],
                &[WriteEntry {
                    field: s.gp.add(side),
                    old: s.p.raw(),
                    new: other,
                }],
                &[],
            );
            // Lines 62–64
            desc.pbarrier(pool, S_DESC);
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            // Lines 66–67
            help(pool, desc);
            let r = desc.result(pool);
            if r != BOTTOM {
                // Present-key descriptors commit `true`: the grandparent's
                // child CAS unlinked both p and l durably. p keeps its tag
                // forever, so late searchers that gathered it still help
                // through its intact info word — retirement only parks the
                // blocks in limbo until a quiescent drain.
                ctx.retire(s.p, 1);
                ctx.retire(s.l, 1);
                return dec_bool(r);
            }
        }
    }

    /// `Delete.Recover` (Algorithm 1 lines 27–31).
    pub fn recover_delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        match self.recover_update(ctx) {
            Some(r) => r,
            None => self.delete(ctx, key),
        }
    }

    fn recover_update(&self, ctx: &ThreadCtx) -> Option<bool> {
        let pool = &*self.pool;
        let rd = ctx.rd();
        if ctx.cp() == 0 || rd == 0 {
            return None;
        }
        let desc = Desc::from_raw(rd);
        help(pool, desc);
        let r = desc.result(pool);
        if r != BOTTOM {
            Some(dec_bool(r))
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Find
    // ------------------------------------------------------------------

    /// Is `key` present? Read-only; tags nothing.
    pub fn find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        Self::assert_user_key(key);
        let pool = &*self.pool;
        let desc = Desc::alloc(pool);
        loop {
            let s = self.search(key);
            if is_tagged(s.p_info) {
                help(pool, Desc::from_raw(s.p_info));
                continue;
            }
            let result = pool.load(s.l.add(N_KEY)) == key;
            desc.init(
                pool,
                OP_FIND,
                enc_bool(result),
                &[AffectEntry {
                    info_addr: s.p.add(N_INFO),
                    observed: s.p_info,
                    untag_on_cleanup: true,
                }],
                &[],
                &[],
            );
            desc.set_result(pool, enc_bool(result));
            desc.pbarrier(pool, S_DESC);
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            return result;
        }
    }

    /// `Find.Recover`: read-only, so simply re-execute.
    pub fn recover_find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.find(ctx, key)
    }

    // ------------------------------------------------------------------
    // Quiescent inspection helpers
    // ------------------------------------------------------------------

    /// In-order user keys (quiescent only).
    pub fn keys(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.collect(self.root, &mut out);
        out
    }

    fn collect(&self, n: PAddr, out: &mut Vec<u64>) {
        if self.is_internal(n) {
            self.collect(PAddr::from_raw(self.pool.load(n.add(N_LEFT))), out);
            self.collect(PAddr::from_raw(self.pool.load(n.add(N_RIGHT))), out);
        } else {
            let k = self.pool.load(n.add(N_KEY));
            if k < INF1 {
                out.push(k);
            }
        }
    }

    /// Checks structural invariants (quiescent): the external-BST routing
    /// property (left-subtree keys < node key ≤ right-subtree keys), every
    /// internal node has two children, and no reachable node is tagged.
    /// Returns the number of user keys. Panics on violation.
    pub fn check_invariants(&self) -> usize {
        let n = self.check_range(self.root, 0, INF2);
        // in-order keys must come out strictly sorted
        let ks = self.keys();
        assert!(
            ks.windows(2).all(|w| w[0] < w[1]),
            "duplicate or unsorted keys"
        );
        assert_eq!(ks.len(), n);
        n
    }

    fn check_range(&self, n: PAddr, lo: u64, hi: u64) -> usize {
        assert!(!n.is_null(), "internal node with a missing child");
        let pool = &*self.pool;
        let k = pool.load(n.add(N_KEY));
        if self.is_internal(n) {
            let info = pool.load(n.add(N_INFO));
            assert!(
                !is_tagged(info),
                "quiescent tree must hold no tagged node (key {k})"
            );
            assert!(k > lo && k <= hi, "routing key {k} outside ({lo}, {hi}]");
            let l = self.check_range(PAddr::from_raw(pool.load(n.add(N_LEFT))), lo, k - 1);
            let r = self.check_range(PAddr::from_raw(pool.load(n.add(N_RIGHT))), k.max(lo), hi);
            l + r
        } else {
            assert!(k >= lo && k <= hi, "leaf key {k} outside [{lo}, {hi}]");
            (k < INF1) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PmemPool, PoolCfg};
    use std::collections::BTreeSet;

    fn setup() -> (Arc<PmemPool>, RecoverableBst, ThreadCtx) {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
        let bst = RecoverableBst::new(pool.clone(), 1);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        (pool, bst, ctx)
    }

    #[test]
    fn empty_tree_invariants() {
        let (_p, bst, _ctx) = setup();
        assert_eq!(bst.check_invariants(), 0);
        assert!(bst.keys().is_empty());
    }

    #[test]
    fn insert_find_delete_basics() {
        let (_p, bst, ctx) = setup();
        assert!(!bst.find(&ctx, 10));
        assert!(bst.insert(&ctx, 10));
        assert!(bst.find(&ctx, 10));
        assert!(!bst.insert(&ctx, 10));
        assert!(bst.delete(&ctx, 10));
        assert!(!bst.find(&ctx, 10));
        assert!(!bst.delete(&ctx, 10));
        assert_eq!(bst.check_invariants(), 0);
    }

    #[test]
    fn inorder_keys_sorted() {
        let (_p, bst, ctx) = setup();
        for k in [50u64, 20, 80, 10, 30, 70, 90] {
            assert!(bst.insert(&ctx, k));
        }
        assert_eq!(bst.keys(), vec![10, 20, 30, 50, 70, 80, 90]);
        assert!(bst.delete(&ctx, 50));
        assert!(bst.delete(&ctx, 10));
        assert_eq!(bst.keys(), vec![20, 30, 70, 80, 90]);
        bst.check_invariants();
    }

    #[test]
    fn matches_reference_model_sequentially() {
        let (_p, bst, ctx) = setup();
        let mut model = BTreeSet::new();
        let mut rng = 0xBEEFu64;
        for _ in 0..2000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (rng >> 33) % 60 + 1;
            match (rng >> 20) % 3 {
                0 => assert_eq!(bst.insert(&ctx, key), model.insert(key), "insert {key}"),
                1 => assert_eq!(bst.delete(&ctx, key), model.remove(&key), "delete {key}"),
                _ => assert_eq!(bst.find(&ctx, key), model.contains(&key), "find {key}"),
            }
        }
        assert_eq!(bst.keys(), model.iter().copied().collect::<Vec<_>>());
        bst.check_invariants();
    }

    #[test]
    fn ascending_and_descending_fills() {
        let (_p, bst, ctx) = setup();
        for k in 1..=40u64 {
            assert!(bst.insert(&ctx, k));
        }
        assert_eq!(bst.check_invariants(), 40);
        for k in (1..=40u64).rev() {
            assert!(bst.delete(&ctx, k));
        }
        assert_eq!(bst.check_invariants(), 0);
    }

    #[test]
    fn delete_root_level_and_rebuild() {
        let (_p, bst, ctx) = setup();
        assert!(bst.insert(&ctx, 5));
        assert!(bst.delete(&ctx, 5), "delete the only key");
        assert_eq!(bst.check_invariants(), 0);
        assert!(bst.insert(&ctx, 5), "reinsert after emptying");
        assert_eq!(bst.keys(), vec![5]);
    }

    #[test]
    fn concurrent_inserts_distinct_keys() {
        let (p, bst, _ctx) = setup();
        let mut handles = vec![];
        for t in 0..4u64 {
            let bst = bst.clone();
            let ctx = ThreadCtx::new(p.clone(), t as usize);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    assert!(bst.insert(&ctx, t * 1000 + i + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bst.check_invariants(), 200);
    }

    #[test]
    fn concurrent_mixed_ops_preserve_invariants() {
        let (p, bst, _ctx) = setup();
        let mut handles = vec![];
        for t in 0..4usize {
            let bst = bst.clone();
            let ctx = ThreadCtx::new(p.clone(), t);
            handles.push(std::thread::spawn(move || {
                let mut rng = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                for _ in 0..500 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let key = rng % 40 + 1;
                    match (rng >> 32) % 3 {
                        0 => {
                            bst.insert(&ctx, key);
                        }
                        1 => {
                            bst.delete(&ctx, key);
                        }
                        _ => {
                            bst.find(&ctx, key);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        bst.check_invariants();
    }

    #[test]
    fn crash_swept_insert_recovers_detectably() {
        for crash_at in 0..3000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
            let bst = RecoverableBst::new(pool.clone(), 1);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            assert!(bst.insert(&ctx, 10)); // pre-populate so p/gp paths exist
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| bst.insert_started(&ctx, 5));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(r) => {
                    assert!(r);
                    assert_eq!(bst.keys(), vec![5, 10]);
                    return;
                }
                None => {
                    assert!(bst.recover_insert(&ctx, 5), "crash_at={crash_at}");
                    assert_eq!(bst.keys(), vec![5, 10], "crash_at={crash_at}");
                    bst.check_invariants();
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn crash_swept_delete_recovers_detectably() {
        for crash_at in 0..3000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
            let bst = RecoverableBst::new(pool.clone(), 1);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            assert!(bst.insert(&ctx, 10));
            assert!(bst.insert(&ctx, 5));
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| bst.delete_started(&ctx, 5));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(r) => {
                    assert!(r);
                    assert_eq!(bst.keys(), vec![10]);
                    return;
                }
                None => {
                    assert!(bst.recover_delete(&ctx, 5), "crash_at={crash_at}");
                    assert_eq!(bst.keys(), vec![10], "crash_at={crash_at}");
                    bst.check_invariants();
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn recovery_of_completed_op_returns_recorded_result() {
        let (_p, bst, ctx) = setup();
        assert!(bst.insert(&ctx, 9));
        assert!(bst.recover_insert(&ctx, 9));
        assert_eq!(bst.keys(), vec![9], "no double insert");
    }

    #[test]
    fn reclaim_pool_churn_recycles_unlinked_nodes() {
        // Insert/delete churn over a small key range on a reclaiming pool.
        // Every unlinked leaf/internal/descriptor must land in limbo, survive
        // the audit, and actually get re-issued after a quiescent drain —
        // otherwise the tree leaks a node per delete and the working set
        // grows without bound.
        let pool = Arc::new(PmemPool::new(PoolCfg {
            reclaim: true,
            ..PoolCfg::model(16 << 20)
        }));
        let bst = RecoverableBst::new(pool.clone(), 1);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        let mut model = BTreeSet::new();
        let mut rng = 0xC0FFEEu64;
        for round in 0..6 {
            for _ in 0..200 {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                let k = 1 + (rng >> 33) % 16;
                if rng & 1 == 0 {
                    assert_eq!(bst.insert(&ctx, k), model.insert(k));
                } else {
                    assert_eq!(bst.delete(&ctx, k), model.remove(&k));
                }
            }
            assert_eq!(bst.keys(), model.iter().copied().collect::<Vec<_>>());
            assert_eq!(bst.check_invariants(), model.len());
            // Quiescent point: no op in flight, so limbo may drain to the
            // free lists and the allocator audit must hold.
            pool.palloc_drain_all();
            pool.palloc_check().unwrap();
            if round == 0 {
                assert!(
                    !pool.palloc_free_blocks().is_empty(),
                    "churn retired nodes but none reached the free lists"
                );
            }
        }
        // Recycling must be real: the next single-line allocation comes from
        // a drained free list, not fresh bump space.
        let wm = pool.palloc_free_blocks().iter().map(|&(b, _)| b).max();
        let a = ctx.palloc(1);
        assert!(
            wm.is_some_and(|hi| a.raw() <= hi),
            "allocation after drain skipped the free lists"
        );
    }
}
