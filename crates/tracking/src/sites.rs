//! `pwb` call sites of the Tracking algorithms.
//!
//! Each constant names one code line of Algorithms 1–6 that issues a `pwb`.
//! The paper's evaluation (Section 5) measures the performance impact of
//! each such code line individually and sorts them into low / medium / high
//! impact categories; the benchmark harness drives those sweeps by enabling
//! and disabling these sites on the pool. The paper's qualitative finding —
//! `S_CP`, `S_RD`, `S_DESC`, `S_NEW` hit thread-private or
//! not-yet-shared lines and are cheap, while `S_TAG`/`S_UPDATE`/`S_CLEANUP`
//! hit contended shared lines — is exactly what the categorization
//! experiment re-derives empirically.

use pmem::SiteId;

/// `pwb(CP_q)` in the operation prologue (Alg. 1 line 5; Alg. 3 line 7; …).
pub const S_CP: SiteId = SiteId(0);
/// `pwb(RD_q)` after publishing the attempt's descriptor (Alg. 1 line 21).
pub const S_RD: SiteId = SiteId(1);
/// `pbarrier(*opInfo)` — flush of the freshly written descriptor
/// (Alg. 1 line 19; Alg. 3 line 28; Alg. 4 lines 69/87; Alg. 5 line 24).
pub const S_DESC: SiteId = SiteId(2);
/// `pbarrier(new nodes)` — flush of newly allocated, not-yet-shared nodes
/// (part of Alg. 1 line 19 / Alg. 3 line 28 / Alg. 5 line 24).
pub const S_NEW: SiteId = SiteId(3);
/// `pwb(nd→info)` after a tagging CAS (Alg. 2 line 36).
pub const S_TAG: SiteId = SiteId(4);
/// `pwb(nd→info)` in the backtrack phase (Alg. 2 line 42).
pub const S_BACKTRACK: SiteId = SiteId(5);
/// `pwb(updated field)` in the update phase (Alg. 2 line 51).
pub const S_UPDATE: SiteId = SiteId(6);
/// `pwb(opInfo→result)` (Alg. 2 line 53).
pub const S_RESULT: SiteId = SiteId(7);
/// `pwb(nd→info)` in the cleanup phase (Alg. 2 line 57).
pub const S_CLEANUP: SiteId = SiteId(8);
/// Exchanger only: the waiter persisting its node's `partner` field before
/// returning the exchanged value.
pub const S_PARTNER: SiteId = SiteId(9);
/// Ablation only ([`crate::list::ListConfig::traversal_flush`]): the naive
/// Izraelevitz-style `pwb; pfence` after every shared read of the gather
/// phase — the placement the paper's approach deliberately avoids.
pub const S_TRAVERSE: SiteId = SiteId(10);
/// Combining variants ([`crate::combining`]): `pwb` of a thread's announced
/// operation (its recovery line, one line, one `psync`).
pub const S_ANNOUNCE: SiteId = SiteId(11);
/// Combining variants: the combiner's coalesced `pwb` batch over a round's
/// fresh nodes and round record.
pub const S_COMB_ROUND: SiteId = SiteId(12);
/// Combining variants: `pwb` of the structure header publishing a round.
pub const S_COMB_PUBLISH: SiteId = SiteId(13);
/// Hash table ([`crate::hashmap`]): `pwb` of a level directory or of the
/// header line when a resize is published or finished.
pub const S_LEVEL: SiteId = SiteId(14);
/// Hash table: `pwb` of the migration cursor after a bucket is drained.
pub const S_CURSOR: SiteId = SiteId(15);

/// All Tracking sites with human-readable names, for harness reports.
pub const SITES: [(SiteId, &str); 16] = [
    (S_CP, "cp"),
    (S_RD, "rd"),
    (S_DESC, "desc"),
    (S_NEW, "new-node"),
    (S_TAG, "tag-info"),
    (S_BACKTRACK, "backtrack-info"),
    (S_UPDATE, "updated-field"),
    (S_RESULT, "result"),
    (S_CLEANUP, "cleanup-info"),
    (S_PARTNER, "partner"),
    (S_TRAVERSE, "traverse(ablation)"),
    (S_ANNOUNCE, "comb-announce"),
    (S_COMB_ROUND, "comb-round"),
    (S_COMB_PUBLISH, "comb-publish"),
    (S_LEVEL, "level"),
    (S_CURSOR, "migrate-cursor"),
];

/// Human-readable name of a Tracking site (or `"?"`).
pub fn site_name(s: SiteId) -> &'static str {
    SITES
        .iter()
        .find(|(id, _)| *id == s)
        .map(|(_, n)| *n)
        .unwrap_or("?")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_ids_are_unique() {
        for (i, (a, _)) in SITES.iter().enumerate() {
            for (b, _) in SITES.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn names_resolve() {
        assert_eq!(site_name(S_TAG), "tag-info");
        assert_eq!(site_name(SiteId(63)), "?");
    }
}
