//! Operation descriptors (`Info` objects) laid out in persistent memory.
//!
//! A descriptor is the paper's
//! `⟨opType, AffectSet, WriteSet, NewSet, result⟩` tuple (Algorithm 1 line
//! 16), plus a `success_result` word: for every operation the response of a
//! *successful* attempt is known when the descriptor is built (`true` for a
//! list/BST update, the partner's gathered value for an exchange), so the
//! generic help engine can write "the response of the operation described by
//! opInfo" (Algorithm 2 line 52) without structure-specific callbacks.
//! Read-only and failing paths write `result` directly, exactly like the
//! pseudocode's red lines.
//!
//! Layout (24 words = 3 cache lines, line-aligned so descriptor flushes have
//! deterministic line counts):
//!
//! ```text
//! w0        header: opType | alen<<8 | wlen<<16 | nlen<<24 | untagFlags<<32
//! w1        result            (⊥ until the op takes effect)
//! w2        success_result    (what `help` writes on success)
//! w3..w10   AffectSet         (info-field addr, observed value) × ≤4
//! w11..w16  WriteSet          (field addr, old, new)            × ≤2
//! w17..w19  NewSet            (info-field addr of new node)     × ≤3
//! ```
//!
//! AffectSet and NewSet entries store the address of a node's **info
//! field** (not the node base): the engine tags/untags nodes without
//! knowing any structure's node layout. `untagFlags` bit *i* records
//! whether AffectSet entry *i* is still part of the data structure after
//! the update and must be untagged during cleanup — a deleted or replaced
//! node keeps its tag forever (paper, Figure 1c).

use pmem::{PAddr, PmemPool, SiteId};

use crate::result::BOTTOM;

/// Maximum AffectSet entries (the BST delete needs 2; 4 leaves headroom).
pub const AFFECT_MAX: usize = 4;
/// Maximum WriteSet entries (the exchanger's collide needs 2).
pub const WRITE_MAX: usize = 2;
/// Maximum NewSet entries (the list insert allocates 2; 3 leaves headroom).
pub const NEW_MAX: usize = 3;

/// Descriptor size in words (3 cache lines).
pub const D_WORDS: usize = 24;
/// Descriptor size in cache lines.
pub const D_LINES: usize = 3;

const W_HDR: u64 = 0;
const W_RESULT: u64 = 1;
const W_SUCCESS: u64 = 2;
const W_AFFECT: u64 = 3;
const W_WRITE: u64 = 11;
const W_NEW: u64 = 17;

/// One AffectSet entry.
#[derive(Copy, Clone, Debug)]
pub struct AffectEntry {
    /// Address of the affected node's `info` field.
    pub info_addr: PAddr,
    /// The info value observed during the gather phase (the version stamp
    /// the tagging CAS validates against).
    pub observed: u64,
    /// Untag this node during cleanup (it remains in the structure)?
    pub untag_on_cleanup: bool,
}

/// One WriteSet entry: `CAS(field, old, new)`.
#[derive(Copy, Clone, Debug)]
pub struct WriteEntry {
    /// Address of the field to change.
    pub field: PAddr,
    /// Expected old value.
    pub old: u64,
    /// New value.
    pub new: u64,
}

/// A handle on a descriptor in persistent memory (the untagged base
/// address). Copy-cheap; all state lives in the pool.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Desc {
    addr: PAddr,
}

impl Desc {
    /// Allocates a fresh (zeroed) descriptor. `result` is ⊥ (= 0) by
    /// construction.
    ///
    /// Descriptors are deliberately bump-allocated — never recycled, even
    /// on a pool built with `pmem::PoolCfg::reclaim`. Cleanup leaves
    /// `untagged(desc)` behind as the *info version stamp* of every
    /// AffectSet node that survives the operation, and that stamp is
    /// validated by tagging CASes arbitrarily far in the future; re-issuing
    /// a descriptor address could therefore resurrect an old stamp value on
    /// a node the new descriptor's operation also affects, and a stale
    /// tagging CAS would validate against it (ABA across operation
    /// windows). Only *node* blocks — whose addresses are compared solely
    /// against values gathered within a single operation window — are safe
    /// to recycle; see `pmem::palloc`.
    pub fn alloc(pool: &PmemPool) -> Desc {
        Desc {
            addr: pool.alloc_lines(D_LINES),
        }
    }

    /// Wraps a raw descriptor reference read from `RD_q` or an `info` field
    /// (any tag bit is cleared).
    #[inline]
    pub fn from_raw(raw: u64) -> Desc {
        Desc {
            addr: PAddr(pmem::untagged(raw)),
        }
    }

    /// Untagged base address.
    #[inline]
    pub fn addr(&self) -> PAddr {
        self.addr
    }

    /// Raw untagged reference (for `RD_q`).
    #[inline]
    pub fn raw(&self) -> u64 {
        self.addr.raw()
    }

    /// The value a tagging CAS installs into `info` fields.
    #[inline]
    pub fn tagged(&self) -> u64 {
        pmem::tagged(self.addr.raw())
    }

    /// The value cleanup/backtrack leave in `info` fields.
    #[inline]
    pub fn untagged(&self) -> u64 {
        pmem::untagged(self.addr.raw())
    }

    /// Fills in every field of a freshly allocated descriptor (Algorithm 1
    /// line 16). Plain stores; the caller persists with [`Desc::pbarrier`]
    /// *before* publishing the descriptor through `RD_q` or a tagging CAS.
    pub fn init(
        &self,
        pool: &PmemPool,
        op_type: u8,
        success_result: u64,
        affect: &[AffectEntry],
        writes: &[WriteEntry],
        news: &[PAddr],
    ) {
        assert!(affect.len() <= AFFECT_MAX, "AffectSet too large");
        assert!(writes.len() <= WRITE_MAX, "WriteSet too large");
        assert!(news.len() <= NEW_MAX, "NewSet too large");
        let mut untag_flags = 0u64;
        for (i, e) in affect.iter().enumerate() {
            pool.store(self.addr.add(W_AFFECT + 2 * i as u64), e.info_addr.raw());
            pool.store(self.addr.add(W_AFFECT + 2 * i as u64 + 1), e.observed);
            if e.untag_on_cleanup {
                untag_flags |= 1 << i;
            }
        }
        for (j, w) in writes.iter().enumerate() {
            let base = W_WRITE + 3 * j as u64;
            pool.store(self.addr.add(base), w.field.raw());
            pool.store(self.addr.add(base + 1), w.old);
            pool.store(self.addr.add(base + 2), w.new);
        }
        for (i, n) in news.iter().enumerate() {
            pool.store(self.addr.add(W_NEW + i as u64), n.raw());
        }
        pool.store(self.addr.add(W_SUCCESS), success_result);
        pool.store(self.addr.add(W_RESULT), BOTTOM);
        let hdr = op_type as u64
            | (affect.len() as u64) << 8
            | (writes.len() as u64) << 16
            | (news.len() as u64) << 24
            | untag_flags << 32;
        pool.store(self.addr.add(W_HDR), hdr);
    }

    /// Flushes the whole descriptor and fences (the `pbarrier(*opInfo)` of
    /// Algorithm 1 line 19).
    pub fn pbarrier(&self, pool: &PmemPool, site: SiteId) {
        pool.pbarrier(self.addr, D_WORDS, site);
    }

    // --- field readers -------------------------------------------------

    /// Structure-defined operation type tag.
    pub fn op_type(&self, pool: &PmemPool) -> u8 {
        (pool.load(self.addr.add(W_HDR)) & 0xFF) as u8
    }

    /// AffectSet length.
    pub fn affect_len(&self, pool: &PmemPool) -> usize {
        ((pool.load(self.addr.add(W_HDR)) >> 8) & 0xFF) as usize
    }

    /// WriteSet length.
    pub fn write_len(&self, pool: &PmemPool) -> usize {
        ((pool.load(self.addr.add(W_HDR)) >> 16) & 0xFF) as usize
    }

    /// NewSet length.
    pub fn new_len(&self, pool: &PmemPool) -> usize {
        ((pool.load(self.addr.add(W_HDR)) >> 24) & 0xFF) as usize
    }

    /// AffectSet entry `i`.
    ///
    /// Bounds checks here (and in [`Self::write`], [`Self::new_node`]) must
    /// stay free of instrumented pool reads: an extra debug-only `load`
    /// would tick the crash countdown, making crash-point enumeration
    /// differ between debug and release builds.
    pub fn affect(&self, pool: &PmemPool, i: usize) -> AffectEntry {
        let hdr = pool.load(self.addr.add(W_HDR));
        debug_assert!(i < ((hdr >> 8) & 0xFF) as usize);
        let flags = hdr >> 32;
        AffectEntry {
            info_addr: PAddr::from_raw(pool.load(self.addr.add(W_AFFECT + 2 * i as u64))),
            observed: pool.load(self.addr.add(W_AFFECT + 2 * i as u64 + 1)),
            untag_on_cleanup: flags & (1 << i) != 0,
        }
    }

    /// WriteSet entry `j`.
    pub fn write(&self, pool: &PmemPool, j: usize) -> WriteEntry {
        debug_assert!(j < WRITE_MAX);
        let base = W_WRITE + 3 * j as u64;
        WriteEntry {
            field: PAddr::from_raw(pool.load(self.addr.add(base))),
            old: pool.load(self.addr.add(base + 1)),
            new: pool.load(self.addr.add(base + 2)),
        }
    }

    /// NewSet entry `i` (info-field address of the new node).
    pub fn new_node(&self, pool: &PmemPool, i: usize) -> PAddr {
        debug_assert!(i < NEW_MAX);
        PAddr::from_raw(pool.load(self.addr.add(W_NEW + i as u64)))
    }

    /// Current `result` (⊥ until the operation takes effect).
    pub fn result(&self, pool: &PmemPool) -> u64 {
        pool.load(self.addr.add(W_RESULT))
    }

    /// The response `help` publishes when the update phase completes.
    pub fn success_result(&self, pool: &PmemPool) -> u64 {
        pool.load(self.addr.add(W_SUCCESS))
    }

    /// Writes `result` directly (read-only / failing paths, Algorithm 3
    /// line 23 etc.). The caller persists it.
    pub fn set_result(&self, pool: &PmemPool, r: u64) {
        pool.store(self.addr.add(W_RESULT), r);
    }

    /// Address of the `result` word (for targeted `pwb`s, Algorithm 2
    /// line 53).
    pub fn result_addr(&self) -> PAddr {
        self.addr.add(W_RESULT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PmemPool, PoolCfg};

    fn pool() -> PmemPool {
        PmemPool::new(PoolCfg::model(1 << 20))
    }

    #[test]
    fn roundtrip_all_fields() {
        let p = pool();
        let d = Desc::alloc(&p);
        let n1 = p.alloc_lines(1);
        let n2 = p.alloc_lines(1);
        let nn = p.alloc_lines(1);
        d.init(
            &p,
            7,
            crate::result::TRUE,
            &[
                AffectEntry {
                    info_addr: n1.add(2),
                    observed: 11,
                    untag_on_cleanup: true,
                },
                AffectEntry {
                    info_addr: n2.add(2),
                    observed: 13,
                    untag_on_cleanup: false,
                },
            ],
            &[WriteEntry {
                field: n1.add(1),
                old: 5,
                new: 6,
            }],
            &[nn.add(2)],
        );
        assert_eq!(d.op_type(&p), 7);
        assert_eq!(d.affect_len(&p), 2);
        assert_eq!(d.write_len(&p), 1);
        assert_eq!(d.new_len(&p), 1);
        let a0 = d.affect(&p, 0);
        assert_eq!(a0.info_addr, n1.add(2));
        assert_eq!(a0.observed, 11);
        assert!(a0.untag_on_cleanup);
        let a1 = d.affect(&p, 1);
        assert_eq!(a1.info_addr, n2.add(2));
        assert!(!a1.untag_on_cleanup);
        let w0 = d.write(&p, 0);
        assert_eq!((w0.field, w0.old, w0.new), (n1.add(1), 5, 6));
        assert_eq!(d.new_node(&p, 0), nn.add(2));
        assert_eq!(d.result(&p), BOTTOM);
        assert_eq!(d.success_result(&p), crate::result::TRUE);
    }

    #[test]
    fn result_starts_bottom_and_is_settable() {
        let p = pool();
        let d = Desc::alloc(&p);
        d.init(&p, 1, crate::result::TRUE, &[], &[], &[]);
        assert_eq!(d.result(&p), BOTTOM);
        d.set_result(&p, crate::result::FALSE);
        assert_eq!(d.result(&p), crate::result::FALSE);
    }

    #[test]
    fn tagged_untagged_refer_to_same_descriptor() {
        let p = pool();
        let d = Desc::alloc(&p);
        assert_ne!(d.tagged(), d.untagged());
        assert_eq!(Desc::from_raw(d.tagged()), d);
        assert_eq!(Desc::from_raw(d.untagged()), d);
        assert!(pmem::is_tagged(d.tagged()));
        assert!(!pmem::is_tagged(d.untagged()));
    }

    #[test]
    fn descriptors_are_line_aligned_and_fresh() {
        let p = pool();
        let a = Desc::alloc(&p);
        let b = Desc::alloc(&p);
        assert_eq!(a.addr().word() % pmem::WORDS_PER_LINE, 0);
        assert!(b.addr().raw() >= a.addr().raw() + D_WORDS as u64);
    }

    #[test]
    fn pbarrier_persists_descriptor() {
        let p = pool();
        let d = Desc::alloc(&p);
        d.init(&p, 3, crate::result::TRUE, &[], &[], &[]);
        d.pbarrier(&p, pmem::SiteId(0));
        p.crash(&mut pmem::PessimistAdversary);
        assert_eq!(d.op_type(&p), 3);
        assert_eq!(d.success_result(&p), crate::result::TRUE);
    }

    #[test]
    #[should_panic(expected = "AffectSet too large")]
    fn affect_overflow_checked() {
        let p = pool();
        let d = Desc::alloc(&p);
        let e = AffectEntry {
            info_addr: PAddr(8),
            observed: 0,
            untag_on_cleanup: false,
        };
        d.init(&p, 0, 0, &[e; 5], &[], &[]);
    }
}
